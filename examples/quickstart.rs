//! Quickstart: one SPMD server, one parallel client, one invocation.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Uses the `direct` solver interface generated from `idl/solvers.idl` to
//! solve a small linear system on a 2-thread SPMD server, from a 2-thread
//! SPMD client, with the matrix distributed over the client's address
//! spaces.

use pardis::core::{ClientGroup, DSequence, Distribution, Orb};
use pardis::generated::solvers::DirectProxy;
use pardis::rts::{MpiRts, Rts, World};
use pardis_apps::solvers::{gen_system, spawn_direct_server};
use std::sync::Arc;

fn main() {
    // 1. An ORB over a trivial one-host network (no delay injection).
    let (orb, host) = Orb::single_host();

    // 2. A parallel server: 2 computing threads implementing the SPMD
    //    object "direct_solver". The launcher spawns the threads, attaches
    //    each to the ORB, activates the generated skeleton and enters
    //    impl_is_ready().
    let server = spawn_direct_server(&orb, host, "direct_solver", 2);

    // 3. A parallel client: 2 computing threads acting as one entity.
    let n = 64;
    let (a, b) = gen_system(n, 1);
    let client = ClientGroup::create(&orb, host, 2);
    let x = World::run(2, |rank| {
        let t = rank.rank();
        let rts: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
        let ct = client.attach(t, Some(rts));

        // Collective bind; the proxy type comes from the IDL compiler.
        let solver = DirectProxy::spmd_bind(&ct, "direct_solver").expect("bind");

        // The arguments are sequences distributed over the client's two
        // address spaces; the ORB plans the transfer to the server's
        // distribution on its own.
        let a_ds = DSequence::distribute(&a, Distribution::Block, 2, t);
        let b_ds = DSequence::distribute(&b, Distribution::Block, 2, t);
        let (x,) = solver.solve(&a_ds, &b_ds, Distribution::Block).expect("solve");
        x.local().to_vec()
    });

    // 4. Check the residual of the assembled solution.
    let full: Vec<f64> = x.into_iter().flatten().collect();
    let mut worst: f64 = 0.0;
    for (i, row) in a.iter().enumerate() {
        let ax: f64 = row.iter().zip(&full).map(|(r, v)| r * v).sum();
        worst = worst.max((ax - b[i]).abs());
    }
    println!("solved {n}x{n} system over PARDIS; max residual {worst:.3e}");
    assert!(worst < 1e-8);

    server.shutdown();
    println!("done.");
}
