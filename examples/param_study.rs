//! Parameter study: the §4.1 motivation ("similar interactions occur in
//! parameter study for physical simulation and algorithm development").
//!
//! ```text
//! cargo run --release --example param_study [N]
//! ```
//!
//! The client fires one non-blocking `solve` per tolerance value at the
//! iterative solver — all of them in flight at once, on one binding, so the
//! server processes them in invocation order while the client keeps the
//! pipeline full — then resolves the futures and compares accuracy against
//! the direct method.

use pardis::core::{ClientGroup, DSequence, Distribution, Orb};
use pardis::generated::solvers::{DirectProxy, IterativeProxy};
use pardis::rts::{MpiRts, Rts, World};
use pardis_apps::solvers::{
    compute_difference, gen_system, spawn_direct_server, spawn_iterative_server,
};
use std::sync::Arc;

const CLIENT_THREADS: usize = 2;

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(120);
    let tolerances = [1e-2, 1e-4, 1e-6, 1e-8, 1e-10];

    let (orb, host) = Orb::single_host();
    let direct = spawn_direct_server(&orb, host, "direct_solver", 2);
    let iterative = spawn_iterative_server(&orb, host, "itrt_solver", 4);

    let (a, b) = gen_system(n, 7);
    println!("parameter study over {} tolerances, {n}x{n} system", tolerances.len());

    let client = ClientGroup::create(&orb, host, CLIENT_THREADS);
    let rows = World::run(CLIENT_THREADS, |rank| {
        let t = rank.rank();
        let rts: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
        let ct = client.attach(t, Some(rts.clone()));
        let i_solver = IterativeProxy::spmd_bind(&ct, "itrt_solver").expect("bind iterative");
        let d_solver = DirectProxy::spmd_bind(&ct, "direct_solver").expect("bind direct");

        let a_ds = DSequence::distribute(&a, Distribution::Block, CLIENT_THREADS, t);
        let b_ds = DSequence::distribute(&b, Distribution::Block, CLIENT_THREADS, t);

        // The reference solution (blocking), then the whole sweep
        // non-blocking: every request is in flight before the first result
        // is read.
        let (x_ref,) = d_solver.solve(&a_ds, &b_ds, Distribution::Block).expect("direct");
        let sweep: Vec<_> = tolerances
            .iter()
            .map(|tol| i_solver.solve_nb(tol, &a_ds, &b_ds, Distribution::Block).expect("solve_nb"))
            .collect();

        sweep
            .into_iter()
            .zip(tolerances)
            .map(|(futs, tol)| {
                let x = futs.x.get().expect("future");
                (tol, compute_difference(&x, &x_ref, Some(rts.as_ref())))
            })
            .collect::<Vec<_>>()
    });

    println!("{:>12}  {:>14}", "tolerance", "‖x - x_ref‖∞");
    let mut prev = f64::INFINITY;
    for (tol, diff) in &rows[0] {
        println!("{tol:>12.0e}  {diff:>14.3e}");
        assert!(
            *diff <= prev * 1.5 + 1e-12,
            "accuracy should not regress as the tolerance tightens"
        );
        prev = *diff;
    }

    direct.shutdown();
    iterative.shutdown();
    println!("done: tighter tolerances track the direct solution more closely.");
}
