//! Dynamic invocation: no compiled stubs at all.
//!
//! ```text
//! cargo run --release --example dynamic_client
//! ```
//!
//! The client loads `idl/dna.idl` into the ORB's Interface Repository at
//! *runtime*, introspects the `list_server` interface, type-checks a call
//! against the repository signature, and invokes `match` through the
//! dynamic invocation interface with `Any` arguments — the CORBA workflow
//! for talking to an object you learned about after you were compiled.

use pardis::cdr::{Any, TypeCode, Value};
use pardis::core::{ClientGroup, Orb};
use pardis::ifr;
use pardis_apps::dna::{spawn_dna_server, DnaServerConfig, Placement};

fn main() {
    let (orb, host) = Orb::single_host();

    // A normal, stub-based DNA server (the server side is oblivious to how
    // clients were built).
    let server = spawn_dna_server(
        &orb,
        host,
        DnaServerConfig {
            nthreads: 2,
            db_size: 500,
            placement: Placement::Distributed,
            ..Default::default()
        },
    );

    // Load the interface descriptions from the IDL text, at runtime.
    let idl_source = std::fs::read_to_string("idl/dna.idl").expect("read idl/dna.idl");
    ifr::load_idl(&orb, &idl_source).expect("load IDL into the interface repository");

    // Introspect.
    println!("interfaces known to the repository: {:?}", orb.interfaces().ids());
    for op in orb.interfaces().all_ops("list_server") {
        let params: Vec<String> =
            op.params.iter().map(|p| format!("{:?} {}: {}", p.mode, p.name, p.tc)).collect();
        println!("  list_server::{}({}) -> {}", op.name, params.join(", "), op.ret);
    }

    // Run the search so the lists have content.
    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let db = client.spmd_bind("dna_db").expect("bind dna_db");
    let reply = db.call("search").arg(&"ACGT".to_string()).invoke().expect("search");
    let status = reply
        .any(
            0,
            &TypeCode::Enum {
                name: "status".into(),
                variants: std::sync::Arc::new(vec!["done".into(), "working".into()]),
            },
        )
        .expect("status");
    println!("search returned {status}");

    // Type-check a dynamic call against the repository, then make it.
    let arg_tc = TypeCode::String;
    let sig =
        orb.interfaces().check_call("list_server", "match", &[arg_tc]).expect("signature check");
    let out_tc = sig.params.iter().find(|p| p.name == "l").expect("out param `l`").tc.clone();

    let exact = client.bind("exact").expect("bind exact list");
    let query = Any::new(TypeCode::String, Value::String("GAT".into())).expect("arg");
    let reply = exact.call("match").any_arg(&query).invoke().expect("dynamic match");
    let hits = reply.any(0, &out_tc).expect("decode hits");
    match &hits.value {
        Value::Sequence(items) => {
            println!("dynamic match(\"GAT\") on the exact list: {} hits", items.len());
            for item in items.iter().take(3) {
                if let Value::String(s) = item {
                    println!("  {s}");
                }
            }
        }
        other => println!("unexpected reply shape: {other:?}"),
    }

    // The repository also rejects bad calls before they touch the wire.
    let err = orb.interfaces().check_call("list_server", "match", &[TypeCode::Double]).unwrap_err();
    println!("repository rejected a mistyped call: {err}");

    server.shutdown();
}
