//! §4.3 / figure 5 — pipelining POOMA diffusion into an HPC++ PSTL
//! gradient.
//!
//! ```text
//! cargo run --release --example pipeline [PROCESSORS]
//! ```
//!
//! The diffusion unit (a POOMA application on SGI_PC) runs a 128x128
//! 9-point-stencil simulation for 100 time-steps, pipelining every
//! completed step to its visualizer and every 5th step's field to the
//! gradient unit (an HPC++ PSTL application on the SP/2), which pipelines
//! its magnitude gradient to a visualizer on the Indy. All component
//! boundaries go through the compiler's pragma-mapped stubs
//! (`show_pooma_nb`, `gradient_pooma_nb`).

use pardis::core::Orb;
use pardis::netsim::{Network, TimeScale};
use pardis_apps::pipeline::{
    run_diffusion, spawn_gradient_server, spawn_visualizer, PipelineConfig,
};

fn main() {
    let p: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    let cfg = PipelineConfig { threads: p, ..Default::default() };
    println!(
        "pipeline: {}x{} grid, {} steps, gradient every {}th step, {p} matched processors",
        cfg.nx, cfg.ny, cfg.steps, cfg.gradient_every
    );

    // The paper's figure-5 testbed (Ethernet), delays at 1/20 scale.
    let net = Network::paper_ethernet_testbed(TimeScale::new(0.05));
    let pc = net.host_by_name("SGI_PC").unwrap();
    let sp2 = net.host_by_name("SP2").unwrap();
    let indy = net.host_by_name("INDY").unwrap();
    let orb = Orb::new(net);

    let (vis_d, stats_d) = spawn_visualizer(&orb, pc, "vis_diffusion");
    let (vis_g, stats_g) = spawn_visualizer(&orb, indy, "vis_gradient");
    let grad = spawn_gradient_server(&orb, sp2, "fops", p, Some("vis_gradient"), cfg.nx, cfg.ny);

    // Overall metaapplication, from the diffusion client's perspective.
    let (t_overall, checksum) =
        run_diffusion(&orb, pc, "vis_diffusion", Some("fops"), &cfg).expect("pipeline run");
    println!("  overall          : {t_overall:7.3} s   (field checksum {checksum:.6})");
    println!(
        "  frames shown     : diffusion visualizer {}, gradient visualizer {}",
        stats_d.lock().frames,
        stats_g.lock().frames
    );

    // The diffusion component alone (no gradient requests).
    let (t_diffusion, _) = run_diffusion(&orb, pc, "vis_diffusion", None, &cfg).expect("diffusion");
    println!("  diffusion alone  : {t_diffusion:7.3} s");
    println!(
        "  pipelining the gradient cost {:+.1}% over diffusion alone",
        (t_overall / t_diffusion - 1.0) * 100.0
    );

    grad.shutdown();
    vis_d.shutdown();
    vis_g.shutdown();
}
