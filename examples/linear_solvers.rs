//! §4.1 / figure 2 — concurrent execution of data-parallel components.
//!
//! ```text
//! cargo run --release --example linear_solvers [N]
//! ```
//!
//! The same linear system is solved by a direct method (HOST_1, 4 computing
//! threads) and an iterative method (HOST_2, the bigger machine); the
//! returned solutions are compared. The client program below mirrors the
//! paper's listing: `_spmd_bind` both solvers, non-blocking `solve_nb` on
//! the remote iterative solver, blocking `solve` on the local direct one,
//! then read the future. Run in distributed-servers and same-server mode
//! and compare the totals.

use pardis::core::{ClientGroup, DSequence, Distribution, Orb};
use pardis::generated::solvers::{DirectProxy, IterativeProxy};
use pardis::netsim::{Network, TimeScale};
use pardis::rts::{MpiRts, Rts, World};
use pardis_apps::solvers::{
    compute_difference, gen_system, spawn_combined_server, spawn_direct_server,
    spawn_iterative_server,
};
use std::sync::Arc;
use std::time::Instant;

const CLIENT_THREADS: usize = 2;

fn run_client(orb: &Orb, host: pardis::netsim::HostId, a: &[Vec<f64>], b: &[f64]) -> (f64, f64) {
    let client = ClientGroup::create(orb, host, CLIENT_THREADS);
    let out = World::run(CLIENT_THREADS, |rank| {
        let t = rank.rank();
        let rts: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
        let ct = client.attach(t, Some(rts.clone()));

        let d_solver = DirectProxy::spmd_bind(&ct, "direct_solver").expect("bind direct");
        let i_solver = IterativeProxy::spmd_bind(&ct, "itrt_solver").expect("bind iterative");

        let a_ds = DSequence::distribute(a, Distribution::Block, CLIENT_THREADS, t);
        let b_ds = DSequence::distribute(b, Distribution::Block, CLIENT_THREADS, t);

        let start = Instant::now();
        let tolerance = 0.000_001;
        // Non-blocking request to the (remote) iterative solver...
        let x1 =
            i_solver.solve_nb(&tolerance, &a_ds, &b_ds, Distribution::Block).expect("solve_nb");
        // ...own computation proceeds: blocking solve on the direct solver.
        let (x2_real,) = d_solver.solve(&a_ds, &b_ds, Distribution::Block).expect("solve");
        // Reading the future blocks until the result is delivered.
        let x1_real = x1.x.get().expect("future");
        let elapsed = start.elapsed().as_secs_f64();
        let difference = compute_difference(&x1_real, &x2_real, Some(rts.as_ref()));
        (elapsed, difference)
    });
    let elapsed = out.iter().map(|(e, _)| *e).fold(0.0, f64::max);
    (elapsed, out[0].1)
}

fn main() {
    let n: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    // The paper's testbed: HOST_1 (4-node) and HOST_2 (10-node) over a
    // dedicated ATM link; delays injected at 1/50 scale for a quick demo.
    let net = Network::paper_atm_testbed(TimeScale::new(0.02));
    let h1 = net.host_by_name("HOST_1").unwrap();
    let h2 = net.host_by_name("HOST_2").unwrap();
    let (a, b) = gen_system(n, 42);

    // Distributed-servers mode: direct on HOST_1, iterative on HOST_2.
    let orb = Orb::new(net.clone());
    let direct = spawn_direct_server(&orb, h1, "direct_solver", 4);
    let iterative = spawn_iterative_server(&orb, h2, "itrt_solver", 8);
    let (t_diff, delta) = run_client(&orb, h1, &a, &b);
    println!("N = {n}");
    println!("  different servers : {t_diff:8.3} s   (methods agree to {delta:.2e})");
    direct.shutdown();
    iterative.shutdown();

    // Same-server mode: both objects on one HOST_1 server — "switching
    // requires only a change of the host name" (§4.1); here it is one
    // launcher call.
    let orb = Orb::new(net);
    let combined = spawn_combined_server(&orb, h1, "direct_solver", "itrt_solver", 4);
    let (t_same, delta) = run_client(&orb, h1, &a, &b);
    println!("  same server       : {t_same:8.3} s   (methods agree to {delta:.2e})");
    combined.shutdown();

    println!(
        "  distributing the metaapplication {} the total by {:.1}%",
        if t_diff < t_same { "cut" } else { "changed" },
        (1.0 - t_diff / t_same) * 100.0
    );
}
