//! §4.2 / figure 4 — parallel interaction: SPMD and single objects on one
//! parallel server.
//!
//! ```text
//! cargo run --release --example dna_search [PROCESSORS]
//! ```
//!
//! A parallel server hosts the SPMD `dna_db` object plus five single
//! `list_server` objects (exact matches and the four edit-distance
//! derivative classes). The client launches a non-blocking `search`, then
//! keeps querying the list servers while the search runs — comparing the
//! centralized placement (all lists on thread 0) against the distributed
//! one.

use pardis::core::{ClientGroup, Orb};
use pardis::netsim::{Network, TimeScale};
use pardis_apps::dna::{run_fig4_client, spawn_dna_server, DnaServerConfig, Placement, LIST_NAMES};

fn main() {
    let p: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(4);
    println!("DNA database search on a {p}-thread parallel server");

    for placement in [Placement::Centralized, Placement::Distributed] {
        let net = Network::paper_atm_testbed(TimeScale::off());
        let h1 = net.host_by_name("HOST_1").unwrap();
        let orb = Orb::new(net);

        let cfg = DnaServerConfig {
            nthreads: p,
            db_size: 3_000,
            len_range: (40, 80),
            seed: 42,
            placement,
            chunk: 16,
            ..Default::default()
        };
        let server = spawn_dna_server(&orb, h1, cfg);

        let client = ClientGroup::create(&orb, h1, 1).attach(0, None);
        let (elapsed, queries, hits) =
            run_fig4_client(&client, "ACGTA", &["GAT", "TTA", "CGC", "AAA"]).expect("client");
        println!(
            "  {placement:?}: search + {queries} list queries in {elapsed:.3} s ({hits} hits)"
        );

        // Show what the search produced.
        let sizes: Vec<String> = {
            use pardis::generated::dna::ListServerProxy;
            LIST_NAMES
                .iter()
                .map(|n| {
                    let proxy = ListServerProxy::bind(&client, n).expect("bind list");
                    let (all,) = proxy.match_(&String::new()).expect("match");
                    format!("{n}:{}", all.len())
                })
                .collect()
        };
        println!("    list sizes: {}", sizes.join("  "));
        server.shutdown();
    }
}
