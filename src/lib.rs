//! # PARDIS — a CORBA-based architecture for application-level parallel
//! # distributed computation, reproduced in Rust
//!
//! This crate is the facade of a full reproduction of *PARDIS* (Keahey &
//! Gannon, SC'97): a CORBA-style distributed-object system extended with
//! **SPMD objects** (objects implemented by all computing threads of a
//! data-parallel program), **distributed sequences** as argument types,
//! **non-blocking invocations with futures**, and **IDL pragma mappings**
//! onto the native containers of parallel packages (POOMA fields, HPC++
//! PSTL distributed vectors).
//!
//! ## Crate map
//!
//! | re-export | crate | contents |
//! |---|---|---|
//! | [`core`] | `pardis-core` | the ORB: objects, POA, binding, futures, distributed sequences, repositories |
//! | [`idl`] | `pardis-idl` | extended-IDL lexer/parser/semantic analysis |
//! | [`codegen`] | `pardis-codegen` | Rust stub/skeleton generation, `pardis-idlc` |
//! | [`cdr`] | `pardis-cdr` | CDR marshaling, TypeCode, Any |
//! | [`rts`] | `pardis-rts` | the run-time-system substrate (MPI-like world, Tulip one-sided) |
//! | [`netsim`] | `pardis-netsim` | the simulated testbed (hosts, ATM/Ethernet links) |
//! | [`obs`] | `pardis-obs` | tracing + metrics: per-thread event rings, Chrome-trace export |
//! | [`registry`] | `pardis-registry` | replicated naming/registry: TTL heartbeat liveness, object groups, binding policies, client-side failover |
//! | [`check`] | `pardis-check` | SPMD protocol analyzer: tag discipline, collective matching, deadlock detection |
//! | [`audit`] | `pardis-audit` | concurrency auditor: lock-order cycles, happens-before races, wire-call/hold/re-entrancy hazards (`PARDIS_AUDIT=1`) |
//! | [`pooma`] | `pooma-rs` | POOMA-like fields, guard cells, 9-point stencils |
//! | [`pstl`] | `pstl-rs` | HPC++-PSTL-like distributed vectors and algorithms |
//! | (dev) | `pardis-apps` | the paper's evaluation workloads (solvers, DNA search, pipeline) |
//! | [`generated`] | — | stubs compiled from `idl/*.idl` by `build.rs` at build time |
//!
//! ## Quickstart
//!
//! See `examples/quickstart.rs`; the one-paragraph version:
//!
//! 1. build a [`netsim::Network`] (or [`core::Orb::single_host`]),
//! 2. start a server: [`core::ServerGroup::create`], per computing thread
//!    [`core::ServerGroup::attach`] → activate servants → `impl_is_ready`,
//! 3. start a client: [`core::ClientGroup::create`] → `attach` → generated
//!    proxy `spmd_bind`/`bind` → invoke (blocking, `_nb` with futures, or
//!    `_single`).

pub use pardis_audit as audit;
pub use pardis_cdr as cdr;
pub use pardis_check as check;
pub use pardis_codegen as codegen;
pub use pardis_core as core;
pub use pardis_idl as idl;
pub use pardis_netsim as netsim;
pub use pardis_obs as obs;
pub use pardis_registry as registry;
pub use pardis_rts as rts;
pub use pooma_rs as pooma;
pub use pstl_rs as pstl;

pub mod ifr;

/// Stubs, skeletons and data types generated at build time from the IDL
/// files under `idl/` (the paper's §4 interfaces, verbatim).
pub mod generated {
    /// From `idl/solvers.idl` — figure 2's `direct` and `iterative` solver
    /// interfaces.
    #[allow(clippy::all, dead_code, unused_imports, unused_variables, unused_mut)]
    pub mod solvers {
        include!(concat!(env!("OUT_DIR"), "/solvers_gen.rs"));
    }
    /// From `idl/dna.idl` — figure 4's `dna_db` and `list_server`
    /// interfaces.
    #[allow(clippy::all, dead_code, unused_imports, unused_variables, unused_mut)]
    pub mod dna {
        include!(concat!(env!("OUT_DIR"), "/dna_gen.rs"));
    }
    /// From `idl/pipeline.idl` — figure 5's `visualizer` and
    /// `field_operations` interfaces, compiled with `-pooma -hpcxx`.
    #[allow(clippy::all, dead_code, unused_imports, unused_variables, unused_mut)]
    pub mod pipeline {
        include!(concat!(env!("OUT_DIR"), "/pipeline_gen.rs"));
    }
    /// From `idl/bank.idl` — attributes and typed exceptions (not from the
    /// paper; exercises the compiler's full CORBA surface).
    #[allow(clippy::all, dead_code, unused_imports, unused_variables, unused_mut)]
    pub mod bank {
        include!(concat!(env!("OUT_DIR"), "/bank_gen.rs"));
    }
}

/// Everything a typical metaapplication needs, in one import.
pub mod prelude {
    pub use pardis_core::{
        ActivationMode, ClientGroup, ClientThread, DSeqFuture, DSequence, DistPolicy, Distribution,
        ObjectKind, ObjectRef, Orb, OrbError, OrbResult, PFuture, Poa, Proxy, Servant, ServantCtx,
        ServerGroup, ServerReply, ServerRequest, TransferStrategy,
    };
    pub use pardis_netsim::{Host, HostId, Link, LinkPreset, Network, TimeScale};
    pub use pardis_rts::{MpiRts, Rank, ReduceOp, Rts, World};
}
