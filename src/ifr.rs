//! Loading compiled IDL models into the ORB's Interface Repository.
//!
//! The IDL front end ([`pardis_idl`]) produces a resolved [`Model`]; this
//! module translates it into runtime [`TypeCode`]s and [`InterfaceDef`]s so
//! clients without compiled stubs can introspect interfaces and drive the
//! dynamic invocation interface (see `examples/dynamic_client.rs`).

use pardis_cdr::TypeCode;
use pardis_core::{InterfaceDef, OpSig, Orb, ParamMode, ParamSig};
use pardis_idl::model::{Model, NamedType, RDir, RType};
use std::sync::Arc;

/// Translate a resolved IDL type into its runtime [`TypeCode`].
pub fn type_code(model: &Model, ty: &RType) -> TypeCode {
    match ty {
        RType::Void => TypeCode::Void,
        RType::Boolean => TypeCode::Boolean,
        RType::Octet => TypeCode::Octet,
        RType::Char => TypeCode::Char,
        RType::Short => TypeCode::Short,
        RType::UShort => TypeCode::UShort,
        RType::Long => TypeCode::Long,
        RType::ULong => TypeCode::ULong,
        RType::LongLong => TypeCode::LongLong,
        RType::ULongLong => TypeCode::ULongLong,
        RType::Float => TypeCode::Float,
        RType::Double => TypeCode::Double,
        RType::String => TypeCode::String,
        RType::Sequence { elem, bound } => TypeCode::Sequence {
            elem: Arc::new(type_code(model, elem)),
            bound: bound.map(|b| b as u32),
        },
        RType::DSequence { elem, bound, .. } => TypeCode::DSequence {
            elem: Arc::new(type_code(model, elem)),
            bound: bound.map(|b| b as u32),
        },
        RType::Array { elem, len } => {
            TypeCode::Sequence { elem: Arc::new(type_code(model, elem)), bound: Some(*len as u32) }
        }
        RType::StructRef(key) => {
            for t in &model.types {
                if let NamedType::Struct { name, fields, .. } = t {
                    if t.key() == *key {
                        return TypeCode::Struct {
                            name: name.clone(),
                            fields: Arc::new(
                                fields
                                    .iter()
                                    .map(|(fname, fty)| (fname.clone(), type_code(model, fty)))
                                    .collect(),
                            ),
                        };
                    }
                }
            }
            unreachable!("sema resolved struct {key:?}")
        }
        RType::EnumRef(key) => {
            for t in &model.types {
                if let NamedType::Enum { name, variants, .. } = t {
                    if t.key() == *key {
                        return TypeCode::Enum {
                            name: name.clone(),
                            variants: Arc::new(variants.clone()),
                        };
                    }
                }
            }
            unreachable!("sema resolved enum {key:?}")
        }
        RType::InterfaceRef(key) => TypeCode::ObjRef { interface: key.clone() },
    }
}

/// Register every interface of a compiled model with the ORB's Interface
/// Repository.
pub fn load_model(orb: &Orb, model: &Model) {
    for iface in &model.interfaces {
        let ops = iface
            .ops
            .iter()
            .map(|op| OpSig {
                name: op.name.clone(),
                oneway: op.oneway,
                ret: type_code(model, &op.ret),
                params: op
                    .params
                    .iter()
                    .map(|p| ParamSig {
                        name: p.name.clone(),
                        mode: match p.dir {
                            RDir::In => ParamMode::In,
                            RDir::Out => ParamMode::Out,
                            RDir::InOut => ParamMode::InOut,
                        },
                        tc: type_code(model, &p.ty),
                    })
                    .collect(),
                raises: op.raises.clone(),
            })
            .collect();
        orb.interfaces().register(InterfaceDef {
            id: iface.key(),
            bases: iface.bases.clone(),
            ops,
        });
    }
}

/// Convenience: compile IDL source text and load it in one step.
pub fn load_idl(orb: &Orb, source: &str) -> Result<(), Vec<pardis_idl::Diagnostic>> {
    let model = pardis_idl::compile(source)?;
    load_model(orb, &model);
    Ok(())
}
