//! pooma-rs — a POOMA-like parallel field substrate.
//!
//! POOMA (Atlas et al., SC'95) gave scientific applications data-parallel
//! *fields* over decomposed meshes. PARDIS's §4.3 pipelines a POOMA
//! diffusion application into an HPC++ gradient application by mapping the
//! IDL `dsequence` onto POOMA's `field` with a `#pragma POOMA:field`
//! directive.
//!
//! This crate rebuilds the minimum POOMA surface that experiment needs:
//!
//! * [`Layout2D`] — a 1-D (row-block) decomposition of an `nx × ny` mesh
//!   over the computing threads of an SPMD program;
//! * [`Field2D`] — a distributed 2-D field with guard (ghost) cells,
//!   guard-cell exchange over the RTS, and 9-point stencil application;
//! * [`diffusion_step`](Field2D::stencil9) — the simplified 2-D diffusion
//!   of §4.3;
//! * [`PoomaComm`] — POOMA's communication abstraction implementing the
//!   PARDIS [`Rts`](pardis_rts::Rts) interface (the paper's third RTS port);
//! * conversions between [`Field2D`] and the PARDIS
//!   [`DSequence`](pardis_core::DSequence) — the runtime half of the
//!   `#pragma POOMA:field` mapping.

mod comm;
mod field;
mod layout;

pub use comm::PoomaComm;
pub use field::Field2D;
pub use layout::Layout2D;

#[cfg(test)]
mod tests;
