//! POOMA's communication abstraction, implementing the PARDIS RTS
//! interface.
//!
//! The original PARDIS implemented its run-time-system interface three
//! times: over MPI, over Tulip, and over "the communication abstraction of
//! the POOMA library", which let the ORB interact with object-oriented
//! packages built on those systems. `PoomaComm` is that third port: POOMA
//! applications hand the ORB their own communication context.

use bytes::Bytes;
use pardis_rts::{Msg, Rank, Rts};
use std::time::Duration;

/// POOMA's communication context: in the original, a wrapper over the
/// library's virtual-node messaging; here, over the same world of computing
/// threads the fields are decomposed across.
pub struct PoomaComm {
    rank: Rank,
}

impl PoomaComm {
    /// Wrap a computing thread's endpoint.
    pub fn new(rank: Rank) -> Self {
        PoomaComm { rank }
    }

    /// The underlying rank, for application-level traffic (guard-cell
    /// exchange etc.).
    pub fn raw(&self) -> &Rank {
        &self.rank
    }
}

impl Rts for PoomaComm {
    fn rank(&self) -> usize {
        self.rank.rank()
    }
    fn size(&self) -> usize {
        self.rank.size()
    }
    fn send(&self, to: usize, tag: u64, data: Bytes) {
        self.rank.send(to, tag, data);
    }
    fn recv(&self, from: Option<usize>, tag: u64) -> Msg {
        self.rank.recv(from, tag)
    }
    fn recv_timeout(&self, from: Option<usize>, tag: u64, timeout: Duration) -> Option<Msg> {
        self.rank.recv_timeout(from, tag, timeout)
    }
    fn try_recv(&self, from: Option<usize>, tag: u64) -> Option<Msg> {
        self.rank.try_recv(from, tag)
    }
    fn barrier(&self) {
        self.rank.barrier();
    }
    fn broadcast(&self, root: usize, data: Option<Bytes>) -> Bytes {
        self.rank.broadcast(root, data)
    }
    fn gather(&self, root: usize, part: Bytes) -> Option<Vec<Bytes>> {
        self.rank.gather(root, part)
    }
    fn scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        self.rank.scatter(root, parts)
    }
    fn all_gather(&self, part: Bytes) -> Vec<Bytes> {
        self.rank.all_gather(part)
    }
    fn windows(&self) -> Option<&pardis_rts::Windows> {
        Some(self.rank.windows())
    }
}
