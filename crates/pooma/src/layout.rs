//! Mesh decomposition.

/// A 1-D (row-block) decomposition of an `nx × ny` mesh over `nthreads`
/// computing threads: thread `t` owns a contiguous band of rows.
///
/// Row-major convention: row `j` (0..ny), column `i` (0..nx); the flattened
/// index of `(i, j)` is `j * nx + i` — matching §4.3's "two dimensional
/// array represented as a vector in row-major order".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout2D {
    /// Columns (fast axis).
    pub nx: usize,
    /// Rows (slow axis).
    pub ny: usize,
    /// Computing threads.
    pub nthreads: usize,
}

impl Layout2D {
    /// Create a layout.
    ///
    /// # Panics
    /// Panics on a degenerate mesh or zero threads.
    pub fn new(nx: usize, ny: usize, nthreads: usize) -> Self {
        assert!(nx > 0 && ny > 0, "mesh must be non-degenerate");
        assert!(nthreads > 0, "layout over zero threads");
        assert!(nthreads <= ny, "cannot give {nthreads} threads at least one row of {ny}");
        Layout2D { nx, ny, nthreads }
    }

    /// Number of rows thread `t` owns.
    pub fn local_rows(&self, t: usize) -> usize {
        assert!(t < self.nthreads, "thread {t} out of range");
        let base = self.ny / self.nthreads;
        let extra = self.ny % self.nthreads;
        base + usize::from(t < extra)
    }

    /// First global row of thread `t`'s band.
    pub fn first_row(&self, t: usize) -> usize {
        assert!(t < self.nthreads, "thread {t} out of range");
        let base = self.ny / self.nthreads;
        let extra = self.ny % self.nthreads;
        if t < extra {
            t * (base + 1)
        } else {
            extra * (base + 1) + (t - extra) * base
        }
    }

    /// Thread owning global row `j`.
    pub fn row_owner(&self, j: usize) -> usize {
        assert!(j < self.ny, "row {j} out of range");
        for t in 0..self.nthreads {
            let first = self.first_row(t);
            if j >= first && j < first + self.local_rows(t) {
                return t;
            }
        }
        unreachable!("rows are fully covered")
    }

    /// Element counts per thread for the row-major flattening — the
    /// irregular PARDIS distribution template this layout corresponds to.
    pub fn element_counts(&self) -> Vec<u64> {
        (0..self.nthreads).map(|t| (self.local_rows(t) * self.nx) as u64).collect()
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// True for an empty mesh (cannot happen after construction, but
    /// completes the `len`/`is_empty` pair).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}
