use crate::*;
use pardis_rts::{MpiRts, ReduceOp, Rts, World};

#[test]
fn layout_splits_rows_evenly() {
    let l = Layout2D::new(8, 10, 3);
    assert_eq!(l.local_rows(0), 4);
    assert_eq!(l.local_rows(1), 3);
    assert_eq!(l.local_rows(2), 3);
    assert_eq!(l.first_row(0), 0);
    assert_eq!(l.first_row(1), 4);
    assert_eq!(l.first_row(2), 7);
    assert_eq!(l.row_owner(0), 0);
    assert_eq!(l.row_owner(6), 1);
    assert_eq!(l.row_owner(9), 2);
    assert_eq!(l.element_counts(), vec![32, 24, 24]);
    assert_eq!(l.len(), 80);
}

#[test]
#[should_panic(expected = "at least one row")]
fn layout_rejects_more_threads_than_rows() {
    let _ = Layout2D::new(4, 2, 3);
}

#[test]
fn field_from_fn_places_global_coordinates() {
    let l = Layout2D::new(4, 6, 2);
    let f = Field2D::from_fn(l, 1, |i, j| (10 * j + i) as f64);
    assert_eq!(f.first_row(), 3);
    assert_eq!(f.at(2, 0), 32.0); // global (2, 3)
    assert_eq!(f.at(3, 2), 53.0); // global (3, 5)
}

#[test]
fn interior_excludes_guards() {
    let l = Layout2D::new(3, 4, 2);
    let f = Field2D::from_fn(l, 0, |i, j| (j * 3 + i) as f64);
    assert_eq!(f.interior(), (0..6).map(|x| x as f64).collect::<Vec<_>>());
}

#[test]
fn guard_exchange_moves_boundary_rows() {
    let l = Layout2D::new(2, 4, 2);
    let out = World::run(2, |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        let mut f = Field2D::from_fn(l.clone(), t, |i, j| (j * 10 + i) as f64);
        f.exchange_guards(&rts);
        f
    });
    // Thread 0's bottom guard should hold thread 1's first row (row 2).
    let f0 = &out[0];
    let _nx = 2;
    let rows0 = f0.local_rows();
    // Peek guards through the stencil by checking a diffusion step uses
    // them: instead, verify via interior of the neighbour.
    let _ = rows0;
    let f1 = &out[1];
    assert_eq!(f1.at(0, 0), 20.0);
    // Direct check on guard content through a stencil identity: alpha = 0
    // keeps the field unchanged, so instead expose behaviour via local_sum.
    assert_eq!(f0.local_sum(), (0.0 + 1.0) + (10.0 + 11.0));
}

#[test]
fn stencil_preserves_total_mass_in_interior_regime() {
    // With Dirichlet zero boundaries and an interior bump, the 9-point
    // kernel's weights sum to 1, so a step conserves the sum until mass
    // reaches the boundary.
    let n = 16;
    let total_before: f64 = 1.0;
    let sums = World::run(4, move |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        let l = Layout2D::new(n, n, 4);
        let mut f = Field2D::from_fn(l, t, |i, j| if i == n / 2 && j == n / 2 { 1.0 } else { 0.0 });
        for _ in 0..2 {
            f.stencil9(0.05, &rts);
        }
        rts.all_reduce_f64(f.local_sum(), ReduceOp::Sum)
    });
    for s in sums {
        assert!((s - total_before).abs() < 1e-9, "mass {s} != {total_before}");
    }
}

#[test]
fn stencil_matches_sequential_reference() {
    let n = 12;
    let alpha = 0.08;
    let init = |i: usize, j: usize| ((i * 7 + j * 3) % 5) as f64;

    // Sequential reference on one thread.
    let seq = World::run(1, move |rank| {
        let rts = MpiRts::new(rank);
        let mut f = Field2D::from_fn(Layout2D::new(n, n, 1), 0, init);
        for _ in 0..3 {
            f.stencil9(alpha, &rts);
        }
        f.interior()
    });

    // Parallel on 3 threads, gathered.
    let par = World::run(3, move |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        let mut f = Field2D::from_fn(Layout2D::new(n, n, 3), t, init);
        for _ in 0..3 {
            f.stencil9(alpha, &rts);
        }
        let ds = f.to_dseq();
        ds.gather(&rts)
    });

    for got in par {
        for (a, b) in got.iter().zip(seq[0].iter()) {
            assert!((a - b).abs() < 1e-12, "parallel {a} vs sequential {b}");
        }
    }
}

#[test]
fn stencil5_matches_sequential_and_diff_helper() {
    let n = 10;
    let init = |i: usize, j: usize| ((i * 3 + j) % 4) as f64;
    let seq = World::run(1, move |rank| {
        let rts = MpiRts::new(rank);
        let mut f = Field2D::from_fn(Layout2D::new(n, n, 1), 0, init);
        f.stencil5(0.1, &rts);
        f.interior()
    });
    let par = World::run(2, move |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        let mut f = Field2D::from_fn(Layout2D::new(n, n, 2), t, init);
        let before = f.clone();
        f.stencil5(0.1, &rts);
        assert!(f.local_max_diff(&before) > 0.0, "stencil changed the field");
        assert_eq!(f.local_max_diff(&f.clone()), 0.0);
        f.to_dseq().gather(&rts)
    });
    for got in par {
        for (a, b) in got.iter().zip(seq[0].iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }
}

#[test]
fn dseq_mapping_roundtrip() {
    let l = Layout2D::new(5, 7, 2);
    World::run(2, {
        let l = l.clone();
        move |rank| {
            let t = rank.rank();
            let f = Field2D::from_fn(l.clone(), t, |i, j| (i + j) as f64);
            let ds = f.to_dseq();
            assert_eq!(ds.len(), 35);
            let back = Field2D::from_dseq(l.clone(), t, &ds);
            assert_eq!(back.interior(), f.interior());
        }
    });
}

#[test]
#[should_panic(expected = "not in the field's native distribution")]
fn from_dseq_rejects_wrong_template() {
    let l = Layout2D::new(4, 4, 1);
    let ds = pardis_core::DSequence::from_local(
        vec![0.0; 16],
        16,
        pardis_core::Distribution::Block,
        1,
        0,
    );
    let _ = Field2D::from_dseq(l, 0, &ds);
}

#[test]
fn pooma_comm_implements_rts() {
    let out = World::run(3, |rank| {
        let comm = PoomaComm::new(rank);
        comm.barrier();
        comm.all_reduce_f64(comm.rank() as f64, ReduceOp::Sum)
    });
    assert_eq!(out, vec![3.0, 3.0, 3.0]);
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Parallel stencil equals sequential stencil for any mesh/threads.
        #[test]
        fn parallel_stencil_equivalence(
            n in 6usize..20,
            threads in 1usize..5,
            steps in 1usize..4,
        ) {
            prop_assume!(threads <= n);
            let alpha = 0.04;
            let init = move |i: usize, j: usize| ((i * 13 + j * 5) % 7) as f64;
            let seq = World::run(1, move |rank| {
                let rts = MpiRts::new(rank);
                let mut f = Field2D::from_fn(Layout2D::new(n, n, 1), 0, init);
                for _ in 0..steps {
                    f.stencil9(alpha, &rts);
                }
                f.interior()
            });
            let par = World::run(threads, move |rank| {
                let t = rank.rank();
                let rts = MpiRts::new(rank);
                let mut f = Field2D::from_fn(Layout2D::new(n, n, threads), t, init);
                for _ in 0..steps {
                    f.stencil9(alpha, &rts);
                }
                f.to_dseq().gather(&rts)
            });
            for got in par {
                for (a, b) in got.iter().zip(seq[0].iter()) {
                    prop_assert!((a - b).abs() < 1e-10);
                }
            }
        }
    }
}
