//! Distributed 2-D fields with guard cells.

use crate::Layout2D;
use bytes::Bytes;
use pardis_core::{DSequence, Distribution};
use pardis_rts::{tags, Rts, WindowId, Windows};

/// Tag used for guard-cell exchange (user band — this is application
/// communication, not ORB traffic).
const GUARD_TAG: u64 = 0x6009;

/// Notify tag for one-sided halo puts (user band, distinct from the
/// two-sided guard tag).
const HALO_TAG: u64 = 0x600a;

/// One computing thread's band of a distributed 2-D field, padded with one
/// guard row above and below.
///
/// Storage is row-major with `local_rows + 2` rows of `nx` columns; row 0
/// and row `local_rows + 1` are guards. Boundary conditions are Dirichlet:
/// the global top and bottom guards stay at their initialised value.
#[derive(Debug, Clone)]
pub struct Field2D {
    layout: Layout2D,
    thread: usize,
    /// Includes guard rows.
    data: Vec<f64>,
}

impl Field2D {
    /// A zero field band for `thread` under `layout`.
    pub fn zeros(layout: Layout2D, thread: usize) -> Self {
        assert!(thread < layout.nthreads, "thread {thread} out of range");
        let rows = layout.local_rows(thread) + 2;
        Field2D { data: vec![0.0; rows * layout.nx], layout, thread }
    }

    /// Initialise from a function of global coordinates `(i, j)`.
    pub fn from_fn(layout: Layout2D, thread: usize, f: impl Fn(usize, usize) -> f64) -> Self {
        let mut field = Field2D::zeros(layout, thread);
        let first = field.layout.first_row(thread);
        for lj in 0..field.local_rows() {
            for i in 0..field.layout.nx {
                *field.at_mut(i, lj) = f(i, first + lj);
            }
        }
        field
    }

    /// The mesh decomposition.
    pub fn layout(&self) -> &Layout2D {
        &self.layout
    }

    /// This band's thread.
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// Rows owned by this thread (guards excluded).
    pub fn local_rows(&self) -> usize {
        self.layout.local_rows(self.thread)
    }

    /// First global row of this band.
    pub fn first_row(&self) -> usize {
        self.layout.first_row(self.thread)
    }

    fn idx(&self, i: usize, local_j_with_guard: usize) -> usize {
        local_j_with_guard * self.layout.nx + i
    }

    /// Read element at column `i`, local row `lj` (0-based, guards
    /// excluded).
    pub fn at(&self, i: usize, lj: usize) -> f64 {
        debug_assert!(i < self.layout.nx && lj < self.local_rows());
        self.data[self.idx(i, lj + 1)]
    }

    /// Mutable element access (guards excluded).
    pub fn at_mut(&mut self, i: usize, lj: usize) -> &mut f64 {
        debug_assert!(i < self.layout.nx && lj < self.local_rows());
        let idx = self.idx(i, lj + 1);
        &mut self.data[idx]
    }

    /// The interior (non-guard) values in row-major order.
    pub fn interior(&self) -> Vec<f64> {
        let nx = self.layout.nx;
        self.data[nx..nx * (self.local_rows() + 1)].to_vec()
    }

    /// Exchange guard rows with the neighbouring threads over the RTS.
    /// Collective: every thread must call. Single-thread worlds are a
    /// no-op.
    ///
    /// When the RTS has one-sided windows and `PARDIS_ONESIDED` is enabled,
    /// each thread *puts* its boundary strips straight into its neighbours'
    /// exposed landing windows (notify-on-delivery replaces receive
    /// matching); otherwise the classic send/recv exchange runs.
    pub fn exchange_guards(&mut self, rts: &dyn Rts) {
        let n = self.layout.nthreads;
        debug_assert_eq!(rts.size(), n, "field layout does not match the RTS world");
        debug_assert_eq!(rts.rank(), self.thread, "exchange called from the wrong thread");
        if n == 1 {
            return;
        }
        if pardis_rts::one_sided_enabled() {
            if let Some(w) = rts.windows() {
                self.exchange_guards_one_sided(rts, w);
                return;
            }
        }
        let nx = self.layout.nx;
        let t = self.thread;
        let rows = self.local_rows();
        debug_assert!(tags::is_user(GUARD_TAG), "guard exchange must use a user tag");

        // Send my top interior row up, my bottom interior row down.
        if t > 0 {
            let top: Vec<u8> = row_bytes(&self.data[nx..2 * nx]);
            rts.send(t - 1, GUARD_TAG, Bytes::from(top));
        }
        if t + 1 < n {
            let bottom: Vec<u8> = row_bytes(&self.data[rows * nx..(rows + 1) * nx]);
            rts.send(t + 1, GUARD_TAG, Bytes::from(bottom));
        }
        // Receive the neighbours' boundary rows into my guards.
        if t > 0 {
            let msg = rts.recv(Some(t - 1), GUARD_TAG);
            write_row(&mut self.data[0..nx], &msg.data);
        }
        if t + 1 < n {
            let msg = rts.recv(Some(t + 1), GUARD_TAG);
            let start = (rows + 1) * nx;
            write_row(&mut self.data[start..start + nx], &msg.data);
        }
    }

    /// One-sided guard exchange: expose a two-row landing window (upper
    /// neighbour's strip lands in the first half, lower neighbour's in the
    /// second), put boundary strips into the neighbours' windows, then copy
    /// the landed halves into the guard rows. Only neighbour sides are
    /// touched — global top/bottom guards keep their Dirichlet values.
    fn exchange_guards_one_sided(&mut self, rts: &dyn Rts, w: &Windows) {
        let n = self.layout.nthreads;
        let nx = self.layout.nx;
        let t = self.thread;
        let rows = self.local_rows();
        let half = (nx * 8) as u64;
        debug_assert!(tags::is_user(HALO_TAG), "halo notify must use a user tag");

        let base = w.collective_window_base();
        let my_id = w
            .expose(base, vec![0u8; 2 * nx * 8])
            .expect("collective window bases never collide in-round");
        // Neighbours must see my window before they put into it.
        rts.barrier();

        if t > 0 {
            let top = row_bytes(&self.data[nx..2 * nx]);
            // My top interior row is my upper neighbour's *lower* halo.
            w.put_nb_notify(WindowId { owner: t - 1, base }, half, Bytes::from(top), HALO_TAG)
                .expect("neighbour window spans two rows");
        }
        if t + 1 < n {
            let bottom = row_bytes(&self.data[rows * nx..(rows + 1) * nx]);
            w.put_nb_notify(WindowId { owner: t + 1, base }, 0, Bytes::from(bottom), HALO_TAG)
                .expect("neighbour window spans two rows");
        }

        // One delivery notice per neighbour, then the strips are in place.
        let expected = usize::from(t > 0) + usize::from(t + 1 < n);
        for _ in 0..expected {
            w.wait_notify(HALO_TAG);
        }
        if t > 0 {
            let strip = w.read_local(my_id, 0, half).expect("own window");
            write_row(&mut self.data[0..nx], &strip);
        }
        if t + 1 < n {
            let strip = w.read_local(my_id, half, half).expect("own window");
            let start = (rows + 1) * nx;
            write_row(&mut self.data[start..start + nx], &strip);
        }

        // Drain my puts, rendezvous so every put everywhere has landed,
        // then withdraw the landing window.
        w.fence();
        rts.barrier();
        w.deregister(my_id).expect("window exposed above");
    }

    /// Apply one 9-point stencil step: the simplified diffusion of §4.3.
    ///
    /// `u'(i,j) = (1 - 8 alpha) u + alpha * sum(8 neighbours)`. Guard rows
    /// must be current ([`Field2D::exchange_guards`]); global boundary
    /// columns/rows are held fixed (Dirichlet).
    pub fn stencil9(&mut self, alpha: f64, rts: &dyn Rts) {
        self.exchange_guards(rts);
        let nx = self.layout.nx;
        let rows = self.local_rows();
        let first = self.first_row();
        let ny = self.layout.ny;
        let mut next = self.data.clone();
        for lj in 0..rows {
            let gj = first + lj; // global row
            if gj == 0 || gj == ny - 1 {
                continue; // global boundary rows fixed
            }
            let r = lj + 1; // row index including guard offset
            for i in 1..nx - 1 {
                let c = self.idx(i, r);
                let up = c - nx;
                let down = c + nx;
                let sum8 = self.data[up - 1]
                    + self.data[up]
                    + self.data[up + 1]
                    + self.data[c - 1]
                    + self.data[c + 1]
                    + self.data[down - 1]
                    + self.data[down]
                    + self.data[down + 1];
                next[c] = (1.0 - 8.0 * alpha) * self.data[c] + alpha * sum8;
            }
        }
        self.data = next;
    }

    /// Apply one 5-point stencil step (`u' = (1-4a)u + a*(N+S+E+W)`), the
    /// lighter diffusion kernel. Same guard/boundary conventions as
    /// [`Field2D::stencil9`]. Collective.
    pub fn stencil5(&mut self, alpha: f64, rts: &dyn Rts) {
        self.exchange_guards(rts);
        let nx = self.layout.nx;
        let rows = self.local_rows();
        let first = self.first_row();
        let ny = self.layout.ny;
        let mut next = self.data.clone();
        for lj in 0..rows {
            let gj = first + lj;
            if gj == 0 || gj == ny - 1 {
                continue;
            }
            let r = lj + 1;
            for i in 1..nx - 1 {
                let c = self.idx(i, r);
                let sum4 =
                    self.data[c - nx] + self.data[c + nx] + self.data[c - 1] + self.data[c + 1];
                next[c] = (1.0 - 4.0 * alpha) * self.data[c] + alpha * sum4;
            }
        }
        self.data = next;
    }

    /// Max-norm difference against another band of the same decomposition
    /// (no communication; reduce with
    /// [`Rts::all_reduce_f64`](pardis_rts::Rts::all_reduce_f64) for the
    /// global value).
    ///
    /// # Panics
    /// Panics if the bands differ in shape.
    pub fn local_max_diff(&self, other: &Field2D) -> f64 {
        assert_eq!(self.layout, other.layout, "fields differ in layout");
        assert_eq!(self.thread, other.thread, "fields differ in thread");
        let nx = self.layout.nx;
        let lo = nx;
        let hi = nx * (self.local_rows() + 1);
        self.data[lo..hi]
            .iter()
            .zip(other.data[lo..hi].iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Sum of interior values on this thread (use
    /// [`Rts::all_reduce_f64`](pardis_rts::Rts::all_reduce_f64) for the
    /// global sum).
    pub fn local_sum(&self) -> f64 {
        let nx = self.layout.nx;
        self.data[nx..nx * (self.local_rows() + 1)].iter().sum()
    }

    /// Convert to a PARDIS distributed sequence — the runtime half of the
    /// `#pragma POOMA:field` mapping. Row-major flattening; the distribution
    /// template is the irregular per-thread element count of the layout, so
    /// no data moves.
    pub fn to_dseq(&self) -> DSequence<f64> {
        DSequence::from_local(
            self.interior(),
            self.layout.len() as u64,
            Distribution::Irregular(self.layout.element_counts()),
            self.layout.nthreads,
            self.thread,
        )
    }

    /// Rebuild a field band from a distributed sequence produced by
    /// [`Field2D::to_dseq`] (or delivered by the ORB in the matching
    /// template).
    ///
    /// # Panics
    /// Panics if the sequence shape does not match the layout.
    pub fn from_dseq(layout: Layout2D, thread: usize, ds: &DSequence<f64>) -> Self {
        assert_eq!(ds.len() as usize, layout.len(), "sequence length != mesh size");
        assert_eq!(ds.nthreads(), layout.nthreads, "thread count mismatch");
        assert_eq!(
            ds.dist(),
            &Distribution::Irregular(layout.element_counts()),
            "sequence is not in the field's native distribution"
        );
        let mut field = Field2D::zeros(layout, thread);
        let nx = field.layout.nx;
        let local = ds.local();
        field.data[nx..nx + local.len()].copy_from_slice(local);
        field
    }
}

fn row_bytes(row: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 8);
    for v in row {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out
}

fn write_row(dst: &mut [f64], src: &[u8]) {
    debug_assert_eq!(dst.len() * 8, src.len(), "guard row size mismatch");
    for (i, chunk) in src.chunks_exact(8).enumerate() {
        dst[i] = f64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
    }
}
