use crate::{compile_idl, CodegenOptions};

const SOLVERS: &str = r#"
typedef sequence<double> row;
typedef dsequence<row> matrix;
typedef dsequence<double> vector;
interface direct {
    void solve(in matrix A, in vector B, out vector X);
};
interface iterative {
    void solve(in double tol, in matrix A, in vector B, out vector X);
};
"#;

const PIPELINE: &str = r#"
const long N = 128;
#pragma HPC++:vector
#pragma POOMA:field
typedef dsequence<double, N*N, BLOCK, BLOCK> field;
interface visualizer {
    void show(in field myfield);
};
interface field_operations {
    void gradient(in field myfield);
};
"#;

fn gen(src: &str) -> String {
    compile_idl(src, &CodegenOptions::default()).expect("compile")
}

#[test]
fn emits_proxies_skeletons_and_aliases() {
    let rust = gen(SOLVERS);
    for needle in [
        "pub type Matrix = ::pardis_core::DSequence<Vec<f64>>;",
        "pub type Row = Vec<f64>;",
        "pub struct DirectProxy",
        "pub fn spmd_bind(",
        "pub fn solve(&self,",
        "pub fn solve_nb(&self,",
        "pub fn solve_single(&self,",
        "pub trait DirectImpl: Send + Sync + 'static",
        "pub struct DirectSkel<T: DirectImpl>(pub T);",
        "impl<T: DirectImpl> ::pardis_core::Servant for DirectSkel<T>",
        "pub struct IterativeProxy",
        "fn interface(&self) -> &str",
        "\"direct\"",
    ] {
        assert!(rust.contains(needle), "missing {needle:?} in:\n{rust}");
    }
}

#[test]
fn wire_layout_indices_are_stable() {
    let rust = gen(SOLVERS);
    // iterative.solve: tol is scalar slot 0; A, B are dseq in 0, 1; X is
    // dseq out ordinal 0.
    assert!(rust.contains("req.scalar(0usize)"), "{rust}");
    assert!(rust.contains("req.dseq(0usize)"), "{rust}");
    assert!(rust.contains("req.dseq(1usize)"), "{rust}");
    assert!(rust.contains("reply.dseq::<f64>(0usize)?"), "{rust}");
}

#[test]
fn nonblocking_stub_returns_futures_struct() {
    let rust = gen(SOLVERS);
    assert!(rust.contains("pub struct DirectSolveFutures"), "{rust}");
    assert!(rust.contains("pub x: ::pardis_core::DSeqFuture<f64>"), "{rust}");
    assert!(rust.contains("pub handle: ::pardis_core::InvocationHandle"), "{rust}");
    assert!(rust.contains("pub fn resolved(&self) -> bool"), "{rust}");
}

#[test]
fn single_stub_uses_whole_sequences() {
    let rust = gen(SOLVERS);
    assert!(rust.contains("a: Vec<Vec<f64>>"), "{rust}");
    assert!(rust.contains(".dseq_in_full(a)"), "{rust}");
    assert!(rust.contains(".take_local()"), "{rust}");
}

#[test]
fn pragma_stubs_only_with_options() {
    let plain = gen(PIPELINE);
    assert!(!plain.contains("_pooma"), "no -pooma option given");
    assert!(!plain.contains("_hpcxx"), "no -hpcxx option given");

    let pooma =
        compile_idl(PIPELINE, &CodegenOptions { pooma: true, hpcxx: false }).expect("compile");
    assert!(pooma.contains("pub fn show_pooma(&self, myfield: &::pooma_rs::Field2D)"), "{pooma}");
    assert!(pooma.contains("myfield.to_dseq()"), "{pooma}");
    assert!(!pooma.contains("_hpcxx"));

    let both =
        compile_idl(PIPELINE, &CodegenOptions { pooma: true, hpcxx: true }).expect("compile");
    assert!(
        both.contains("pub fn gradient_hpcxx(&self, myfield: &::pstl_rs::DistVector<f64>)"),
        "{both}"
    );
}

#[test]
fn oneway_ops_have_no_reply_handling() {
    let rust = gen("interface fire { oneway void shoot(in long x); };");
    assert!(rust.contains("call.invoke_oneway()"), "{rust}");
    assert!(!rust.contains("shoot_nb"), "oneway ops get no futures stub:\n{rust}");
}

#[test]
fn enums_and_structs_get_codecs() {
    let rust = gen(r#"
        enum status { done, working };
        struct point { double x; double y; };
        interface q { status poll(in point p); };
        "#);
    for needle in [
        "pub enum Status {",
        "Done,",
        "impl ::pardis_cdr::CdrCodec for Status",
        "pub struct Point {",
        "pub x: f64,",
        "impl ::pardis_cdr::CdrCodec for Point",
        "InvalidEnumDiscriminant",
    ] {
        assert!(rust.contains(needle), "missing {needle:?} in:\n{rust}");
    }
}

#[test]
fn modules_nest_and_cross_reference() {
    let rust = gen(r#"
        module math {
            typedef dsequence<double> vec;
            interface adder { void add(in vec a, out vec c); };
        };
        module user {
            interface consumer { void eat(in math::vec v); };
        };
        "#);
    assert!(rust.contains("pub mod math {"), "{rust}");
    assert!(rust.contains("pub mod user {"), "{rust}");
    assert!(rust.contains("pub struct AdderProxy"), "{rust}");
}

#[test]
fn default_policy_reflects_idl_server_dists() {
    let rust = gen(r#"
        typedef dsequence<double, 1024, BLOCK, CONCENTRATED> v;
        interface s { void f(in v data); };
        "#);
    assert!(rust.contains("pub fn s_default_policy()"), "{rust}");
    assert!(
        rust.contains("policy.set(\"f\", 0u32, ::pardis_core::Distribution::Concentrated(0));"),
        "{rust}"
    );
}

#[test]
fn keyword_identifiers_are_escaped() {
    let rust = gen("interface list_server { void match(in string s, out sequence<string> l); };");
    assert!(rust.contains("pub fn match_("), "{rust}");
    assert!(rust.contains("\"match\""), "wire name keeps the IDL spelling: {rust}");
}

#[test]
fn inherited_ops_appear_in_derived_proxy() {
    let rust = gen(r#"
        interface base { void ping(); };
        interface derived : base { void pong(); };
        "#);
    // DerivedProxy must offer both ping and pong.
    let derived_start = rust.find("pub struct DerivedProxy").expect("derived proxy");
    let tail = &rust[derived_start..];
    assert!(tail.contains("pub fn ping("), "{tail}");
    assert!(tail.contains("pub fn pong("), "{tail}");
}

#[test]
fn inout_params_are_both_in_and_out() {
    let rust = gen("interface c { long bump(inout long counter); };");
    // counter is scalar in slot 0 and out slot 1 (ret is slot 0).
    assert!(rust.contains("req.scalar(0usize)"), "{rust}");
    assert!(rust.contains("reply.scalar::<i32>(1usize)?"), "{rust}");
    assert!(rust.contains("reply.scalar::<i32>(0usize)?"), "{rust}");
}

#[test]
fn arrays_map_to_rust_arrays() {
    let rust = gen(r#"
        typedef double triple[3];
        struct probe { double position[3]; };
        interface sensor { void report(in triple t, in probe p); };
        "#);
    assert!(rust.contains("pub type Triple = [f64; 3usize];"), "{rust}");
    assert!(rust.contains("pub position: [f64; 3usize],"), "{rust}");
}

#[test]
fn exceptions_generate_typed_errors() {
    let rust = gen(r#"
        exception overflow { long max; };
        interface counter { void bump(in long by) raises(overflow); };
        "#);
    for needle in [
        "pub struct Overflow {",
        "impl ::pardis_cdr::CdrCodec for Overflow",
        r#"pub const REPO_ID: &'static str = "overflow";"#,
        "pub fn from_error(e: &::pardis_core::OrbError) -> Option<Self>",
        "impl From<Overflow> for ::pardis_core::Raised",
        "impl ::std::error::Error for Overflow {}",
        "-> Result<(), ::pardis_core::Raised>;",
        "Err(raised) => return Ok(::pardis_core::ServerReply::raising(raised)),",
    ] {
        assert!(rust.contains(needle), "missing {needle:?} in:\n{rust}");
    }
    // Ops without raises keep the plain String error type.
    let plain = gen("interface p { void f(); };");
    assert!(plain.contains("-> Result<(), String>;"), "{plain}");
}

#[test]
fn attributes_generate_accessor_stubs() {
    let rust = gen(r#"
        interface thermostat {
            attribute double target;
            readonly attribute double current;
        };
        "#);
    assert!(rust.contains("pub fn get_target(&self)"), "{rust}");
    assert!(rust.contains("pub fn set_target(&self, value: &f64)"), "{rust}");
    assert!(rust.contains("pub fn get_current(&self)"), "{rust}");
    assert!(!rust.contains("pub fn set_current"), "readonly has no setter: {rust}");
    // Wire names keep the CORBA convention.
    assert!(rust.contains(r#""_get_target""#), "{rust}");
    assert!(rust.contains(r#""_set_target""#), "{rust}");
}

#[test]
fn generated_code_is_balanced() {
    // Cheap structural sanity on every fixture: braces and parens balance.
    for src in [SOLVERS, PIPELINE] {
        let rust = compile_idl(src, &CodegenOptions { pooma: true, hpcxx: true }).unwrap();
        let braces: i64 = rust
            .chars()
            .map(|c| match c {
                '{' => 1,
                '}' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(braces, 0, "unbalanced braces");
        let parens: i64 = rust
            .chars()
            .map(|c| match c {
                '(' => 1,
                ')' => -1,
                _ => 0,
            })
            .sum();
        assert_eq!(parens, 0, "unbalanced parens");
    }
}

#[test]
fn generated_stubs_carry_no_reserved_tag_literals() {
    // The repo-level tag-discipline audit: stubs emitted from every shipped
    // IDL file (all variants on) must obtain ORB tags only through the
    // `tags::` registry, never as literals in the reserved band.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../idl");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("idl/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "idl") {
            let src = std::fs::read_to_string(&path).unwrap();
            let rust = compile_idl(&src, &CodegenOptions { pooma: true, hpcxx: true }).unwrap();
            let hits = crate::lint_generated_tags(&rust);
            assert!(hits.is_empty(), "{path:?} generated reserved-band literals: {hits:?}");
            checked += 1;
        }
    }
    assert!(checked >= 4, "expected the four shipped IDL files, found {checked}");
}

#[test]
fn tag_lint_flags_reserved_band_literals() {
    let dirty = "let t: u64 = 0x4000_0000_0000_00F0;\nsend(to, 4611686018427387911u64, m);\n";
    let hits = crate::lint_generated_tags(dirty);
    assert_eq!(hits.len(), 2, "{hits:?}");
    assert!(hits[0].contains("line 1"));
    assert!(hits[1].contains("line 2"));
    // Tags below the band and ordinary numbers pass.
    assert!(crate::lint_generated_tags("let x = 1024; let y = 0xFFFF;").is_empty());
}

#[test]
fn errors_propagate_from_front_end() {
    let errs = compile_idl("interface i { void f(in nosuch x); };", &CodegenOptions::default())
        .unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("unknown type")));
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generation never panics and stays brace-balanced for random
        /// op/param shapes.
        #[test]
        fn random_interfaces_generate(
            n_ops in 1usize..5,
            n_params in 0usize..4,
            seed in any::<u32>(),
        ) {
            let prims = ["long", "double", "string", "boolean", "octet"];
            let mut src = String::from("typedef dsequence<double> dv;\ninterface rand_if {\n");
            for i in 0..n_ops {
                let ret = prims[(seed as usize + i) % prims.len()];
                let mut params = Vec::new();
                for j in 0..n_params {
                    let dir = ["in", "out"][(seed as usize + i + j) % 2];
                    let ty = if (seed as usize + j).is_multiple_of(3) { "dv" } else { prims[j % prims.len()] };
                    params.push(format!("{dir} {ty} p{j}"));
                }
                src.push_str(&format!("  {ret} op{i}({});\n", params.join(", ")));
            }
            src.push_str("};\n");
            let rust = compile_idl(&src, &CodegenOptions::default()).expect("compile");
            let braces: i64 = rust.chars().map(|c| match c { '{' => 1, '}' => -1, _ => 0 }).sum();
            prop_assert_eq!(braces, 0);
            prop_assert!(rust.contains("pub struct RandIfProxy"));
        }
    }
}
