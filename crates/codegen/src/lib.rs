//! pardis-codegen — the PARDIS IDL compiler back end.
//!
//! "The IDL compiler translates the specifications of objects into 'stub'
//! code containing calls to the ORB" (§2.2). This crate turns the resolved
//! [`Model`](pardis_idl::Model) into Rust source:
//!
//! * data types — Rust structs/enums/aliases with
//!   `CdrCodec` (pardis-cdr) marshaling (including the
//!   automatically generated marshaling for dynamically-sized nested
//!   structures that §4.1 highlights);
//! * **client proxies** — for every operation a blocking stub, a
//!   non-blocking `_nb` stub returning futures (§3.3), and — for operations
//!   with distributed arguments — the second, non-distributed `_single` stub
//!   PARDIS generates for single clients (§3.1);
//! * **server skeletons** — an `…Impl` trait plus an `…Skel` adapter
//!   implementing `pardis_core::Servant`;
//! * **pragma mappings** — with [`CodegenOptions::pooma`] /
//!   [`CodegenOptions::hpcxx`] enabled (the paper's `-pooma` / `-hpcxx`
//!   compiler options), extra stubs that marshal straight from
//!   `pooma_rs::Field2D` / `pstl_rs::DistVector` (§3.4, §4.3).
//!
//! The emitted source is plain text meant to be `include!`d (typically from
//! a `build.rs`, as the `pardis` facade crate does) or written by the
//! `pardis-idlc` binary.

mod emit;
mod names;

pub use emit::generate;

use pardis_idl::Diagnostic;

/// What the compiler should emit, mirroring the paper's command-line
/// options.
#[derive(Debug, Clone, Default)]
pub struct CodegenOptions {
    /// Generate `*_pooma` stubs for `#pragma POOMA:…`-annotated dsequences
    /// (the `-pooma` option).
    pub pooma: bool,
    /// Generate `*_hpcxx` stubs for `#pragma HPC++:…`-annotated dsequences
    /// (the `-hpcxx` option).
    pub hpcxx: bool,
}

/// Front end + back end in one call: IDL source text to Rust source text.
pub fn compile_idl(source: &str, opts: &CodegenOptions) -> Result<String, Vec<Diagnostic>> {
    let model = pardis_idl::compile(source)?;
    Ok(generate(&model, opts))
}

/// Audit generated Rust source for integer literals inside the reserved
/// ORB tag band (`pardis_rts::tags::RESERVED_TAG_RANGE`).
///
/// Stubs must obtain reserved tags through the `tags::` registry, never as
/// literals — a literal in that band is how a tag-discipline regression
/// slips past review. Returns one description per offending literal;
/// empty means clean. Part of the `pardisc lint` gate.
pub fn lint_generated_tags(rust_src: &str) -> Vec<String> {
    let mut findings = Vec::new();
    for (lineno, line) in rust_src.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if !bytes[i].is_ascii_digit()
                || (i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_'))
            {
                i += 1;
                continue;
            }
            // A maximal numeric-literal-shaped run: digits, hex digits,
            // `_` separators, and a possible 0x/0b/0o prefix.
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let token = &line[start..i];
            // Drop separators, then read digits up to any type suffix
            // (u64, i64, usize, …).
            let no_sep: String = token.chars().filter(|c| *c != '_').collect();
            let parsed = if let Some(hex) = no_sep.strip_prefix("0x") {
                let digits: String = hex.chars().take_while(|c| c.is_ascii_hexdigit()).collect();
                u64::from_str_radix(&digits, 16).ok()
            } else {
                let digits: String = no_sep.chars().take_while(|c| c.is_ascii_digit()).collect();
                digits.parse::<u64>().ok()
            };
            if let Some(v) = parsed {
                if pardis_rts::tags::is_reserved(v) {
                    findings.push(format!(
                        "line {}: literal {token} lies in the reserved ORB tag band \
                         ({:#x}..) — use the `tags::` registry instead",
                        lineno + 1,
                        pardis_rts::tags::PARDIS_BASE,
                    ));
                }
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests;
