//! pardis-codegen — the PARDIS IDL compiler back end.
//!
//! "The IDL compiler translates the specifications of objects into 'stub'
//! code containing calls to the ORB" (§2.2). This crate turns the resolved
//! [`Model`](pardis_idl::Model) into Rust source:
//!
//! * data types — Rust structs/enums/aliases with
//!   `CdrCodec` (pardis-cdr) marshaling (including the
//!   automatically generated marshaling for dynamically-sized nested
//!   structures that §4.1 highlights);
//! * **client proxies** — for every operation a blocking stub, a
//!   non-blocking `_nb` stub returning futures (§3.3), and — for operations
//!   with distributed arguments — the second, non-distributed `_single` stub
//!   PARDIS generates for single clients (§3.1);
//! * **server skeletons** — an `…Impl` trait plus an `…Skel` adapter
//!   implementing `pardis_core::Servant`;
//! * **pragma mappings** — with [`CodegenOptions::pooma`] /
//!   [`CodegenOptions::hpcxx`] enabled (the paper's `-pooma` / `-hpcxx`
//!   compiler options), extra stubs that marshal straight from
//!   `pooma_rs::Field2D` / `pstl_rs::DistVector` (§3.4, §4.3).
//!
//! The emitted source is plain text meant to be `include!`d (typically from
//! a `build.rs`, as the `pardis` facade crate does) or written by the
//! `pardis-idlc` binary.

mod emit;
mod names;

pub use emit::generate;

use pardis_idl::Diagnostic;

/// What the compiler should emit, mirroring the paper's command-line
/// options.
#[derive(Debug, Clone, Default)]
pub struct CodegenOptions {
    /// Generate `*_pooma` stubs for `#pragma POOMA:…`-annotated dsequences
    /// (the `-pooma` option).
    pub pooma: bool,
    /// Generate `*_hpcxx` stubs for `#pragma HPC++:…`-annotated dsequences
    /// (the `-hpcxx` option).
    pub hpcxx: bool,
}

/// Front end + back end in one call: IDL source text to Rust source text.
pub fn compile_idl(source: &str, opts: &CodegenOptions) -> Result<String, Vec<Diagnostic>> {
    let model = pardis_idl::compile(source)?;
    Ok(generate(&model, opts))
}

#[cfg(test)]
mod tests;
