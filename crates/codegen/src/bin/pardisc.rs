//! pardisc — the PARDIS protocol-checking tool chain driver.
//!
//! ```text
//! pardisc lint INPUT.idl [INPUT.idl ...]
//! ```
//!
//! `lint` runs the static half of pardis-check over each IDL file:
//!
//! * the `PCKnnn` protocol lints (`pardis_idl::lint`) — oneway misuse,
//!   unknown or mistyped pragma mappings, reserved operation names,
//!   constants in the reserved ORB tag band;
//! * a generated-code audit: the file is compiled with every stub variant
//!   enabled (`-pooma -hpcxx`) and the emitted Rust is scanned for literal
//!   tags inside the reserved band (`lint_generated_tags`).
//!
//! Exit status: 0 clean, 1 lint findings, 2 usage or front-end errors —
//! so CI can gate on "no findings" while still distinguishing broken IDL.

use pardis_codegen::{compile_idl, lint_generated_tags, CodegenOptions};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: pardisc lint INPUT.idl [INPUT.idl ...]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint_files(&args[1..]),
        Some("-h") | Some("--help") => {
            println!("usage: pardisc lint INPUT.idl [INPUT.idl ...]");
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn lint_files(files: &[String]) -> ExitCode {
    if files.is_empty() {
        return usage();
    }
    let mut findings = 0usize;
    let mut broken = false;
    for path in files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("pardisc: cannot read {path:?}: {e}");
                broken = true;
                continue;
            }
        };
        match pardis_idl::lint::lint(&source) {
            Ok(warnings) => {
                for w in &warnings {
                    eprintln!("{path}: {}", w.render(&source));
                }
                findings += warnings.len();
            }
            Err(diags) => {
                for d in diags {
                    eprintln!("{path}: {}", d.render(&source));
                }
                broken = true;
                continue;
            }
        }
        // Audit the generated stubs with every variant enabled, so pragma
        // stubs are scanned too. Front-end errors were caught above; sema
        // errors surface here.
        let opts = CodegenOptions { pooma: true, hpcxx: true };
        match compile_idl(&source, &opts) {
            Ok(rust) => {
                for f in lint_generated_tags(&rust) {
                    eprintln!("{path}: generated code: {f}");
                    findings += 1;
                }
            }
            Err(diags) => {
                for d in diags {
                    eprintln!("{path}: {}", d.render(&source));
                }
                broken = true;
            }
        }
    }
    if broken {
        ExitCode::from(2)
    } else if findings > 0 {
        eprintln!("pardisc: {findings} lint finding(s)");
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
