//! pardis-idlc — the PARDIS IDL compiler command line.
//!
//! ```text
//! pardis-idlc [-pooma] [-hpcxx] [-o OUT.rs] INPUT.idl
//! ```
//!
//! Mirrors the paper's compiler invocations: "when invoked with the
//! `-pooma` option, the POOMA:field pragma causes the compiler to generate
//! stub code marshaling the distributed sequence into a POOMA field;
//! similarly, a `-hpcxx` option ... a no-options invocation will generate
//! standard stubs" (§4.3).

use pardis_codegen::{compile_idl, CodegenOptions};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut opts = CodegenOptions::default();
    let mut input: Option<String> = None;
    let mut output: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-pooma" => opts.pooma = true,
            "-hpcxx" => opts.hpcxx = true,
            "-o" => match args.next() {
                Some(path) => output = Some(path),
                None => {
                    eprintln!("pardis-idlc: -o needs a path");
                    return ExitCode::FAILURE;
                }
            },
            "-h" | "--help" => {
                println!("usage: pardis-idlc [-pooma] [-hpcxx] [-o OUT.rs] INPUT.idl");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("pardis-idlc: unknown option {other:?}");
                return ExitCode::FAILURE;
            }
            other => {
                if input.replace(other.to_string()).is_some() {
                    eprintln!("pardis-idlc: more than one input file");
                    return ExitCode::FAILURE;
                }
            }
        }
    }

    let Some(input) = input else {
        eprintln!("usage: pardis-idlc [-pooma] [-hpcxx] [-o OUT.rs] INPUT.idl");
        return ExitCode::FAILURE;
    };
    let source = match std::fs::read_to_string(&input) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pardis-idlc: cannot read {input:?}: {e}");
            return ExitCode::FAILURE;
        }
    };

    match compile_idl(&source, &opts) {
        Ok(rust) => {
            match output {
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, rust) {
                        eprintln!("pardis-idlc: cannot write {path:?}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
                None => print!("{rust}"),
            }
            ExitCode::SUCCESS
        }
        Err(diags) => {
            for d in diags {
                eprintln!("{}", d.render(&source));
            }
            ExitCode::FAILURE
        }
    }
}
