//! Identifier-case and path utilities.

/// `dna_list` → `DnaList`; `HPCVector` stays `HPCVector`-ish (already
/// camel segments survive).
pub fn camel(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut upper_next = true;
    for ch in name.chars() {
        if ch == '_' {
            upper_next = true;
        } else if upper_next {
            out.extend(ch.to_uppercase());
            upper_next = false;
        } else {
            out.push(ch);
        }
    }
    out
}

/// `DnaList` → `dna_list`; keeps already-snake names intact. Leading
/// underscores (the CORBA `_get_`/`_set_` attribute convention) are
/// dropped on the Rust side; the wire name keeps them.
pub fn snake(name: &str) -> String {
    escape_keyword(snake_raw(name).trim_start_matches('_'))
}

/// Like [`snake`] but without keyword escaping — for names that get a
/// suffix appended (a suffixed name can never be a keyword).
pub fn snake_raw(name: &str) -> String {
    let name = name.trim_start_matches('_');
    let mut out = String::with_capacity(name.len() + 4);
    let mut prev_lower = false;
    for ch in name.chars() {
        if ch.is_uppercase() {
            if prev_lower {
                out.push('_');
            }
            out.extend(ch.to_lowercase());
            prev_lower = false;
        } else {
            prev_lower = ch.is_lowercase() || ch.is_numeric();
            out.push(ch);
        }
    }
    out
}

/// SCREAMING_SNAKE for constants.
pub fn upper(name: &str) -> String {
    snake(name).to_uppercase()
}

/// Rename identifiers that collide with Rust keywords.
pub fn escape_keyword(name: &str) -> String {
    const KEYWORDS: &[&str] = &[
        "as", "break", "const", "continue", "crate", "else", "enum", "extern", "false", "fn",
        "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
        "return", "self", "static", "struct", "super", "trait", "true", "type", "unsafe", "use",
        "where", "while", "async", "await", "dyn", "box", "try", "yield",
    ];
    if KEYWORDS.contains(&name) {
        format!("{name}_")
    } else {
        name.to_string()
    }
}

/// The Rust path from inside module `from` to item `name` in module `to`,
/// both given as module paths relative to the generated root.
pub fn relative_path(from: &[String], to: &[String], name: &str) -> String {
    let common = from.iter().zip(to.iter()).take_while(|(a, b)| a == b).count();
    let mut out = String::new();
    for _ in common..from.len() {
        out.push_str("super::");
    }
    for seg in &to[common..] {
        out.push_str(&snake(seg));
        out.push_str("::");
    }
    out.push_str(name);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn camel_cases() {
        assert_eq!(camel("dna_list"), "DnaList");
        assert_eq!(camel("direct"), "Direct");
        assert_eq!(camel("field_operations"), "FieldOperations");
        assert_eq!(camel("x"), "X");
    }

    #[test]
    fn snake_cases() {
        assert_eq!(snake("DnaList"), "dna_list");
        assert_eq!(snake("solve"), "solve");
        assert_eq!(snake("match"), "match_");
        assert_eq!(snake("Type"), "type_");
    }

    #[test]
    fn upper_cases() {
        assert_eq!(upper("N"), "N");
        assert_eq!(upper("maxSize"), "MAX_SIZE");
    }

    #[test]
    fn relative_paths() {
        let root: Vec<String> = vec![];
        let a = vec!["a".to_string()];
        let ab = vec!["a".to_string(), "b".to_string()];
        let c = vec!["c".to_string()];
        assert_eq!(relative_path(&root, &root, "T"), "T");
        assert_eq!(relative_path(&root, &a, "T"), "a::T");
        assert_eq!(relative_path(&a, &root, "T"), "super::T");
        assert_eq!(relative_path(&ab, &a, "T"), "super::T");
        assert_eq!(relative_path(&a, &ab, "T"), "b::T");
        assert_eq!(relative_path(&a, &c, "T"), "super::c::T");
    }
}
