//! [`CdrCodec`] implementations for the IDL primitive mappings and the
//! standard constructed types.

use crate::{CdrCodec, CdrError, Decoder, Encoder, TypeCode};

macro_rules! prim_codec {
    ($ty:ty, $tc:expr, $write:ident, $read:ident, $wire:expr) => {
        impl CdrCodec for $ty {
            fn encode(&self, e: &mut Encoder) {
                e.$write(*self);
            }
            fn decode(d: &mut Decoder) -> Result<Self, CdrError> {
                d.$read()
            }
            fn type_code() -> TypeCode {
                $tc
            }
            fn fixed_wire_size() -> Option<usize> {
                Some($wire)
            }
        }
    };
}

prim_codec!(bool, TypeCode::Boolean, write_bool, read_bool, 1);

impl CdrCodec for u8 {
    fn encode(&self, e: &mut Encoder) {
        e.write_u8(*self);
    }
    fn decode(d: &mut Decoder) -> Result<Self, CdrError> {
        d.read_u8()
    }
    fn type_code() -> TypeCode {
        TypeCode::Octet
    }
    fn encode_elems(items: &[Self], e: &mut Encoder) {
        e.write_raw(items);
    }
    fn decode_elems(d: &mut Decoder, n: usize) -> Result<Vec<Self>, CdrError> {
        d.read_raw(n)
    }
    fn fixed_wire_size() -> Option<usize> {
        Some(1)
    }
}
prim_codec!(i16, TypeCode::Short, write_i16, read_i16, 2);
prim_codec!(u16, TypeCode::UShort, write_u16, read_u16, 2);
prim_codec!(i32, TypeCode::Long, write_i32, read_i32, 4);
prim_codec!(u32, TypeCode::ULong, write_u32, read_u32, 4);
prim_codec!(i64, TypeCode::LongLong, write_i64, read_i64, 8);
prim_codec!(u64, TypeCode::ULongLong, write_u64, read_u64, 8);
prim_codec!(f32, TypeCode::Float, write_f32, read_f32, 4);
// An IDL char marshals as a code point in a 4-byte slot (see
// `Encoder::write_char`), so its wire footprint is that of a u32.
prim_codec!(char, TypeCode::Char, write_char, read_char, 4);

impl CdrCodec for f64 {
    fn encode(&self, e: &mut Encoder) {
        e.write_f64(*self);
    }
    fn decode(d: &mut Decoder) -> Result<Self, CdrError> {
        d.read_f64()
    }
    fn type_code() -> TypeCode {
        TypeCode::Double
    }
    fn encode_elems(items: &[Self], e: &mut Encoder) {
        e.write_f64_elems(items);
    }
    fn decode_elems(d: &mut Decoder, n: usize) -> Result<Vec<Self>, CdrError> {
        d.read_f64_elems(n)
    }
    fn fixed_wire_size() -> Option<usize> {
        Some(8)
    }
}

impl CdrCodec for String {
    fn encode(&self, e: &mut Encoder) {
        e.write_string(self);
    }
    fn decode(d: &mut Decoder) -> Result<Self, CdrError> {
        d.read_string()
    }
    fn type_code() -> TypeCode {
        TypeCode::String
    }
}

impl CdrCodec for () {
    fn encode(&self, _e: &mut Encoder) {}
    fn decode(_d: &mut Decoder) -> Result<Self, CdrError> {
        Ok(())
    }
    fn type_code() -> TypeCode {
        TypeCode::Void
    }
}

impl<T: CdrCodec> CdrCodec for Vec<T> {
    fn encode(&self, e: &mut Encoder) {
        e.write_u32(self.len() as u32);
        T::encode_elems(self, e);
    }
    fn decode(d: &mut Decoder) -> Result<Self, CdrError> {
        let n = d.read_seq_len(None)?;
        T::decode_elems(d, n)
    }
    fn type_code() -> TypeCode {
        TypeCode::sequence(T::type_code())
    }
}

impl<T: CdrCodec, const N: usize> CdrCodec for [T; N] {
    fn encode(&self, e: &mut Encoder) {
        for item in self {
            item.encode(e);
        }
    }
    fn decode(d: &mut Decoder) -> Result<Self, CdrError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(d)?);
        }
        out.try_into().map_err(|_| unreachable!("length is exactly N"))
    }
    fn type_code() -> TypeCode {
        TypeCode::bounded_sequence(T::type_code(), N as u32)
    }
}

impl<A: CdrCodec, B: CdrCodec> CdrCodec for (A, B) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
    }
    fn decode(d: &mut Decoder) -> Result<Self, CdrError> {
        Ok((A::decode(d)?, B::decode(d)?))
    }
    fn type_code() -> TypeCode {
        TypeCode::Struct {
            name: "pair".to_string(),
            fields: std::sync::Arc::new(vec![
                ("first".to_string(), A::type_code()),
                ("second".to_string(), B::type_code()),
            ]),
        }
    }
}

impl<A: CdrCodec, B: CdrCodec, C: CdrCodec> CdrCodec for (A, B, C) {
    fn encode(&self, e: &mut Encoder) {
        self.0.encode(e);
        self.1.encode(e);
        self.2.encode(e);
    }
    fn decode(d: &mut Decoder) -> Result<Self, CdrError> {
        Ok((A::decode(d)?, B::decode(d)?, C::decode(d)?))
    }
    fn type_code() -> TypeCode {
        TypeCode::Struct {
            name: "triple".to_string(),
            fields: std::sync::Arc::new(vec![
                ("first".to_string(), A::type_code()),
                ("second".to_string(), B::type_code()),
                ("third".to_string(), C::type_code()),
            ]),
        }
    }
}

/// Implement [`CdrCodec`] for a struct with named fields. Used by hand-written
/// protocol types; the IDL compiler emits the expanded form directly.
///
/// ```
/// use pardis_cdr::{impl_cdr_struct, CdrCodec};
///
/// #[derive(Debug, PartialEq, Clone)]
/// struct Point { x: f64, y: f64 }
/// impl_cdr_struct!(Point { x: f64, y: f64 });
///
/// let p = Point { x: 1.0, y: -2.0 };
/// let bytes = pardis_cdr::to_bytes(&p);
/// assert_eq!(pardis_cdr::from_bytes::<Point>(&bytes).unwrap(), p);
/// ```
#[macro_export]
macro_rules! impl_cdr_struct {
    ($name:ident { $($field:ident : $fty:ty),+ $(,)? }) => {
        impl $crate::CdrCodec for $name {
            fn encode(&self, e: &mut $crate::Encoder) {
                $( $crate::CdrCodec::encode(&self.$field, e); )+
            }
            fn decode(d: &mut $crate::Decoder) -> Result<Self, $crate::CdrError> {
                Ok($name {
                    $( $field: <$fty as $crate::CdrCodec>::decode(d)?, )+
                })
            }
            fn type_code() -> $crate::TypeCode {
                $crate::TypeCode::Struct {
                    name: stringify!($name).to_string(),
                    fields: std::sync::Arc::new(vec![
                        $( (stringify!($field).to_string(), <$fty as $crate::CdrCodec>::type_code()), )+
                    ]),
                }
            }
        }
    };
}
