//! The CDR decoder.

use crate::{ByteOrder, CdrError};
use bytes::Bytes;

/// Largest single allocation a decoder will make for one length field.
/// Corrupt or hostile streams cannot force absurd allocations.
const MAX_ALLOC: u64 = 1 << 32;

/// A cursor over a CDR stream, recomputing the encoder's alignment padding.
#[derive(Debug, Clone)]
pub struct Decoder {
    buf: Bytes,
    pos: usize,
    order: ByteOrder,
}

macro_rules! read_prim {
    ($name:ident, $ty:ty, $size:expr) => {
        /// Read an aligned primitive.
        pub fn $name(&mut self) -> Result<$ty, CdrError> {
            self.align($size);
            let raw = self.take($size)?;
            let arr: [u8; $size] = raw.try_into().expect("take returned wrong length");
            Ok(match self.order {
                ByteOrder::Big => <$ty>::from_be_bytes(arr),
                ByteOrder::Little => <$ty>::from_le_bytes(arr),
            })
        }
    };
}

impl Decoder {
    /// Decode `buf` assuming the given byte order.
    pub fn new(buf: Bytes, order: ByteOrder) -> Self {
        Decoder { buf, pos: 0, order }
    }

    /// The stream's byte order.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Current cursor position from the start of the stream.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Skip padding so the next read lands on an `n`-byte boundary.
    pub fn align(&mut self, n: usize) {
        debug_assert!(n.is_power_of_two() && n <= 8);
        let misalign = self.pos & (n - 1);
        if misalign != 0 {
            self.pos = (self.pos + n - misalign).min(self.buf.len());
        }
    }

    fn take(&mut self, n: usize) -> Result<&[u8], CdrError> {
        if self.remaining() < n {
            return Err(CdrError::Truncated { needed: n, remaining: self.remaining() });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a raw octet.
    pub fn read_u8(&mut self) -> Result<u8, CdrError> {
        Ok(self.take(1)?[0])
    }

    /// Read a raw signed octet.
    pub fn read_i8(&mut self) -> Result<i8, CdrError> {
        Ok(self.read_u8()? as i8)
    }

    /// Read a boolean octet, rejecting anything but 0/1.
    pub fn read_bool(&mut self) -> Result<bool, CdrError> {
        match self.read_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(CdrError::InvalidBool(other)),
        }
    }

    read_prim!(read_u16, u16, 2);
    read_prim!(read_i16, i16, 2);
    read_prim!(read_u32, u32, 4);
    read_prim!(read_i32, i32, 4);
    read_prim!(read_u64, u64, 8);
    read_prim!(read_i64, i64, 8);

    /// Read an aligned IEEE-754 single.
    pub fn read_f32(&mut self) -> Result<f32, CdrError> {
        Ok(f32::from_bits(self.read_u32()?))
    }

    /// Read an aligned IEEE-754 double.
    pub fn read_f64(&mut self) -> Result<f64, CdrError> {
        Ok(f64::from_bits(self.read_u64()?))
    }

    /// Read a Unicode scalar written by [`crate::Encoder::write_char`].
    pub fn read_char(&mut self) -> Result<char, CdrError> {
        let raw = self.read_u32()?;
        char::from_u32(raw).ok_or(CdrError::InvalidChar(raw))
    }

    /// Read a CORBA string (length including NUL, bytes, NUL).
    pub fn read_string(&mut self) -> Result<String, CdrError> {
        let len = self.read_u32()? as u64;
        if len == 0 {
            return Err(CdrError::MissingNul);
        }
        if len > MAX_ALLOC {
            return Err(CdrError::ImplementationLimit(len));
        }
        let raw = self.take(len as usize)?;
        let (body, nul) = raw.split_at(raw.len() - 1);
        if nul != [0] {
            return Err(CdrError::MissingNul);
        }
        String::from_utf8(body.to_vec()).map_err(|_| CdrError::InvalidUtf8)
    }

    /// Read `n` raw bytes verbatim.
    pub fn read_raw(&mut self, n: usize) -> Result<Vec<u8>, CdrError> {
        Ok(self.take(n)?.to_vec())
    }

    /// Read `n` raw bytes as a zero-copy slice of the underlying buffer
    /// (a refcount bump, no allocation).
    pub fn read_bytes(&mut self, n: usize) -> Result<Bytes, CdrError> {
        if self.remaining() < n {
            return Err(CdrError::Truncated { needed: n, remaining: self.remaining() });
        }
        let s = self.buf.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(s)
    }

    /// Read a byte sequence written by [`crate::Encoder::write_byte_seq`].
    pub fn read_byte_seq(&mut self) -> Result<Vec<u8>, CdrError> {
        let n = self.read_u32()? as u64;
        if n > MAX_ALLOC {
            return Err(CdrError::ImplementationLimit(n));
        }
        self.read_raw(n as usize)
    }

    /// Zero-copy variant of [`Decoder::read_byte_seq`]: the payload is a
    /// slice of the decoder's buffer, so bulk blobs survive the frame decode
    /// without being copied.
    pub fn read_byte_seq_bytes(&mut self) -> Result<Bytes, CdrError> {
        let n = self.read_u32()? as u64;
        if n > MAX_ALLOC {
            return Err(CdrError::ImplementationLimit(n));
        }
        self.read_bytes(n as usize)
    }

    /// Read an element count for a sequence, enforcing the allocation limit
    /// and (if given) the IDL bound.
    pub fn read_seq_len(&mut self, bound: Option<u32>) -> Result<usize, CdrError> {
        let n = self.read_u32()?;
        if let Some(b) = bound {
            if n > b {
                return Err(CdrError::BoundExceeded { bound: b, got: n });
            }
        }
        if n as u64 > MAX_ALLOC {
            return Err(CdrError::ImplementationLimit(n as u64));
        }
        Ok(n as usize)
    }

    /// Bulk-read an `f64` slice written by
    /// [`crate::Encoder::write_f64_slice`]: one `memcpy` in native order
    /// (the wire source may be unaligned; the destination `Vec<f64>` is
    /// aligned by construction), per-element byte swap otherwise.
    pub fn read_f64_vec(&mut self) -> Result<Vec<f64>, CdrError> {
        let n = self.read_seq_len(None)?;
        self.read_f64_elems(n)
    }

    /// The element part of [`Decoder::read_f64_vec`] (count already read) —
    /// equivalent to decoding `n` elements with [`Decoder::read_f64`].
    pub fn read_f64_elems(&mut self, n: usize) -> Result<Vec<f64>, CdrError> {
        // Mirror of the encoder: an empty sequence carries no alignment
        // padding after the count.
        if n == 0 {
            return Ok(Vec::new());
        }
        self.align(8);
        let order = self.order;
        let raw = self.take(n * 8)?;
        let mut out: Vec<f64> = Vec::with_capacity(n);
        if order == ByteOrder::native() {
            // SAFETY: `raw` holds exactly n*8 bytes, the destination has
            // capacity for n doubles, every bit pattern is a valid f64, and
            // the byte-wise copy tolerates an unaligned source.
            unsafe {
                std::ptr::copy_nonoverlapping(raw.as_ptr(), out.as_mut_ptr().cast::<u8>(), n * 8);
                out.set_len(n);
            }
        } else {
            match order {
                ByteOrder::Big => {
                    for chunk in raw.chunks_exact(8) {
                        out.push(f64::from_bits(u64::from_be_bytes(chunk.try_into().unwrap())));
                    }
                }
                ByteOrder::Little => {
                    for chunk in raw.chunks_exact(8) {
                        out.push(f64::from_bits(u64::from_le_bytes(chunk.try_into().unwrap())));
                    }
                }
            }
        }
        Ok(out)
    }
}
