//! CDR-style marshaling for PARDIS.
//!
//! CORBA transports values between heterogeneous machines in the *Common Data
//! Representation* (CDR): primitives are aligned to their natural size
//! relative to the start of the stream, the sender's byte order is carried as
//! a flag, and constructed types (strings, sequences, structs) are encoded
//! recursively. The PARDIS paper leans on this machinery for its headline
//! programmability claim — the IDL compiler generates marshaling for
//! *dynamically-sized, nested* structures (`dsequence<sequence<double>>`,
//! the `matrix` of §4.1) that programmers previously had to hand-code.
//!
//! This crate provides:
//!
//! * [`Encoder`] / [`Decoder`] — aligned, endian-aware CDR streams over
//!   [`bytes`] buffers;
//! * [`CdrCodec`] — the trait the IDL compiler's generated types implement;
//! * [`TypeCode`] and [`Any`] — runtime type descriptions and dynamically
//!   typed values, used by the dynamic invocation interface and by the
//!   repository wire format.

mod any;
mod codec;
mod decode;
mod encode;
mod error;
mod typecode;

pub use any::{Any, Value};
pub use decode::Decoder;
pub use encode::Encoder;
pub use error::CdrError;
pub use typecode::TypeCode;

use bytes::Bytes;

/// Byte order of an encoded stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ByteOrder {
    /// Big-endian ("network order"); CORBA's canonical order.
    Big,
    /// Little-endian; what the paper's SGI/Intel mix makes unavoidable.
    Little,
}

impl ByteOrder {
    /// The byte order of the machine we are running on.
    pub fn native() -> ByteOrder {
        if cfg!(target_endian = "big") {
            ByteOrder::Big
        } else {
            ByteOrder::Little
        }
    }

    /// CDR flag byte (0 = big endian, 1 = little endian).
    pub fn flag(self) -> u8 {
        match self {
            ByteOrder::Big => 0,
            ByteOrder::Little => 1,
        }
    }

    /// Parse a CDR flag byte.
    pub fn from_flag(flag: u8) -> Result<ByteOrder, CdrError> {
        match flag {
            0 => Ok(ByteOrder::Big),
            1 => Ok(ByteOrder::Little),
            other => Err(CdrError::BadByteOrderFlag(other)),
        }
    }
}

/// Types that can be marshaled to and from CDR.
///
/// Implementations exist for all IDL primitive mappings, `String`, `Vec<T>`,
/// fixed-size arrays and tuples; the IDL compiler generates implementations
/// for user-defined structs and enums.
pub trait CdrCodec: Sized {
    /// Append this value to the stream.
    fn encode(&self, e: &mut Encoder);
    /// Read a value of this type from the stream.
    fn decode(d: &mut Decoder) -> Result<Self, CdrError>;
    /// The runtime type description of this type.
    fn type_code() -> TypeCode;

    /// Append `items` back-to-back with no count prefix. Sequence encoding
    /// funnels through this hook so primitive element types can override the
    /// per-element loop with a bulk copy; overrides must stay byte-identical
    /// to the default.
    fn encode_elems(items: &[Self], e: &mut Encoder) {
        for item in items {
            item.encode(e);
        }
    }

    /// Read `n` elements back-to-back (count already consumed) — the decode
    /// half of the [`CdrCodec::encode_elems`] bulk hook.
    fn decode_elems(d: &mut Decoder, n: usize) -> Result<Vec<Self>, CdrError> {
        let mut out = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            out.push(Self::decode(d)?);
        }
        Ok(out)
    }

    /// Encoded size of one element when every element occupies the same
    /// number of bytes at any stream position — `Some(size)` for the fixed
    /// primitives (CDR aligns a primitive to its natural size, so a
    /// homogeneous array encoded from stream offset 0 places element `i` at
    /// exactly `i * size` with no padding), `None` for everything
    /// variable-length or padded (strings, structs, nested sequences).
    ///
    /// `Some` licenses byte-range arithmetic on an encoded array: a consumer
    /// may fetch elements `a..b` as the byte span `a*size..b*size` — the
    /// contract the one-sided pull redistribution relies on.
    fn fixed_wire_size() -> Option<usize> {
        None
    }
}

/// Encode a single value into a fresh native-endian buffer.
pub fn to_bytes<T: CdrCodec>(value: &T) -> Bytes {
    let mut e = Encoder::new(ByteOrder::native());
    value.encode(&mut e);
    e.finish()
}

/// Decode a single value from a buffer produced by [`to_bytes`].
pub fn from_bytes<T: CdrCodec>(bytes: &Bytes) -> Result<T, CdrError> {
    let mut d = Decoder::new(bytes.clone(), ByteOrder::native());
    T::decode(&mut d)
}

/// Decode a single value from a plain byte slice (native order).
pub fn decode_slice<T: CdrCodec>(data: &[u8]) -> Result<T, CdrError> {
    let mut d = Decoder::new(Bytes::copy_from_slice(data), ByteOrder::native());
    T::decode(&mut d)
}

#[cfg(test)]
mod tests;
