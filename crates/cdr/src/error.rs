//! Marshaling errors.

use std::fmt;

/// Everything that can go wrong while decoding a CDR stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdrError {
    /// The stream ended before the value was complete.
    Truncated {
        /// Bytes needed to finish the read.
        needed: usize,
        /// Bytes remaining in the stream.
        remaining: usize,
    },
    /// A boolean octet held something other than 0 or 1.
    InvalidBool(u8),
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// A string's encoded length did not include / match its NUL terminator.
    MissingNul,
    /// A bounded sequence carried more elements than its IDL bound allows.
    BoundExceeded {
        /// The declared bound.
        bound: u32,
        /// The encoded element count.
        got: u32,
    },
    /// An enum discriminant did not name a known variant.
    InvalidEnumDiscriminant {
        /// Enum type name.
        name: String,
        /// The offending discriminant.
        value: u32,
    },
    /// The byte-order flag was neither 0 nor 1.
    BadByteOrderFlag(u8),
    /// An [`crate::Any`] held a value that did not match the expected
    /// [`crate::TypeCode`].
    TypeMismatch {
        /// What the reader expected.
        expected: String,
        /// What the stream contained.
        found: String,
    },
    /// A char was not a valid Unicode scalar value.
    InvalidChar(u32),
    /// A length or size field exceeded an implementation limit (protects
    /// against allocating from corrupt streams).
    ImplementationLimit(u64),
}

impl fmt::Display for CdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdrError::Truncated { needed, remaining } => {
                write!(f, "CDR stream truncated: need {needed} bytes, {remaining} remaining")
            }
            CdrError::InvalidBool(b) => write!(f, "invalid boolean octet {b:#04x}"),
            CdrError::InvalidUtf8 => write!(f, "string is not valid UTF-8"),
            CdrError::MissingNul => write!(f, "string missing NUL terminator"),
            CdrError::BoundExceeded { bound, got } => {
                write!(f, "bounded sequence overflow: bound {bound}, got {got} elements")
            }
            CdrError::InvalidEnumDiscriminant { name, value } => {
                write!(f, "invalid discriminant {value} for enum {name}")
            }
            CdrError::BadByteOrderFlag(b) => write!(f, "invalid byte-order flag {b:#04x}"),
            CdrError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            CdrError::InvalidChar(c) => write!(f, "invalid char scalar {c:#x}"),
            CdrError::ImplementationLimit(n) => {
                write!(f, "size {n} exceeds implementation limit")
            }
        }
    }
}

impl std::error::Error for CdrError {}
