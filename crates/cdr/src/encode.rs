//! The CDR encoder.

use crate::ByteOrder;
use bytes::Bytes;
use std::cell::RefCell;

/// Buffers kept per thread for [`Encoder::pooled`]; bounded so a burst of
/// large encodes cannot pin memory forever.
const POOL_MAX_BUFFERS: usize = 16;
/// Buffers above this capacity are dropped instead of recycled.
const POOL_MAX_CAPACITY: usize = 1 << 20;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// An append-only CDR stream.
///
/// Primitives are aligned to their natural size measured from the beginning
/// of the stream, exactly as CORBA CDR requires, so a decoder can recompute
/// the same padding without any in-band markers.
#[derive(Debug)]
pub struct Encoder {
    buf: Vec<u8>,
    order: ByteOrder,
    pooled: bool,
}

macro_rules! write_prim {
    ($name:ident, $ty:ty, $size:expr) => {
        /// Append an aligned primitive.
        pub fn $name(&mut self, v: $ty) {
            self.align($size);
            match self.order {
                ByteOrder::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
                ByteOrder::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
            }
        }
    };
}

impl Encoder {
    /// A fresh stream in the given byte order.
    pub fn new(order: ByteOrder) -> Self {
        Encoder::with_capacity(order, 64)
    }

    /// A fresh stream with preallocated capacity (use when the encoded size
    /// is roughly known; bulk sequence marshaling benefits measurably).
    pub fn with_capacity(order: ByteOrder, cap: usize) -> Self {
        Encoder { buf: Vec::with_capacity(cap), order, pooled: false }
    }

    /// A stream drawing its buffer from a per-thread pool. Dropping the
    /// encoder without [`Encoder::finish`]ing it returns the (cleared)
    /// buffer to the pool, so scratch encodes on hot paths reuse warmed-up
    /// capacity instead of reallocating; [`Encoder::finish`] hands the
    /// accumulated allocation to the returned [`Bytes`] as usual.
    pub fn pooled(order: ByteOrder) -> Self {
        let buf = POOL.with(|p| p.borrow_mut().pop()).unwrap_or_else(|| Vec::with_capacity(256));
        debug_assert!(buf.is_empty(), "pooled buffers are cleared before reuse");
        Encoder { buf, order, pooled: true }
    }

    /// Explicitly return a pooled scratch buffer (equivalent to dropping).
    pub fn recycle(self) {}

    /// Reset the stream to empty, keeping the allocation. Lets one scratch
    /// encoder serve a whole loop of independent encodes.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// The stream's byte order.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Bytes written so far (including padding).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes so far (scratch encoders copy from here before
    /// being recycled).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Insert padding so the next write lands on an `n`-byte boundary.
    pub fn align(&mut self, n: usize) {
        debug_assert!(n.is_power_of_two() && n <= 8);
        let misalign = self.buf.len() & (n - 1);
        if misalign != 0 {
            for _ in 0..(n - misalign) {
                self.buf.push(0);
            }
        }
    }

    /// Append a raw octet (no alignment needed).
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a raw signed octet.
    pub fn write_i8(&mut self, v: i8) {
        self.buf.push(v as u8);
    }

    /// Append a boolean as an octet (1/0).
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    write_prim!(write_u16, u16, 2);
    write_prim!(write_i16, i16, 2);
    write_prim!(write_u32, u32, 4);
    write_prim!(write_i32, i32, 4);
    write_prim!(write_u64, u64, 8);
    write_prim!(write_i64, i64, 8);

    /// Append an aligned IEEE-754 single.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Append an aligned IEEE-754 double.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Append a Unicode scalar as a ULong (PARDIS maps IDL `char` to a full
    /// scalar rather than a single octet; see DESIGN.md).
    pub fn write_char(&mut self, v: char) {
        self.write_u32(v as u32);
    }

    /// Append a CORBA string: ULong length *including* the terminating NUL,
    /// then the bytes, then NUL.
    pub fn write_string(&mut self, s: &str) {
        self.write_u32(s.len() as u32 + 1);
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.push(0);
    }

    /// Append raw bytes verbatim (caller controls framing and alignment).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a byte sequence: ULong count then the octets.
    pub fn write_byte_seq(&mut self, bytes: &[u8]) {
        self.write_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Bulk-append a `f64` slice: ULong count then aligned doubles. This is
    /// the hot path for distributed-sequence fragments: in native order the
    /// payload is one `memcpy`; only the foreign order pays the per-element
    /// byte swap.
    pub fn write_f64_slice(&mut self, values: &[f64]) {
        self.write_u32(values.len() as u32);
        self.write_f64_elems(values);
    }

    /// The element part of [`Encoder::write_f64_slice`] (no count prefix) —
    /// byte-for-byte identical to encoding each element with
    /// [`Encoder::write_f64`].
    pub fn write_f64_elems(&mut self, values: &[f64]) {
        // Zero elements append zero bytes: per-element encoding never
        // aligns, so the bulk path must not either.
        if values.is_empty() {
            return;
        }
        self.align(8);
        if self.order == ByteOrder::native() {
            // SAFETY: f64 has no padding and size_of::<f64>() == 8, so the
            // value slice is readable as exactly `len * 8` initialized bytes.
            let raw = unsafe {
                std::slice::from_raw_parts(values.as_ptr().cast::<u8>(), values.len() * 8)
            };
            self.buf.extend_from_slice(raw);
        } else {
            self.buf.reserve(values.len() * 8);
            match self.order {
                ByteOrder::Big => {
                    for v in values {
                        self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
                    }
                }
                ByteOrder::Little => {
                    for v in values {
                        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
                    }
                }
            }
        }
    }

    /// Finish the stream and take the buffer.
    pub fn finish(mut self) -> Bytes {
        Bytes::from(std::mem::take(&mut self.buf))
    }
}

impl Drop for Encoder {
    fn drop(&mut self) {
        // Finished encoders gave their buffer away (capacity 0): nothing to
        // recycle. Unfinished pooled scratch buffers go back, cleared so the
        // next user can never observe prior contents.
        if self.pooled && self.buf.capacity() > 0 && self.buf.capacity() <= POOL_MAX_CAPACITY {
            let mut buf = std::mem::take(&mut self.buf);
            buf.clear();
            POOL.with(|p| {
                let mut pool = p.borrow_mut();
                if pool.len() < POOL_MAX_BUFFERS {
                    pool.push(buf);
                }
            });
        }
    }
}
