//! The CDR encoder.

use crate::ByteOrder;
use bytes::{BufMut, Bytes, BytesMut};

/// An append-only CDR stream.
///
/// Primitives are aligned to their natural size measured from the beginning
/// of the stream, exactly as CORBA CDR requires, so a decoder can recompute
/// the same padding without any in-band markers.
#[derive(Debug)]
pub struct Encoder {
    buf: BytesMut,
    order: ByteOrder,
}

macro_rules! write_prim {
    ($name:ident, $ty:ty, $size:expr) => {
        /// Append an aligned primitive.
        pub fn $name(&mut self, v: $ty) {
            self.align($size);
            match self.order {
                ByteOrder::Big => self.buf.extend_from_slice(&v.to_be_bytes()),
                ByteOrder::Little => self.buf.extend_from_slice(&v.to_le_bytes()),
            }
        }
    };
}

impl Encoder {
    /// A fresh stream in the given byte order.
    pub fn new(order: ByteOrder) -> Self {
        Encoder { buf: BytesMut::with_capacity(64), order }
    }

    /// A fresh stream with preallocated capacity (use when the encoded size
    /// is roughly known; bulk sequence marshaling benefits measurably).
    pub fn with_capacity(order: ByteOrder, cap: usize) -> Self {
        Encoder { buf: BytesMut::with_capacity(cap), order }
    }

    /// The stream's byte order.
    pub fn order(&self) -> ByteOrder {
        self.order
    }

    /// Bytes written so far (including padding).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Insert padding so the next write lands on an `n`-byte boundary.
    pub fn align(&mut self, n: usize) {
        debug_assert!(n.is_power_of_two() && n <= 8);
        let misalign = self.buf.len() & (n - 1);
        if misalign != 0 {
            for _ in 0..(n - misalign) {
                self.buf.put_u8(0);
            }
        }
    }

    /// Append a raw octet (no alignment needed).
    pub fn write_u8(&mut self, v: u8) {
        self.buf.put_u8(v);
    }

    /// Append a raw signed octet.
    pub fn write_i8(&mut self, v: i8) {
        self.buf.put_i8(v);
    }

    /// Append a boolean as an octet (1/0).
    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    write_prim!(write_u16, u16, 2);
    write_prim!(write_i16, i16, 2);
    write_prim!(write_u32, u32, 4);
    write_prim!(write_i32, i32, 4);
    write_prim!(write_u64, u64, 8);
    write_prim!(write_i64, i64, 8);

    /// Append an aligned IEEE-754 single.
    pub fn write_f32(&mut self, v: f32) {
        self.write_u32(v.to_bits());
    }

    /// Append an aligned IEEE-754 double.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Append a Unicode scalar as a ULong (PARDIS maps IDL `char` to a full
    /// scalar rather than a single octet; see DESIGN.md).
    pub fn write_char(&mut self, v: char) {
        self.write_u32(v as u32);
    }

    /// Append a CORBA string: ULong length *including* the terminating NUL,
    /// then the bytes, then NUL.
    pub fn write_string(&mut self, s: &str) {
        self.write_u32(s.len() as u32 + 1);
        self.buf.extend_from_slice(s.as_bytes());
        self.buf.put_u8(0);
    }

    /// Append raw bytes verbatim (caller controls framing and alignment).
    pub fn write_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Append a byte sequence: ULong count then the octets.
    pub fn write_byte_seq(&mut self, bytes: &[u8]) {
        self.write_u32(bytes.len() as u32);
        self.buf.extend_from_slice(bytes);
    }

    /// Bulk-append a `f64` slice: ULong count then aligned doubles. This is
    /// the hot path for distributed-sequence fragments, so it avoids
    /// per-element call overhead.
    pub fn write_f64_slice(&mut self, values: &[f64]) {
        self.write_u32(values.len() as u32);
        self.align(8);
        self.buf.reserve(values.len() * 8);
        match self.order {
            ByteOrder::Big => {
                for v in values {
                    self.buf.extend_from_slice(&v.to_bits().to_be_bytes());
                }
            }
            ByteOrder::Little => {
                for v in values {
                    self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
        }
    }

    /// Finish the stream and take the buffer.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}
