use crate::*;
use bytes::Bytes;

fn roundtrip<T: CdrCodec + PartialEq + std::fmt::Debug>(v: T) {
    let bytes = to_bytes(&v);
    let back: T = from_bytes(&bytes).expect("decode");
    assert_eq!(back, v);
}

#[test]
fn primitives_roundtrip() {
    roundtrip(true);
    roundtrip(false);
    roundtrip(0xabu8);
    roundtrip(-1234i16);
    roundtrip(65535u16);
    roundtrip(-7i32);
    roundtrip(0xdead_beefu32);
    roundtrip(i64::MIN);
    roundtrip(u64::MAX);
    roundtrip(std::f32::consts::PI);
    roundtrip(-std::f64::consts::E);
    roundtrip('λ');
    roundtrip(String::from("hello pardis"));
    roundtrip(String::new());
}

#[test]
fn nan_survives_roundtrip_bitwise() {
    let bytes = to_bytes(&f64::NAN);
    let back: f64 = from_bytes(&bytes).unwrap();
    assert!(back.is_nan());
}

#[test]
fn both_byte_orders_roundtrip() {
    for order in [ByteOrder::Big, ByteOrder::Little] {
        let mut e = Encoder::new(order);
        e.write_u32(0x0102_0304);
        e.write_f64(1.5);
        e.write_string("x");
        let b = e.finish();
        let mut d = Decoder::new(b, order);
        assert_eq!(d.read_u32().unwrap(), 0x0102_0304);
        assert_eq!(d.read_f64().unwrap(), 1.5);
        assert_eq!(d.read_string().unwrap(), "x");
    }
}

#[test]
fn big_endian_layout_is_network_order() {
    let mut e = Encoder::new(ByteOrder::Big);
    e.write_u32(0x0102_0304);
    assert_eq!(&e.finish()[..], &[1, 2, 3, 4]);
}

#[test]
fn alignment_is_relative_to_stream_start() {
    let mut e = Encoder::new(ByteOrder::Big);
    e.write_u8(0xff); // pos 1
    e.write_u32(7); // pads to 4, writes at 4..8
    let b = e.finish();
    assert_eq!(b.len(), 8);
    assert_eq!(&b[..4], &[0xff, 0, 0, 0]);
    let mut d = Decoder::new(b, ByteOrder::Big);
    assert_eq!(d.read_u8().unwrap(), 0xff);
    assert_eq!(d.read_u32().unwrap(), 7);
}

#[test]
fn eight_byte_alignment() {
    let mut e = Encoder::new(ByteOrder::Big);
    e.write_u8(1);
    e.write_f64(2.0); // pads to offset 8
    let b = e.finish();
    assert_eq!(b.len(), 16);
    let mut d = Decoder::new(b, ByteOrder::Big);
    d.read_u8().unwrap();
    assert_eq!(d.read_f64().unwrap(), 2.0);
}

#[test]
fn string_is_nul_terminated_with_inclusive_length() {
    let mut e = Encoder::new(ByteOrder::Big);
    e.write_string("ab");
    let b = e.finish();
    // ULong 3, then 'a' 'b' '\0'.
    assert_eq!(&b[..], &[0, 0, 0, 3, b'a', b'b', 0]);
}

#[test]
fn string_missing_nul_rejected() {
    let b = Bytes::from_static(&[0, 0, 0, 2, b'a', b'b']);
    let mut d = Decoder::new(b, ByteOrder::Big);
    assert_eq!(d.read_string(), Err(CdrError::MissingNul));
}

#[test]
fn string_zero_length_rejected() {
    let b = Bytes::from_static(&[0, 0, 0, 0]);
    let mut d = Decoder::new(b, ByteOrder::Big);
    assert_eq!(d.read_string(), Err(CdrError::MissingNul));
}

#[test]
fn invalid_utf8_rejected() {
    let b = Bytes::from_static(&[0, 0, 0, 2, 0xff, 0]);
    let mut d = Decoder::new(b, ByteOrder::Big);
    assert_eq!(d.read_string(), Err(CdrError::InvalidUtf8));
}

#[test]
fn truncated_primitive_reports_needs() {
    let b = Bytes::from_static(&[0, 0]);
    let mut d = Decoder::new(b, ByteOrder::Big);
    assert_eq!(d.read_u32(), Err(CdrError::Truncated { needed: 4, remaining: 2 }));
}

#[test]
fn invalid_bool_rejected() {
    let b = Bytes::from_static(&[2]);
    let mut d = Decoder::new(b, ByteOrder::Big);
    assert_eq!(d.read_bool(), Err(CdrError::InvalidBool(2)));
}

#[test]
fn invalid_char_rejected() {
    let mut e = Encoder::new(ByteOrder::Big);
    e.write_u32(0xD800); // surrogate
    let mut d = Decoder::new(e.finish(), ByteOrder::Big);
    assert_eq!(d.read_char(), Err(CdrError::InvalidChar(0xD800)));
}

#[test]
fn nested_dynamic_sequences_roundtrip() {
    // The paper's `matrix`: a distributed sequence whose elements are
    // themselves dynamically-sized rows.
    let matrix: Vec<Vec<f64>> = (0..17).map(|i| (0..i).map(|j| j as f64 * 0.5).collect()).collect();
    roundtrip(matrix);
}

#[test]
fn vec_of_strings_roundtrip() {
    roundtrip(vec!["GATTACA".to_string(), String::new(), "ACGT".repeat(100)]);
}

#[test]
fn fixed_array_roundtrip() {
    roundtrip([1.0f64, 2.0, 3.0]);
    roundtrip([0u8; 16]);
}

#[test]
fn tuples_roundtrip() {
    roundtrip((42u32, "x".to_string()));
    roundtrip((1u8, 2i64, vec![3.0f32]));
}

#[test]
fn f64_bulk_path_matches_element_path() {
    let values: Vec<f64> = (0..1000).map(|i| (i as f64).sin()).collect();
    let mut bulk = Encoder::new(ByteOrder::Big);
    bulk.write_f64_slice(&values);
    let mut elementwise = Encoder::new(ByteOrder::Big);
    values.encode(&mut elementwise);
    assert_eq!(bulk.finish(), elementwise.finish());
}

#[test]
fn f64_bulk_decode_roundtrip_le() {
    let values: Vec<f64> = (0..257).map(|i| i as f64 / 7.0).collect();
    let mut e = Encoder::new(ByteOrder::Little);
    e.write_f64_slice(&values);
    let mut d = Decoder::new(e.finish(), ByteOrder::Little);
    assert_eq!(d.read_f64_vec().unwrap(), values);
}

#[test]
fn bounded_sequence_enforced_on_decode() {
    let mut e = Encoder::new(ByteOrder::Big);
    e.write_u32(5); // claims 5 elements
    let mut d = Decoder::new(e.finish(), ByteOrder::Big);
    assert_eq!(d.read_seq_len(Some(4)), Err(CdrError::BoundExceeded { bound: 4, got: 5 }));
}

#[test]
fn byte_seq_roundtrip() {
    let mut e = Encoder::new(ByteOrder::Big);
    e.write_byte_seq(b"payload");
    let mut d = Decoder::new(e.finish(), ByteOrder::Big);
    assert_eq!(d.read_byte_seq().unwrap(), b"payload");
}

#[test]
fn struct_macro_roundtrip_and_typecode() {
    #[derive(Debug, PartialEq, Clone)]
    struct Request {
        id: u64,
        op: String,
        sizes: Vec<u32>,
    }
    impl_cdr_struct!(Request { id: u64, op: String, sizes: Vec<u32> });

    roundtrip(Request { id: 9, op: "solve".into(), sizes: vec![1, 2, 3] });
    match Request::type_code() {
        TypeCode::Struct { name, fields } => {
            assert_eq!(name, "Request");
            assert_eq!(fields.len(), 3);
            assert_eq!(fields[1].0, "op");
        }
        other => panic!("expected struct typecode, got {other}"),
    }
}

#[test]
fn any_roundtrip_through_typecode() {
    let tc = TypeCode::Struct {
        name: "s".into(),
        fields: std::sync::Arc::new(vec![
            ("a".into(), TypeCode::Double),
            ("b".into(), TypeCode::sequence(TypeCode::String)),
        ]),
    };
    let v =
        Value::Struct(vec![Value::Double(2.5), Value::Sequence(vec![Value::String("q".into())])]);
    let any = Any::new(tc.clone(), v).unwrap();
    let mut e = Encoder::new(ByteOrder::Big);
    any.encode_value(&mut e);
    let mut d = Decoder::new(e.finish(), ByteOrder::Big);
    let back = Any::decode_value(&tc, &mut d).unwrap();
    assert_eq!(back, any);
}

#[test]
fn any_shape_mismatch_rejected() {
    let err = Any::new(TypeCode::Double, Value::Long(3)).unwrap_err();
    assert!(matches!(err, CdrError::TypeMismatch { .. }));
}

#[test]
fn any_enum_discriminant_validated() {
    let tc = TypeCode::Enum {
        name: "status".into(),
        variants: std::sync::Arc::new(vec!["ok".into(), "busy".into()]),
    };
    assert!(Any::new(tc.clone(), Value::Enum(1)).is_ok());
    let err = Any::new(tc, Value::Enum(2)).unwrap_err();
    assert!(matches!(err, CdrError::InvalidEnumDiscriminant { .. }));
}

#[test]
fn dsequence_typecode_is_distributed() {
    assert!(TypeCode::dsequence(TypeCode::Double).is_distributed());
    assert!(!TypeCode::sequence(TypeCode::Double).is_distributed());
}

#[test]
fn typecode_display() {
    assert_eq!(TypeCode::dsequence(TypeCode::Double).to_string(), "dsequence<double>");
    assert_eq!(
        TypeCode::bounded_sequence(TypeCode::sequence(TypeCode::Double), 1024).to_string(),
        "sequence<sequence<double>, 1024>"
    );
}

#[test]
fn byte_order_flags() {
    assert_eq!(ByteOrder::from_flag(0).unwrap(), ByteOrder::Big);
    assert_eq!(ByteOrder::from_flag(1).unwrap(), ByteOrder::Little);
    assert_eq!(ByteOrder::from_flag(7), Err(CdrError::BadByteOrderFlag(7)));
    assert_eq!(ByteOrder::Big.flag(), 0);
}

#[test]
fn implementation_limit_guards_allocation() {
    // Claim a 2^33-byte string without providing it.
    let mut e = Encoder::new(ByteOrder::Big);
    e.write_u32(u32::MAX);
    let mut d = Decoder::new(e.finish(), ByteOrder::Big);
    // u32::MAX < 2^32 so it passes the limit but fails truncation — either
    // way decode must not panic or over-allocate eagerly enough to abort.
    assert!(d.read_string().is_err());
}

mod property {
    use super::*;
    use proptest::prelude::*;

    fn arb_value_tree() -> impl Strategy<Value = Vec<Vec<f64>>> {
        proptest::collection::vec(proptest::collection::vec(any::<f64>(), 0..20), 0..20)
    }

    proptest! {
        #[test]
        fn u32_roundtrip(v in any::<u32>()) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<u32>(&b).unwrap(), v);
        }

        #[test]
        fn i64_roundtrip(v in any::<i64>()) {
            let b = to_bytes(&v);
            prop_assert_eq!(from_bytes::<i64>(&b).unwrap(), v);
        }

        #[test]
        fn f64_roundtrip_bits(v in any::<f64>()) {
            let b = to_bytes(&v);
            let back = from_bytes::<f64>(&b).unwrap();
            prop_assert_eq!(back.to_bits(), v.to_bits());
        }

        #[test]
        fn string_roundtrip(s in "\\PC*") {
            let b = to_bytes(&s);
            prop_assert_eq!(from_bytes::<String>(&b).unwrap(), s);
        }

        #[test]
        fn nested_matrix_roundtrip(m in arb_value_tree()) {
            let b = to_bytes(&m);
            let back = from_bytes::<Vec<Vec<f64>>>(&b).unwrap();
            prop_assert_eq!(
                back.iter().flatten().map(|f| f.to_bits()).collect::<Vec<_>>(),
                m.iter().flatten().map(|f| f.to_bits()).collect::<Vec<_>>()
            );
        }

        #[test]
        fn decoder_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let b = Bytes::from(data);
            // Whatever the bytes, decoding returns Ok or Err — never panics.
            let _ = from_bytes::<Vec<Vec<f64>>>(&b);
            let _ = from_bytes::<String>(&b);
            let _ = from_bytes::<Vec<String>>(&b);
            let mut d = Decoder::new(b, ByteOrder::Big);
            let _ = Any::decode_value(&TypeCode::sequence(TypeCode::String), &mut d);
        }

        #[test]
        fn mixed_stream_positions_agree(
            a in any::<u8>(), b in any::<u32>(), c in any::<f64>(), s in "[a-z]{0,12}"
        ) {
            let mut e = Encoder::new(ByteOrder::Little);
            e.write_u8(a);
            e.write_u32(b);
            e.write_f64(c);
            e.write_string(&s);
            let buf = e.finish();
            let mut d = Decoder::new(buf, ByteOrder::Little);
            prop_assert_eq!(d.read_u8().unwrap(), a);
            prop_assert_eq!(d.read_u32().unwrap(), b);
            prop_assert_eq!(d.read_f64().unwrap().to_bits(), c.to_bits());
            prop_assert_eq!(d.read_string().unwrap(), s);
            prop_assert_eq!(d.remaining(), 0);
        }
    }
}

/// The bulk fast paths (`write_f64_elems` / `read_f64_elems`, raw `u8` memcpy)
/// must be byte-identical to the per-element reference encoding in every byte
/// order and at every stream alignment — the wire format is the contract.
mod bulk {
    use super::*;

    fn per_element_f64(v: &[f64], order: ByteOrder) -> Bytes {
        let mut e = Encoder::new(order);
        e.write_u32(v.len() as u32);
        for x in v {
            e.write_f64(*x);
        }
        e.finish()
    }

    #[test]
    fn f64_bulk_encoding_matches_per_element_in_both_orders() {
        // 257 elements: large enough to exercise the memcpy path, odd enough
        // to catch length-dependent bugs.
        let v: Vec<f64> = (0..257).map(|i| i as f64 * 0.5 - 3.0).collect();
        for order in [ByteOrder::Big, ByteOrder::Little] {
            let mut e = Encoder::new(order);
            v.encode(&mut e);
            let bulk = e.finish();
            assert_eq!(&bulk[..], &per_element_f64(&v, order)[..], "order {order:?}");
            let mut d = Decoder::new(bulk, order);
            assert_eq!(Vec::<f64>::decode(&mut d).unwrap(), v);
            assert_eq!(d.remaining(), 0);
        }
    }

    #[test]
    fn foreign_order_bulk_roundtrips_through_the_swap_loop() {
        let v: Vec<f64> = (0..64).map(|i| (i as f64).exp()).collect();
        let foreign = match ByteOrder::native() {
            ByteOrder::Big => ByteOrder::Little,
            ByteOrder::Little => ByteOrder::Big,
        };
        let mut e = Encoder::new(foreign);
        v.encode(&mut e);
        let mut d = Decoder::new(e.finish(), foreign);
        assert_eq!(Vec::<f64>::decode(&mut d).unwrap(), v);
    }

    #[test]
    fn unaligned_stream_start_pads_identically() {
        // Leading bytes misalign the stream; the bulk path must insert the
        // same CDR padding as the per-element reference.
        let v: Vec<f64> = vec![1.25, -2.5, 3.75];
        for lead in 1..8usize {
            for order in [ByteOrder::Big, ByteOrder::Little] {
                let mut bulk = Encoder::new(order);
                let mut reference = Encoder::new(order);
                for _ in 0..lead {
                    bulk.write_u8(0xab);
                    reference.write_u8(0xab);
                }
                v.encode(&mut bulk);
                reference.write_u32(v.len() as u32);
                for x in &v {
                    reference.write_f64(*x);
                }
                let wire = bulk.finish();
                assert_eq!(&wire[..], &reference.finish()[..], "lead {lead}, order {order:?}");
                let mut d = Decoder::new(wire, order);
                for _ in 0..lead {
                    d.read_u8().unwrap();
                }
                assert_eq!(Vec::<f64>::decode(&mut d).unwrap(), v, "lead {lead}");
            }
        }
    }

    #[test]
    fn empty_and_single_element_sequences() {
        for v in [Vec::<f64>::new(), vec![42.0]] {
            for order in [ByteOrder::Big, ByteOrder::Little] {
                let mut e = Encoder::new(order);
                v.encode(&mut e);
                let wire = e.finish();
                assert_eq!(&wire[..], &per_element_f64(&v, order)[..]);
                let mut d = Decoder::new(wire, order);
                assert_eq!(Vec::<f64>::decode(&mut d).unwrap(), v);
            }
        }
        for v in [Vec::<u8>::new(), vec![7u8]] {
            let wire = to_bytes(&v);
            assert_eq!(from_bytes::<Vec<u8>>(&wire).unwrap(), v);
        }
    }

    #[test]
    fn u8_bulk_matches_per_element() {
        let v: Vec<u8> = (0..=255).collect();
        for order in [ByteOrder::Big, ByteOrder::Little] {
            let mut bulk = Encoder::new(order);
            v.encode(&mut bulk);
            let mut reference = Encoder::new(order);
            reference.write_u32(v.len() as u32);
            for x in &v {
                reference.write_u8(*x);
            }
            assert_eq!(&bulk.finish()[..], &reference.finish()[..]);
        }
    }

    #[test]
    fn decoded_byte_slices_borrow_the_wire() {
        // `read_bytes` must alias the decoder's backing buffer, not copy.
        let mut e = Encoder::new(ByteOrder::native());
        e.write_byte_seq(&[9u8; 64]);
        let wire = e.finish();
        let lo = wire.as_ptr() as usize;
        let hi = lo + wire.len();
        let mut d = Decoder::new(wire.clone(), ByteOrder::native());
        let seq = d.read_byte_seq_bytes().unwrap();
        let p = seq.as_ptr() as usize;
        assert!(p >= lo && p + seq.len() <= hi, "decoded slice copied instead of borrowed");
    }

    mod property {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// A recycled pool buffer must never leak a previous encoding
            /// into a later one: encode `a`, recycle, encode `b`, and the
            /// result is exactly what a fresh encoder produces for `b`.
            #[test]
            fn pooled_buffer_reuse_never_leaks(
                a in proptest::collection::vec(any::<u8>(), 0..128),
                b in proptest::collection::vec(any::<u8>(), 0..128),
            ) {
                let mut e1 = Encoder::pooled(ByteOrder::native());
                a.encode(&mut e1);
                e1.recycle();
                let mut e2 = Encoder::pooled(ByteOrder::native());
                b.encode(&mut e2);
                let out = e2.finish();
                let mut reference = Encoder::new(ByteOrder::native());
                b.encode(&mut reference);
                prop_assert_eq!(&out[..], &reference.finish()[..]);
            }

            /// `clear()` reuse inside a loop is equally hermetic.
            #[test]
            fn cleared_encoder_reuse_matches_fresh(
                a in proptest::collection::vec(any::<f64>(), 0..32),
                b in proptest::collection::vec(any::<f64>(), 0..32),
            ) {
                let mut e = Encoder::pooled(ByteOrder::native());
                a.encode(&mut e);
                e.clear();
                b.encode(&mut e);
                let mut reference = Encoder::new(ByteOrder::native());
                b.encode(&mut reference);
                prop_assert_eq!(e.as_slice(), &reference.finish()[..]);
                e.recycle();
            }
        }
    }
}

mod fixed_wire_size {
    use super::*;

    /// Encoding `n` elements from stream offset 0 must occupy exactly
    /// `n * fixed_wire_size()` bytes, with element `i` starting at
    /// `i * size` — the byte-range arithmetic the one-sided pull
    /// redistribution performs on encoded locals.
    fn dense<T: CdrCodec + Clone + PartialEq + std::fmt::Debug>(items: Vec<T>) {
        let ws = T::fixed_wire_size().expect("fixed-size primitive");
        let mut e = Encoder::new(ByteOrder::native());
        T::encode_elems(&items, &mut e);
        let bytes = e.finish();
        assert_eq!(bytes.len(), items.len() * ws, "no padding between elements");
        // Any aligned sub-range decodes to the matching element slice.
        if items.len() >= 3 {
            let sub = bytes.slice(ws..3 * ws);
            let mut d = Decoder::new(sub, ByteOrder::native());
            let back = T::decode_elems(&mut d, 2).expect("decode sub-range");
            assert_eq!(back, items[1..3].to_vec());
        }
    }

    #[test]
    fn primitives_are_dense() {
        dense(vec![true, false, true, true]);
        dense(vec![1u8, 2, 3, 4, 5]);
        dense(vec![-3i16, 9, 17, -1]);
        dense(vec![7u16, 8, 9, 10]);
        dense(vec![-5i32, 6, 7, 8]);
        dense(vec![5u32, 6, 7, 8]);
        dense(vec![-9i64, 10, 11, 12]);
        dense(vec![9u64, 10, 11, 12]);
        dense(vec![1.5f32, -2.5, 3.5, 4.5]);
        dense(vec![1.5f64, -2.5, 3.5, 4.5]);
        dense(vec!['a', 'ü', '☃', 'z']);
    }

    #[test]
    fn variable_types_report_none() {
        assert_eq!(String::fixed_wire_size(), None);
        assert_eq!(<Vec<f64>>::fixed_wire_size(), None);
        assert_eq!(<(u8, f64)>::fixed_wire_size(), None);
    }
}
