//! Runtime type descriptions.

use std::fmt;
use std::sync::Arc;

/// A runtime description of an IDL type, used by the dynamic invocation
/// interface, the interface repository wire format, and [`crate::Any`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TypeCode {
    /// `void` — operation with no return value.
    Void,
    /// `boolean`.
    Boolean,
    /// `octet` (u8).
    Octet,
    /// `short` (i16).
    Short,
    /// `unsigned short` (u16).
    UShort,
    /// `long` (i32).
    Long,
    /// `unsigned long` (u32).
    ULong,
    /// `long long` (i64).
    LongLong,
    /// `unsigned long long` (u64).
    ULongLong,
    /// `float` (f32).
    Float,
    /// `double` (f64).
    Double,
    /// `char`.
    Char,
    /// `string`.
    String,
    /// `sequence<elem, bound?>`.
    Sequence {
        /// Element type.
        elem: Arc<TypeCode>,
        /// Optional IDL bound.
        bound: Option<u32>,
    },
    /// PARDIS extension: `dsequence<elem, bound?>` — a sequence distributed
    /// over the address spaces of an SPMD program's computing threads.
    DSequence {
        /// Element type.
        elem: Arc<TypeCode>,
        /// Optional IDL bound.
        bound: Option<u32>,
    },
    /// A named struct with ordered fields.
    Struct {
        /// IDL name.
        name: String,
        /// Field (name, type) pairs in declaration order.
        fields: Arc<Vec<(String, TypeCode)>>,
    },
    /// A named enum with its variant labels.
    Enum {
        /// IDL name.
        name: String,
        /// Variant labels in declaration order (discriminants 0..n).
        variants: Arc<Vec<String>>,
    },
    /// An object reference to an interface.
    ObjRef {
        /// Interface repository id (e.g. the interface name).
        interface: String,
    },
}

impl TypeCode {
    /// Convenience constructor for an unbounded sequence.
    pub fn sequence(elem: TypeCode) -> TypeCode {
        TypeCode::Sequence { elem: Arc::new(elem), bound: None }
    }

    /// Convenience constructor for a bounded sequence.
    pub fn bounded_sequence(elem: TypeCode, bound: u32) -> TypeCode {
        TypeCode::Sequence { elem: Arc::new(elem), bound: Some(bound) }
    }

    /// Convenience constructor for an unbounded distributed sequence.
    pub fn dsequence(elem: TypeCode) -> TypeCode {
        TypeCode::DSequence { elem: Arc::new(elem), bound: None }
    }

    /// Is this a distributed type? (Distributed types are only legal as
    /// operation arguments on SPMD objects.)
    pub fn is_distributed(&self) -> bool {
        matches!(self, TypeCode::DSequence { .. })
    }

    /// A short stable tag for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            TypeCode::Void => "void",
            TypeCode::Boolean => "boolean",
            TypeCode::Octet => "octet",
            TypeCode::Short => "short",
            TypeCode::UShort => "ushort",
            TypeCode::Long => "long",
            TypeCode::ULong => "ulong",
            TypeCode::LongLong => "longlong",
            TypeCode::ULongLong => "ulonglong",
            TypeCode::Float => "float",
            TypeCode::Double => "double",
            TypeCode::Char => "char",
            TypeCode::String => "string",
            TypeCode::Sequence { .. } => "sequence",
            TypeCode::DSequence { .. } => "dsequence",
            TypeCode::Struct { .. } => "struct",
            TypeCode::Enum { .. } => "enum",
            TypeCode::ObjRef { .. } => "objref",
        }
    }
}

impl fmt::Display for TypeCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeCode::Sequence { elem, bound: Some(b) } => write!(f, "sequence<{elem}, {b}>"),
            TypeCode::Sequence { elem, bound: None } => write!(f, "sequence<{elem}>"),
            TypeCode::DSequence { elem, bound: Some(b) } => write!(f, "dsequence<{elem}, {b}>"),
            TypeCode::DSequence { elem, bound: None } => write!(f, "dsequence<{elem}>"),
            TypeCode::Struct { name, .. } => write!(f, "struct {name}"),
            TypeCode::Enum { name, .. } => write!(f, "enum {name}"),
            TypeCode::ObjRef { interface } => write!(f, "interface {interface}"),
            other => f.write_str(other.kind_name()),
        }
    }
}
