//! Dynamically typed values for the dynamic invocation interface.

use crate::{CdrError, Decoder, Encoder, TypeCode};
use std::fmt;

/// A dynamically typed IDL value. [`Value`] mirrors the shape of
/// [`TypeCode`]; a `(TypeCode, Value)` pair — an [`Any`] — can be marshaled
/// without compile-time knowledge of the type, which is what the DII and the
/// repositories need.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `void` (no value).
    Void,
    /// boolean.
    Boolean(bool),
    /// octet.
    Octet(u8),
    /// short.
    Short(i16),
    /// unsigned short.
    UShort(u16),
    /// long.
    Long(i32),
    /// unsigned long.
    ULong(u32),
    /// long long.
    LongLong(i64),
    /// unsigned long long.
    ULongLong(u64),
    /// float.
    Float(f32),
    /// double.
    Double(f64),
    /// char.
    Char(char),
    /// string.
    String(String),
    /// sequence / dsequence elements in order.
    Sequence(Vec<Value>),
    /// struct field values in declaration order.
    Struct(Vec<Value>),
    /// enum discriminant.
    Enum(u32),
    /// stringified object reference.
    ObjRef(String),
}

impl Value {
    /// The `TypeCode` kind this value naturally belongs to (structural —
    /// names and bounds cannot be recovered from a bare value).
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Void => "void",
            Value::Boolean(_) => "boolean",
            Value::Octet(_) => "octet",
            Value::Short(_) => "short",
            Value::UShort(_) => "ushort",
            Value::Long(_) => "long",
            Value::ULong(_) => "ulong",
            Value::LongLong(_) => "longlong",
            Value::ULongLong(_) => "ulonglong",
            Value::Float(_) => "float",
            Value::Double(_) => "double",
            Value::Char(_) => "char",
            Value::String(_) => "string",
            Value::Sequence(_) => "sequence",
            Value::Struct(_) => "struct",
            Value::Enum(_) => "enum",
            Value::ObjRef(_) => "objref",
        }
    }
}

/// A self-describing value: a [`TypeCode`] together with a matching
/// [`Value`].
#[derive(Debug, Clone, PartialEq)]
pub struct Any {
    /// Runtime type.
    pub tc: TypeCode,
    /// The value, whose shape must match `tc`.
    pub value: Value,
}

impl Any {
    /// Pair a type code and value.
    ///
    /// The pairing is validated: mismatched shapes are rejected eagerly so
    /// failures surface at construction, not at marshal time.
    pub fn new(tc: TypeCode, value: Value) -> Result<Any, CdrError> {
        check_shape(&tc, &value)?;
        Ok(Any { tc, value })
    }

    /// Encode just the value (the receiver is assumed to know the type, as
    /// in a typed operation signature).
    pub fn encode_value(&self, e: &mut Encoder) {
        encode_value(&self.tc, &self.value, e);
    }

    /// Decode a value of type `tc` from the stream.
    pub fn decode_value(tc: &TypeCode, d: &mut Decoder) -> Result<Any, CdrError> {
        let value = decode_value(tc, d)?;
        Ok(Any { tc: tc.clone(), value })
    }
}

impl fmt::Display for Any {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {:?}", self.tc, self.value)
    }
}

fn mismatch(tc: &TypeCode, v: &Value) -> CdrError {
    CdrError::TypeMismatch { expected: tc.to_string(), found: v.kind_name().to_string() }
}

/// Validate that `v` has the shape `tc` describes.
pub fn check_shape(tc: &TypeCode, v: &Value) -> Result<(), CdrError> {
    match (tc, v) {
        (TypeCode::Void, Value::Void)
        | (TypeCode::Boolean, Value::Boolean(_))
        | (TypeCode::Octet, Value::Octet(_))
        | (TypeCode::Short, Value::Short(_))
        | (TypeCode::UShort, Value::UShort(_))
        | (TypeCode::Long, Value::Long(_))
        | (TypeCode::ULong, Value::ULong(_))
        | (TypeCode::LongLong, Value::LongLong(_))
        | (TypeCode::ULongLong, Value::ULongLong(_))
        | (TypeCode::Float, Value::Float(_))
        | (TypeCode::Double, Value::Double(_))
        | (TypeCode::Char, Value::Char(_))
        | (TypeCode::String, Value::String(_))
        | (TypeCode::ObjRef { .. }, Value::ObjRef(_)) => Ok(()),
        (
            TypeCode::Sequence { elem, bound } | TypeCode::DSequence { elem, bound },
            Value::Sequence(items),
        ) => {
            if let Some(b) = bound {
                if items.len() as u64 > *b as u64 {
                    return Err(CdrError::BoundExceeded { bound: *b, got: items.len() as u32 });
                }
            }
            for item in items {
                check_shape(elem, item)?;
            }
            Ok(())
        }
        (TypeCode::Struct { fields, .. }, Value::Struct(vals)) => {
            if fields.len() != vals.len() {
                return Err(mismatch(tc, v));
            }
            for ((_, ftc), fv) in fields.iter().zip(vals) {
                check_shape(ftc, fv)?;
            }
            Ok(())
        }
        (TypeCode::Enum { name, variants }, Value::Enum(disc)) => {
            if (*disc as usize) < variants.len() {
                Ok(())
            } else {
                Err(CdrError::InvalidEnumDiscriminant { name: name.clone(), value: *disc })
            }
        }
        _ => Err(mismatch(tc, v)),
    }
}

fn encode_value(tc: &TypeCode, v: &Value, e: &mut Encoder) {
    match (tc, v) {
        (TypeCode::Void, Value::Void) => {}
        (TypeCode::Boolean, Value::Boolean(b)) => e.write_bool(*b),
        (TypeCode::Octet, Value::Octet(x)) => e.write_u8(*x),
        (TypeCode::Short, Value::Short(x)) => e.write_i16(*x),
        (TypeCode::UShort, Value::UShort(x)) => e.write_u16(*x),
        (TypeCode::Long, Value::Long(x)) => e.write_i32(*x),
        (TypeCode::ULong, Value::ULong(x)) => e.write_u32(*x),
        (TypeCode::LongLong, Value::LongLong(x)) => e.write_i64(*x),
        (TypeCode::ULongLong, Value::ULongLong(x)) => e.write_u64(*x),
        (TypeCode::Float, Value::Float(x)) => e.write_f32(*x),
        (TypeCode::Double, Value::Double(x)) => e.write_f64(*x),
        (TypeCode::Char, Value::Char(c)) => e.write_char(*c),
        (TypeCode::String, Value::String(s)) => e.write_string(s),
        (TypeCode::ObjRef { .. }, Value::ObjRef(s)) => e.write_string(s),
        (
            TypeCode::Sequence { elem, .. } | TypeCode::DSequence { elem, .. },
            Value::Sequence(items),
        ) => {
            e.write_u32(items.len() as u32);
            for item in items {
                encode_value(elem, item, e);
            }
        }
        (TypeCode::Struct { fields, .. }, Value::Struct(vals)) => {
            for ((_, ftc), fv) in fields.iter().zip(vals) {
                encode_value(ftc, fv, e);
            }
        }
        (TypeCode::Enum { .. }, Value::Enum(disc)) => e.write_u32(*disc),
        _ => unreachable!("Any invariant violated: {tc} vs {}", v.kind_name()),
    }
}

fn decode_value(tc: &TypeCode, d: &mut Decoder) -> Result<Value, CdrError> {
    Ok(match tc {
        TypeCode::Void => Value::Void,
        TypeCode::Boolean => Value::Boolean(d.read_bool()?),
        TypeCode::Octet => Value::Octet(d.read_u8()?),
        TypeCode::Short => Value::Short(d.read_i16()?),
        TypeCode::UShort => Value::UShort(d.read_u16()?),
        TypeCode::Long => Value::Long(d.read_i32()?),
        TypeCode::ULong => Value::ULong(d.read_u32()?),
        TypeCode::LongLong => Value::LongLong(d.read_i64()?),
        TypeCode::ULongLong => Value::ULongLong(d.read_u64()?),
        TypeCode::Float => Value::Float(d.read_f32()?),
        TypeCode::Double => Value::Double(d.read_f64()?),
        TypeCode::Char => Value::Char(d.read_char()?),
        TypeCode::String => Value::String(d.read_string()?),
        TypeCode::ObjRef { .. } => Value::ObjRef(d.read_string()?),
        TypeCode::Sequence { elem, bound } | TypeCode::DSequence { elem, bound } => {
            let n = d.read_seq_len(*bound)?;
            let mut items = Vec::with_capacity(n.min(1 << 16));
            for _ in 0..n {
                items.push(decode_value(elem, d)?);
            }
            Value::Sequence(items)
        }
        TypeCode::Struct { fields, .. } => {
            let mut vals = Vec::with_capacity(fields.len());
            for (_, ftc) in fields.iter() {
                vals.push(decode_value(ftc, d)?);
            }
            Value::Struct(vals)
        }
        TypeCode::Enum { name, variants } => {
            let disc = d.read_u32()?;
            if (disc as usize) >= variants.len() {
                return Err(CdrError::InvalidEnumDiscriminant { name: name.clone(), value: disc });
            }
            Value::Enum(disc)
        }
    })
}
