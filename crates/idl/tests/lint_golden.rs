//! Golden-file tests for the protocol lints: each fixture under
//! `tests/fixtures/` pairs an `.idl` input with an `.expected` listing of
//! the exact lint codes, spans, and messages it must produce. A lint whose
//! code, position, or wording drifts fails here first.

use pardis_idl::diag::line_col;
use pardis_idl::lint::lint;

fn render_findings(source: &str) -> String {
    let findings = lint(source).expect("fixture must lex and parse");
    findings
        .iter()
        .map(|d| {
            let (line, col) = line_col(source, d.span.start);
            format!(
                "{} @ {}..{} (line {line}, col {col}): {}\n",
                d.code.expect("every lint finding carries a code"),
                d.span.start,
                d.span.end,
                d.message
            )
        })
        .collect()
}

fn golden(name: &str) {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/fixtures");
    let source = std::fs::read_to_string(format!("{dir}/{name}.idl")).unwrap();
    let expect = std::fs::read_to_string(format!("{dir}/{name}.expected")).unwrap();
    let got = render_findings(&source);
    assert_eq!(
        got, expect,
        "lint findings for {name}.idl diverged from {name}.expected;\n--- got ---\n{got}"
    );
}

#[test]
fn bad_pragma_findings_match_golden() {
    golden("bad_pragma");
}

#[test]
fn oneway_out_findings_match_golden() {
    golden("oneway_out");
}

#[test]
fn tag_collision_findings_match_golden() {
    golden("tag_collision");
}

/// The repository's own IDL files must stay lint-clean — they are what
/// `pardisc lint` gates in CI.
#[test]
fn shipped_idl_files_are_lint_clean() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../idl");
    let mut checked = 0;
    for entry in std::fs::read_dir(dir).expect("idl/ directory exists") {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "idl") {
            let source = std::fs::read_to_string(&path).unwrap();
            let findings = render_findings(&source);
            assert!(findings.is_empty(), "{path:?} has lint findings:\n{findings}");
            checked += 1;
        }
    }
    assert!(checked >= 4, "expected the four shipped IDL files, found {checked}");
}
