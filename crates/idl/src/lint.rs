//! Protocol lints over the parsed IDL — the static half of `pardis-check`.
//!
//! These are warnings, not errors: each carries a stable `PCKnnn` code so
//! `pardisc lint` (and CI) can gate on them, and each points at the source
//! span that triggered it. They run on the AST, before semantic analysis,
//! so a file that sema would reject still gets its lint codes reported.
//!
//! | code | finding |
//! |------|---------|
//! | `PCK001` | `oneway` operation declares an `out`/`inout` parameter |
//! | `PCK002` | `oneway` operation has a non-`void` result or `raises` |
//! | `PCK003` | pragma names an unknown package or native container |
//! | `PCK004` | pragma-mapped container element type is not `double` |
//! | `PCK005` | operation name is reserved (leading `_`, or collides with a generated stub variant of a sibling operation) |
//! | `PCK006` | constant evaluates into the reserved ORB tag range |

use crate::ast::{ConstExpr, Def, Direction, Interface, Spec, TypeSpec, Typedef};
use crate::diag::Diagnostic;
use std::collections::HashMap;

/// The pragma mappings the compiler understands (§3.4): package name to the
/// native container after the colon.
pub const KNOWN_PRAGMAS: [(&str, &str); 2] = [("POOMA", "field"), ("HPC++", "vector")];

/// Suffixes the code generator appends to an operation name for its stub
/// variants; a sibling operation whose name equals `op + suffix` collides
/// with the generated method.
pub const STUB_SUFFIXES: [&str; 6] =
    ["_nb", "_single", "_pooma", "_hpcxx", "_pooma_nb", "_hpcxx_nb"];

/// Lex + parse + lint. `Err` carries the front-end failure; `Ok` the lint
/// findings (possibly empty).
pub fn lint(source: &str) -> Result<Vec<Diagnostic>, Vec<Diagnostic>> {
    let tokens = crate::lexer::lex(source).map_err(|d| vec![d])?;
    let spec = crate::parser::parse(&tokens).map_err(|d| vec![d])?;
    Ok(lint_spec(&spec))
}

/// Run every lint over a parsed [`Spec`]. Findings come back in source
/// order, each with a `PCKnnn` code attached.
pub fn lint_spec(spec: &Spec) -> Vec<Diagnostic> {
    let mut l = Linter { out: Vec::new(), typedefs: HashMap::new(), consts: HashMap::new() };
    l.index_defs(&spec.defs);
    l.walk_defs(&spec.defs);
    l.out.sort_by_key(|d| (d.span.start, d.span.end));
    l.out
}

struct Linter {
    out: Vec<Diagnostic>,
    /// Typedef name (last segment) → aliased type, for element resolution.
    typedefs: HashMap<String, TypeSpec>,
    /// Const name (last segment) → evaluated value, best effort.
    consts: HashMap<String, i128>,
}

impl Linter {
    /// First pass: collect typedefs and const values so later lints can
    /// resolve through them. Name resolution is deliberately flat (last
    /// segment only) — good enough for lints, which must never hard-fail.
    fn index_defs(&mut self, defs: &[Def]) {
        for def in defs {
            match def {
                Def::Module(m) => self.index_defs(&m.defs),
                Def::Interface(i) => self.index_defs(&i.defs),
                Def::Typedef(td) => {
                    self.typedefs.insert(td.name.clone(), td.ty.clone());
                }
                Def::Const(cd) => {
                    if let Some(v) = self.eval(&cd.value) {
                        self.consts.insert(cd.name.clone(), v);
                    }
                }
                _ => {}
            }
        }
    }

    fn walk_defs(&mut self, defs: &[Def]) {
        for def in defs {
            match def {
                Def::Module(m) => self.walk_defs(&m.defs),
                Def::Interface(i) => self.lint_interface(i),
                Def::Typedef(td) => self.lint_typedef(td),
                Def::Const(cd) => self.lint_const(cd),
                _ => {}
            }
        }
    }

    /// PCK001 + PCK002: `oneway` means "no reply at all" — nothing can flow
    /// back, so out-params, results and exceptions are all unsendable.
    fn lint_interface(&mut self, iface: &Interface) {
        self.walk_defs(&iface.defs);
        for op in &iface.ops {
            if op.oneway {
                for p in &op.params {
                    if p.dir != Direction::In {
                        let dir = if p.dir == Direction::Out { "out" } else { "inout" };
                        self.out.push(
                            Diagnostic::new(
                                format!(
                                    "oneway operation {:?} declares `{dir}` parameter {:?} — \
                                     nothing flows back on a oneway invocation",
                                    op.name, p.name
                                ),
                                p.span,
                            )
                            .with_code("PCK001"),
                        );
                    }
                }
                if op.ret != TypeSpec::Void {
                    self.out.push(
                        Diagnostic::new(
                            format!(
                                "oneway operation {:?} has a non-void result — \
                                 the caller never receives it",
                                op.name
                            ),
                            op.span,
                        )
                        .with_code("PCK002"),
                    );
                }
                if !op.raises.is_empty() {
                    self.out.push(
                        Diagnostic::new(
                            format!(
                                "oneway operation {:?} has a raises clause — \
                                 exceptions cannot reach a oneway caller",
                                op.name
                            ),
                            op.span,
                        )
                        .with_code("PCK002"),
                    );
                }
            }
            // PCK005a: explicit leading-underscore names are reserved for
            // the attribute accessors the parser itself generates.
            if !op.from_attr && op.name.starts_with('_') {
                self.out.push(
                    Diagnostic::new(
                        format!(
                            "operation name {:?} is reserved — names beginning with `_` \
                             are generated for attribute accessors",
                            op.name
                        ),
                        op.span,
                    )
                    .with_code("PCK005"),
                );
            }
        }
        // PCK005b: a declared op whose name equals a sibling op plus a stub
        // suffix collides with the generated method of that sibling.
        for op in &iface.ops {
            for other in &iface.ops {
                if std::ptr::eq(op, other) {
                    continue;
                }
                for suffix in STUB_SUFFIXES {
                    if op.name == format!("{}{suffix}", other.name) {
                        self.out.push(
                            Diagnostic::new(
                                format!(
                                    "operation name {:?} collides with the generated \
                                     `{suffix}` stub variant of operation {:?}",
                                    op.name, other.name
                                ),
                                op.span,
                            )
                            .with_code("PCK005"),
                        );
                    }
                }
            }
        }
    }

    /// PCK003 + PCK004: a pragma must name a mapping the compiler knows,
    /// and the mapped containers (POOMA fields, PSTL vectors) hold doubles.
    fn lint_typedef(&mut self, td: &Typedef) {
        for pragma in &td.pragmas {
            let system_known = KNOWN_PRAGMAS.iter().any(|(s, _)| *s == pragma.system);
            let pair_known =
                KNOWN_PRAGMAS.iter().any(|(s, n)| *s == pragma.system && *n == pragma.native);
            if !pair_known {
                let hint = if system_known {
                    let native = KNOWN_PRAGMAS
                        .iter()
                        .find(|(s, _)| *s == pragma.system)
                        .map(|(_, n)| *n)
                        .unwrap_or_default();
                    format!("package {:?} maps only {native:?}", pragma.system)
                } else {
                    let known: Vec<String> =
                        KNOWN_PRAGMAS.iter().map(|(s, n)| format!("{s}:{n}")).collect();
                    format!("known mappings: {}", known.join(", "))
                };
                self.out.push(
                    Diagnostic::new(
                        format!(
                            "pragma {}:{} names an unknown container mapping — {hint}",
                            pragma.system, pragma.native
                        ),
                        pragma.span,
                    )
                    .with_code("PCK003"),
                );
                continue;
            }
            // The mapping is known: the element type must marshal into the
            // native container, and both native containers hold f64.
            if let TypeSpec::DSequence { elem, .. } = &td.ty {
                let base = self.resolve_elem(elem, 0);
                if !matches!(base, Some(TypeSpec::Double)) {
                    self.out.push(
                        Diagnostic::new(
                            format!(
                                "pragma {}:{} requires element type `double`, but typedef \
                                 {:?} distributes a different element type",
                                pragma.system, pragma.native, td.name
                            ),
                            pragma.span,
                        )
                        .with_code("PCK004"),
                    );
                }
            }
            // Non-dsequence targets are already a sema error; no lint here.
        }
    }

    /// PCK006: a constant landing in the reserved ORB band can only be a
    /// tag destined for `send`/`recv`, where the runtime owns that range.
    fn lint_const(&mut self, cd: &crate::ast::ConstDef) {
        if let Some(v) = self.eval(&cd.value) {
            if v >= pardis_rts::tags::PARDIS_BASE as i128
                && v < u64::MAX as i128
                && pardis_rts::tags::is_reserved(v as u64)
            {
                self.out.push(
                    Diagnostic::new(
                        format!(
                            "constant {:?} = {v:#x} lies in the reserved ORB tag range \
                             ({:#x}..) — application tags must stay below it",
                            cd.name,
                            pardis_rts::tags::PARDIS_BASE
                        ),
                        cd.span,
                    )
                    .with_code("PCK006"),
                );
            }
        }
    }

    /// Chase `Named` references through typedefs to the underlying element
    /// type; bounded depth so a (sema-rejected) cycle cannot hang the lint.
    fn resolve_elem(&self, ty: &TypeSpec, depth: usize) -> Option<TypeSpec> {
        if depth > 16 {
            return None;
        }
        match ty {
            TypeSpec::Named(name) => {
                let last = name.parts.last()?;
                let target = self.typedefs.get(last)?.clone();
                self.resolve_elem(&target, depth + 1)
            }
            other => Some(other.clone()),
        }
    }

    /// Best-effort const evaluation (no diagnostics — sema owns those).
    fn eval(&self, e: &ConstExpr) -> Option<i128> {
        match e {
            ConstExpr::Int(v) => Some(*v as i128),
            ConstExpr::Neg(inner) => Some(-self.eval(inner)?),
            ConstExpr::Name(name) => self.consts.get(name.parts.last()?).copied(),
            ConstExpr::Binary { op, lhs, rhs } => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                match op {
                    '+' => Some(l.wrapping_add(r)),
                    '-' => Some(l.wrapping_sub(r)),
                    '*' => Some(l.wrapping_mul(r)),
                    '/' => (r != 0).then(|| l / r),
                    _ => None,
                }
            }
        }
    }
}
