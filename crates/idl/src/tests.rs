use crate::ast::PragmaMap;
use crate::lexer::{lex, Tok};
use crate::model::*;
use crate::{compile, parser};

/// The solver IDL from §4.1 of the paper, verbatim in spirit.
const SOLVERS_IDL: &str = r#"
// Linear-system solvers (fig. 2 experiment).
typedef sequence<double> row;
typedef dsequence<row> matrix;
typedef dsequence<double> vector;

interface direct {
    void solve(in matrix A, in vector B, out vector X);
};
interface iterative {
    void solve(in double tol, in matrix A, in vector B, out vector X);
};
"#;

/// The pipeline IDL from §4.3, with pragma mappings.
const PIPELINE_IDL: &str = r#"
const long N = 128;
#pragma HPC++:vector
#pragma POOMA:field
typedef dsequence<double, N*N, BLOCK, BLOCK> field;

interface visualizer {
    void show(in field myfield);
};
interface field_operations {
    void gradient(in field myfield);
};
"#;

#[test]
fn lexes_tokens_and_pragmas() {
    let toks =
        lex("typedef dsequence<double, 0x10> v; // comment\n#pragma POOMA:field\n").expect("lex");
    let kinds: Vec<&Tok> = toks.iter().map(|t| &t.tok).collect();
    assert!(matches!(kinds[0], Tok::Ident(s) if s == "typedef"));
    assert!(matches!(kinds[2], Tok::Lt));
    assert!(kinds.iter().any(|t| matches!(t, Tok::Int(16))));
    assert!(kinds.iter().any(|t| matches!(t, Tok::Pragma(p) if p == "POOMA:field")));
    assert!(matches!(kinds.last().unwrap(), Tok::Eof));
}

#[test]
fn lexes_octal_float_string() {
    let toks = lex(r#"010 2.5 "a\nb""#).unwrap();
    assert!(matches!(toks[0].tok, Tok::Int(8)));
    assert!(matches!(toks[1].tok, Tok::Float(f) if f == 2.5));
    assert!(matches!(&toks[2].tok, Tok::Str(s) if s == "a\nb"));
}

#[test]
fn lex_errors_are_spanned() {
    let err = lex("interface x { @ }").unwrap_err();
    assert!(err.message.contains("unexpected character"));
    assert_eq!(err.span.start, 14);
    let err = lex("/* unterminated").unwrap_err();
    assert!(err.message.contains("unterminated block comment"));
    let err = lex("\"open").unwrap_err();
    assert!(err.message.contains("unterminated string"));
}

#[test]
fn parses_paper_solver_idl() {
    let model = compile(SOLVERS_IDL).expect("compile");
    assert_eq!(model.interfaces.len(), 2);
    let direct = model.interface("direct").unwrap();
    assert_eq!(direct.ops.len(), 1);
    let solve = &direct.ops[0];
    assert_eq!(solve.name, "solve");
    assert_eq!(solve.ret, RType::Void);
    assert_eq!(solve.params.len(), 3);
    assert_eq!(solve.params[0].dir, RDir::In);
    assert_eq!(solve.params[2].dir, RDir::Out);
    // matrix = dsequence<sequence<double>>.
    match &solve.params[0].ty {
        RType::DSequence { elem, .. } => match elem.as_ref() {
            RType::Sequence { elem, bound: None } => assert_eq!(**elem, RType::Double),
            other => panic!("matrix elem should be a sequence, got {other:?}"),
        },
        other => panic!("matrix should be distributed, got {other:?}"),
    }
    assert!(solve.has_distributed());
}

#[test]
fn parses_pipeline_idl_with_pragmas() {
    let model = compile(PIPELINE_IDL).expect("compile");
    assert_eq!(model.consts.len(), 1);
    assert_eq!(model.consts[0].value, 128);
    // The `field` alias carries both pragma mappings and the evaluated
    // bound N*N.
    let field = model
        .types
        .iter()
        .find_map(|t| match t {
            NamedType::Alias { name, ty, .. } if name == "field" => Some(ty.clone()),
            _ => None,
        })
        .expect("field alias");
    match field {
        RType::DSequence { bound, client_dist, server_dist, pragmas, .. } => {
            assert_eq!(bound, Some(128 * 128));
            assert_eq!(client_dist, Some(RDist::Block));
            assert_eq!(server_dist, Some(RDist::Block));
            let systems: Vec<(&str, &str)> = pragmas
                .iter()
                .map(|p: &PragmaMap| (p.system.as_str(), p.native.as_str()))
                .collect();
            assert!(systems.contains(&("HPC++", "vector")));
            assert!(systems.contains(&("POOMA", "field")));
        }
        other => panic!("field should be a dsequence, got {other:?}"),
    }
}

#[test]
fn dna_idl_from_section_4_2() {
    let model = compile(
        r#"
        typedef sequence<string> dna_list;
        interface list_server {
            void match(in string s, out dna_list l);
        };
        enum status { done, working };
        interface dna_db {
            status search(in string s);
        };
        "#,
    )
    .expect("compile");
    let db = model.interface("dna_db").unwrap();
    assert_eq!(db.ops[0].ret, RType::EnumRef("status".into()));
    let ls = model.interface("list_server").unwrap();
    match &ls.ops[0].params[1].ty {
        RType::Sequence { elem, .. } => assert_eq!(**elem, RType::String),
        other => panic!("dna_list should resolve to sequence<string>, got {other:?}"),
    }
}

#[test]
fn modules_scope_names() {
    let model = compile(
        r#"
        module math {
            typedef dsequence<double> vec;
            interface adder {
                void add(in vec a, in vec b, out vec c);
            };
        };
        module other {
            interface user {
                void consume(in math::vec v);
            };
        };
        "#,
    )
    .expect("compile");
    assert_eq!(model.interfaces[0].key(), "math::adder");
    assert_eq!(model.interfaces[1].key(), "other::user");
    assert!(model.interfaces[1].ops[0].params[0].ty.is_distributed());
}

#[test]
fn interface_inheritance_flattens_ops() {
    let model = compile(
        r#"
        interface base { void ping(); };
        interface derived : base { void pong(); };
        "#,
    )
    .expect("compile");
    let ops = model.all_ops("derived");
    let names: Vec<&str> = ops.iter().map(|o| o.name.as_str()).collect();
    assert_eq!(names, vec!["ping", "pong"]);
}

#[test]
fn structs_and_consts_resolve() {
    let model = compile(
        r#"
        const long SIZE = 4 * (3 + 2) - 6 / 2;
        struct point { double x; double y; };
        typedef sequence<point, SIZE> points;
        interface geom { void centroid(in points p, out point c); };
        "#,
    )
    .expect("compile");
    assert_eq!(model.consts[0].value, 17);
    match &model.interface("geom").unwrap().ops[0].params[0].ty {
        RType::Sequence { elem, bound } => {
            assert_eq!(**elem, RType::StructRef("point".into()));
            assert_eq!(*bound, Some(17));
        }
        other => panic!("points should be a bounded sequence, got {other:?}"),
    }
}

#[test]
fn oneway_rules_enforced() {
    let errs = compile("interface i { oneway long bad(); };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("must return void")));
    let errs = compile("interface i { oneway void bad(out long x); };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("only have `in`")));
    assert!(compile("interface i { oneway void ok(in long x); };").is_ok());
}

#[test]
fn distributed_legality_rules() {
    let errs = compile("struct s { dsequence<double> d; };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("may not be distributed")));

    let errs = compile("interface i { dsequence<double> get(); };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("may not return dsequence")));

    let errs = compile("interface i { void f(inout dsequence<double> d); };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("not `inout`")));

    let errs = compile("typedef sequence<dsequence<double>> bad;").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("elements may not be distributed")));

    let errs = compile("typedef dsequence<dsequence<double>> bad;").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("not themselves be distributed")));
}

#[test]
fn error_recovery_reports_unknown_names() {
    let errs = compile("interface i { void f(in nosuch x); };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("unknown type")));
    let errs = compile("typedef sequence<double, NOPE> v;").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("unknown constant")));
}

#[test]
fn duplicate_definitions_rejected() {
    let errs = compile("typedef long a; typedef short a;").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("duplicate definition")));
    let errs = compile("interface i { void f(); void f(); };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("no overloading")));
    let errs = compile("interface a { void f(); }; interface b : a { void f(); };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("more than once")));
}

#[test]
fn bound_validation() {
    let errs = compile("typedef sequence<double, 0> v;").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("must be positive")));
    let errs = compile("typedef sequence<double, 0 - 4> v;").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("must be positive")));
    let errs = compile("const long Z = 1 / 0;").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("division by zero")));
}

#[test]
fn stray_pragma_rejected() {
    let toks = lex("#pragma POOMA:field\ninterface i { };").unwrap();
    let err = parser::parse(&toks).unwrap_err();
    assert!(err.message.contains("not followed by a typedef"));
}

#[test]
fn pragma_on_non_dsequence_rejected() {
    let errs = compile("#pragma POOMA:field\ntypedef long x;").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("only apply to dsequence")));
}

#[test]
fn concentrated_with_thread_argument() {
    let model =
        compile("typedef dsequence<double, 1024, BLOCK, CONCENTRATED(2)> v;").expect("compile");
    match &model.types[0] {
        NamedType::Alias { ty: RType::DSequence { server_dist, .. }, .. } => {
            assert_eq!(*server_dist, Some(RDist::Concentrated(2)));
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn fixed_arrays_resolve() {
    let model = compile(
        r#"
        const long DIM = 3;
        typedef double triple[DIM];
        typedef double grid[2][DIM];
        struct cell { double corners[4]; };
        interface geo { void take(in triple t, in grid g, in cell c); };
        "#,
    )
    .expect("compile");
    match &model.types[0] {
        NamedType::Alias { ty: RType::Array { elem, len }, .. } => {
            assert_eq!(**elem, RType::Double);
            assert_eq!(*len, 3);
        }
        other => panic!("expected array alias, got {other:?}"),
    }
    // Multi-dimensional: outer dimension first.
    match &model.types[1] {
        NamedType::Alias { ty: RType::Array { elem, len }, .. } => {
            assert_eq!(*len, 2);
            assert!(matches!(elem.as_ref(), RType::Array { len: 3, .. }));
        }
        other => panic!("expected 2-D array alias, got {other:?}"),
    }
    let errs = compile("typedef double bad[0];").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("array length")));
}

#[test]
fn exceptions_and_raises_resolve() {
    let model = compile(
        r#"
        exception overflow { long max; string detail; };
        interface counter {
            void bump(in long by) raises(overflow);
        };
        "#,
    )
    .expect("compile");
    match &model.types[0] {
        NamedType::Exception { name, fields, .. } => {
            assert_eq!(name, "overflow");
            assert_eq!(fields.len(), 2);
            assert_eq!(fields[0].1, RType::Long);
        }
        other => panic!("expected exception, got {other:?}"),
    }
    assert_eq!(model.interface("counter").unwrap().ops[0].raises, vec!["overflow".to_string()]);

    let errs = compile("interface c { void f() raises(nope); };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("unknown exception")));

    let errs = compile("struct s { long x; }; interface c { void f() raises(s); };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("is not an exception")));

    let errs = compile("exception e { long x; }; interface c { oneway void f() raises(e); };")
        .unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("cannot raise")));

    // Exceptions are not types.
    let errs = compile("exception e { long x; }; interface c { void f(in e arg); };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("raises clause")));
}

#[test]
fn attributes_desugar_to_get_set_ops() {
    let model = compile(
        r#"
        interface thermostat {
            attribute double target;
            readonly attribute double current;
        };
        "#,
    )
    .expect("compile");
    let ops: Vec<&str> =
        model.interface("thermostat").unwrap().ops.iter().map(|o| o.name.as_str()).collect();
    assert_eq!(ops, vec!["_get_target", "_set_target", "_get_current"]);
    let setter = &model.interface("thermostat").unwrap().ops[1];
    assert_eq!(setter.ret, RType::Void);
    assert_eq!(setter.params[0].ty, RType::Double);
    assert_eq!(setter.params[0].dir, RDir::In);

    let errs = compile("interface x { readonly long broken; };").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("must introduce an attribute")));
}

#[test]
fn block_cyclic_distribution_spec() {
    let model =
        compile("typedef dsequence<double, 4096, BLOCK_CYCLIC(64), BLOCK> v;").expect("compile");
    match &model.types[0] {
        NamedType::Alias { ty: RType::DSequence { client_dist, server_dist, .. }, .. } => {
            assert_eq!(*client_dist, Some(RDist::BlockCyclic(64)));
            assert_eq!(*server_dist, Some(RDist::Block));
        }
        other => panic!("unexpected {other:?}"),
    }
    let errs = compile("typedef dsequence<double, 16, BLOCK_CYCLIC(0)> v;").unwrap_err();
    assert!(errs.iter().any(|e| e.message.contains("must be positive")));
}

#[test]
fn diagnostics_render_with_location() {
    let src = "typedef nosuch v;";
    let errs = compile(src).unwrap_err();
    let rendered = errs[0].render(src);
    assert!(rendered.contains("line 1"), "{rendered}");
    assert!(rendered.contains("nosuch"), "{rendered}");
}

#[test]
fn unsigned_variants_parse() {
    let model =
        compile("interface i { unsigned long long f(in unsigned short a, in unsigned long b); };")
            .expect("compile");
    let op = &model.interface("i").unwrap().ops[0];
    assert_eq!(op.ret, RType::ULongLong);
    assert_eq!(op.params[0].ty, RType::UShort);
    assert_eq!(op.params[1].ty, RType::ULong);
}

#[test]
fn object_reference_parameters() {
    let model = compile(
        r#"
        interface worker { void run(); };
        interface registry { void enlist(in worker w); };
        "#,
    )
    .expect("compile");
    assert_eq!(
        model.interface("registry").unwrap().ops[0].params[0].ty,
        RType::InterfaceRef("worker".into())
    );
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The lexer never panics on arbitrary input.
        #[test]
        fn lexer_total(input in "\\PC{0,200}") {
            let _ = lex(&input);
        }

        /// The whole front end never panics on arbitrary almost-IDL input.
        #[test]
        fn compiler_total(input in "[a-z{}();:<>,=# ]{0,120}") {
            let _ = compile(&input);
        }

        /// Round-trip: constant arithmetic matches Rust's.
        #[test]
        fn const_arithmetic(a in 0i64..1000, b in 1i64..1000, c in 1i64..100) {
            let src = format!("const long long X = {a} + {b} * {c} - {b} / {c};");
            let model = compile(&src).expect("compile");
            prop_assert_eq!(model.consts[0].value as i64, a + b * c - b / c);
        }

        /// Identifier-heavy interfaces compile and preserve op order.
        #[test]
        fn many_ops(names in proptest::collection::hash_set("[a-z][a-z0-9_]{0,10}", 1..10)) {
            let names: Vec<String> = names.into_iter().collect();
            let body: String =
                names.iter().map(|n| format!("void {n}(in long x);")).collect();
            let src = format!("interface i {{ {body} }};");
            match compile(&src) {
                Ok(model) => {
                    let got: Vec<&str> = model.interface("i").unwrap()
                        .ops.iter().map(|o| o.name.as_str()).collect();
                    let want: Vec<&str> = names.iter().map(|s| s.as_str()).collect();
                    prop_assert_eq!(got, want);
                }
                Err(_) => {
                    // Keywords among the generated names may legitimately
                    // fail to parse; that is still non-panicking behaviour.
                }
            }
        }
    }
}
