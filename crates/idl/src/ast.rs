//! The abstract syntax tree produced by the parser.

use crate::diag::Span;

/// A whole IDL compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Spec {
    /// Top-level definitions in source order.
    pub defs: Vec<Def>,
}

/// Any definition.
#[derive(Debug, Clone, PartialEq)]
pub enum Def {
    /// `module name { ... };`
    Module(Module),
    /// `interface name [: bases] { ... };`
    Interface(Interface),
    /// `typedef type name;` with attached pragma mappings.
    Typedef(Typedef),
    /// `struct name { ... };`
    Struct(StructDef),
    /// `enum name { ... };`
    Enum(EnumDef),
    /// `const type name = expr;`
    Const(ConstDef),
    /// `exception name { ... };`
    Exception(ExceptionDef),
}

/// A module scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Nested definitions.
    pub defs: Vec<Def>,
    /// Source span of the name.
    pub span: Span,
}

/// An interface declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct Interface {
    /// Interface name (the repository id).
    pub name: String,
    /// Base interface names (scoped).
    pub bases: Vec<ScopedName>,
    /// Operations in declaration order.
    pub ops: Vec<OpDecl>,
    /// Nested typedefs/consts declared inside the interface.
    pub defs: Vec<Def>,
    /// Source span of the name.
    pub span: Span,
}

/// One operation.
#[derive(Debug, Clone, PartialEq)]
pub struct OpDecl {
    /// `oneway` flag (no reply at all).
    pub oneway: bool,
    /// Return type (`void` allowed).
    pub ret: TypeSpec,
    /// Operation name.
    pub name: String,
    /// Parameters in declaration order.
    pub params: Vec<Param>,
    /// Exceptions this operation may raise (`raises(a, b)`).
    pub raises: Vec<ScopedName>,
    /// True for the `_get_`/`_set_` pair desugared from an `attribute`
    /// declaration — those underscore names are legitimate; explicit ones
    /// are not (lint `PCK005`).
    pub from_attr: bool,
    /// Source span of the name.
    pub span: Span,
}

/// Parameter passing direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Client to server.
    In,
    /// Server to client.
    Out,
    /// Both ways.
    InOut,
}

/// One parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Direction.
    pub dir: Direction,
    /// Type.
    pub ty: TypeSpec,
    /// Name.
    pub name: String,
    /// Source span of the name.
    pub span: Span,
}

/// A typedef, possibly annotated with pragma mappings ("the programmer
/// needs to annotate the IDL definitions with pragma statements directing
/// the compiler to generate stubs marshaling the data into existing
/// structures", §3.4).
#[derive(Debug, Clone, PartialEq)]
pub struct Typedef {
    /// New name.
    pub name: String,
    /// Aliased type.
    pub ty: TypeSpec,
    /// Pragma mappings attached immediately above this typedef.
    pub pragmas: Vec<PragmaMap>,
    /// Source span of the name.
    pub span: Span,
}

/// A `#pragma System:native` mapping directive.
#[derive(Debug, Clone, PartialEq)]
pub struct PragmaMap {
    /// Package name, e.g. `HPC++` or `POOMA`.
    pub system: String,
    /// Native container, e.g. `vector` or `field` (the "extension after the
    /// colon").
    pub native: String,
    /// Source span of the directive.
    pub span: Span,
}

/// An exception definition (structurally a struct, but only usable in
/// `raises` clauses).
#[derive(Debug, Clone, PartialEq)]
pub struct ExceptionDef {
    /// Exception name (the repository id).
    pub name: String,
    /// Members in declaration order.
    pub fields: Vec<(TypeSpec, String)>,
    /// Source span of the name.
    pub span: Span,
}

/// A struct.
#[derive(Debug, Clone, PartialEq)]
pub struct StructDef {
    /// Struct name.
    pub name: String,
    /// Fields in declaration order.
    pub fields: Vec<(TypeSpec, String)>,
    /// Source span of the name.
    pub span: Span,
}

/// An enum.
#[derive(Debug, Clone, PartialEq)]
pub struct EnumDef {
    /// Enum name.
    pub name: String,
    /// Variant labels, discriminants 0..n.
    pub variants: Vec<String>,
    /// Source span of the name.
    pub span: Span,
}

/// A constant.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstDef {
    /// Declared type.
    pub ty: TypeSpec,
    /// Name.
    pub name: String,
    /// Value expression.
    pub value: ConstExpr,
    /// Source span of the name.
    pub span: Span,
}

/// A possibly-scoped name (`a::b::c`).
#[derive(Debug, Clone, PartialEq)]
pub struct ScopedName {
    /// Path segments.
    pub parts: Vec<String>,
    /// Source span.
    pub span: Span,
}

impl ScopedName {
    /// Render with `::` separators.
    pub fn dotted(&self) -> String {
        self.parts.join("::")
    }
}

/// A type expression.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeSpec {
    /// `void` (returns only).
    Void,
    /// `boolean`.
    Boolean,
    /// `octet`.
    Octet,
    /// `char`.
    Char,
    /// `short`.
    Short,
    /// `unsigned short`.
    UShort,
    /// `long`.
    Long,
    /// `unsigned long`.
    ULong,
    /// `long long`.
    LongLong,
    /// `unsigned long long`.
    ULongLong,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// `string`.
    String,
    /// `sequence<elem [, bound]>`.
    Sequence {
        /// Element type.
        elem: Box<TypeSpec>,
        /// Optional bound expression.
        bound: Option<ConstExpr>,
    },
    /// PARDIS extension: `dsequence<elem [, bound [, client_dist
    /// [, server_dist]]]>`.
    DSequence {
        /// Element type.
        elem: Box<TypeSpec>,
        /// Optional bound expression.
        bound: Option<ConstExpr>,
        /// Default distribution on the client side.
        client_dist: Option<DistSpec>,
        /// Default distribution on the server side.
        server_dist: Option<DistSpec>,
    },
    /// A reference to a named type.
    Named(ScopedName),
    /// Fixed-size array `T name[N]` (stored on the element type after the
    /// declarator is parsed).
    Array {
        /// Element type.
        elem: Box<TypeSpec>,
        /// Length expression.
        len: ConstExpr,
    },
}

/// A distribution template in a `dsequence` declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum DistSpec {
    /// `BLOCK` — uniform blockwise (the §3.2 example's client side).
    Block,
    /// `CYCLIC`.
    Cyclic,
    /// `CONCENTRATED` or `CONCENTRATED(k)` — all on one processor (the
    /// §3.2 example's server side).
    Concentrated(Option<ConstExpr>),
    /// `BLOCK_CYCLIC(b)` — blocks of `b` dealt round-robin (this
    /// implementation's extension, per the paper's future work).
    BlockCyclic(ConstExpr),
}

/// A constant expression (integers, named constants, arithmetic).
#[derive(Debug, Clone, PartialEq)]
pub enum ConstExpr {
    /// Integer literal.
    Int(u64),
    /// Named constant reference.
    Name(ScopedName),
    /// Binary operation.
    Binary {
        /// `+ - * /`
        op: char,
        /// Left operand.
        lhs: Box<ConstExpr>,
        /// Right operand.
        rhs: Box<ConstExpr>,
    },
    /// Unary negation.
    Neg(Box<ConstExpr>),
}
