//! pardis-idl — the extended CORBA IDL front end.
//!
//! PARDIS represents object specifications in "a slightly extended version
//! of the CORBA Interface Definition Language" (§2.1): standard IDL plus
//!
//! * **`dsequence<T, bound?, client_dist?, server_dist?>`** — distributed
//!   sequences, legal only in the operations of interfaces that SPMD objects
//!   implement;
//! * **`#pragma <System>:<native-type>`** directives that tell the compiler
//!   to marshal the following typedef straight into a package's native
//!   container (`#pragma POOMA:field`, `#pragma HPC++:vector`, §3.4).
//!
//! The crate is a classical three-stage front end:
//!
//! 1. [`lex`](lexer::lex) — source text to spanned tokens;
//! 2. [`parse`](parser::parse) — tokens to the [`ast`];
//! 3. [`analyze`](sema::analyze) — name resolution, const-expression
//!    evaluation, legality checks; produces the resolved [`model`] the code
//!    generator (`pardis-codegen`) consumes.
//!
//! [`compile`] runs all three.
//!
//! ## Supported IDL subset
//!
//! Modules, interfaces (single and multiple inheritance), operations
//! (including `oneway` and `raises`), attributes (`readonly`), structs,
//! enums, exceptions, typedefs, fixed arrays, bounded/unbounded sequences,
//! the PARDIS `dsequence` extension, constants with arithmetic, `#pragma`
//! mapping directives. Not implemented (absent from the paper's usage):
//! unions, `any`-typed parameters, `wchar`/`wstring`, `fixed`, contexts,
//! forward declarations.

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod lint;
pub mod model;
pub mod parser;
pub mod sema;

pub use diag::{Diagnostic, Span};
pub use model::Model;

/// Run the whole front end on IDL source text.
pub fn compile(source: &str) -> Result<Model, Vec<Diagnostic>> {
    let tokens = lexer::lex(source).map_err(|d| vec![d])?;
    let spec = parser::parse(&tokens).map_err(|d| vec![d])?;
    sema::analyze(&spec)
}

#[cfg(test)]
mod tests;
