//! Spans and diagnostics.

use std::fmt;

/// A byte range in the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    /// Inclusive start byte.
    pub start: usize,
    /// Exclusive end byte.
    pub end: usize,
}

impl Span {
    /// Construct a span.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both.
    pub fn merge(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }
}

/// A compiler diagnostic with source location.
///
/// Hard front-end errors have no [`code`](Diagnostic::code); protocol lints
/// (`pardisc lint`, [`crate::lint`]) carry a stable `PCKnnn` code and render
/// as warnings so tooling can match on them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub span: Span,
    /// Stable lint code (`"PCK001"`…); `None` for hard errors.
    pub code: Option<&'static str>,
}

impl Diagnostic {
    /// Construct a diagnostic.
    pub fn new(message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic { message: message.into(), span, code: None }
    }

    /// Attach a stable lint code, turning this into a warning.
    pub fn with_code(mut self, code: &'static str) -> Diagnostic {
        self.code = Some(code);
        self
    }

    /// `error` for hard diagnostics, `warning[PCKnnn]` for coded lints.
    pub fn label(&self) -> String {
        match self.code {
            Some(code) => format!("warning[{code}]"),
            None => "error".to_string(),
        }
    }

    /// Render with line/column and a source excerpt, `rustc`-style.
    pub fn render(&self, source: &str) -> String {
        let (line, col) = line_col(source, self.span.start);
        let line_text = source.lines().nth(line - 1).unwrap_or("");
        let width = (self.span.end.saturating_sub(self.span.start)).max(1);
        let marker =
            " ".repeat(col - 1) + &"^".repeat(width.min(line_text.len() + 1 - (col - 1)).max(1));
        format!(
            "{}: {}\n --> line {line}, column {col}\n  | {line_text}\n  | {marker}",
            self.label(),
            self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at bytes {}..{}: {}",
            self.label(),
            self.span.start,
            self.span.end,
            self.message
        )
    }
}

impl std::error::Error for Diagnostic {}

/// 1-based (line, column) of a byte offset.
pub fn line_col(source: &str, offset: usize) -> (usize, usize) {
    let mut line = 1;
    let mut col = 1;
    for (i, ch) in source.char_indices() {
        if i >= offset {
            break;
        }
        if ch == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}
