//! Semantic analysis: name resolution, const evaluation, legality rules.

use crate::ast::{self, ConstExpr, Def, Direction, DistSpec, Spec, TypeSpec};
use crate::diag::{Diagnostic, Span};
use crate::model::*;
use std::collections::HashMap;

#[derive(Debug, Clone, PartialEq)]
enum Sym {
    Alias(usize),
    Struct(usize),
    Enum(usize),
    Exception(usize),
    Interface(usize),
    Const(usize),
    Module,
}

struct Analyzer {
    model: Model,
    symbols: HashMap<String, Sym>,
    errors: Vec<Diagnostic>,
}

/// Resolve and check a parsed [`Spec`], producing the code-generation
/// [`Model`].
pub fn analyze(spec: &Spec) -> Result<Model, Vec<Diagnostic>> {
    let mut a = Analyzer { model: Model::default(), symbols: HashMap::new(), errors: Vec::new() };
    a.collect_defs(&spec.defs, &mut Vec::new());
    if a.errors.is_empty() {
        Ok(a.model)
    } else {
        Err(a.errors)
    }
}

impl Analyzer {
    fn err(&mut self, msg: impl Into<String>, span: Span) {
        self.errors.push(Diagnostic::new(msg, span));
    }

    fn declare(&mut self, path: &[String], name: &str, sym: Sym, span: Span) -> bool {
        let key = flat_key(path, name);
        match self.symbols.entry(key) {
            std::collections::hash_map::Entry::Occupied(e) => {
                let key = e.key().clone();
                self.err(format!("duplicate definition of {key:?}"), span);
                false
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(sym);
                true
            }
        }
    }

    fn collect_defs(&mut self, defs: &[Def], path: &mut Vec<String>) {
        for def in defs {
            match def {
                Def::Module(m) => {
                    self.declare(path, &m.name, Sym::Module, m.span);
                    path.push(m.name.clone());
                    self.collect_defs(&m.defs, path);
                    path.pop();
                }
                Def::Typedef(td) => {
                    let ty = self.resolve_type(&td.ty, path, td.span, TypePos::Typedef);
                    // Attach typedef-level pragmas to the distributed type.
                    let ty = match ty {
                        RType::DSequence { elem, bound, client_dist, server_dist, mut pragmas } => {
                            pragmas.extend(td.pragmas.iter().cloned());
                            RType::DSequence { elem, bound, client_dist, server_dist, pragmas }
                        }
                        other => {
                            if !td.pragmas.is_empty() {
                                self.err(
                                    "pragma mappings only apply to dsequence typedefs",
                                    td.pragmas[0].span,
                                );
                            }
                            other
                        }
                    };
                    let idx = self.model.types.len();
                    if self.declare(path, &td.name, Sym::Alias(idx), td.span) {
                        self.model.types.push(NamedType::Alias {
                            path: path.clone(),
                            name: td.name.clone(),
                            ty,
                        });
                    }
                }
                Def::Struct(sd) => {
                    let mut fields = Vec::new();
                    let mut seen = Vec::new();
                    for (fty, fname) in &sd.fields {
                        if seen.contains(fname) {
                            self.err(
                                format!("duplicate field {fname:?} in struct {}", sd.name),
                                sd.span,
                            );
                        }
                        seen.push(fname.clone());
                        let rty = self.resolve_type(fty, path, sd.span, TypePos::StructField);
                        fields.push((fname.clone(), rty));
                    }
                    let idx = self.model.types.len();
                    if self.declare(path, &sd.name, Sym::Struct(idx), sd.span) {
                        self.model.types.push(NamedType::Struct {
                            path: path.clone(),
                            name: sd.name.clone(),
                            fields,
                        });
                    }
                }
                Def::Enum(ed) => {
                    let mut seen = Vec::new();
                    for v in &ed.variants {
                        if seen.contains(v) {
                            self.err(
                                format!("duplicate variant {v:?} in enum {}", ed.name),
                                ed.span,
                            );
                        }
                        seen.push(v.clone());
                    }
                    let idx = self.model.types.len();
                    if self.declare(path, &ed.name, Sym::Enum(idx), ed.span) {
                        self.model.types.push(NamedType::Enum {
                            path: path.clone(),
                            name: ed.name.clone(),
                            variants: ed.variants.clone(),
                        });
                    }
                }
                Def::Const(cd) => {
                    let ty = self.resolve_type(&cd.ty, path, cd.span, TypePos::ConstType);
                    let value = self.eval_const(&cd.value, path, cd.span);
                    let idx = self.model.consts.len();
                    if self.declare(path, &cd.name, Sym::Const(idx), cd.span) {
                        self.model.consts.push(RConst {
                            path: path.clone(),
                            name: cd.name.clone(),
                            ty,
                            value,
                        });
                    }
                }
                Def::Exception(xd) => {
                    let mut fields = Vec::new();
                    let mut seen = Vec::new();
                    for (fty, fname) in &xd.fields {
                        if seen.contains(fname) {
                            self.err(
                                format!("duplicate member {fname:?} in exception {}", xd.name),
                                xd.span,
                            );
                        }
                        seen.push(fname.clone());
                        let rty = self.resolve_type(fty, path, xd.span, TypePos::StructField);
                        fields.push((fname.clone(), rty));
                    }
                    let idx = self.model.types.len();
                    if self.declare(path, &xd.name, Sym::Exception(idx), xd.span) {
                        self.model.types.push(NamedType::Exception {
                            path: path.clone(),
                            name: xd.name.clone(),
                            fields,
                        });
                    }
                }
                Def::Interface(iface) => self.collect_interface(iface, path),
            }
        }
    }

    fn collect_interface(&mut self, iface: &ast::Interface, path: &mut Vec<String>) {
        // Nested definitions first (scoped inside the interface name).
        path.push(iface.name.clone());
        self.collect_defs(&iface.defs, path);
        path.pop();

        let mut bases = Vec::new();
        for base in &iface.bases {
            match self.lookup(&base.parts, path) {
                Some((key, Sym::Interface(_))) => bases.push(key),
                Some((key, _)) => self.err(format!("{key:?} is not an interface"), base.span),
                None => self.err(format!("unknown interface {:?}", base.dotted()), base.span),
            }
        }

        let mut ops = Vec::new();
        let iface_scope = {
            let mut p = path.clone();
            p.push(iface.name.clone());
            p
        };
        for op in &iface.ops {
            if ops.iter().any(|o: &ROp| o.name == op.name) {
                self.err(
                    format!("duplicate operation {:?} (IDL has no overloading)", op.name),
                    op.span,
                );
            }
            let ret = self.resolve_type(&op.ret, &iface_scope, op.span, TypePos::Return);
            let mut params = Vec::new();
            for p in &op.params {
                if params.iter().any(|q: &RParam| q.name == p.name) {
                    self.err(format!("duplicate parameter {:?}", p.name), p.span);
                }
                let pos = match p.dir {
                    Direction::In => TypePos::InParam,
                    Direction::Out => TypePos::OutParam,
                    Direction::InOut => TypePos::InOutParam,
                };
                let ty = self.resolve_type(&p.ty, &iface_scope, p.span, pos);
                let dir = match p.dir {
                    Direction::In => RDir::In,
                    Direction::Out => RDir::Out,
                    Direction::InOut => RDir::InOut,
                };
                if dir == RDir::InOut && ty.is_distributed() {
                    self.err("distributed sequences may be `in` or `out`, not `inout`", p.span);
                }
                params.push(RParam { dir, name: p.name.clone(), ty });
            }
            if op.oneway {
                if op.ret != TypeSpec::Void {
                    self.err("oneway operations must return void", op.span);
                }
                if op.params.iter().any(|p| p.dir != Direction::In) {
                    self.err("oneway operations may only have `in` parameters", op.span);
                }
                if !op.raises.is_empty() {
                    self.err("oneway operations cannot raise exceptions", op.span);
                }
            }
            let mut raises = Vec::new();
            for name in &op.raises {
                match self.lookup(&name.parts, &iface_scope) {
                    Some((key, Sym::Exception(_))) => raises.push(key),
                    Some((key, _)) => self.err(format!("{key:?} is not an exception"), name.span),
                    None => self.err(format!("unknown exception {:?}", name.dotted()), name.span),
                }
            }
            ops.push(ROp { name: op.name.clone(), oneway: op.oneway, ret, params, raises });
        }

        let idx = self.model.interfaces.len();
        if self.declare(path, &iface.name, Sym::Interface(idx), iface.span) {
            self.model.interfaces.push(RInterface {
                path: path.clone(),
                name: iface.name.clone(),
                bases,
                ops,
            });
            // Check inherited-op collisions now that the interface exists.
            let key = flat_key(path, &iface.name);
            let mut names: Vec<String> =
                self.model.all_ops(&key).iter().map(|o| o.name.clone()).collect();
            names.sort_unstable();
            for w in names.windows(2) {
                if w[0] == w[1] {
                    self.err(
                        format!(
                            "interface {} inherits or declares operation {:?} more than once",
                            iface.name, w[0]
                        ),
                        iface.span,
                    );
                }
            }
        }
    }

    /// Resolve a scoped name against the current module path, innermost
    /// scope first. Returns the flat key and symbol.
    fn lookup(&self, parts: &[String], path: &[String]) -> Option<(String, Sym)> {
        let suffix = parts.join("::");
        for depth in (0..=path.len()).rev() {
            let key = if depth == 0 {
                suffix.clone()
            } else {
                format!("{}::{}", path[..depth].join("::"), suffix)
            };
            if let Some(sym) = self.symbols.get(&key) {
                return Some((key, sym.clone()));
            }
        }
        None
    }

    fn eval_const(&mut self, e: &ConstExpr, path: &[String], span: Span) -> i128 {
        match e {
            ConstExpr::Int(v) => *v as i128,
            ConstExpr::Neg(inner) => -self.eval_const(inner, path, span),
            ConstExpr::Name(name) => match self.lookup(&name.parts, path) {
                Some((_, Sym::Const(idx))) => self.model.consts[idx].value,
                Some((key, _)) => {
                    self.err(format!("{key:?} is not a constant"), name.span);
                    0
                }
                None => {
                    self.err(format!("unknown constant {:?}", name.dotted()), name.span);
                    0
                }
            },
            ConstExpr::Binary { op, lhs, rhs } => {
                let l = self.eval_const(lhs, path, span);
                let r = self.eval_const(rhs, path, span);
                match op {
                    '+' => l.wrapping_add(r),
                    '-' => l.wrapping_sub(r),
                    '*' => l.wrapping_mul(r),
                    '/' => {
                        if r == 0 {
                            self.err("division by zero in constant expression", span);
                            0
                        } else {
                            l / r
                        }
                    }
                    other => unreachable!("parser only produces + - * /: {other}"),
                }
            }
        }
    }

    fn eval_bound(&mut self, e: &ConstExpr, path: &[String], span: Span) -> Option<u64> {
        let v = self.eval_const(e, path, span);
        if v <= 0 {
            self.err(format!("sequence bound must be positive, got {v}"), span);
            None
        } else if v > u32::MAX as i128 {
            self.err(format!("sequence bound {v} exceeds 2^32-1"), span);
            None
        } else {
            Some(v as u64)
        }
    }

    fn resolve_dist(&mut self, d: &DistSpec, path: &[String], span: Span) -> RDist {
        match d {
            DistSpec::Block => RDist::Block,
            DistSpec::Cyclic => RDist::Cyclic,
            DistSpec::Concentrated(None) => RDist::Concentrated(0),
            DistSpec::Concentrated(Some(e)) => {
                let v = self.eval_const(e, path, span);
                if v < 0 {
                    self.err("CONCENTRATED thread must be non-negative", span);
                    RDist::Concentrated(0)
                } else {
                    RDist::Concentrated(v as u64)
                }
            }
            DistSpec::BlockCyclic(e) => {
                let v = self.eval_const(e, path, span);
                if v <= 0 {
                    self.err("BLOCK_CYCLIC block size must be positive", span);
                    RDist::BlockCyclic(1)
                } else {
                    RDist::BlockCyclic(v as u64)
                }
            }
        }
    }

    fn resolve_type(&mut self, ty: &TypeSpec, path: &[String], span: Span, pos: TypePos) -> RType {
        let rty = match ty {
            TypeSpec::Void => RType::Void,
            TypeSpec::Boolean => RType::Boolean,
            TypeSpec::Octet => RType::Octet,
            TypeSpec::Char => RType::Char,
            TypeSpec::Short => RType::Short,
            TypeSpec::UShort => RType::UShort,
            TypeSpec::Long => RType::Long,
            TypeSpec::ULong => RType::ULong,
            TypeSpec::LongLong => RType::LongLong,
            TypeSpec::ULongLong => RType::ULongLong,
            TypeSpec::Float => RType::Float,
            TypeSpec::Double => RType::Double,
            TypeSpec::String => RType::String,
            TypeSpec::Sequence { elem, bound } => {
                let e = self.resolve_type(elem, path, span, TypePos::Element);
                if e.is_distributed() {
                    self.err("sequence elements may not be distributed", span);
                }
                let b = bound.as_ref().and_then(|b| self.eval_bound(b, path, span));
                RType::Sequence { elem: Box::new(e), bound: b }
            }
            TypeSpec::DSequence { elem, bound, client_dist, server_dist } => {
                let e = self.resolve_type(elem, path, span, TypePos::Element);
                if e.is_distributed() {
                    self.err("dsequence elements may not themselves be distributed", span);
                }
                let b = bound.as_ref().and_then(|b| self.eval_bound(b, path, span));
                RType::DSequence {
                    elem: Box::new(e),
                    bound: b,
                    client_dist: client_dist.as_ref().map(|d| self.resolve_dist(d, path, span)),
                    server_dist: server_dist.as_ref().map(|d| self.resolve_dist(d, path, span)),
                    pragmas: Vec::new(),
                }
            }
            TypeSpec::Array { elem, len } => {
                let e = self.resolve_type(elem, path, span, TypePos::Element);
                if e.is_distributed() {
                    self.err("array elements may not be distributed", span);
                }
                let n = self.eval_const(len, path, span);
                if n <= 0 || n > u32::MAX as i128 {
                    self.err(format!("array length must be in 1..2^32, got {n}"), span);
                    RType::Array { elem: Box::new(e), len: 1 }
                } else {
                    RType::Array { elem: Box::new(e), len: n as u64 }
                }
            }
            TypeSpec::Named(name) => match self.lookup(&name.parts, path) {
                Some((key, Sym::Alias(idx))) => {
                    // Aliases resolve structurally, so codegen always sees
                    // the underlying shape; the alias itself is also emitted
                    // as a Rust type alias.
                    let NamedType::Alias { ty, .. } = self.model.types[idx].clone() else {
                        unreachable!("alias index points at an alias");
                    };
                    let _ = key;
                    ty
                }
                Some((key, Sym::Struct(_))) => RType::StructRef(key),
                Some((key, Sym::Enum(_))) => RType::EnumRef(key),
                Some((key, Sym::Exception(_))) => {
                    self.err(
                        format!("exception {key:?} can only appear in a raises clause"),
                        name.span,
                    );
                    RType::Long
                }
                Some((key, Sym::Interface(_))) => RType::InterfaceRef(key),
                Some((key, Sym::Const(_))) => {
                    self.err(format!("{key:?} is a constant, not a type"), name.span);
                    RType::Long
                }
                Some((key, Sym::Module)) => {
                    self.err(format!("{key:?} is a module, not a type"), name.span);
                    RType::Long
                }
                None => {
                    self.err(format!("unknown type {:?}", name.dotted()), name.span);
                    RType::Long
                }
            },
        };

        // Positional legality for distributed sequences (§3.2: they are
        // argument containers for SPMD objects).
        if rty.is_distributed() {
            match pos {
                TypePos::InParam | TypePos::OutParam | TypePos::Typedef | TypePos::Element => {}
                TypePos::Return => {
                    self.err("operations may not return dsequence; use an out parameter", span)
                }
                TypePos::StructField => self.err("struct fields may not be distributed", span),
                TypePos::ConstType => self.err("constants may not be distributed", span),
                TypePos::InOutParam => {
                    self.err("distributed sequences may be `in` or `out`, not `inout`", span)
                }
            }
        }
        rty
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TypePos {
    Typedef,
    StructField,
    ConstType,
    Return,
    InParam,
    OutParam,
    InOutParam,
    Element,
}
