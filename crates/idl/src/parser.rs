//! Recursive-descent parser.

use crate::ast::*;
use crate::diag::{Diagnostic, Span};
use crate::lexer::{Tok, Token};

struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    /// Pragma directives seen but not yet attached to a typedef.
    pending_pragmas: Vec<PragmaMap>,
}

/// Parse a token stream into a [`Spec`].
pub fn parse(tokens: &[Token]) -> Result<Spec, Diagnostic> {
    let mut p = Parser { toks: tokens, pos: 0, pending_pragmas: Vec::new() };
    let mut defs = Vec::new();
    while !p.at_eof() {
        defs.push(p.definition()?);
    }
    if let Some(stray) = p.pending_pragmas.first() {
        return Err(Diagnostic::new("pragma mapping is not followed by a typedef", stray.span));
    }
    Ok(Spec { defs })
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn at_eof(&mut self) -> bool {
        self.absorb_pragmas_allowed();
        matches!(self.peek(), Tok::Eof)
    }

    /// Consume pragma tokens into the pending list wherever a definition
    /// could start.
    fn absorb_pragmas_allowed(&mut self) {
        while let Tok::Pragma(text) = self.peek().clone() {
            let span = self.span();
            self.pos += 1;
            // Expected form: System:native [extension...]
            if let Some((system, native)) = text.split_once(':') {
                self.pending_pragmas.push(PragmaMap {
                    system: system.trim().to_string(),
                    native: native.trim().to_string(),
                    span,
                });
            } else {
                // Unknown pragma: ignored, as real IDL compilers do.
            }
        }
    }

    fn bump(&mut self) -> Token {
        let t = self.toks[self.pos].clone();
        if !matches!(t.tok, Tok::Eof) {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<Span, Diagnostic> {
        if self.peek() == &tok {
            Ok(self.bump().span)
        } else {
            Err(Diagnostic::new(format!("expected {what}, found {:?}", self.peek()), self.span()))
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let span = self.span();
                self.bump();
                Ok((name, span))
            }
            other => Err(Diagnostic::new(format!("expected {what}, found {other:?}"), self.span())),
        }
    }

    /// Is the next token this keyword?
    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn definition(&mut self) -> Result<Def, Diagnostic> {
        self.absorb_pragmas_allowed();
        if self.at_kw("module") {
            self.module().map(Def::Module)
        } else if self.at_kw("interface") {
            self.interface().map(Def::Interface)
        } else if self.at_kw("typedef") {
            self.typedef().map(Def::Typedef)
        } else if self.at_kw("struct") {
            self.struct_def().map(Def::Struct)
        } else if self.at_kw("enum") {
            self.enum_def().map(Def::Enum)
        } else if self.at_kw("const") {
            self.const_def().map(Def::Const)
        } else if self.at_kw("exception") {
            self.exception_def().map(Def::Exception)
        } else {
            Err(Diagnostic::new(
                format!("expected a definition, found {:?}", self.peek()),
                self.span(),
            ))
        }
    }

    fn exception_def(&mut self) -> Result<ExceptionDef, Diagnostic> {
        self.bump(); // exception
        let (name, span) = self.ident("exception name")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut fields = Vec::new();
        while !matches!(self.peek(), Tok::RBrace) {
            let ty = self.type_spec(false)?;
            let (fname, _) = self.ident("member name")?;
            self.expect(Tok::Semi, "`;`")?;
            fields.push((ty, fname));
        }
        self.expect(Tok::RBrace, "`}`")?;
        self.expect(Tok::Semi, "`;`")?;
        Ok(ExceptionDef { name, fields, span })
    }

    fn module(&mut self) -> Result<Module, Diagnostic> {
        self.bump(); // module
        let (name, span) = self.ident("module name")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut defs = Vec::new();
        loop {
            self.absorb_pragmas_allowed();
            if matches!(self.peek(), Tok::RBrace) {
                break;
            }
            defs.push(self.definition()?);
        }
        self.expect(Tok::RBrace, "`}`")?;
        let _ = self.eat_semi();
        Ok(Module { name, defs, span })
    }

    fn eat_semi(&mut self) -> bool {
        if matches!(self.peek(), Tok::Semi) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn interface(&mut self) -> Result<Interface, Diagnostic> {
        self.bump(); // interface
        let (name, span) = self.ident("interface name")?;
        let mut bases = Vec::new();
        if matches!(self.peek(), Tok::Colon) {
            self.bump();
            loop {
                bases.push(self.scoped_name()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::LBrace, "`{`")?;
        let mut ops = Vec::new();
        let mut defs = Vec::new();
        loop {
            self.absorb_pragmas_allowed();
            if matches!(self.peek(), Tok::RBrace) {
                break;
            }
            if self.at_kw("typedef") {
                defs.push(Def::Typedef(self.typedef()?));
            } else if self.at_kw("const") {
                defs.push(Def::Const(self.const_def()?));
            } else if self.at_kw("struct") {
                defs.push(Def::Struct(self.struct_def()?));
            } else if self.at_kw("enum") {
                defs.push(Def::Enum(self.enum_def()?));
            } else if self.at_kw("exception") {
                defs.push(Def::Exception(self.exception_def()?));
            } else if self.at_kw("attribute") || self.at_kw("readonly") {
                ops.extend(self.attribute()?);
            } else {
                ops.push(self.op_decl()?);
            }
        }
        self.expect(Tok::RBrace, "`}`")?;
        if !self.eat_semi() {
            return Err(Diagnostic::new("interface must end with `;`", self.span()));
        }
        Ok(Interface { name, bases, ops, defs, span })
    }

    /// `attribute T name;` desugars to `_get_name` and `_set_name`
    /// operations (the CORBA mapping); `readonly attribute` drops the
    /// setter.
    fn attribute(&mut self) -> Result<Vec<OpDecl>, Diagnostic> {
        let readonly = self.eat_kw("readonly");
        if !self.eat_kw("attribute") {
            return Err(Diagnostic::new("`readonly` must introduce an attribute", self.span()));
        }
        let ty = self.type_spec(false)?;
        let (name, span) = self.ident("attribute name")?;
        self.expect(Tok::Semi, "`;`")?;
        let mut ops = vec![OpDecl {
            oneway: false,
            ret: ty.clone(),
            name: format!("_get_{name}"),
            params: vec![],
            raises: vec![],
            from_attr: true,
            span,
        }];
        if !readonly {
            ops.push(OpDecl {
                oneway: false,
                ret: TypeSpec::Void,
                name: format!("_set_{name}"),
                params: vec![Param { dir: Direction::In, ty, name: "value".to_string(), span }],
                raises: vec![],
                from_attr: true,
                span,
            });
        }
        Ok(ops)
    }

    fn op_decl(&mut self) -> Result<OpDecl, Diagnostic> {
        let oneway = self.eat_kw("oneway");
        let ret = self.type_spec(true)?;
        let (name, span) = self.ident("operation name")?;
        self.expect(Tok::LParen, "`(`")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::RParen) {
            loop {
                params.push(self.param()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(Tok::RParen, "`)`")?;
        let mut raises = Vec::new();
        if self.eat_kw("raises") {
            self.expect(Tok::LParen, "`(`")?;
            loop {
                raises.push(self.scoped_name()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(Tok::RParen, "`)`")?;
        }
        self.expect(Tok::Semi, "`;`")?;
        Ok(OpDecl { oneway, ret, name, params, raises, from_attr: false, span })
    }

    fn param(&mut self) -> Result<Param, Diagnostic> {
        let dir = if self.eat_kw("in") {
            Direction::In
        } else if self.eat_kw("out") {
            Direction::Out
        } else if self.eat_kw("inout") {
            Direction::InOut
        } else {
            return Err(Diagnostic::new(
                format!("expected `in`, `out` or `inout`, found {:?}", self.peek()),
                self.span(),
            ));
        };
        let ty = self.type_spec(false)?;
        let (name, span) = self.ident("parameter name")?;
        Ok(Param { dir, ty, name, span })
    }

    fn typedef(&mut self) -> Result<Typedef, Diagnostic> {
        let pragmas = std::mem::take(&mut self.pending_pragmas);
        self.bump(); // typedef
        let ty = self.type_spec(false)?;
        let (name, span) = self.ident("typedef name")?;
        let ty = self.array_suffix(ty)?;
        self.expect(Tok::Semi, "`;`")?;
        Ok(Typedef { name, ty, pragmas, span })
    }

    /// Parse trailing `[N]` declarator suffixes (IDL fixed arrays),
    /// outermost dimension first.
    fn array_suffix(&mut self, mut ty: TypeSpec) -> Result<TypeSpec, Diagnostic> {
        let mut dims = Vec::new();
        while let Tok::LBracket = self.peek() {
            self.bump();
            dims.push(self.const_expr()?);
            self.expect(Tok::RBracket, "`]`")?;
        }
        for len in dims.into_iter().rev() {
            ty = TypeSpec::Array { elem: Box::new(ty), len };
        }
        Ok(ty)
    }

    fn struct_def(&mut self) -> Result<StructDef, Diagnostic> {
        self.bump(); // struct
        let (name, span) = self.ident("struct name")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut fields = Vec::new();
        while !matches!(self.peek(), Tok::RBrace) {
            let ty = self.type_spec(false)?;
            let (fname, _) = self.ident("field name")?;
            let ty = self.array_suffix(ty)?;
            self.expect(Tok::Semi, "`;`")?;
            fields.push((ty, fname));
        }
        self.expect(Tok::RBrace, "`}`")?;
        self.expect(Tok::Semi, "`;`")?;
        Ok(StructDef { name, fields, span })
    }

    fn enum_def(&mut self) -> Result<EnumDef, Diagnostic> {
        self.bump(); // enum
        let (name, span) = self.ident("enum name")?;
        self.expect(Tok::LBrace, "`{`")?;
        let mut variants = Vec::new();
        loop {
            let (v, _) = self.ident("enum variant")?;
            variants.push(v);
            if matches!(self.peek(), Tok::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(Tok::RBrace, "`}`")?;
        self.expect(Tok::Semi, "`;`")?;
        Ok(EnumDef { name, variants, span })
    }

    fn const_def(&mut self) -> Result<ConstDef, Diagnostic> {
        self.bump(); // const
        let ty = self.type_spec(false)?;
        let (name, span) = self.ident("constant name")?;
        self.expect(Tok::Eq, "`=`")?;
        let value = self.const_expr()?;
        self.expect(Tok::Semi, "`;`")?;
        Ok(ConstDef { ty, name, value, span })
    }

    fn scoped_name(&mut self) -> Result<ScopedName, Diagnostic> {
        let (first, mut span) = self.ident("name")?;
        let mut parts = vec![first];
        while matches!(self.peek(), Tok::Scope) {
            self.bump();
            let (next, s) = self.ident("name after `::`")?;
            span = span.merge(s);
            parts.push(next);
        }
        Ok(ScopedName { parts, span })
    }

    fn type_spec(&mut self, allow_void: bool) -> Result<TypeSpec, Diagnostic> {
        let span = self.span();
        if self.eat_kw("void") {
            if allow_void {
                return Ok(TypeSpec::Void);
            }
            return Err(Diagnostic::new("`void` is only legal as a return type", span));
        }
        if self.eat_kw("boolean") {
            return Ok(TypeSpec::Boolean);
        }
        if self.eat_kw("octet") {
            return Ok(TypeSpec::Octet);
        }
        if self.eat_kw("char") {
            return Ok(TypeSpec::Char);
        }
        if self.eat_kw("float") {
            return Ok(TypeSpec::Float);
        }
        if self.eat_kw("double") {
            return Ok(TypeSpec::Double);
        }
        if self.eat_kw("string") {
            return Ok(TypeSpec::String);
        }
        if self.eat_kw("short") {
            return Ok(TypeSpec::Short);
        }
        if self.eat_kw("long") {
            return Ok(if self.eat_kw("long") { TypeSpec::LongLong } else { TypeSpec::Long });
        }
        if self.eat_kw("unsigned") {
            if self.eat_kw("short") {
                return Ok(TypeSpec::UShort);
            }
            if self.eat_kw("long") {
                return Ok(if self.eat_kw("long") { TypeSpec::ULongLong } else { TypeSpec::ULong });
            }
            return Err(Diagnostic::new(
                "`unsigned` must be followed by `short` or `long`",
                self.span(),
            ));
        }
        if self.eat_kw("sequence") {
            self.expect(Tok::Lt, "`<`")?;
            let elem = Box::new(self.type_spec(false)?);
            let bound = if matches!(self.peek(), Tok::Comma) {
                self.bump();
                Some(self.const_expr()?)
            } else {
                None
            };
            self.expect(Tok::Gt, "`>`")?;
            return Ok(TypeSpec::Sequence { elem, bound });
        }
        if self.eat_kw("dsequence") {
            self.expect(Tok::Lt, "`<`")?;
            let elem = Box::new(self.type_spec(false)?);
            let mut bound = None;
            let mut dists = Vec::new();
            while matches!(self.peek(), Tok::Comma) {
                self.bump();
                // A distribution keyword or a bound expression.
                if self.at_kw("BLOCK")
                    || self.at_kw("CYCLIC")
                    || self.at_kw("CONCENTRATED")
                    || self.at_kw("BLOCK_CYCLIC")
                {
                    dists.push(self.dist_spec()?);
                } else if bound.is_none() && dists.is_empty() {
                    bound = Some(self.const_expr()?);
                } else {
                    return Err(Diagnostic::new(
                        "expected a distribution specifier (BLOCK, CYCLIC, CONCENTRATED)",
                        self.span(),
                    ));
                }
            }
            if dists.len() > 2 {
                return Err(Diagnostic::new(
                    "dsequence takes at most two distribution specifiers (client, server)",
                    self.span(),
                ));
            }
            self.expect(Tok::Gt, "`>`")?;
            let mut it = dists.into_iter();
            return Ok(TypeSpec::DSequence {
                elem,
                bound,
                client_dist: it.next(),
                server_dist: it.next(),
            });
        }
        Ok(TypeSpec::Named(self.scoped_name()?))
    }

    fn dist_spec(&mut self) -> Result<DistSpec, Diagnostic> {
        if self.at_kw("BLOCK_CYCLIC") {
            self.bump();
            self.expect(Tok::LParen, "`(`")?;
            let e = self.const_expr()?;
            self.expect(Tok::RParen, "`)`")?;
            return Ok(DistSpec::BlockCyclic(e));
        }
        if self.eat_kw("BLOCK") {
            return Ok(DistSpec::Block);
        }
        if self.eat_kw("CYCLIC") {
            return Ok(DistSpec::Cyclic);
        }
        if self.eat_kw("CONCENTRATED") {
            let arg = if matches!(self.peek(), Tok::LParen) {
                self.bump();
                let e = self.const_expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Some(e)
            } else {
                None
            };
            return Ok(DistSpec::Concentrated(arg));
        }
        Err(Diagnostic::new("expected BLOCK, CYCLIC, CONCENTRATED or BLOCK_CYCLIC", self.span()))
    }

    /// `expr := term (('+'|'-') term)*`, `term := factor (('*'|'/') factor)*`
    fn const_expr(&mut self) -> Result<ConstExpr, Diagnostic> {
        let mut lhs = self.const_term()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => '+',
                Tok::Minus => '-',
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.const_term()?;
            lhs = ConstExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn const_term(&mut self) -> Result<ConstExpr, Diagnostic> {
        let mut lhs = self.const_factor()?;
        loop {
            let op = match self.peek() {
                Tok::Star => '*',
                Tok::Slash => '/',
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.const_factor()?;
            lhs = ConstExpr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
    }

    fn const_factor(&mut self) -> Result<ConstExpr, Diagnostic> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(ConstExpr::Int(v))
            }
            Tok::Minus => {
                self.bump();
                Ok(ConstExpr::Neg(Box::new(self.const_factor()?)))
            }
            Tok::LParen => {
                self.bump();
                let e = self.const_expr()?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(e)
            }
            Tok::Ident(_) => Ok(ConstExpr::Name(self.scoped_name()?)),
            other => Err(Diagnostic::new(
                format!("expected a constant expression, found {other:?}"),
                self.span(),
            )),
        }
    }
}
