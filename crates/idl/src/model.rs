//! The resolved model handed to the code generator.

use crate::ast::PragmaMap;

/// A fully resolved distribution template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RDist {
    /// `BLOCK`.
    Block,
    /// `CYCLIC`.
    Cyclic,
    /// `CONCENTRATED(k)` (default thread 0).
    Concentrated(u64),
    /// `BLOCK_CYCLIC(b)`.
    BlockCyclic(u64),
}

/// A fully resolved type.
#[derive(Debug, Clone, PartialEq)]
pub enum RType {
    /// `void` (return position only).
    Void,
    /// `boolean`.
    Boolean,
    /// `octet`.
    Octet,
    /// `char`.
    Char,
    /// `short`.
    Short,
    /// `unsigned short`.
    UShort,
    /// `long`.
    Long,
    /// `unsigned long`.
    ULong,
    /// `long long`.
    LongLong,
    /// `unsigned long long`.
    ULongLong,
    /// `float`.
    Float,
    /// `double`.
    Double,
    /// `string`.
    String,
    /// `sequence<elem, bound?>`.
    Sequence {
        /// Element type.
        elem: Box<RType>,
        /// Evaluated bound.
        bound: Option<u64>,
    },
    /// `dsequence<elem, ...>` with evaluated bound and defaults.
    DSequence {
        /// Element type.
        elem: Box<RType>,
        /// Evaluated bound.
        bound: Option<u64>,
        /// Declared client-side default distribution.
        client_dist: Option<RDist>,
        /// Declared server-side default distribution.
        server_dist: Option<RDist>,
        /// Pragma mappings inherited from the declaring typedef
        /// (`#pragma POOMA:field` etc.).
        pragmas: Vec<PragmaMap>,
    },
    /// Fixed-size array.
    Array {
        /// Element type.
        elem: Box<RType>,
        /// Evaluated length.
        len: u64,
    },
    /// Reference to a named struct (by flat model name).
    StructRef(String),
    /// Reference to a named enum.
    EnumRef(String),
    /// Object reference to an interface.
    InterfaceRef(String),
}

impl RType {
    /// Does this type (or anything it contains) involve a distributed
    /// sequence?
    pub fn is_distributed(&self) -> bool {
        matches!(self, RType::DSequence { .. })
    }
}

/// A resolved named type definition.
#[derive(Debug, Clone, PartialEq)]
pub enum NamedType {
    /// `typedef` alias.
    Alias {
        /// Module path.
        path: Vec<String>,
        /// IDL name.
        name: String,
        /// Resolved aliased type.
        ty: RType,
    },
    /// Struct definition.
    Struct {
        /// Module path.
        path: Vec<String>,
        /// IDL name.
        name: String,
        /// Resolved fields.
        fields: Vec<(String, RType)>,
    },
    /// Enum definition.
    Enum {
        /// Module path.
        path: Vec<String>,
        /// IDL name.
        name: String,
        /// Variant labels.
        variants: Vec<String>,
    },
    /// Exception definition (only usable in `raises` clauses).
    Exception {
        /// Module path.
        path: Vec<String>,
        /// IDL name (the repository id).
        name: String,
        /// Resolved members.
        fields: Vec<(String, RType)>,
    },
}

impl NamedType {
    /// Flat `path::name` key.
    pub fn key(&self) -> String {
        let (path, name) = match self {
            NamedType::Alias { path, name, .. }
            | NamedType::Struct { path, name, .. }
            | NamedType::Enum { path, name, .. }
            | NamedType::Exception { path, name, .. } => (path, name),
        };
        flat_key(path, name)
    }
}

/// Join a path and name into the flat key used across the model.
pub fn flat_key(path: &[String], name: &str) -> String {
    if path.is_empty() {
        name.to_string()
    } else {
        format!("{}::{}", path.join("::"), name)
    }
}

/// Parameter direction (resolved).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RDir {
    /// Client → server.
    In,
    /// Server → client.
    Out,
    /// Both (scalar types only).
    InOut,
}

/// A resolved parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct RParam {
    /// Direction.
    pub dir: RDir,
    /// Name.
    pub name: String,
    /// Type.
    pub ty: RType,
}

/// A resolved operation.
#[derive(Debug, Clone, PartialEq)]
pub struct ROp {
    /// Name.
    pub name: String,
    /// `oneway` (no reply).
    pub oneway: bool,
    /// Return type.
    pub ret: RType,
    /// Parameters in declaration order.
    pub params: Vec<RParam>,
    /// Flat keys of the exceptions this operation may raise.
    pub raises: Vec<String>,
}

impl ROp {
    /// Does any parameter use a distributed type?
    pub fn has_distributed(&self) -> bool {
        self.params.iter().any(|p| p.ty.is_distributed())
    }
}

/// A resolved interface.
#[derive(Debug, Clone, PartialEq)]
pub struct RInterface {
    /// Module path.
    pub path: Vec<String>,
    /// IDL name (also the interface repository id).
    pub name: String,
    /// Flat keys of direct bases.
    pub bases: Vec<String>,
    /// Own operations, declaration order.
    pub ops: Vec<ROp>,
}

impl RInterface {
    /// Flat key.
    pub fn key(&self) -> String {
        flat_key(&self.path, &self.name)
    }
}

/// A resolved constant.
#[derive(Debug, Clone, PartialEq)]
pub struct RConst {
    /// Module path.
    pub path: Vec<String>,
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: RType,
    /// Evaluated value.
    pub value: i128,
}

/// The resolved compilation unit.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Model {
    /// Named types in source order.
    pub types: Vec<NamedType>,
    /// Interfaces in source order.
    pub interfaces: Vec<RInterface>,
    /// Constants in source order.
    pub consts: Vec<RConst>,
}

impl Model {
    /// Find an interface by flat key.
    pub fn interface(&self, key: &str) -> Option<&RInterface> {
        self.interfaces.iter().find(|i| i.key() == key)
    }

    /// All operations of an interface including inherited ones
    /// (base-first, declaration order).
    pub fn all_ops(&self, key: &str) -> Vec<&ROp> {
        let mut out = Vec::new();
        if let Some(iface) = self.interface(key) {
            for base in &iface.bases {
                out.extend(self.all_ops(base));
            }
            out.extend(iface.ops.iter());
        }
        out
    }
}
