//! The IDL lexer.

use crate::diag::{Diagnostic, Span};

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognised by the parser).
    Ident(String),
    /// Integer literal (decimal, hex `0x`, or octal `0`-prefixed).
    Int(u64),
    /// Floating literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// `#pragma` line: everything after `#pragma`, trimmed.
    Pragma(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `::`
    Scope,
    /// `:`
    Colon,
    /// `=`
    Eq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Source location.
    pub span: Span,
}

/// Tokenise IDL source.
pub fn lex(source: &str) -> Result<Vec<Token>, Diagnostic> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    let n = bytes.len();

    while i < n {
        let c = bytes[i] as char;
        let start = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
            }
            '/' if i + 1 < n && bytes[i + 1] == b'/' => {
                while i < n && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if i + 1 < n && bytes[i + 1] == b'*' => {
                i += 2;
                loop {
                    if i + 1 >= n {
                        return Err(Diagnostic::new(
                            "unterminated block comment",
                            Span::new(start, n),
                        ));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '#' => {
                // Directive line; only #pragma is meaningful.
                let line_end = source[i..].find('\n').map(|o| i + o).unwrap_or(n);
                let line = &source[i..line_end];
                if let Some(rest) = line.strip_prefix("#pragma") {
                    tokens.push(Token {
                        tok: Tok::Pragma(rest.trim().to_string()),
                        span: Span::new(start, line_end),
                    });
                } else {
                    return Err(Diagnostic::new(
                        format!("unsupported directive {line:?}"),
                        Span::new(start, line_end),
                    ));
                }
                i = line_end;
            }
            '"' => {
                let mut out = String::new();
                i += 1;
                loop {
                    if i >= n {
                        return Err(Diagnostic::new(
                            "unterminated string literal",
                            Span::new(start, n),
                        ));
                    }
                    match bytes[i] as char {
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\\' if i + 1 < n => {
                            out.push(match bytes[i + 1] as char {
                                'n' => '\n',
                                't' => '\t',
                                other => other,
                            });
                            i += 2;
                        }
                        ch => {
                            out.push(ch);
                            i += ch.len_utf8();
                        }
                    }
                }
                tokens.push(Token { tok: Tok::Str(out), span: Span::new(start, i) });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                while i < n && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push(Token {
                    tok: Tok::Ident(source[start..i].to_string()),
                    span: Span::new(start, i),
                });
            }
            c if c.is_ascii_digit() => {
                while i < n && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'.') {
                    i += 1;
                }
                let text = &source[start..i];
                let tok = if text.contains('.')
                    || (text.contains(['e', 'E']) && !text.starts_with("0x"))
                {
                    Tok::Float(text.parse().map_err(|_| {
                        Diagnostic::new(format!("bad float literal {text:?}"), Span::new(start, i))
                    })?)
                } else if let Some(hex) = text.strip_prefix("0x").or(text.strip_prefix("0X")) {
                    Tok::Int(u64::from_str_radix(hex, 16).map_err(|_| {
                        Diagnostic::new(format!("bad hex literal {text:?}"), Span::new(start, i))
                    })?)
                } else if text.len() > 1 && text.starts_with('0') {
                    Tok::Int(u64::from_str_radix(&text[1..], 8).map_err(|_| {
                        Diagnostic::new(format!("bad octal literal {text:?}"), Span::new(start, i))
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|_| {
                        Diagnostic::new(
                            format!("bad integer literal {text:?}"),
                            Span::new(start, i),
                        )
                    })?)
                };
                tokens.push(Token { tok, span: Span::new(start, i) });
            }
            ':' => {
                if i + 1 < n && bytes[i + 1] == b':' {
                    tokens.push(Token { tok: Tok::Scope, span: Span::new(start, i + 2) });
                    i += 2;
                } else {
                    tokens.push(Token { tok: Tok::Colon, span: Span::new(start, i + 1) });
                    i += 1;
                }
            }
            _ => {
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    '<' => Tok::Lt,
                    '>' => Tok::Gt,
                    ';' => Tok::Semi,
                    ',' => Tok::Comma,
                    '=' => Tok::Eq,
                    '+' => Tok::Plus,
                    '-' => Tok::Minus,
                    '*' => Tok::Star,
                    '/' => Tok::Slash,
                    other => {
                        return Err(Diagnostic::new(
                            format!("unexpected character {other:?}"),
                            Span::new(start, start + other.len_utf8()),
                        ))
                    }
                };
                tokens.push(Token { tok, span: Span::new(start, i + 1) });
                i += 1;
            }
        }
    }
    tokens.push(Token { tok: Tok::Eof, span: Span::new(n, n) });
    Ok(tokens)
}
