//! §4.1 / figure 2 — direct and iterative linear-system solvers as SPMD
//! objects.
//!
//! The direct method is dense Gaussian elimination without pivoting over
//! row-cyclic distributed matrices (stable for the diagonally dominant
//! systems the generator produces); the iterative method is Jacobi over
//! row-block matrices, run to a caller-supplied tolerance. Both are
//! parallelised over the run-time system exactly as a mid-90s
//! message-passing code would be: broadcast of the pivot row, all-gather of
//! the iterate.

use crate::ServerHandle;
use bytes::Bytes;
use pardis::core::{DSequence, DistPolicy, Distribution, Orb, ServantCtx};
use pardis::generated::solvers::{DirectImpl, DirectSkel, IterativeImpl, IterativeSkel};
use pardis::netsim::HostId;
use pardis::rts::{tags, MpiRts, ReduceOp, Rts, World};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Generate a dense diagonally dominant system `(A, b)` of size `n`
/// (deterministic in `seed`). Diagonal dominance makes both pivot-free
/// elimination and Jacobi well-behaved.
pub fn gen_system(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut a = Vec::with_capacity(n);
    for i in 0..n {
        // Positive off-diagonal entries: with mixed signs Jacobi's errors
        // cancel and it converges in a handful of sweeps; all-positive rows
        // with a thin dominance margin give the few-hundred-sweep behaviour
        // of a real mid-90s iterative workload.
        let mut row: Vec<f64> = (0..n).map(|_| rng.random_range(0.1..1.0)).collect();
        let off: f64 = row.iter().map(|v| v.abs()).sum::<f64>() - row[i].abs();
        row[i] = 1.005 * off + 0.1;
        a.push(row);
    }
    let b: Vec<f64> = (0..n).map(|_| rng.random_range(-10.0..10.0)).collect();
    (a, b)
}

/// Sequential Gaussian elimination (no pivoting) — the reference the
/// parallel solvers are tested against.
pub fn solve_seq(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
    let n = b.len();
    let mut a: Vec<Vec<f64>> = a.to_vec();
    let mut b: Vec<f64> = b.to_vec();
    for k in 0..n {
        let (pivot_rows, rest) = a.split_at_mut(k + 1);
        let pivot = &pivot_rows[k];
        for (off, row) in rest.iter_mut().enumerate() {
            let f = row[k] / pivot[k];
            for (rj, pj) in row[k..n].iter_mut().zip(&pivot[k..n]) {
                *rj -= f * pj;
            }
            b[k + 1 + off] -= f * b[k];
        }
    }
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let s: f64 = (k + 1..n).map(|j| a[k][j] * x[j]).sum();
        x[k] = (b[k] - s) / a[k][k];
    }
    x
}

/// Tags for solver-internal communication (user band — application traffic,
/// separate from ORB traffic per §2.2).
const GE_ROW_TAG: u64 = 0x0501;
const GE_X_TAG: u64 = 0x0502;

fn pack_row(row: &[f64], bk: f64) -> Bytes {
    let mut out = Vec::with_capacity(row.len() * 8 + 8);
    for v in row {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out.extend_from_slice(&bk.to_be_bytes());
    Bytes::from(out)
}

fn unpack_row(data: &[u8]) -> (Vec<f64>, f64) {
    let n = data.len() / 8 - 1;
    let mut row = Vec::with_capacity(n);
    for chunk in data[..n * 8].chunks_exact(8) {
        row.push(f64::from_be_bytes(chunk.try_into().expect("8-byte chunk")));
    }
    let bk = f64::from_be_bytes(data[n * 8..].try_into().expect("8-byte tail"));
    (row, bk)
}

/// Parallel Gaussian elimination over row-cyclic data. Collective. Each
/// thread holds the rows `i` with `i % P == rank`, in ascending order;
/// returns the full solution vector on every thread.
pub fn ge_solve_cyclic(
    rts: &dyn Rts,
    n: usize,
    my_rows: &mut [Vec<f64>],
    my_b: &mut [f64],
) -> Vec<f64> {
    let p = rts.size();
    let me = rts.rank();
    debug_assert!(tags::is_user(GE_ROW_TAG));

    // Forward elimination.
    for k in 0..n {
        let owner = k % p;
        let (pivot_row, pivot_b) = if owner == me {
            let local_k = k / p;
            let data = pack_row(&my_rows[local_k], my_b[local_k]);
            // Hand the pivot row to everyone else.
            for t in 0..p {
                if t != me {
                    rts.send(t, GE_ROW_TAG, data.clone());
                }
            }
            (my_rows[local_k].clone(), my_b[local_k])
        } else {
            let msg = rts.recv(Some(owner), GE_ROW_TAG);
            unpack_row(&msg.data)
        };
        // Eliminate column k from my rows below k.
        let first_local = if me > k % p { k / p } else { k / p + 1 };
        for li in first_local..my_rows.len() {
            let gi = li * p + me;
            if gi <= k {
                continue;
            }
            let f = my_rows[li][k] / pivot_row[k];
            if f != 0.0 {
                let row = &mut my_rows[li];
                for (rj, pj) in row[k..n].iter_mut().zip(&pivot_row[k..n]) {
                    *rj -= f * pj;
                }
                my_b[li] -= f * pivot_b;
            }
        }
    }

    // Back substitution: x_k computed by the owner, shipped to everyone.
    let mut x = vec![0.0; n];
    for k in (0..n).rev() {
        let owner = k % p;
        if owner == me {
            let local_k = k / p;
            let s: f64 = (k + 1..n).map(|j| my_rows[local_k][j] * x[j]).sum();
            x[k] = (my_b[local_k] - s) / my_rows[local_k][k];
            let data = Bytes::copy_from_slice(&x[k].to_be_bytes());
            for t in 0..p {
                if t != me {
                    rts.send(t, GE_X_TAG, data.clone());
                }
            }
        } else {
            let msg = rts.recv(Some(owner), GE_X_TAG);
            x[k] = f64::from_be_bytes(msg.data[..8].try_into().expect("8 bytes"));
        }
    }
    x
}

/// Parallel Jacobi over row-block data. Collective. Iterates until the
/// max-norm update drops below `tol` (or `max_iters`); returns the full
/// solution on every thread plus the iteration count.
pub fn jacobi_solve_block(
    rts: &dyn Rts,
    n: usize,
    my_rows: &[Vec<f64>],
    my_b: &[f64],
    first_row: usize,
    tol: f64,
    max_iters: usize,
) -> (Vec<f64>, usize) {
    let mut x = vec![0.0; n];
    for iter in 1..=max_iters {
        // Local sweep.
        let mut local_new = Vec::with_capacity(my_rows.len());
        let mut local_delta: f64 = 0.0;
        for (li, row) in my_rows.iter().enumerate() {
            let gi = first_row + li;
            let mut s = my_b[li];
            for (j, v) in row.iter().enumerate() {
                if j != gi {
                    s -= v * x[j];
                }
            }
            let xi = s / row[gi];
            local_delta = local_delta.max((xi - x[gi]).abs());
            local_new.push(xi);
        }
        // Assemble the full iterate.
        let mut packed = Vec::with_capacity(local_new.len() * 8);
        for v in &local_new {
            packed.extend_from_slice(&v.to_be_bytes());
        }
        let parts = rts.all_gather(Bytes::from(packed));
        let mut pos = 0;
        for part in parts {
            for chunk in part.chunks_exact(8) {
                x[pos] = f64::from_be_bytes(chunk.try_into().expect("8-byte chunk"));
                pos += 1;
            }
        }
        debug_assert_eq!(pos, n, "gathered iterate covers the vector");
        let delta = rts.all_reduce_f64(local_delta, ReduceOp::Max);
        if delta < tol {
            return (x, iter);
        }
    }
    (x, max_iters)
}

/// Models the compute speed of a mid-90s host: after the (fast, modern)
/// real computation, the servant sleeps out the remainder of the modelled
/// duration `flops / flops_per_sec * time_scale`. Sleeps overlap across
/// threads and processes, so the paper's concurrency effects (overlap of
/// the two solvers, serialisation on a shared server) reproduce on any
/// machine — including single-core CI boxes where real compute cannot
/// overlap.
#[derive(Debug, Clone, Copy)]
pub struct ComputePace {
    /// Modelled per-processor floating-point rate (the paper's R4400s and
    /// R8000s were tens of MFLOP/s).
    pub flops_per_sec: f64,
    /// Global scale applied to the modelled duration (match the netsim
    /// [`pardis::netsim::TimeScale`]).
    pub time_scale: f64,
}

impl ComputePace {
    /// Sleep out whatever the real computation left of the modelled time.
    pub fn charge(&self, flops: f64, already_spent: std::time::Duration) {
        let modelled = flops / self.flops_per_sec * self.time_scale;
        let remaining = modelled - already_spent.as_secs_f64();
        if remaining > 0.0 {
            std::thread::sleep(std::time::Duration::from_secs_f64(remaining));
        }
    }
}

/// The direct-solver servant (implements the generated `direct` skeleton).
#[derive(Default)]
pub struct DirectSolver {
    /// Optional modelled compute speed (see [`ComputePace`]).
    pub pace: Option<ComputePace>,
}

impl DirectImpl for DirectSolver {
    fn solve(
        &self,
        ctx: &ServantCtx,
        a: DSequence<Vec<f64>>,
        b: DSequence<f64>,
    ) -> Result<(DSequence<f64>,), String> {
        let n = a.len() as usize;
        if b.len() as usize != n {
            return Err(format!("matrix is {n} rows but vector has {} entries", b.len()));
        }
        let start = std::time::Instant::now();
        let mut my_rows: Vec<Vec<f64>> = a.local().to_vec();
        let mut my_b: Vec<f64> = b.local().to_vec();
        let x = if ctx.nthreads == 1 {
            solve_seq(&my_rows, &my_b)
        } else {
            ge_solve_cyclic(ctx.rts().as_ref(), n, &mut my_rows, &mut my_b)
        };
        if let Some(pace) = &self.pace {
            // Elimination is ~n^3/3 flops, split over the computing threads.
            let flops = (n as f64).powi(3) / 3.0 / ctx.nthreads as f64;
            pace.charge(flops, start.elapsed());
        }
        // Return this thread's block of the (replicated) solution.
        let out = DSequence::distribute(&x, Distribution::Block, ctx.nthreads, ctx.thread);
        Ok((out,))
    }
}

/// The iterative-solver servant (implements the generated `iterative`
/// skeleton).
pub struct IterativeSolver {
    /// Iteration cap (guards against non-convergent inputs).
    pub max_iters: usize,
    /// Optional modelled compute speed (see [`ComputePace`]).
    pub pace: Option<ComputePace>,
}

impl Default for IterativeSolver {
    fn default() -> Self {
        IterativeSolver { max_iters: 20_000, pace: None }
    }
}

impl IterativeImpl for IterativeSolver {
    fn solve(
        &self,
        ctx: &ServantCtx,
        tol: f64,
        a: DSequence<Vec<f64>>,
        b: DSequence<f64>,
    ) -> Result<(DSequence<f64>,), String> {
        let n = a.len() as usize;
        if b.len() as usize != n {
            return Err(format!("matrix is {n} rows but vector has {} entries", b.len()));
        }
        let start = std::time::Instant::now();
        let first_row = a.my_runs().first().map(|r| r.start as usize).unwrap_or(0);
        let my_rows: Vec<Vec<f64>> = a.local().to_vec();
        let my_b: Vec<f64> = b.local().to_vec();
        let (x, iters) = if ctx.nthreads == 1 {
            jacobi_solve_block(&NullRts, n, &my_rows, &my_b, first_row, tol, self.max_iters)
        } else {
            jacobi_solve_block(
                ctx.rts().as_ref(),
                n,
                &my_rows,
                &my_b,
                first_row,
                tol,
                self.max_iters,
            )
        };
        if let Some(pace) = &self.pace {
            // Each sweep is ~2n^2 flops, split over the computing threads.
            let flops = 2.0 * (n as f64).powi(2) * iters as f64 / ctx.nthreads as f64;
            pace.charge(flops, start.elapsed());
        }
        let out = DSequence::distribute(&x, Distribution::Block, ctx.nthreads, ctx.thread);
        Ok((out,))
    }
}

/// Distribution policy the direct server publishes: row-cyclic matrix and
/// vector (what elimination wants delivered).
pub fn direct_policy() -> DistPolicy {
    DistPolicy::new().with("solve", 0, Distribution::Cyclic).with("solve", 1, Distribution::Cyclic)
}

/// Distribution policy the iterative server publishes: row-block (what
/// Jacobi wants delivered). Block is the default, so this is explicit
/// documentation more than configuration.
pub fn iterative_policy() -> DistPolicy {
    DistPolicy::new().with("solve", 1, Distribution::Block).with("solve", 2, Distribution::Block)
}

/// Launch a direct-solver server with `nthreads` computing threads on
/// `host`, registering object `name`.
pub fn spawn_direct_server(orb: &Orb, host: HostId, name: &str, nthreads: usize) -> ServerHandle {
    spawn_direct_server_paced(orb, host, name, nthreads, None)
}

/// [`spawn_direct_server`] with a modelled compute speed.
pub fn spawn_direct_server_paced(
    orb: &Orb,
    host: HostId,
    name: &str,
    nthreads: usize,
    pace: Option<ComputePace>,
) -> ServerHandle {
    let group = pardis::core::ServerGroup::create(orb, "direct-server", host, nthreads);
    let g = group.clone();
    let name = name.to_string();
    let chk = pardis::check::for_world(nthreads);
    let join = std::thread::spawn(move || {
        World::run(nthreads, |rank| {
            let t = rank.rank();
            let rts = pardis::check::wrap_if(&chk, Arc::new(MpiRts::new(rank)));
            let mut poa = g.attach(t, Some(rts));
            poa.activate_spmd(&name, Arc::new(DirectSkel(DirectSolver { pace })), direct_policy());
            poa.impl_is_ready();
        });
        pardis::check::enforce(&chk);
    });
    ServerHandle::new(group, join)
}

/// Launch an iterative-solver server.
pub fn spawn_iterative_server(
    orb: &Orb,
    host: HostId,
    name: &str,
    nthreads: usize,
) -> ServerHandle {
    spawn_iterative_server_paced(orb, host, name, nthreads, None)
}

/// [`spawn_iterative_server`] with a modelled compute speed.
pub fn spawn_iterative_server_paced(
    orb: &Orb,
    host: HostId,
    name: &str,
    nthreads: usize,
    pace: Option<ComputePace>,
) -> ServerHandle {
    let group = pardis::core::ServerGroup::create(orb, "iterative-server", host, nthreads);
    let g = group.clone();
    let name = name.to_string();
    let chk = pardis::check::for_world(nthreads);
    let join = std::thread::spawn(move || {
        World::run(nthreads, |rank| {
            let t = rank.rank();
            let rts = pardis::check::wrap_if(&chk, Arc::new(MpiRts::new(rank)));
            let mut poa = g.attach(t, Some(rts));
            poa.activate_spmd(
                &name,
                Arc::new(IterativeSkel(IterativeSolver { pace, ..Default::default() })),
                iterative_policy(),
            );
            poa.impl_is_ready();
        });
        pardis::check::enforce(&chk);
    });
    ServerHandle::new(group, join)
}

/// Launch one parallel server hosting *both* solver objects — the paper's
/// single-server configuration, where the two invocations share the same
/// computing threads and therefore serialise.
pub fn spawn_combined_server(
    orb: &Orb,
    host: HostId,
    direct_name: &str,
    iterative_name: &str,
    nthreads: usize,
) -> ServerHandle {
    spawn_combined_server_paced(orb, host, direct_name, iterative_name, nthreads, None)
}

/// [`spawn_combined_server`] with a modelled compute speed.
pub fn spawn_combined_server_paced(
    orb: &Orb,
    host: HostId,
    direct_name: &str,
    iterative_name: &str,
    nthreads: usize,
    pace: Option<ComputePace>,
) -> ServerHandle {
    let group = pardis::core::ServerGroup::create(orb, "combined-solver-server", host, nthreads);
    let g = group.clone();
    let dn = direct_name.to_string();
    let itn = iterative_name.to_string();
    let chk = pardis::check::for_world(nthreads);
    let join = std::thread::spawn(move || {
        World::run(nthreads, |rank| {
            let t = rank.rank();
            let rts = pardis::check::wrap_if(&chk, Arc::new(MpiRts::new(rank)));
            let mut poa = g.attach(t, Some(rts));
            poa.activate_spmd(&dn, Arc::new(DirectSkel(DirectSolver { pace })), direct_policy());
            poa.activate_spmd(
                &itn,
                Arc::new(IterativeSkel(IterativeSolver { pace, ..Default::default() })),
                iterative_policy(),
            );
            poa.impl_is_ready();
        });
        pardis::check::enforce(&chk);
    });
    ServerHandle::new(group, join)
}

/// Max-norm distance between two distributed vectors sharing a
/// distribution (collective when `rts` spans several threads) — the
/// client-side `compute_difference` of §4.1.
pub fn compute_difference(x1: &DSequence<f64>, x2: &DSequence<f64>, rts: Option<&dyn Rts>) -> f64 {
    assert_eq!(x1.len(), x2.len(), "vectors differ in length");
    let local =
        x1.local().iter().zip(x2.local().iter()).map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
    match rts {
        Some(rts) if rts.size() > 1 => rts.all_reduce_f64(local, ReduceOp::Max),
        _ => local,
    }
}

/// A 1-thread RTS stand-in for sequential servant paths.
struct NullRts;

impl Rts for NullRts {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn send(&self, _to: usize, _tag: u64, _data: Bytes) {
        unreachable!("NullRts never communicates")
    }
    fn recv(&self, _from: Option<usize>, _tag: u64) -> pardis::rts::Msg {
        unreachable!("NullRts never communicates")
    }
    fn recv_timeout(
        &self,
        _from: Option<usize>,
        _tag: u64,
        _timeout: std::time::Duration,
    ) -> Option<pardis::rts::Msg> {
        None
    }
    fn try_recv(&self, _from: Option<usize>, _tag: u64) -> Option<pardis::rts::Msg> {
        None
    }
    fn barrier(&self) {}
    fn broadcast(&self, _root: usize, data: Option<Bytes>) -> Bytes {
        data.expect("single-rank broadcast")
    }
    fn gather(&self, _root: usize, part: Bytes) -> Option<Vec<Bytes>> {
        Some(vec![part])
    }
    fn scatter(&self, _root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        parts.expect("single-rank scatter").remove(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_diagonally_dominant_and_deterministic() {
        let (a, b) = gen_system(40, 7);
        let (a2, b2) = gen_system(40, 7);
        assert_eq!(a, a2);
        assert_eq!(b, b2);
        for (i, row) in a.iter().enumerate() {
            let off: f64 =
                row.iter().enumerate().filter(|(j, _)| *j != i).map(|(_, v)| v.abs()).sum();
            assert!(row[i].abs() > off, "row {i} not dominant");
        }
    }

    #[test]
    fn sequential_ge_solves() {
        let (a, b) = gen_system(30, 1);
        let x = solve_seq(&a, &b);
        for (i, row) in a.iter().enumerate() {
            let ax: f64 = row.iter().zip(&x).map(|(r, v)| r * v).sum();
            assert!((ax - b[i]).abs() < 1e-8, "residual {} at row {i}", ax - b[i]);
        }
    }

    #[test]
    fn parallel_ge_matches_sequential() {
        let (a, b) = gen_system(37, 2);
        let expect = solve_seq(&a, &b);
        for p in [1usize, 2, 3, 4] {
            let (a, b, expect) = (a.clone(), b.clone(), expect.clone());
            let out = World::run(p, move |rank| {
                let me = rank.rank();
                let rts = MpiRts::new(rank);
                let mut my_rows: Vec<Vec<f64>> = a
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % p == me)
                    .map(|(_, r)| r.clone())
                    .collect();
                let mut my_b: Vec<f64> =
                    b.iter().enumerate().filter(|(i, _)| i % p == me).map(|(_, v)| *v).collect();
                ge_solve_cyclic(&rts, a.len(), &mut my_rows, &mut my_b)
            });
            for x in out {
                for (got, want) in x.iter().zip(expect.iter()) {
                    assert!((got - want).abs() < 1e-8, "p={p}: {got} vs {want}");
                }
            }
        }
    }

    #[test]
    fn parallel_jacobi_converges_to_ge_solution() {
        let (a, b) = gen_system(25, 3);
        let expect = solve_seq(&a, &b);
        for p in [1usize, 3] {
            let (a, b, expect) = (a.clone(), b.clone(), expect.clone());
            let out = World::run(p, move |rank| {
                let me = rank.rank();
                let rts = MpiRts::new(rank);
                let n = a.len();
                let base = n / p;
                let extra = n % p;
                let first = if me < extra {
                    me * (base + 1)
                } else {
                    extra * (base + 1) + (me - extra) * base
                };
                let count = base + usize::from(me < extra);
                let my_rows: Vec<Vec<f64>> = a[first..first + count].to_vec();
                let my_b: Vec<f64> = b[first..first + count].to_vec();
                let (x, iters) = jacobi_solve_block(&rts, n, &my_rows, &my_b, first, 1e-10, 10_000);
                assert!(iters < 10_000, "did not converge");
                (x, expect.clone())
            });
            for (x, expect) in out {
                for (got, want) in x.iter().zip(expect.iter()) {
                    assert!((got - want).abs() < 1e-6, "p={p}: {got} vs {want}");
                }
            }
        }
    }
}
