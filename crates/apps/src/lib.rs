//! pardis-apps — the evaluation workloads of the PARDIS paper.
//!
//! Three metaapplications, one per figure of §4:
//!
//! * [`solvers`] — §4.1 / figure 2: a direct (Gaussian elimination) and an
//!   iterative (Jacobi) linear-system solver exposed as SPMD objects; a
//!   parallel client solves the same system with both and compares.
//! * [`dna`] — §4.2 / figure 4: a DNA database searched in parallel by an
//!   SPMD object, with five single list-server objects (exact match plus
//!   the four edit-distance derivative classes) distributed over the
//!   computing threads of the same parallel server.
//! * [`pipeline`] — §4.3 / figure 5: a POOMA diffusion application
//!   pipelining its field into an HPC++ PSTL gradient application, both
//!   feeding visualizers, built on the compiler's pragma mappings.
//!
//! Each module contains the numerical/text kernels, the servants
//! implementing the build-time-generated skeletons (`pardis::generated`),
//! launchers that spawn complete parallel servers, and client drivers used
//! by the examples, integration tests, and the figure-reproduction
//! benches.

pub mod dna;
pub mod pipeline;
pub mod solvers;

use pardis::core::ServerGroup;
use std::thread::JoinHandle;

/// A running parallel server: the ORB-side group handle plus the OS thread
/// that hosts its computing threads.
pub struct ServerHandle {
    /// The ORB-side handle (bindable objects live until shutdown).
    pub group: ServerGroup,
    join: JoinHandle<()>,
}

impl ServerHandle {
    /// Package a group and its host thread.
    pub fn new(group: ServerGroup, join: JoinHandle<()>) -> Self {
        ServerHandle { group, join }
    }

    /// Ask the server to exit and wait for its threads.
    pub fn shutdown(self) {
        self.group.shutdown();
        self.join.join().expect("server thread panicked");
    }
}
