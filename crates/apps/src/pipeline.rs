//! §4.3 / figure 5 — the diffusion → gradient pipeline built on the pragma
//! mappings.
//!
//! The metaapplication has three distributed units:
//!
//! * the **diffusion** component — a POOMA application (`pooma_rs::Field2D`,
//!   9-point stencil) acting as a parallel *client*: every completed
//!   time-step is pipelined to a visualizer, and every `gradient_every`-th
//!   step to the gradient component, through the compiler-generated
//!   `show_pooma_nb` / `gradient_pooma_nb` stubs (the `-pooma` mapping);
//! * the **gradient** component — an HPC++ PSTL application
//!   (`pstl_rs::DistVector`) exposed as the SPMD object
//!   `field_operations`; it computes the magnitude gradient and pipelines
//!   the result to its own visualizer;
//! * two **visualizer** servers, one per component.
//!
//! Non-blocking invocations are pipelined with depth 1: before issuing a
//! new request the previous one must have resolved. That reproduces the
//! paper's observation that the pipeline congests once the gradient's
//! compute time approaches the request period.

use crate::solvers::ComputePace;
use crate::ServerHandle;
use pardis::core::{ClientGroup, DSequence, DistPolicy, Orb, OrbResult, ServantCtx, ServerGroup};
use pardis::generated::pipeline::{
    FieldOperationsImpl, FieldOperationsProxy, FieldOperationsSkel, VisualizerImpl,
    VisualizerProxy, VisualizerSkel,
};
use pardis::netsim::HostId;
use pardis::pooma::{Field2D, Layout2D};
use pardis::pstl::{grid::magnitude_gradient, DistVector};
use pardis::rts::{MpiRts, World};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Instant;

/// What a visualizer has seen so far.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct VisStats {
    /// Frames shown.
    pub frames: usize,
    /// Running checksum of all frame data (order-insensitive sum).
    pub checksum: f64,
}

/// The `visualizer` servant: records every shown frame.
pub struct VisualizerServant {
    stats: Arc<Mutex<VisStats>>,
}

impl VisualizerImpl for VisualizerServant {
    fn show(&self, _ctx: &ServantCtx, myfield: DSequence<f64>) -> Result<(), String> {
        let mut stats = self.stats.lock();
        stats.frames += 1;
        stats.checksum += myfield.local().iter().sum::<f64>();
        Ok(())
    }
}

/// Launch a (sequential) visualizer server; returns the handle and the
/// shared stats it fills.
pub fn spawn_visualizer(
    orb: &Orb,
    host: HostId,
    name: &str,
) -> (ServerHandle, Arc<Mutex<VisStats>>) {
    let stats = Arc::new(Mutex::new(VisStats::default()));
    let group = ServerGroup::create(orb, "visualizer", host, 1);
    let g = group.clone();
    let s = stats.clone();
    let name = name.to_string();
    let join = std::thread::spawn(move || {
        let mut poa = g.attach(0, None);
        // SPMD with one computing thread: `show` takes a distributed
        // argument, which single objects may not (§3.1).
        poa.activate_spmd(
            &name,
            Arc::new(VisualizerSkel(VisualizerServant { stats: s })),
            DistPolicy::new(),
        );
        poa.impl_is_ready();
    });
    (ServerHandle::new(group, join), stats)
}

/// The `field_operations` servant: PSTL gradient plus a pipelined `show` to
/// its own visualizer.
pub struct GradientServant {
    nx: usize,
    ny: usize,
    vis: Option<VisualizerProxy>,
    /// Optional modelled compute speed (figure harnesses; see
    /// [`ComputePace`]).
    pace: Option<ComputePace>,
}

/// Modelled work of one gradient request: the original system's
/// per-cell analysis was far heavier than our double-precision central
/// differences.
const GRADIENT_FLOPS_PER_CELL: f64 = 120.0;

impl FieldOperationsImpl for GradientServant {
    fn gradient(&self, ctx: &ServantCtx, myfield: DSequence<f64>) -> Result<(), String> {
        let start = std::time::Instant::now();
        let v = DistVector::from_dseq(&myfield);
        let grad = if ctx.nthreads == 1 {
            let g = pardis::pstl::grid::magnitude_gradient_seq(v.local(), self.nx, self.ny);
            DistVector::from_local(g, self.nx * self.ny, 1, 0)
        } else {
            magnitude_gradient(&v, self.nx, self.ny, ctx.rts().as_ref())
        };
        if let Some(pace) = &self.pace {
            let flops = (self.nx * self.ny) as f64 * GRADIENT_FLOPS_PER_CELL / ctx.nthreads as f64;
            pace.charge(flops, start.elapsed());
        }
        if let Some(vis) = &self.vis {
            vis.show(&grad.to_dseq()).map_err(|e| e.to_string())?;
        }
        Ok(())
    }
}

/// Launch the gradient server with `nthreads` computing threads. If
/// `vis_name` is given, the server's threads collectively bind to that
/// visualizer and pipeline every gradient result to it.
pub fn spawn_gradient_server(
    orb: &Orb,
    host: HostId,
    name: &str,
    nthreads: usize,
    vis_name: Option<&str>,
    nx: usize,
    ny: usize,
) -> ServerHandle {
    spawn_gradient_server_paced(orb, host, name, nthreads, vis_name, nx, ny, None)
}

/// [`spawn_gradient_server`] with a modelled compute speed.
#[allow(clippy::too_many_arguments)]
pub fn spawn_gradient_server_paced(
    orb: &Orb,
    host: HostId,
    name: &str,
    nthreads: usize,
    vis_name: Option<&str>,
    nx: usize,
    ny: usize,
    pace: Option<ComputePace>,
) -> ServerHandle {
    let group = ServerGroup::create(orb, "gradient-server", host, nthreads);
    let g = group.clone();
    let orb = orb.clone();
    let name = name.to_string();
    let vis_name = vis_name.map(|s| s.to_string());
    let chk = pardis::check::for_world(nthreads);
    let join = std::thread::spawn(move || {
        // The gradient unit is also a *client* (of its visualizer): a
        // parallel client group spanning the same computing threads.
        let client_group = ClientGroup::create(&orb, host, nthreads);
        World::run(nthreads, |rank| {
            let t = rank.rank();
            let rts = pardis::check::wrap_if(&chk, Arc::new(MpiRts::new(rank)));
            let vis = vis_name.as_ref().map(|vn| {
                let ct = client_group.attach(t, (nthreads > 1).then(|| rts.clone()));
                VisualizerProxy::spmd_bind(&ct, vn).expect("gradient server binds visualizer")
            });
            let mut poa = g.attach(t, Some(rts));
            poa.activate_spmd(
                &name,
                Arc::new(FieldOperationsSkel(GradientServant { nx, ny, vis, pace })),
                DistPolicy::new(),
            );
            poa.impl_is_ready();
        });
        pardis::check::enforce(&chk);
    });
    ServerHandle::new(group, join)
}

/// Configuration of the figure-5 run.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Grid columns (the paper: 128).
    pub nx: usize,
    /// Grid rows (the paper: 128).
    pub ny: usize,
    /// Diffusion time-steps (the paper: 100).
    pub steps: usize,
    /// Request the gradient every n-th step (the paper: 5); `0` disables
    /// gradient requests (the diffusion-alone component measurement).
    pub gradient_every: usize,
    /// Diffusion stencil coefficient.
    pub alpha: f64,
    /// Computing threads of the diffusion client (matched to the gradient
    /// server in the paper's runs).
    pub threads: usize,
    /// Send every completed step to the diffusion visualizer.
    pub show_every_step: bool,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            nx: 128,
            ny: 128,
            steps: 100,
            gradient_every: 5,
            alpha: 0.05,
            threads: 4,
            show_every_step: true,
        }
    }
}

/// Run the diffusion component: a parallel client on `host` driving the
/// named visualizer and (optionally) gradient servers. Returns elapsed wall
/// seconds from the client's perspective and the final field checksum.
pub fn run_diffusion(
    orb: &Orb,
    host: HostId,
    vis_name: &str,
    fops_name: Option<&str>,
    cfg: &PipelineConfig,
) -> OrbResult<(f64, f64)> {
    let p = cfg.threads;
    let group = ClientGroup::create(orb, host, p);
    let fops_name = fops_name.map(|s| s.to_string());
    let vis_name = vis_name.to_string();
    let cfg = cfg.clone();
    let chk = pardis::check::for_world(p);
    let chk_run = chk.clone();
    let results = World::run(p, move |rank| -> OrbResult<(f64, f64)> {
        let t = rank.rank();
        let rts = pardis::check::wrap_if(&chk_run, Arc::new(MpiRts::new(rank)));
        let ct = group.attach(t, (p > 1).then(|| rts.clone()));
        let vis = VisualizerProxy::spmd_bind(&ct, &vis_name)?;
        let fops = match &fops_name {
            Some(fname) => Some(FieldOperationsProxy::spmd_bind(&ct, fname)?),
            None => None,
        };

        // The diffusion field: a Gaussian-ish bump in the middle.
        let layout = Layout2D::new(cfg.nx, cfg.ny, p);
        let (cx, cy) = (cfg.nx as f64 / 2.0, cfg.ny as f64 / 2.0);
        let mut field = Field2D::from_fn(layout, t, |i, j| {
            let (dx, dy) = (i as f64 - cx, j as f64 - cy);
            (-(dx * dx + dy * dy) / 64.0).exp()
        });

        let start = Instant::now();
        let mut prev_show: Option<pardis::generated::pipeline::VisualizerShowFutures> = None;
        let mut prev_grad: Option<pardis::generated::pipeline::FieldOperationsGradientFutures> =
            None;
        for step in 1..=cfg.steps {
            field.stencil9(cfg.alpha, rts.as_ref());
            if cfg.show_every_step {
                // Depth-1 pipeline: wait out the previous show first (the
                // invocations are non-blocking but not oneway, §4.3).
                if let Some(f) = prev_show.take() {
                    f.handle.wait()?;
                }
                prev_show = Some(vis.show_pooma_nb(&field)?);
            }
            if let Some(fops) = &fops {
                if cfg.gradient_every > 0 && step % cfg.gradient_every == 0 {
                    if let Some(f) = prev_grad.take() {
                        f.handle.wait()?;
                    }
                    prev_grad = Some(fops.gradient_pooma_nb(&field)?);
                }
            }
        }
        if let Some(f) = prev_show.take() {
            f.handle.wait()?;
        }
        if let Some(f) = prev_grad.take() {
            f.handle.wait()?;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let checksum = rts.all_reduce_f64(field.local_sum(), pardis::rts::ReduceOp::Sum);
        Ok((elapsed, checksum))
    });
    pardis::check::enforce(&chk);
    let mut worst = 0.0f64;
    let mut checksum = 0.0;
    for r in results {
        let (elapsed, sum) = r?;
        worst = worst.max(elapsed);
        checksum = sum;
    }
    Ok((worst, checksum))
}

/// Measure the gradient component alone: a parallel client fires
/// back-to-back gradient requests on a precomputed field. Returns elapsed
/// wall seconds for `count` requests.
pub fn run_gradient_alone(
    orb: &Orb,
    host: HostId,
    fops_name: &str,
    threads: usize,
    nx: usize,
    ny: usize,
    count: usize,
) -> OrbResult<f64> {
    let group = ClientGroup::create(orb, host, threads);
    let fops_name = fops_name.to_string();
    let chk = pardis::check::for_world(threads);
    let chk_run = chk.clone();
    let results = World::run(threads, move |rank| -> OrbResult<f64> {
        let t = rank.rank();
        let rts = pardis::check::wrap_if(&chk_run, Arc::new(MpiRts::new(rank)));
        let ct = group.attach(t, (threads > 1).then(|| rts.clone()));
        let fops = FieldOperationsProxy::spmd_bind(&ct, &fops_name)?;
        let layout = Layout2D::new(nx, ny, threads);
        let field = Field2D::from_fn(layout, t, |i, j| ((i * 31 + j * 7) % 17) as f64);
        let start = Instant::now();
        for _ in 0..count {
            fops.gradient_pooma(&field)?;
        }
        Ok(start.elapsed().as_secs_f64())
    });
    pardis::check::enforce(&chk);
    let mut worst = 0.0f64;
    for r in results {
        worst = worst.max(r?);
    }
    Ok(worst)
}

/// Sequential reference: run the diffusion and take the checksum, for
/// validating the distributed pipeline's numerics.
pub fn diffusion_checksum_seq(cfg: &PipelineConfig) -> f64 {
    let out = World::run(1, |rank| {
        let rts = MpiRts::new(rank);
        let layout = Layout2D::new(cfg.nx, cfg.ny, 1);
        let (cx, cy) = (cfg.nx as f64 / 2.0, cfg.ny as f64 / 2.0);
        let mut field = Field2D::from_fn(layout, 0, |i, j| {
            let (dx, dy) = (i as f64 - cx, j as f64 - cy);
            (-(dx * dx + dy * dy) / 64.0).exp()
        });
        for _ in 0..cfg.steps {
            field.stencil9(cfg.alpha, &rts);
        }
        field.local_sum()
    });
    out[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_matches_paper() {
        let cfg = PipelineConfig::default();
        assert_eq!((cfg.nx, cfg.ny), (128, 128));
        assert_eq!(cfg.steps, 100);
        assert_eq!(cfg.gradient_every, 5);
    }

    #[test]
    fn vis_stats_default_is_zero() {
        let s = VisStats::default();
        assert_eq!(s.frames, 0);
        assert_eq!(s.checksum, 0.0);
    }
}
