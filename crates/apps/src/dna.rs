//! §4.2 / figure 4 — the DNA database metaapplication.
//!
//! A parallel server hosts one SPMD object (`dna_db`) whose `search`
//! operation scans a synthetic DNA database in parallel, plus five *single*
//! objects (`list_server`) holding the partial results: one list of exact
//! matches and one per edit-distance derivative class (transposition,
//! deletion, substitution, addition). Periodically during the search each
//! computing thread lets the ORB in (`process_requests`), so clients can
//! query the lists *while the search runs* — the `search` reply itself is
//! deferred until every thread finishes its shard.
//!
//! Placement of the five single objects over the computing threads is the
//! experiment's variable: `Centralized` puts all five on thread 0 (the
//! "only one thread visible to the ORB" model); `Distributed` deals them
//! round-robin, balancing "by numbers, not by weight" exactly as the paper
//! notes.
//!
//! **Substitution note (DESIGN.md §1):** the paper searched a real DNA
//! database; we generate a deterministic synthetic one. The paper classifies
//! a sequence by whether *its* single-edit derivatives contain the
//! substring; we equivalently test the sequence against the single-edit
//! variants of the query, which exercises the same amount of scanning work
//! per class.

use crate::ServerHandle;
use bytes::Bytes;
use pardis::core::{
    DispatchResult, DistPolicy, Orb, Servant, ServantCtx, ServerGroup, ServerReply, ServerRequest,
};
use pardis::generated::dna::{ListServerImpl, ListServerSkel, Status};
use pardis::netsim::HostId;
use pardis::rts::{tags, MpiRts, World};
use pardis_cdr::{ByteOrder, CdrCodec, Decoder, Encoder};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Duration;

/// The five partial-result lists of §4.2.
pub const LIST_NAMES: [&str; 5] =
    ["exact", "transposition", "deletion", "substitution", "addition"];

/// Relative per-query processing weight of each list server. "Different
/// list servers take different time to process client's queries" — the
/// exact-match list is the heaviest here.
pub const DEFAULT_WEIGHTS: [u64; 5] = [8, 4, 2, 1, 1];

/// Where the five single objects live on the parallel server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// All list servers on computing thread 0.
    Centralized,
    /// Round-robin over the computing threads — balanced "by numbers, not
    /// by weight".
    Distributed,
}

impl Placement {
    /// The computing thread that owns list `l` under this scheme.
    pub fn owner(self, l: usize, nthreads: usize) -> usize {
        match self {
            Placement::Centralized => 0,
            Placement::Distributed => l % nthreads,
        }
    }
}

/// Deterministic synthetic DNA database.
pub fn gen_database(n: usize, min_len: usize, max_len: usize, seed: u64) -> Vec<String> {
    assert!(min_len <= max_len && min_len > 0, "bad length range");
    let mut rng = StdRng::seed_from_u64(seed);
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    (0..n)
        .map(|_| {
            let len = rng.random_range(min_len..=max_len);
            (0..len).map(|_| BASES[rng.random_range(0..4)]).collect()
        })
        .collect()
}

/// All single-edit variants of `q`, one vector per derivative class:
/// transposition, deletion, substitution, addition.
pub fn derivatives(q: &str) -> [Vec<String>; 4] {
    const BASES: [char; 4] = ['A', 'C', 'G', 'T'];
    let chars: Vec<char> = q.chars().collect();
    let mut transposition = Vec::new();
    for i in 0..chars.len().saturating_sub(1) {
        if chars[i] != chars[i + 1] {
            let mut v = chars.clone();
            v.swap(i, i + 1);
            transposition.push(v.iter().collect());
        }
    }
    let mut deletion = Vec::new();
    for i in 0..chars.len() {
        let mut v = chars.clone();
        v.remove(i);
        if !v.is_empty() {
            deletion.push(v.iter().collect());
        }
    }
    let mut substitution = Vec::new();
    for i in 0..chars.len() {
        for b in BASES {
            if b != chars[i] {
                let mut v = chars.clone();
                v[i] = b;
                substitution.push(v.iter().collect());
            }
        }
    }
    let mut addition = Vec::new();
    for i in 0..=chars.len() {
        for b in BASES {
            let mut v = chars.clone();
            v.insert(i, b);
            addition.push(v.iter().collect());
        }
    }
    [transposition, deletion, substitution, addition]
}

/// Classify one database sequence against a query: `Some(0)` exact,
/// `Some(1..=4)` the first matching derivative class, `None` no match.
pub fn classify(seq: &str, query: &str, deriv: &[Vec<String>; 4]) -> Option<usize> {
    if seq.contains(query) {
        return Some(0);
    }
    for (c, variants) in deriv.iter().enumerate() {
        if variants.iter().any(|v| seq.contains(v.as_str())) {
            return Some(c + 1);
        }
    }
    None
}

/// Deterministic busy work: `units` rounds of a small mixing loop. Models
/// per-query processing cost without depending on data volume.
pub fn busy_work(units: u64) -> u64 {
    let mut acc: u64 = 0x9e3779b97f4a7c15;
    for i in 0..units * 2_000 {
        acc ^= acc << 13;
        acc ^= acc >> 7;
        acc ^= acc << 17;
        acc = acc.wrapping_add(i);
    }
    std::hint::black_box(acc)
}

/// The `list_server` servant: holds one partial-result list, answers
/// `match` by filtering it after the configured modelled processing cost.
///
/// The cost is modelled as a sleep rather than a spin so the concurrency
/// effects of figure 4 (queries serialising on one computing thread vs
/// spreading over several) reproduce on machines with any core count.
pub struct ListHolder {
    /// Shared list contents (the search side appends).
    pub entries: Arc<Mutex<Vec<String>>>,
    /// Modelled per-query processing cost in microseconds.
    pub work_units: u64,
}

impl ListServerImpl for ListHolder {
    fn match_(&self, _ctx: &ServantCtx, s: String) -> Result<(Vec<String>,), String> {
        if self.work_units > 0 {
            std::thread::sleep(Duration::from_micros(self.work_units));
        }
        let hits = self.entries.lock().iter().filter(|e| e.contains(&s)).cloned().collect();
        Ok((hits,))
    }
}

/// The `dna_db` servant. `search` parks the request (deferred reply) and
/// records the query for the server main loop; the reply is completed when
/// every computing thread has finished scanning its shard.
pub struct DnaDbServant {
    queries: Arc<Mutex<std::collections::VecDeque<String>>>,
}

impl Servant for DnaDbServant {
    fn interface(&self) -> &str {
        "dna_db"
    }
    fn dispatch(&self, _req: ServerRequest<'_>) -> Result<ServerReply, String> {
        unreachable!("dna_db always dispatches through dispatch_deferred")
    }
    fn dispatch_deferred(&self, req: ServerRequest<'_>) -> Result<DispatchResult, String> {
        match req.op {
            "search" => {
                // Queue the query; overlapping searches run back to back
                // in arrival order (which the ORB already sequences per
                // client entity).
                let s: String = req.scalar(0).map_err(|e| e.to_string())?;
                self.queries.lock().push_back(s);
                Ok(DispatchResult::Defer)
            }
            other => Err(format!("interface dna_db has no operation {other:?}")),
        }
    }
}

/// App-level tags (user band): partial results to a list owner, shard-done
/// notification to thread 0, everyone-done release from thread 0, and the
/// final per-thread drained acknowledgement that gates the search reply.
const RESULT_TAG: u64 = 0x0D0A;
const DONE_TAG: u64 = 0x0D0B;
const ALL_DONE_TAG: u64 = 0x0D0C;
const DRAINED_TAG: u64 = 0x0D0D;

fn encode_results(list: u32, items: &[String]) -> Bytes {
    let mut e = Encoder::new(ByteOrder::native());
    e.write_u32(list);
    items.to_vec().encode(&mut e);
    e.finish()
}

fn decode_results(data: &Bytes) -> (u32, Vec<String>) {
    let mut d = Decoder::new(data.clone(), ByteOrder::native());
    let list = d.read_u32().expect("list index");
    let items = Vec::<String>::decode(&mut d).expect("items");
    (list, items)
}

/// Configuration of the DNA parallel server.
#[derive(Debug, Clone)]
pub struct DnaServerConfig {
    /// Computing threads of the server.
    pub nthreads: usize,
    /// Database sequences (shared over threads by round-robin shards).
    pub db_size: usize,
    /// Sequence length range.
    pub len_range: (usize, usize),
    /// Database seed.
    pub seed: u64,
    /// Single-object placement scheme.
    pub placement: Placement,
    /// Sequences scanned per main-loop iteration and thread.
    pub chunk: usize,
    /// Per-list `match` modelled processing cost (microseconds per query).
    pub weights: [u64; 5],
    /// Modelled extra scan cost per database sequence (microseconds) —
    /// stands in for the heavier per-sequence analysis of the original
    /// system so the search has the figure's multi-second footprint.
    pub scan_cost_us: u64,
}

impl Default for DnaServerConfig {
    fn default() -> Self {
        DnaServerConfig {
            nthreads: 4,
            db_size: 2_000,
            len_range: (40, 80),
            seed: 42,
            placement: Placement::Distributed,
            chunk: 16,
            weights: DEFAULT_WEIGHTS,
            scan_cost_us: 0,
        }
    }
}

/// Per-thread search progress.
struct SearchState {
    query: String,
    deriv: [Vec<String>; 4],
    pos: usize,
    local_done: bool,
}

/// Launch the complete §4.2 parallel server: the SPMD `dna_db` object plus
/// the five single `list_server` objects placed per the configuration. The
/// object names are `"dna_db"` and the entries of [`LIST_NAMES`].
pub fn spawn_dna_server(orb: &Orb, host: HostId, cfg: DnaServerConfig) -> ServerHandle {
    let p = cfg.nthreads;
    let group = ServerGroup::create(orb, "dna-server", host, p);
    let g = group.clone();
    let chk = pardis::check::for_world(p);
    let join = std::thread::spawn(move || {
        World::run(p, |rank| {
            let t = rank.rank();
            let rts = pardis::check::wrap_if(&chk, Arc::new(MpiRts::new(rank)));
            let mut poa = g.attach(t, Some(rts.clone()));

            // The SPMD database object (collective activation).
            let queries: Arc<Mutex<std::collections::VecDeque<String>>> =
                Arc::new(Mutex::new(std::collections::VecDeque::new()));
            poa.activate_spmd(
                "dna_db",
                Arc::new(DnaDbServant { queries: queries.clone() }),
                DistPolicy::new(),
            );

            // My single list objects.
            let mut my_lists: Vec<(usize, Arc<Mutex<Vec<String>>>)> = Vec::new();
            for (l, name) in LIST_NAMES.iter().enumerate() {
                if cfg.placement.owner(l, p) == t {
                    let entries = Arc::new(Mutex::new(Vec::new()));
                    poa.activate_single(
                        name,
                        Arc::new(ListServerSkel(ListHolder {
                            entries: entries.clone(),
                            work_units: cfg.weights[l],
                        })),
                    );
                    my_lists.push((l, entries));
                }
            }

            // My shard: round-robin rows of the (deterministic) database.
            let db = gen_database(cfg.db_size, cfg.len_range.0, cfg.len_range.1, cfg.seed);
            let shard: Vec<String> =
                db.into_iter().enumerate().filter(|(i, _)| i % p == t).map(|(_, s)| s).collect();

            debug_assert!(tags::is_user(RESULT_TAG));
            let mut search: Option<SearchState> = None;
            let mut deferred: std::collections::VecDeque<_> = Default::default();
            let mut done_count = 0usize; // thread 0 only
            let mut drained_count = 0usize; // thread 0 only

            loop {
                // Ingest partial results destined for my lists *before*
                // serving queries, so a `match` dispatched below always sees
                // everything already delivered to this thread.
                while let Some(msg) = rts.try_recv(None, RESULT_TAG) {
                    let (l, items) = decode_results(&msg.data);
                    if let Some((_, entries)) = my_lists.iter().find(|(i, _)| *i == l as usize) {
                        entries.lock().extend(items);
                    }
                }

                poa.process_requests();
                deferred.extend(poa.take_deferred());
                if poa.is_closed() {
                    break;
                }

                // Start the next queued search when idle.
                if search.is_none() {
                    if let Some(q) = queries.lock().pop_front() {
                        let deriv = derivatives(&q);
                        search = Some(SearchState { query: q, deriv, pos: 0, local_done: false });
                    }
                }

                // Advance my shard scan.
                let mut progressed = false;
                if let Some(state) = &mut search {
                    if !state.local_done {
                        progressed = true;
                        let end = (state.pos + cfg.chunk).min(shard.len());
                        if cfg.scan_cost_us > 0 {
                            std::thread::sleep(Duration::from_micros(
                                cfg.scan_cost_us * (end - state.pos) as u64,
                            ));
                        }
                        let mut found: [Vec<String>; 5] = std::array::from_fn(|_| Vec::new());
                        for s in &shard[state.pos..end] {
                            if let Some(c) = classify(s, &state.query, &state.deriv) {
                                found[c].push(s.clone());
                            }
                        }
                        state.pos = end;
                        for (l, items) in found.into_iter().enumerate() {
                            if items.is_empty() {
                                continue;
                            }
                            let owner = cfg.placement.owner(l, p);
                            if owner == t {
                                if let Some((_, entries)) = my_lists.iter().find(|(i, _)| *i == l) {
                                    entries.lock().extend(items);
                                }
                            } else {
                                rts.send(owner, RESULT_TAG, encode_results(l as u32, &items));
                            }
                        }
                        if state.pos >= shard.len() {
                            state.local_done = true;
                            rts.send(0, DONE_TAG, Bytes::new());
                        }
                    }
                }

                // Thread 0 counts shard completions and releases everyone.
                if t == 0 {
                    while rts.try_recv(None, DONE_TAG).is_some() {
                        done_count += 1;
                    }
                    if done_count == p {
                        done_count = 0;
                        for dst in 0..p {
                            rts.send(dst, ALL_DONE_TAG, Bytes::new());
                        }
                    }
                }

                // Release phase 1: on ALL_DONE every thread performs its
                // final drain — every RESULT sent before a sender's DONE is
                // already in the owner's mailbox — and acknowledges to
                // thread 0.
                if rts.try_recv(None, ALL_DONE_TAG).is_some() {
                    while let Some(msg) = rts.try_recv(None, RESULT_TAG) {
                        let (l, items) = decode_results(&msg.data);
                        if let Some((_, entries)) = my_lists.iter().find(|(i, _)| *i == l as usize)
                        {
                            entries.lock().extend(items);
                        }
                    }
                    search = None;
                    rts.send(0, DRAINED_TAG, Bytes::new());
                    if t != 0 {
                        // Only thread 0's reply reaches the client (SPMD
                        // reply control); siblings retire their deferred
                        // copy now.
                        if let Some(call) = deferred.pop_front() {
                            let mut rep = ServerReply::new();
                            rep.push_scalar(&Status::Done);
                            poa.reply_deferred(call, Ok(rep));
                        }
                    }
                }

                // Release phase 2 (thread 0): the search reply goes out only
                // after *every* thread has drained, so a client that sees
                // the search complete sees complete lists.
                if t == 0 {
                    while rts.try_recv(None, DRAINED_TAG).is_some() {
                        drained_count += 1;
                    }
                    if drained_count == p {
                        drained_count = 0;
                        if let Some(call) = deferred.pop_front() {
                            let mut rep = ServerReply::new();
                            rep.push_scalar(&Status::Done);
                            poa.reply_deferred(call, Ok(rep));
                        }
                    }
                }

                if !progressed {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        });
        pardis::check::enforce(&chk);
    });
    ServerHandle::new(group, join)
}

/// The figure-4 client: issue a non-blocking `search`, then stream list
/// queries at the five list servers until the search resolves, then one
/// final round — the code structure of §4.2's client. Returns (elapsed
/// seconds of the query phase, completed query count, hits).
pub fn run_fig4_client(
    client: &pardis::core::ClientThread,
    search_sub: &str,
    query_subs: &[&str],
) -> pardis::core::OrbResult<(f64, usize, usize)> {
    use pardis::generated::dna::{DnaDbProxy, ListServerProxy};

    let db = DnaDbProxy::spmd_bind(client, "dna_db")?;
    let lists: Vec<ListServerProxy> =
        LIST_NAMES.iter().map(|n| ListServerProxy::bind(client, n)).collect::<Result<_, _>>()?;

    let start = std::time::Instant::now();
    let search = db.search_nb(&search_sub.to_string())?;
    let mut completed = 0usize;
    let mut hits = 0usize;
    let mut qi = 0usize;
    while !search.ret.resolved() {
        // One round of non-blocking queries over all five lists.
        let sub = query_subs[qi % query_subs.len()].to_string();
        qi += 1;
        let pending: Vec<_> = lists.iter().map(|l| l.match_nb(&sub)).collect::<Result<_, _>>()?;
        for fut in pending {
            let (found,) = (fut.l.get()?,);
            hits += found.len();
            completed += 1;
        }
    }
    let status = search.ret.get()?;
    debug_assert_eq!(status, Status::Done);
    // Final processing round.
    let sub = query_subs[qi % query_subs.len()].to_string();
    let pending: Vec<_> = lists.iter().map(|l| l.match_nb(&sub)).collect::<Result<_, _>>()?;
    for fut in pending {
        let (found,) = (fut.l.get()?,);
        hits += found.len();
        completed += 1;
    }
    Ok((start.elapsed().as_secs_f64(), completed, hits))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn database_is_deterministic_and_shaped() {
        let db = gen_database(50, 10, 20, 9);
        assert_eq!(db, gen_database(50, 10, 20, 9));
        assert_ne!(db, gen_database(50, 10, 20, 10));
        assert_eq!(db.len(), 50);
        for s in &db {
            assert!(s.len() >= 10 && s.len() <= 20);
            assert!(s.chars().all(|c| "ACGT".contains(c)));
        }
    }

    #[test]
    fn derivative_classes_have_expected_shapes() {
        let [t, d, s, a] = derivatives("ACG");
        assert!(t.contains(&"CAG".to_string()));
        assert!(t.contains(&"AGC".to_string()));
        assert_eq!(d.len(), 3); // one per deleted position
        assert!(d.contains(&"CG".to_string()));
        assert_eq!(s.len(), 9); // 3 positions x 3 other bases
        assert!(s.contains(&"TCG".to_string()));
        assert_eq!(a.len(), 16); // 4 gaps x 4 bases
        assert!(a.contains(&"ACGT".to_string()));
    }

    #[test]
    fn classify_prefers_exact() {
        let deriv = derivatives("ACG");
        assert_eq!(classify("TTACGTT", "ACG", &deriv), Some(0));
        // "CAG" is a transposition variant of the query.
        assert_eq!(classify("TTCAGTT", "ACG", &deriv), Some(1));
        assert_eq!(classify("TTTTTTT", "ACG", &deriv), None);
    }

    #[test]
    fn placement_owners() {
        assert_eq!(Placement::Centralized.owner(4, 8), 0);
        assert_eq!(Placement::Distributed.owner(4, 3), 1);
        assert_eq!(Placement::Distributed.owner(2, 8), 2);
    }

    #[test]
    fn results_roundtrip() {
        let items = vec!["ACGT".to_string(), "GG".to_string()];
        let enc = encode_results(3, &items);
        assert_eq!(decode_results(&enc), (3, items));
    }

    #[test]
    fn busy_work_scales() {
        // Not a benchmark — just check it does not optimise away to a
        // constant-time no-op.
        let t0 = std::time::Instant::now();
        busy_work(1);
        let small = t0.elapsed();
        let t1 = std::time::Instant::now();
        busy_work(200);
        let big = t1.elapsed();
        assert!(big > small, "busy work must scale ({small:?} vs {big:?})");
    }
}
