//! # pardis-check — SPMD protocol analyzer for the PARDIS RTS
//!
//! The paper's §2.2 contract is the whole trust boundary between the ORB and
//! a parallel program: the ORB assumes a small message-passing interface
//! *plus* reserved-tag separation from application traffic, and SPMD
//! correctness assumes every computing thread enters the same collectives in
//! the same order. This crate checks both invariants online, in the spirit
//! of MPI verifiers (MUST-style collective matching, wait-for-graph deadlock
//! detection):
//!
//! * **Reserved-tag discipline** — application `send`/`recv` on a tag inside
//!   the ORB band (anything in [`pardis_rts::tags::RESERVED_TAG_RANGE`] that
//!   is not a known ORB tag) is an error.
//! * **Collective matching** — a per-world epoch log records which
//!   collective each rank entered; barrier-vs-broadcast divergence and root
//!   disagreement are flagged, and all ranks skip the doomed collective so
//!   the report is delivered instead of a hang.
//! * **Deadlock detection** — blocked receives form a wait-for graph; a
//!   cycle (or a global stall) is reported with each rank's pending
//!   operation, and the cycle members are released with synthesized
//!   messages so the world can tear down.
//! * **Message-leak audit** — sends that were never received are reported at
//!   [`Checker::finish`].
//! * **Wildcard-recv hazard** — a blocking `recv(from = None, ..)` with two
//!   or more eligible senders is nondeterministic; flagged as advice.
//!
//! ## Zero cost when off
//!
//! Like `pardis-obs`, the checker hides behind one global atomic gate:
//! [`enabled`] is a single relaxed load, and every [`CheckedRts`] method is
//! a passthrough when it returns false. [`wrap_if`] goes one step further
//! and does not even interpose the decorator.
//!
//! ## Wiring
//!
//! ```ignore
//! let chk = pardis_check::for_world(p);            // honours PARDIS_CHECK=1
//! let out = World::run(p, |rank| {
//!     let rts = pardis_check::wrap_if(&chk, Arc::new(MpiRts::new(rank)));
//!     ...
//! });
//! pardis_check::enforce(&chk);                     // panics on error/warning
//! ```

mod checked;
mod checker;
mod report;

pub use checked::CheckedRts;
pub use checker::{Checker, CollOp, Verdict};
pub use report::{CheckReport, Finding, Kind, Severity};

use pardis_rts::Rts;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is checking on? One relaxed atomic load — safe to call on hot paths.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the checker gate on.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the checker gate off.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Was checking requested through the environment (`PARDIS_CHECK=1`)?
/// Read once per process; a hit also flips the global gate on.
pub fn env_requested() -> bool {
    static REQUESTED: OnceLock<bool> = OnceLock::new();
    let req = *REQUESTED.get_or_init(|| std::env::var("PARDIS_CHECK").is_ok_and(|v| v == "1"));
    if req {
        enable();
    }
    req
}

/// A checker for a world of `size` ranks, if checking is on (programmatic
/// [`enable`] or `PARDIS_CHECK=1`); `None` otherwise. The standard entry
/// point for wiring an SPMD launch.
pub fn for_world(size: usize) -> Option<Arc<Checker>> {
    (env_requested() || enabled()).then(|| Checker::new(size))
}

/// Wrap `inner` in a [`CheckedRts`] when `chk` is present; hand back
/// `inner` untouched otherwise (no decorator on the path at all).
pub fn wrap_if(chk: &Option<Arc<Checker>>, inner: Arc<dyn Rts>) -> Arc<dyn Rts> {
    match chk {
        Some(c) => Arc::new(CheckedRts::wrap(inner, c.clone())),
        None => inner,
    }
}

/// Finish the checker (if any) and fail loudly on findings: panics with the
/// rendered table when the report has warnings or errors; prints advice to
/// stderr. The e2e suites call this so `PARDIS_CHECK=1` turns every
/// scenario into a protocol-verification run.
pub fn enforce(chk: &Option<Arc<Checker>>) {
    if let Some(c) = chk {
        let report = c.finish();
        if !report.is_clean() {
            panic!("protocol check failed\n{}", report.render_table());
        }
        if !report.findings.is_empty() {
            eprintln!("{}", report.render_table());
        }
    }
}

#[cfg(test)]
mod tests;
