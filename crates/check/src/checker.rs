//! Shared per-world checker state: collective epochs, wait-for graph,
//! in-flight message ledger, findings.

use crate::report::{CheckReport, Finding, Kind, Severity};
use pardis_rts::tags;
use parking_lot::{Condvar, Mutex};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Which collective a rank entered (with the arguments that must agree
/// across ranks for SPMD discipline to hold).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollOp {
    /// `barrier()`.
    Barrier,
    /// `broadcast(root, ..)`.
    Broadcast {
        /// The root every rank must agree on.
        root: usize,
    },
    /// `gather(root, ..)`.
    Gather {
        /// The root every rank must agree on.
        root: usize,
    },
    /// `scatter(root, ..)`.
    Scatter {
        /// The root every rank must agree on.
        root: usize,
    },
    /// `all_gather(..)`.
    AllGather,
    /// `all_reduce_f64(..)` (the reduction op must agree too, but a
    /// disagreement there is a value bug, not a protocol hang; we compare
    /// only the collective's identity).
    AllReduce,
}

impl CollOp {
    fn describe(self) -> String {
        match self {
            CollOp::Barrier => "barrier".into(),
            CollOp::Broadcast { root } => format!("broadcast(root={root})"),
            CollOp::Gather { root } => format!("gather(root={root})"),
            CollOp::Scatter { root } => format!("scatter(root={root})"),
            CollOp::AllGather => "all_gather".into(),
            CollOp::AllReduce => "all_reduce_f64".into(),
        }
    }
}

/// What the checker's (crate-internal) collective-entry barrier tells the
/// decorator to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every rank agreed (or the watchdog expired): run the real collective.
    Proceed,
    /// Mismatch detected: every rank skips the collective and returns a
    /// degraded value, so the report can be delivered instead of hanging.
    Skip,
}

#[derive(Debug)]
struct EpochRec {
    ops: Vec<Option<CollOp>>,
    verdict: Option<Verdict>,
}

#[derive(Debug, Clone)]
struct BlockedRecv {
    from: Option<usize>,
    tag: u64,
    /// Completed watchdog slices while blocked; a wait-for edge only counts
    /// once it has survived ≥ 2 slices (a send may be racing in).
    rounds: u64,
}

struct State {
    /// Per-rank next collective epoch.
    next_epoch: Vec<u64>,
    /// Epoch → the ops each rank entered with.
    epochs: HashMap<u64, EpochRec>,
    /// In-flight ledger: (from, to, tag) → outstanding count.
    inflight: HashMap<(usize, usize, u64), u64>,
    /// Currently blocked receives, one per blocked rank.
    blocked: HashMap<usize, BlockedRecv>,
    /// Ranks released from a detected deadlock (their pending recv is
    /// synthesized so the world can tear down and report).
    poisoned: Vec<bool>,
    findings: Vec<Finding>,
}

/// The shared analyzer for one world. Create one per [`pardis_rts::World`]
/// (outside `World::run`), wrap each rank's RTS with
/// [`crate::CheckedRts::wrap`], then consume the findings with
/// [`Checker::finish`] after the world joins.
pub struct Checker {
    size: usize,
    state: Mutex<State>,
    arrived: Condvar,
    watchdog: Duration,
    /// Events recorded while enabled — used by the disabled-overhead
    /// regression test to prove the disabled path records nothing.
    events: AtomicU64,
}

impl Checker {
    /// A checker for a world of `size` ranks, with the collective-rendezvous
    /// watchdog taken from `PARDIS_CHECK_WATCHDOG_MS` (default 250 ms).
    pub fn new(size: usize) -> Arc<Checker> {
        let ms = std::env::var("PARDIS_CHECK_WATCHDOG_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(250);
        Checker::with_watchdog(size, Duration::from_millis(ms))
    }

    /// A checker with an explicit watchdog window.
    pub fn with_watchdog(size: usize, watchdog: Duration) -> Arc<Checker> {
        assert!(size > 0, "checker needs at least one rank");
        Arc::new(Checker {
            size,
            state: Mutex::new(State {
                next_epoch: vec![0; size],
                epochs: HashMap::new(),
                inflight: HashMap::new(),
                blocked: HashMap::new(),
                poisoned: vec![false; size],
                findings: Vec::new(),
            }),
            arrived: Condvar::new(),
            watchdog,
            events: AtomicU64::new(0),
        })
    }

    /// World size this checker validates.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Watchdog window for collective rendezvous and deadlock slicing.
    pub fn watchdog(&self) -> Duration {
        self.watchdog
    }

    /// Total events recorded so far (0 while disabled: the decorator never
    /// calls in).
    pub fn events_recorded(&self) -> u64 {
        self.events.load(Ordering::Relaxed)
    }

    /// Number of findings recorded so far.
    pub fn findings_so_far(&self) -> usize {
        self.state.lock().findings.len()
    }

    fn record(&self, severity: Severity, kind: Kind, rank: Option<usize>, detail: String) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.state.lock().findings.push(Finding { severity, kind, rank, detail });
    }

    fn record_locked(
        state: &mut State,
        events: &AtomicU64,
        severity: Severity,
        kind: Kind,
        rank: Option<usize>,
        detail: String,
    ) {
        events.fetch_add(1, Ordering::Relaxed);
        state.findings.push(Finding { severity, kind, rank, detail });
    }

    // ----- tag discipline ---------------------------------------------------

    /// Validate a point-to-point tag used by traffic flowing through the
    /// decorator. ORB tags are whitelisted; anything else in the reserved
    /// band (including the collectives band) is an application violation.
    pub(crate) fn check_tag(&self, rank: usize, dir: &str, peer: Option<usize>, tag: u64) {
        self.events.fetch_add(1, Ordering::Relaxed);
        if tags::is_reserved(tag) && !tags::ORB_TAGS.contains(&tag) {
            let band = if tags::is_collective(tag) { "collective band" } else { "ORB band" };
            let peer = peer.map_or_else(|| "any".to_string(), |p| p.to_string());
            self.record(
                Severity::Error,
                Kind::ReservedTag,
                Some(rank),
                format!("{dir} with reserved tag {tag:#x} ({band}; peer {peer})"),
            );
        }
    }

    // ----- in-flight ledger + wildcard hazard -------------------------------

    pub(crate) fn note_send(&self, from: usize, to: usize, tag: u64) {
        self.events.fetch_add(1, Ordering::Relaxed);
        *self.state.lock().inflight.entry((from, to, tag)).or_insert(0) += 1;
    }

    pub(crate) fn note_recv(&self, to: usize, from: usize, tag: u64) {
        self.events.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        if let Some(n) = st.inflight.get_mut(&(from, to, tag)) {
            *n -= 1;
            if *n == 0 {
                st.inflight.remove(&(from, to, tag));
            }
        }
    }

    /// Entering a blocking wildcard receive: if ≥ 2 distinct senders already
    /// have matching messages in flight, the winner is timing-dependent.
    pub(crate) fn check_wildcard(&self, rank: usize, tag: u64) {
        self.events.fetch_add(1, Ordering::Relaxed);
        let senders: Vec<usize> = {
            let st = self.state.lock();
            let mut s: Vec<usize> = st
                .inflight
                .iter()
                .filter(|(&(_, to, t), &n)| to == rank && t == tag && n > 0)
                .map(|(&(from, _, _), _)| from)
                .collect();
            s.sort_unstable();
            s.dedup();
            s
        };
        if senders.len() >= 2 {
            self.record(
                Severity::Advice,
                Kind::WildcardRecv,
                Some(rank),
                format!(
                    "wildcard recv(from=None, tag={tag:#x}) with {} eligible senders {:?}: \
                     match order is nondeterministic",
                    senders.len(),
                    senders
                ),
            );
        }
    }

    // ----- collective epochs ------------------------------------------------

    /// A rank enters a collective. Blocks (bounded by the watchdog) until
    /// every rank has entered its collective for the same epoch, then
    /// returns the shared verdict. On watchdog expiry the checker stands
    /// aside (records advice) and lets the real collective run.
    pub(crate) fn collective_enter(&self, rank: usize, op: CollOp) -> Verdict {
        self.events.fetch_add(1, Ordering::Relaxed);
        let mut st = self.state.lock();
        let epoch = st.next_epoch[rank];
        st.next_epoch[rank] += 1;
        let size = self.size;
        {
            let rec = st
                .epochs
                .entry(epoch)
                .or_insert_with(|| EpochRec { ops: vec![None; size], verdict: None });
            rec.ops[rank] = Some(op);
        }
        let rec = &st.epochs[&epoch];
        if rec.ops.iter().all(|o| o.is_some()) && rec.verdict.is_none() {
            // Last one in decides, once, for everybody.
            let ops: Vec<CollOp> = rec.ops.iter().map(|o| o.expect("all present")).collect();
            let verdict = if ops.iter().all(|&o| o == ops[0]) {
                Verdict::Proceed
            } else {
                let per_rank = ops
                    .iter()
                    .enumerate()
                    .map(|(r, o)| format!("rank {r}: {}", o.describe()))
                    .collect::<Vec<_>>()
                    .join("; ");
                let detail = format!("collective epoch {epoch} diverged — {per_rank}");
                Self::record_locked(
                    &mut st,
                    &self.events,
                    Severity::Error,
                    Kind::CollectiveMismatch,
                    Some(rank),
                    detail,
                );
                Verdict::Skip
            };
            st.epochs.get_mut(&epoch).expect("just inserted").verdict = Some(verdict);
            self.arrived.notify_all();
            return verdict;
        }

        loop {
            if let Some(v) = st.epochs[&epoch].verdict {
                return v;
            }
            if self.arrived.wait_for(&mut st, self.watchdog).timed_out()
                && st.epochs[&epoch].verdict.is_none()
            {
                // Watchdog: some rank is busy elsewhere (compute phase, user
                // message exchange). Stand aside rather than risk wedging a
                // correct program; latecomers will see the verdict.
                st.epochs.get_mut(&epoch).expect("entered above").verdict = Some(Verdict::Proceed);
                Self::record_locked(
                    &mut st,
                    &self.events,
                    Severity::Advice,
                    Kind::CollectiveStall,
                    Some(rank),
                    format!(
                        "collective epoch {epoch} ({}) rendezvous watchdog expired after \
                         {:?}; ran unverified",
                        op.describe(),
                        self.watchdog
                    ),
                );
                self.arrived.notify_all();
                return Verdict::Proceed;
            }
        }
    }

    // ----- blocked receives / deadlock --------------------------------------

    pub(crate) fn block_enter(&self, rank: usize, from: Option<usize>, tag: u64) {
        self.events.fetch_add(1, Ordering::Relaxed);
        self.state.lock().blocked.insert(rank, BlockedRecv { from, tag, rounds: 0 });
    }

    pub(crate) fn block_exit(&self, rank: usize) {
        self.state.lock().blocked.remove(&rank);
    }

    /// One watchdog slice elapsed while `rank` is blocked. Runs deadlock
    /// detection; returns true when the rank has been poisoned (its recv
    /// must synthesize a message and give up).
    pub(crate) fn block_tick(&self, rank: usize) -> bool {
        let mut st = self.state.lock();
        if st.poisoned[rank] {
            return true;
        }
        if let Some(b) = st.blocked.get_mut(&rank) {
            b.rounds += 1;
        }

        // Directed cycle: each blocked rank has at most one outgoing edge
        // (r → its awaited source). Follow the chain from here.
        let mature = |st: &State, r: usize| st.blocked.get(&r).is_some_and(|b| b.rounds >= 2);
        let next = |st: &State, r: usize| st.blocked.get(&r).and_then(|b| b.from);
        let mut path = vec![rank];
        let mut cur = rank;
        let cycle: Option<Vec<usize>> = loop {
            if !mature(&st, cur) {
                break None;
            }
            match next(&st, cur) {
                Some(s) => {
                    if let Some(pos) = path.iter().position(|&p| p == s) {
                        break Some(path[pos..].to_vec());
                    }
                    path.push(s);
                    cur = s;
                }
                None => break None,
            }
        };

        // Global stall: every rank blocked (directed or wildcard) and mature.
        let all_stalled = st.blocked.len() == self.size && (0..self.size).all(|r| mature(&st, r));

        let members = match (cycle, all_stalled) {
            (Some(c), _) => Some(c),
            (None, true) => Some((0..self.size).collect()),
            _ => None,
        };
        if let Some(members) = members {
            let stacks = members
                .iter()
                .map(|&r| {
                    let b = &st.blocked[&r];
                    let from = b.from.map_or_else(|| "any".to_string(), |f| f.to_string());
                    format!("rank {r}: recv(from={from}, tag={:#x})", b.tag)
                })
                .collect::<Vec<_>>()
                .join("; ");
            Self::record_locked(
                &mut st,
                &self.events,
                Severity::Error,
                Kind::Deadlock,
                Some(rank),
                format!("wait-for cycle among ranks {members:?} — {stacks}"),
            );
            for &r in &members {
                st.poisoned[r] = true;
            }
            return st.poisoned[rank];
        }
        false
    }

    // ----- teardown ---------------------------------------------------------

    /// Leak audit + report. Call after the world joins; consumes the
    /// findings (a second call reports only whatever was recorded since).
    pub fn finish(&self) -> CheckReport {
        let mut st = self.state.lock();
        if !st.inflight.is_empty() {
            let mut leaks: Vec<(&(usize, usize, u64), &u64)> = st.inflight.iter().collect();
            leaks.sort();
            let detail = leaks
                .iter()
                .map(|(&(from, to, tag), &n)| {
                    format!("{n} msg(s) {from}→{to} tag {tag:#x} never received")
                })
                .collect::<Vec<_>>()
                .join("; ");
            let reserved_only = leaks.iter().all(|(&(_, _, tag), _)| tags::is_reserved(tag));
            // Undrained ORB control traffic at teardown is routine (e.g. a
            // server drops out of its dispatch loop with forwards queued);
            // user-tag leaks are probably bugs.
            let severity = if reserved_only { Severity::Advice } else { Severity::Warning };
            Self::record_locked(&mut st, &self.events, severity, Kind::MessageLeak, None, detail);
            st.inflight.clear();
        }
        CheckReport { world_size: self.size, findings: std::mem::take(&mut st.findings) }
    }
}
