//! [`CheckedRts`]: the [`Rts`] decorator that validates the protocol online.

use crate::checker::{Checker, CollOp, Verdict};
use crate::enabled;
use bytes::Bytes;
use pardis_rts::{Msg, ReduceOp, Rts};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Wraps any [`Rts`] implementation and validates every operation against
/// the SPMD protocol: tag discipline, collective agreement, deadlock
/// freedom, message accounting.
///
/// When the global gate is off ([`crate::enabled`] is false) every method is
/// a straight passthrough: one relaxed atomic load, no locks, no recording.
///
/// After a detected collective mismatch the wrapped collectives return
/// *degraded* values (own contribution only) so the program can unwind and
/// the report be delivered instead of hanging; after a detected deadlock the
/// poisoned ranks' pending `recv` returns a synthesized empty message for
/// the same reason. Results of a run with findings are meaningless — the
/// [`crate::CheckReport`] is the product.
pub struct CheckedRts {
    inner: Arc<dyn Rts>,
    chk: Arc<Checker>,
}

impl CheckedRts {
    /// Wrap `inner`, sharing `chk` with the sibling ranks of the same world.
    pub fn wrap(inner: Arc<dyn Rts>, chk: Arc<Checker>) -> CheckedRts {
        assert_eq!(inner.size(), chk.size(), "checker world size must match the wrapped RTS");
        CheckedRts { inner, chk }
    }

    /// The shared checker.
    pub fn checker(&self) -> &Arc<Checker> {
        &self.chk
    }

    /// Slice length for observable blocking waits.
    fn slice(&self) -> Duration {
        self.chk.watchdog().min(Duration::from_millis(20)).max(Duration::from_millis(1))
    }

    fn collective(&self, op: CollOp) -> Verdict {
        if enabled() {
            self.chk.collective_enter(self.inner.rank(), op)
        } else {
            Verdict::Proceed
        }
    }
}

impl Rts for CheckedRts {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&self, to: usize, tag: u64, data: Bytes) {
        if enabled() {
            let me = self.inner.rank();
            self.chk.check_tag(me, "send", Some(to), tag);
            self.chk.note_send(me, to, tag);
        }
        self.inner.send(to, tag, data);
    }

    fn recv(&self, from: Option<usize>, tag: u64) -> Msg {
        if !enabled() {
            return self.inner.recv(from, tag);
        }
        let me = self.inner.rank();
        self.chk.check_tag(me, "recv", from, tag);
        if from.is_none() {
            self.chk.check_wildcard(me, tag);
        }
        // Block in watchdog slices so the wait is observable: between
        // slices the checker runs wait-for-graph deadlock detection and
        // this rank notices if it has been poisoned.
        self.chk.block_enter(me, from, tag);
        loop {
            if let Some(msg) = self.inner.recv_timeout(from, tag, self.slice()) {
                self.chk.block_exit(me);
                self.chk.note_recv(me, msg.from, tag);
                return msg;
            }
            if self.chk.block_tick(me) {
                self.chk.block_exit(me);
                // Poisoned: synthesize so the world can unwind and report.
                return Msg::new(from.unwrap_or(me), tag, Bytes::new());
            }
        }
    }

    fn recv_timeout(&self, from: Option<usize>, tag: u64, timeout: Duration) -> Option<Msg> {
        if !enabled() {
            return self.inner.recv_timeout(from, tag, timeout);
        }
        let me = self.inner.rank();
        self.chk.check_tag(me, "recv", from, tag);
        let deadline = Instant::now() + timeout;
        self.chk.block_enter(me, from, tag);
        loop {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                self.chk.block_exit(me);
                return None;
            }
            if let Some(msg) = self.inner.recv_timeout(from, tag, left.min(self.slice())) {
                self.chk.block_exit(me);
                self.chk.note_recv(me, msg.from, tag);
                return Some(msg);
            }
            if self.chk.block_tick(me) {
                self.chk.block_exit(me);
                return None;
            }
        }
    }

    fn try_recv(&self, from: Option<usize>, tag: u64) -> Option<Msg> {
        if !enabled() {
            return self.inner.try_recv(from, tag);
        }
        let me = self.inner.rank();
        self.chk.check_tag(me, "try_recv", from, tag);
        let msg = self.inner.try_recv(from, tag);
        if let Some(m) = &msg {
            self.chk.note_recv(me, m.from, tag);
        }
        msg
    }

    fn barrier(&self) {
        match self.collective(CollOp::Barrier) {
            Verdict::Proceed => self.inner.barrier(),
            Verdict::Skip => {}
        }
    }

    fn broadcast(&self, root: usize, data: Option<Bytes>) -> Bytes {
        match self.collective(CollOp::Broadcast { root }) {
            Verdict::Proceed => self.inner.broadcast(root, data),
            Verdict::Skip => data.unwrap_or_default(),
        }
    }

    fn gather(&self, root: usize, part: Bytes) -> Option<Vec<Bytes>> {
        match self.collective(CollOp::Gather { root }) {
            Verdict::Proceed => self.inner.gather(root, part),
            Verdict::Skip => (self.inner.rank() == root).then(|| vec![part]),
        }
    }

    fn scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        match self.collective(CollOp::Scatter { root }) {
            Verdict::Proceed => self.inner.scatter(root, parts),
            Verdict::Skip => {
                parts.and_then(|p| p.into_iter().nth(self.inner.rank())).unwrap_or_default()
            }
        }
    }

    fn all_gather(&self, part: Bytes) -> Vec<Bytes> {
        // One epoch for the whole composite (the inner implementation's
        // internal gather+broadcast never reaches this decorator).
        match self.collective(CollOp::AllGather) {
            Verdict::Proceed => self.inner.all_gather(part),
            Verdict::Skip => vec![part],
        }
    }

    fn all_reduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        match self.collective(CollOp::AllReduce) {
            Verdict::Proceed => self.inner.all_reduce_f64(value, op),
            Verdict::Skip => value,
        }
    }

    fn windows(&self) -> Option<&pardis_rts::Windows> {
        // One-sided operations bypass the two-sided send/recv protocol this
        // decorator checks; pass the endpoint through untouched.
        self.inner.windows()
    }
}
