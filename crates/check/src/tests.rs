use crate::*;
use bytes::Bytes;
use pardis_rts::{tags, MpiRts, ReduceOp, Rts, World};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// enable()/disable() toggle process-global state; serialize the tests that
/// touch the gate (same pattern as tests/obs_trace.rs).
static SERIAL: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    SERIAL.lock().unwrap_or_else(|e| e.into_inner())
}

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

fn checked_world<R: Send>(
    size: usize,
    chk: &Arc<Checker>,
    f: impl Fn(Arc<dyn Rts>) -> R + Send + Sync,
) -> Vec<R> {
    World::run(size, |rank| {
        let inner: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
        f(Arc::new(CheckedRts::wrap(inner, chk.clone())))
    })
}

#[test]
fn clean_traffic_produces_clean_report() {
    let _g = lock();
    enable();
    let chk = Checker::new(2);
    checked_world(2, &chk, |rts| {
        if rts.rank() == 0 {
            rts.send(1, 7, b("hi"));
        } else {
            assert_eq!(&rts.recv(Some(0), 7).data[..], b"hi");
        }
        rts.barrier();
        let bc = rts.broadcast(0, (rts.rank() == 0).then(|| b("x")));
        assert_eq!(&bc[..], b"x");
        rts.gather(1, b("g"));
        assert_eq!(rts.all_reduce_f64(1.0, ReduceOp::Sum), 2.0);
    });
    disable();
    let report = chk.finish();
    assert!(report.is_clean(), "{}", report.render_table());
    assert!(report.findings.is_empty());
}

#[test]
fn reserved_tag_send_and_recv_are_flagged() {
    let _g = lock();
    enable();
    let chk = Checker::new(2);
    let bad = tags::pardis(0x99); // reserved, not an ORB tag
    checked_world(2, &chk, |rts| {
        if rts.rank() == 0 {
            rts.send(1, bad, b("evil"));
        } else {
            rts.recv(Some(0), bad);
        }
    });
    disable();
    let report = chk.finish();
    assert_eq!(report.count(Kind::ReservedTag), 2, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.severity, Severity::Error);
    assert!(f.rank.is_some());
}

#[test]
fn orb_tags_pass_the_tag_check() {
    let _g = lock();
    enable();
    let chk = Checker::new(2);
    checked_world(2, &chk, |rts| {
        if rts.rank() == 0 {
            rts.send(1, tags::ORB_FORWARD, b("orb"));
            rts.send(1, tags::ORB_REDIST, b("orb"));
        } else {
            rts.recv(Some(0), tags::ORB_FORWARD);
            rts.recv(Some(0), tags::ORB_REDIST);
        }
    });
    disable();
    assert!(chk.finish().is_clean());
}

#[test]
fn collective_mismatch_is_detected_and_does_not_hang() {
    let _g = lock();
    enable();
    let chk = Checker::new(2);
    checked_world(2, &chk, |rts| {
        if rts.rank() == 0 {
            rts.barrier();
        } else {
            rts.broadcast(1, Some(b("divergent")));
        }
    });
    disable();
    let report = chk.finish();
    assert_eq!(report.count(Kind::CollectiveMismatch), 1, "{}", report.render_table());
    let f = report.findings.iter().find(|f| f.kind == Kind::CollectiveMismatch).unwrap();
    assert_eq!(f.severity, Severity::Error);
    assert!(f.detail.contains("barrier") && f.detail.contains("broadcast"), "{}", f.detail);
}

#[test]
fn root_disagreement_is_a_mismatch() {
    let _g = lock();
    enable();
    let chk = Checker::new(2);
    checked_world(2, &chk, |rts| {
        // Both enter a broadcast, but disagree about the root.
        let root = rts.rank(); // rank 0 says root 0, rank 1 says root 1
        rts.broadcast(root, Some(b("mine")));
    });
    disable();
    let report = chk.finish();
    assert_eq!(report.count(Kind::CollectiveMismatch), 1, "{}", report.render_table());
    assert!(report.findings[0].detail.contains("root=0"));
    assert!(report.findings[0].detail.contains("root=1"));
}

#[test]
fn recv_deadlock_is_reported_not_hung() {
    let _g = lock();
    enable();
    let chk = Checker::with_watchdog(2, Duration::from_millis(50));
    checked_world(2, &chk, |rts| {
        // Classic head-to-head: both ranks receive first, nobody sends.
        let other = 1 - rts.rank();
        rts.recv(Some(other), 42);
    });
    disable();
    let report = chk.finish();
    assert!(report.count(Kind::Deadlock) >= 1, "{}", report.render_table());
    let f = report.findings.iter().find(|f| f.kind == Kind::Deadlock).unwrap();
    assert!(f.detail.contains("rank 0") && f.detail.contains("rank 1"), "{}", f.detail);
    assert!(f.detail.contains("tag=0x2a"), "{}", f.detail);
}

#[test]
fn message_leak_is_audited_at_finish() {
    let _g = lock();
    enable();
    let chk = Checker::new(2);
    checked_world(2, &chk, |rts| {
        if rts.rank() == 0 {
            rts.send(1, 5, b("lost"));
        }
        // Rank 1 never receives it.
    });
    disable();
    let report = chk.finish();
    assert_eq!(report.count(Kind::MessageLeak), 1, "{}", report.render_table());
    let f = &report.findings[0];
    assert_eq!(f.severity, Severity::Warning);
    assert!(f.detail.contains("0→1"), "{}", f.detail);
}

#[test]
fn wildcard_recv_with_competing_senders_is_advice() {
    let _g = lock();
    enable();
    let chk = Checker::new(3);
    checked_world(3, &chk, |rts| {
        if rts.rank() == 0 {
            rts.barrier(); // let both senders land their messages first
            rts.recv(None, 9);
            rts.recv(None, 9);
        } else {
            rts.send(0, 9, b("race"));
            rts.barrier();
        }
    });
    disable();
    let report = chk.finish();
    assert!(report.count(Kind::WildcardRecv) >= 1, "{}", report.render_table());
    let f = report.findings.iter().find(|f| f.kind == Kind::WildcardRecv).unwrap();
    assert_eq!(f.severity, Severity::Advice);
    // Advice alone keeps the report clean (CI-safe).
    assert!(report.is_clean());
}

#[test]
fn disabled_mode_records_nothing_and_is_passthrough() {
    let _g = lock();
    disable();
    let chk = Checker::new(2);
    let out = checked_world(2, &chk, |rts| {
        // Traffic that would trip every detector if the gate were on:
        // reserved tag, unmatched send, mismatched collective roots avoided
        // (that would genuinely hang when unchecked) — use tag + leak.
        if rts.rank() == 0 {
            rts.send(1, tags::pardis(0x77), b("x"));
            rts.send(1, 3, b("leak"));
        } else {
            rts.recv(Some(0), tags::pardis(0x77));
        }
        rts.barrier();
        rts.all_gather(b("a")).len()
    });
    assert_eq!(out, vec![2, 2]);
    // Gate off ⇒ the decorator never called into the checker at all.
    assert_eq!(chk.events_recorded(), 0);
    assert_eq!(chk.findings_so_far(), 0);
    // finish() still flags the unreceived send? No: nothing was recorded.
    let report = chk.finish();
    assert!(report.findings.is_empty(), "{}", report.render_table());
}

#[test]
fn wrap_if_without_checker_returns_inner() {
    let _g = lock();
    disable();
    let out = World::run(2, |rank| {
        let inner: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
        let rts = wrap_if(&None, inner);
        rts.barrier();
        rts.rank()
    });
    assert_eq!(out, vec![0, 1]);
}

#[test]
fn report_renders_table_and_json() {
    let report = CheckReport {
        world_size: 2,
        findings: vec![
            Finding {
                severity: Severity::Error,
                kind: Kind::ReservedTag,
                rank: Some(1),
                detail: "send with reserved tag 0x4000000000000099".into(),
            },
            Finding {
                severity: Severity::Advice,
                kind: Kind::WildcardRecv,
                rank: None,
                detail: "quote \" and backslash \\".into(),
            },
        ],
    };
    let table = report.render_table();
    assert!(table.contains("reserved-tag"));
    assert!(table.contains("error"));
    let json = report.render_json();
    assert!(json.contains("\"world_size\":2"));
    assert!(json.contains("\"kind\":\"reserved-tag\""));
    assert!(json.contains("\"rank\":null"));
    assert!(json.contains("quote \\\" and backslash \\\\"));
    assert!(!report.is_clean());
    assert_eq!(report.failures().count(), 1);
}

#[test]
fn empty_report_is_clean() {
    let report = CheckReport { world_size: 4, findings: vec![] };
    assert!(report.is_clean());
    assert!(report.render_table().contains("protocol clean"));
    assert_eq!(report.render_json(), "{\"world_size\":4,\"findings\":[]}");
}
