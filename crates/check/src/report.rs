//! Findings and the [`CheckReport`] they are collected into.

use std::fmt;

/// How bad a finding is. Ordering is by increasing badness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a hazard or oddity worth knowing about, never a
    /// failure (wildcard-recv nondeterminism, rendezvous watchdog expiry).
    Advice,
    /// Probably a bug (a message sent but never received).
    Warning,
    /// A protocol violation (reserved tag misuse, collective mismatch,
    /// deadlock).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Advice => "advice",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The class of protocol defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Application traffic on a tag inside the ORB's reserved band.
    ReservedTag,
    /// Ranks entered different collectives (or the same collective with
    /// different roots) at the same epoch.
    CollectiveMismatch,
    /// The collective rendezvous watchdog expired before every rank showed
    /// up; the checker stood aside and let the collective run unverified.
    CollectiveStall,
    /// A cycle in the wait-for graph of blocked receives.
    Deadlock,
    /// Messages still in flight at teardown (sent, never received).
    MessageLeak,
    /// A wildcard (`from = None`) blocking receive with two or more
    /// eligible senders: which message wins is nondeterministic.
    WildcardRecv,
}

impl Kind {
    /// Stable machine-readable code, also used in the JSON rendering.
    pub fn code(self) -> &'static str {
        match self {
            Kind::ReservedTag => "reserved-tag",
            Kind::CollectiveMismatch => "collective-mismatch",
            Kind::CollectiveStall => "collective-stall",
            Kind::Deadlock => "deadlock",
            Kind::MessageLeak => "message-leak",
            Kind::WildcardRecv => "wildcard-recv",
        }
    }
}

/// One defect the checker observed, attributed to the rank that triggered
/// it (`rank = None` for world-global findings such as the leak audit).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Severity tier.
    pub severity: Severity,
    /// Defect class.
    pub kind: Kind,
    /// The rank the defect is attributed to, if any.
    pub rank: Option<usize>,
    /// Human-readable detail (tags, peers, epochs, pending-op stacks).
    pub detail: String,
}

/// Everything the checker found over one world's lifetime.
///
/// Render with [`CheckReport::render_table`] for humans or
/// [`CheckReport::render_json`] for tooling; gate CI on
/// [`CheckReport::is_clean`] (advice does not fail a run).
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// World size the checker observed.
    pub world_size: usize,
    /// All findings, in the order they were recorded.
    pub findings: Vec<Finding>,
}

impl CheckReport {
    /// True when no finding is a warning or an error (advice is allowed).
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| f.severity < Severity::Warning)
    }

    /// Findings at warning severity or above.
    pub fn failures(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity >= Severity::Warning)
    }

    /// Count findings of one class.
    pub fn count(&self, kind: Kind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }

    /// Human-readable fixed-width table, one row per finding.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pardis-check report — world of {} rank(s), {} finding(s)\n",
            self.world_size,
            self.findings.len()
        ));
        if self.findings.is_empty() {
            out.push_str("  protocol clean: no findings\n");
            return out;
        }
        out.push_str(&format!(
            "  {:<8} {:<20} {:<6} detail\n  {:-<8} {:-<20} {:-<6} {:-<40}\n",
            "severity", "kind", "rank", "", "", "", ""
        ));
        for f in &self.findings {
            let rank = f.rank.map_or_else(|| "-".to_string(), |r| r.to_string());
            out.push_str(&format!(
                "  {:<8} {:<20} {:<6} {}\n",
                f.severity.to_string(),
                f.kind.code(),
                rank,
                f.detail
            ));
        }
        out
    }

    /// Machine-readable JSON rendering (no external deps; strings escaped).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"world_size\":{},\"findings\":[", self.world_size));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"kind\":\"{}\",\"rank\":{},\"detail\":\"{}\"}}",
                f.severity,
                f.kind.code(),
                f.rank.map_or_else(|| "null".to_string(), |r| r.to_string()),
                escape_json(&f.detail)
            ));
        }
        out.push_str("]}");
        out
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
