//! A minimal JSON document model and recursive-descent parser.
//!
//! The workspace carries no serialization dependency; exporters hand-roll
//! their JSON and [`crate::is_valid_json`] checks well-formedness. The
//! trace *analyzer* ([`crate::profile`]) additionally needs to read
//! exported traces back, so this module parses the same grammar into a
//! small DOM. Strict JSON only — no comments, trailing commas, or NaN.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON numbers are doubles).
    Num(f64),
    /// A string, escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse a complete JSON document.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser { b: s.as_bytes(), i: 0 };
        let v = p.value()?;
        p.ws();
        if p.i != p.b.len() {
            return Err(format!("trailing bytes at offset {}", p.i));
        }
        Ok(v)
    }

    /// Object member by key (first match), if this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn fail<T>(&self, what: &str) -> Result<T, String> {
        Err(format!("{what} at offset {}", self.i))
    }

    fn string(&mut self) -> Result<String, String> {
        if !self.eat(b'"') {
            return self.fail("expected string");
        }
        let mut out = String::new();
        loop {
            if self.i >= self.b.len() {
                return self.fail("unterminated string");
            }
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    if self.i >= self.b.len() {
                        return self.fail("unterminated escape");
                    }
                    let c = self.b[self.i];
                    self.i += 1;
                    match c {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.b.len() < self.i + 4 {
                                return self.fail("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok());
                            let Some(code) = hex else {
                                return self.fail("bad \\u escape");
                            };
                            self.i += 4;
                            // Unpaired surrogates decode to the replacement
                            // character (our exporters never emit them).
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return self.fail("bad escape"),
                    }
                }
                0x00..=0x1f => return self.fail("raw control character in string"),
                _ => {
                    // Copy one UTF-8 scalar (input is a &str, so boundaries
                    // are valid).
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && self.b[self.i] & 0xc0 == 0x80 {
                        self.i += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.b[start..self.i]).expect("utf8 input"));
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        let start = self.i;
        let _ = self.eat(b'-');
        let first_digit = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        let digits = self.i - first_digit;
        if digits == 0 {
            return self.fail("expected digits");
        }
        if digits > 1 && self.b[first_digit] == b'0' {
            return self.fail("leading zero");
        }
        if self.eat(b'.') {
            let frac_start = self.i;
            while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
                self.i += 1;
            }
            if self.i == frac_start {
                return self.fail("expected fraction digits");
            }
        }
        if self.i < self.b.len() && matches!(self.b[self.i], b'e' | b'E') {
            self.i += 1;
            if self.i < self.b.len() && matches!(self.b[self.i], b'+' | b'-') {
                self.i += 1;
            }
            let exp_start = self.i;
            while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
                self.i += 1;
            }
            if self.i == exp_start {
                return self.fail("expected exponent digits");
            }
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or_else(|| format!("unparseable number at offset {start}"))
    }

    fn value(&mut self) -> Result<Json, String> {
        self.ws();
        if self.i >= self.b.len() {
            return self.fail("unexpected end of input");
        }
        match self.b[self.i] {
            b'{' => {
                self.i += 1;
                self.ws();
                let mut members = Vec::new();
                if self.eat(b'}') {
                    return Ok(Json::Obj(members));
                }
                loop {
                    self.ws();
                    let key = self.string()?;
                    self.ws();
                    if !self.eat(b':') {
                        return self.fail("expected ':'");
                    }
                    let val = self.value()?;
                    members.push((key, val));
                    self.ws();
                    if self.eat(b',') {
                        continue;
                    }
                    if self.eat(b'}') {
                        return Ok(Json::Obj(members));
                    }
                    return self.fail("expected ',' or '}'");
                }
            }
            b'[' => {
                self.i += 1;
                self.ws();
                let mut items = Vec::new();
                if self.eat(b']') {
                    return Ok(Json::Arr(items));
                }
                loop {
                    items.push(self.value()?);
                    self.ws();
                    if self.eat(b',') {
                        continue;
                    }
                    if self.eat(b']') {
                        return Ok(Json::Arr(items));
                    }
                    return self.fail("expected ',' or ']'");
                }
            }
            b'"' => self.string().map(Json::Str),
            b't' => {
                if self.b[self.i..].starts_with(b"true") {
                    self.i += 4;
                    Ok(Json::Bool(true))
                } else {
                    self.fail("bad literal")
                }
            }
            b'f' => {
                if self.b[self.i..].starts_with(b"false") {
                    self.i += 5;
                    Ok(Json::Bool(false))
                } else {
                    self.fail("bad literal")
                }
            }
            b'n' => {
                if self.b[self.i..].starts_with(b"null") {
                    self.i += 4;
                    Ok(Json::Null)
                } else {
                    self.fail("bad literal")
                }
            }
            _ => self.number().map(Json::Num),
        }
    }
}
