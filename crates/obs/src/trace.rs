//! Ambient causal trace context.
//!
//! A [`TraceCtx`] names one end-to-end invocation (`trace_id`) and the span
//! the current code is causally under (`span_id`). The context travels two
//! ways:
//!
//! * **in-process** — a thread-local ambient slot ([`current_ctx`]) that
//!   instrumentation points read when stamping events, entered with the
//!   RAII guard from [`enter_ctx`];
//! * **on the wire** — the ORB's frame header carries the sender's context
//!   (16 bytes, present only while tracing) so the receiving POA, fragment
//!   forwarders and the netsim transit instrumentation all stamp their
//!   events with the *originating* invocation's ids, stitching client,
//!   network and server spans into one causal tree even across registry
//!   failover rebinds and retransmissions.
//!
//! Identifiers are derived with [`mix64`] from deterministic inputs (the
//! invocation's entity/sequence identity), never from a global counter or
//! wall clock, so same-seed runs produce byte-identical traces.

use crate::ArgVal;
use std::cell::Cell;

/// One invocation's causal coordinates: which trace the current work
/// belongs to and which span it is causally under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Stable id of the end-to-end invocation. Survives retransmissions and
    /// failover rebinds (a replayed invocation reuses the original id).
    pub trace_id: u64,
    /// The span the current code runs under — the parent of any span or
    /// instant recorded while this context is ambient.
    pub span_id: u64,
}

impl TraceCtx {
    /// The root context of a new trace: the trace id doubles as the root
    /// span id.
    pub fn root(trace_id: u64) -> TraceCtx {
        TraceCtx { trace_id, span_id: trace_id }
    }

    /// A child context under this one: same trace, new deterministic span
    /// id derived from the parent span and a caller-chosen salt (e.g. a
    /// name hash — same salt + same parent → same child).
    pub fn child(&self, salt: u64) -> TraceCtx {
        TraceCtx { trace_id: self.trace_id, span_id: mix64(self.span_id ^ mix64(salt | 1)) }
    }

    /// The standard event arguments announcing this context: `trace` and
    /// `parent`. Root-span events add their own `span` id separately.
    pub fn args(&self) -> Vec<(&'static str, ArgVal)> {
        vec![("trace", ArgVal::U64(self.trace_id)), ("parent", ArgVal::U64(self.span_id))]
    }
}

/// SplitMix64 finalizer: a cheap, high-quality 64-bit mixer used for all
/// deterministic id derivation.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Derive a trace id from an invocation's stable identity (entity, client
/// sequence). The same invocation — including its failover replays, which
/// reuse the identity of the first attempt — always maps to the same id.
pub fn derive_trace_id(entity: u64, seq: u64) -> u64 {
    // Fold both words through the mixer; keep the result nonzero so a raw
    // zero never masquerades as "no context".
    mix64(entity ^ mix64(seq)).max(1)
}

thread_local! {
    static CURRENT: Cell<Option<TraceCtx>> = const { Cell::new(None) };
}

/// The calling thread's ambient trace context, if any. One `Cell` read —
/// cheap enough for encode paths (and only ever set while tracing is on).
#[inline]
pub fn current_ctx() -> Option<TraceCtx> {
    CURRENT.with(|c| c.get())
}

/// Make `ctx` ambient on this thread until the returned guard drops; the
/// previous context (if any) is restored then. Guards nest.
pub fn enter_ctx(ctx: TraceCtx) -> CtxGuard {
    CtxGuard { prev: CURRENT.with(|c| c.replace(Some(ctx))) }
}

/// Restores the previously ambient context on drop. See [`enter_ctx`].
#[must_use = "dropping the guard immediately restores the previous context"]
pub struct CtxGuard {
    prev: Option<TraceCtx>,
}

impl Drop for CtxGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| c.set(self.prev));
    }
}
