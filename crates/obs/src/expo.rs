//! Metrics exposition: Prometheus text format and a JSON snapshot.
//!
//! Both renderers consume the sorted output of [`crate::metrics_snapshot`]
//! and are fully deterministic — the same snapshot always renders to the
//! same bytes, so same-seed runs export byte-identical files.
//!
//! Per-series metric names follow the registry convention
//! `family.op.<op>` / `family.binding.<id>`: the Prometheus renderer lifts
//! those suffixes into `op=`/`binding=` labels so one family (e.g.
//! `pardis_orb_invoke_latency_us`) carries every series, the way a real
//! scrape endpoint would.

use crate::metrics::MetricSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A labelled point-in-time metrics capture: `(label, virtual-clock micros,
/// full registry snapshot)`.
pub type LabelledSnapshot = (String, u64, Vec<(String, MetricSnapshot)>);

/// One exposition series: the labels lifted off the registry name, plus the
/// snapshot they describe.
type Series<'a> = (Vec<(&'static str, String)>, &'a MetricSnapshot);

/// The quantiles every histogram family exposes, as `(q, suffix)`: the
/// suffix names the companion gauge family (`<family>_p50`) and the JSON
/// field (`"p50"`).
pub const EXPORTED_QUANTILES: [(f64, &str); 3] = [(0.5, "p50"), (0.95, "p95"), (0.99, "p99")];

/// Split a registry name into its Prometheus family and labels: the first
/// `.op.<rest>` or `.binding.<rest>` suffix becomes a label.
fn family_and_labels(name: &str) -> (String, Vec<(&'static str, String)>) {
    for (marker, label) in [(".op.", "op"), (".binding.", "binding")] {
        if let Some(pos) = name.find(marker) {
            let family = name[..pos].to_string();
            let value = name[pos + marker.len()..].to_string();
            return (family, vec![(label, value)]);
        }
    }
    (name.to_string(), Vec::new())
}

/// `pardis_` + the name with every non-alphanumeric mapped to `_`.
fn prom_name(family: &str) -> String {
    let mut out = String::with_capacity(family.len() + 7);
    out.push_str("pardis_");
    for c in family.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn prom_labels(out: &mut String, labels: &[(&'static str, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", v.replace('\\', "\\\\").replace('"', "\\\""));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
}

/// Render a metrics snapshot in the Prometheus text exposition format.
///
/// Counters become `counter` families; histograms become `histogram`
/// families (cumulative `_bucket{le=...}` + `_sum` + `_count`) plus
/// companion `gauge` families `<family>_p50` / `_p95` / `_p99` carrying the
/// estimated quantiles per series.
pub fn render_prometheus(metrics: &[(String, MetricSnapshot)]) -> String {
    // Group series under their family so each `# TYPE` header is emitted
    // exactly once, whatever the registry interleaving.
    let mut families: BTreeMap<String, Vec<Series<'_>>> = BTreeMap::new();
    for (name, snap) in metrics {
        let (family, labels) = family_and_labels(name);
        families.entry(family).or_default().push((labels, snap));
    }
    let mut out = String::with_capacity(4096);
    for (family, series) in &families {
        let base = prom_name(family);
        let kind = match series[0].1 {
            MetricSnapshot::Counter(_) => "counter",
            MetricSnapshot::Histogram { .. } => "histogram",
        };
        let _ = writeln!(out, "# TYPE {base} {kind}");
        for (labels, snap) in series {
            match snap {
                MetricSnapshot::Counter(v) => {
                    out.push_str(&base);
                    prom_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {v}");
                }
                MetricSnapshot::Histogram { count, sum, buckets } => {
                    let mut cum = 0u64;
                    for (le, n) in buckets {
                        cum += n;
                        let _ = write!(out, "{base}_bucket");
                        prom_labels(&mut out, labels, Some(("le", &le.to_string())));
                        let _ = writeln!(out, " {cum}");
                    }
                    let _ = write!(out, "{base}_bucket");
                    prom_labels(&mut out, labels, Some(("le", "+Inf")));
                    let _ = writeln!(out, " {count}");
                    let _ = write!(out, "{base}_sum");
                    prom_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {sum}");
                    let _ = write!(out, "{base}_count");
                    prom_labels(&mut out, labels, None);
                    let _ = writeln!(out, " {count}");
                }
            }
        }
        // Companion quantile gauges for histogram families.
        if matches!(series[0].1, MetricSnapshot::Histogram { .. }) {
            for (q, suffix) in EXPORTED_QUANTILES {
                let _ = writeln!(out, "# TYPE {base}_{suffix} gauge");
                for (labels, snap) in series {
                    if let Some(v) = snap.quantile(q) {
                        let _ = write!(out, "{base}_{suffix}");
                        prom_labels(&mut out, labels, None);
                        let _ = writeln!(out, " {v}");
                    }
                }
            }
        }
    }
    out
}

/// Render a metrics snapshot as a JSON object keyed by full registry name.
/// Histograms carry count/sum/p50/p95/p99 and their non-empty buckets.
/// [`metrics_json`] plus a `snapshots` array of labelled point-in-time
/// captures `(label, virtual-clock micros, metrics)` — the periodic
/// snapshot series a trace session collected along the way. With no
/// snapshots the output is identical to [`metrics_json`].
pub fn metrics_json_with_snapshots(
    metrics: &[(String, MetricSnapshot)],
    snapshots: &[LabelledSnapshot],
) -> String {
    let mut out = metrics_json(metrics);
    if snapshots.is_empty() {
        return out;
    }
    // Splice the array into the final object: drop the closing brace, append
    // each capture re-using the single-snapshot renderer (its leading `{` is
    // skipped so the `label`/`ts_us` fields share the object).
    out.pop();
    out.push_str(",\"snapshots\":[");
    for (i, (label, ts_us, m)) in snapshots.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let inner = metrics_json(m);
        let _ = write!(
            out,
            "{{\"label\":\"{}\",\"ts_us\":{ts_us},{}",
            label.replace('\\', "\\\\").replace('"', "\\\""),
            &inner[1..]
        );
    }
    out.push_str("]}");
    out
}

pub fn metrics_json(metrics: &[(String, MetricSnapshot)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"metrics\":{");
    for (i, (name, snap)) in metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":", name.replace('\\', "\\\\").replace('"', "\\\""));
        match snap {
            MetricSnapshot::Counter(v) => {
                let _ = write!(out, "{{\"type\":\"counter\",\"value\":{v}}}");
            }
            MetricSnapshot::Histogram { count, sum, buckets } => {
                let _ = write!(out, "{{\"type\":\"histogram\",\"count\":{count},\"sum\":{sum}");
                for (q, suffix) in EXPORTED_QUANTILES {
                    let _ = write!(out, ",\"{suffix}\":");
                    match snap.quantile(q) {
                        Some(v) if v.is_finite() => {
                            let _ = write!(out, "{v}");
                        }
                        _ => out.push_str("null"),
                    }
                }
                out.push_str(",\"buckets\":[");
                for (j, (le, n)) in buckets.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{{\"le\":{le},\"count\":{n}}}");
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("}}");
    out
}
