//! The metrics registry: named counters and histograms.
//!
//! Registration is get-or-create by name; handles are cheap clones around
//! shared atomics, so hot paths can cache them. Snapshots iterate in sorted
//! name order, which keeps every export deterministic.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two histogram buckets (covers the full `u64` range).
pub const HIST_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    /// `buckets[i]` counts observations with `floor(log2(v)) == i - 1`
    /// (bucket 0 holds zeros).
    buckets: Vec<AtomicU64>,
}

/// A histogram of `u64` observations in power-of-two buckets — enough
/// resolution for latency/backoff distributions without configuration.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let inner = &self.0;
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        let idx = if v == 0 { 0 } else { 64 - (v.leading_zeros() as usize) };
        inner.buckets[idx.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }
}

enum Metric {
    Counter(Counter),
    Histogram(Histogram),
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

/// Get or create the counter named `name`.
///
/// # Panics
/// Panics if `name` is already registered as a histogram.
pub fn counter(name: &str) -> Counter {
    let mut reg = REGISTRY.lock();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        Metric::Histogram(_) => panic!("metric {name:?} is a histogram, not a counter"),
    }
}

/// Set the counter named `name` to an absolute value — the pull-model entry
/// point used to mirror externally-accumulated statistics (fault counters,
/// ORB traffic) into the registry at export time.
pub fn set_counter(name: &str, value: u64) {
    counter(name).0.store(value, Ordering::Relaxed);
}

/// Get or create the histogram named `name`.
///
/// # Panics
/// Panics if `name` is already registered as a counter.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = REGISTRY.lock();
    match reg.entry(name.to_string()).or_insert_with(|| {
        Metric::Histogram(Histogram(Arc::new(HistInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        })))
    }) {
        Metric::Histogram(h) => h.clone(),
        Metric::Counter(_) => panic!("metric {name:?} is a counter, not a histogram"),
    }
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Histogram: observation count, sum, and the non-empty `(upper_bound,
    /// count)` buckets.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Non-empty buckets as `(inclusive upper bound, count)`.
        buckets: Vec<(u64, u64)>,
    },
}

/// Snapshot every registered metric, sorted by name.
pub fn metrics_snapshot() -> Vec<(String, MetricSnapshot)> {
    let reg = REGISTRY.lock();
    reg.iter()
        .map(|(name, metric)| {
            let snap = match metric {
                Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h
                        .0
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then(|| {
                                let le = if i == 0 { 0 } else { (1u128 << i) - 1 };
                                (le.min(u64::MAX as u128) as u64, n)
                            })
                        })
                        .collect(),
                },
            };
            (name.clone(), snap)
        })
        .collect()
}

/// Drop every registered metric.
pub fn metrics_reset() {
    REGISTRY.lock().clear();
}
