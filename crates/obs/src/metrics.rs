//! The metrics registry: named counters and histograms.
//!
//! Registration is get-or-create by name; handles are cheap clones around
//! shared atomics, so hot paths can cache them. Snapshots iterate in sorted
//! name order, which keeps every export deterministic.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of power-of-two histogram buckets (covers the full `u64` range).
pub const HIST_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistInner {
    count: AtomicU64,
    sum: AtomicU64,
    /// `buckets[i]` counts observations with `floor(log2(v)) == i - 1`
    /// (bucket 0 holds zeros).
    buckets: Vec<AtomicU64>,
}

/// A histogram of `u64` observations in power-of-two buckets — enough
/// resolution for latency/backoff distributions without configuration.
#[derive(Clone)]
pub struct Histogram(Arc<HistInner>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        let inner = &self.0;
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        let idx = if v == 0 { 0 } else { 64 - (v.leading_zeros() as usize) };
        inner.buckets[idx.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (see [`quantile_from_buckets`]).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let buckets: Vec<(u64, u64)> = self
            .0
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect();
        quantile_from_buckets(&buckets, self.count(), q)
    }
}

/// Inclusive upper bound of power-of-two bucket `i` (bucket 0 holds zeros).
fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        ((1u128 << i) - 1).min(u64::MAX as u128) as u64
    }
}

/// Estimate the `q`-quantile of a log-bucketed distribution by linear
/// interpolation inside the bucket holding the target rank.
///
/// `buckets` are `(inclusive upper bound, count)` pairs in ascending bound
/// order (empty buckets may be omitted) and `count` is the total number of
/// observations. The rank convention is nearest-rank: the target is sample
/// `ceil(q·count)` (1-based) of the sorted observations. The estimate is
/// always within the bounds of the bucket containing that sample, so its
/// error is bounded by the bucket width (a factor of two in value).
///
/// Returns `None` for an empty distribution; `q` is clamped to `[0, 1]`.
pub fn quantile_from_buckets(buckets: &[(u64, u64)], count: u64, q: f64) -> Option<f64> {
    if count == 0 || buckets.is_empty() {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let target = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cum = 0u64;
    for &(le, n) in buckets {
        if n == 0 {
            continue;
        }
        cum += n;
        if cum >= target {
            // The bucket's inclusive value range: [lo, le].
            let lo = if le == 0 { 0 } else { (le >> 1) + 1 };
            let rank_in_bucket = target - (cum - n); // 1-based within bucket
            let frac = rank_in_bucket as f64 / n as f64;
            return Some(lo as f64 + frac * (le - lo) as f64);
        }
    }
    // `count` exceeded the bucket totals (concurrent observe mid-snapshot);
    // fall back to the top bucket's bound.
    buckets.last().map(|&(le, _)| le as f64)
}

enum Metric {
    Counter(Counter),
    Histogram(Histogram),
}

static REGISTRY: Mutex<BTreeMap<String, Metric>> = Mutex::new(BTreeMap::new());

/// Get or create the counter named `name`.
///
/// # Panics
/// Panics if `name` is already registered as a histogram.
pub fn counter(name: &str) -> Counter {
    let mut reg = REGISTRY.lock();
    match reg
        .entry(name.to_string())
        .or_insert_with(|| Metric::Counter(Counter(Arc::new(AtomicU64::new(0)))))
    {
        Metric::Counter(c) => c.clone(),
        Metric::Histogram(_) => panic!("metric {name:?} is a histogram, not a counter"),
    }
}

/// Set the counter named `name` to an absolute value — the pull-model entry
/// point used to mirror externally-accumulated statistics (fault counters,
/// ORB traffic) into the registry at export time.
pub fn set_counter(name: &str, value: u64) {
    counter(name).0.store(value, Ordering::Relaxed);
}

/// Get or create the histogram named `name`.
///
/// # Panics
/// Panics if `name` is already registered as a counter.
pub fn histogram(name: &str) -> Histogram {
    let mut reg = REGISTRY.lock();
    match reg.entry(name.to_string()).or_insert_with(|| {
        Metric::Histogram(Histogram(Arc::new(HistInner {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        })))
    }) {
        Metric::Histogram(h) => h.clone(),
        Metric::Counter(_) => panic!("metric {name:?} is a counter, not a histogram"),
    }
}

/// A point-in-time reading of one metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Histogram: observation count, sum, and the non-empty `(upper_bound,
    /// count)` buckets.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Non-empty buckets as `(inclusive upper bound, count)`.
        buckets: Vec<(u64, u64)>,
    },
}

impl MetricSnapshot {
    /// Estimate the `q`-quantile of a histogram snapshot (see
    /// [`quantile_from_buckets`]); `None` for counters and empty histograms.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        match self {
            MetricSnapshot::Counter(_) => None,
            MetricSnapshot::Histogram { count, buckets, .. } => {
                quantile_from_buckets(buckets, *count, q)
            }
        }
    }
}

/// Snapshot every registered metric, sorted by name.
pub fn metrics_snapshot() -> Vec<(String, MetricSnapshot)> {
    let reg = REGISTRY.lock();
    reg.iter()
        .map(|(name, metric)| {
            let snap = match metric {
                Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                Metric::Histogram(h) => MetricSnapshot::Histogram {
                    count: h.count(),
                    sum: h.sum(),
                    buckets: h
                        .0
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let n = b.load(Ordering::Relaxed);
                            (n > 0).then(|| {
                                let le = if i == 0 { 0 } else { (1u128 << i) - 1 };
                                (le.min(u64::MAX as u128) as u64, n)
                            })
                        })
                        .collect(),
                },
            };
            (name.clone(), snap)
        })
        .collect()
}

/// Drop every registered metric.
pub fn metrics_reset() {
    REGISTRY.lock().clear();
}
