//! Critical-path latency attribution — the `pardis-profile` analyzer.
//!
//! The paper's figure-2 argument is a *decomposition*: invocation latency =
//! marshaling + software overhead `t_o` + wire time, with `t_o` computed as
//! the residual. This module reconstructs exactly that table from an
//! exported Chrome trace (`PARDIS_TRACE`): it groups every event by the
//! causal `trace` id stamped by [`crate::trace`], lays each invocation's
//! spans and transit instants on the virtual-clock timeline, and attributes
//! every microsecond of the root span to one named segment:
//!
//! | segment    | source                                                    |
//! |------------|-----------------------------------------------------------|
//! | `marshal`  | `client.marshal_send` spans                               |
//! | `dispatch` | `poa.dispatch` spans (servant execution + reply cut)      |
//! | `wire`     | `net.transit` wire + serialization time                   |
//! | `queue`    | `net.transit` lane queueing (shared-medium waits)         |
//! | `backoff`  | `client.backoff` retransmission waits                     |
//! | `rebind`   | registry traffic nested under a failover invocation       |
//! | `t_o`      | link software overhead + the uncovered residual — the     |
//! |            | paper's software-overhead term                            |
//!
//! Overlapping intervals are resolved by a fixed priority sweep (backoff >
//! rebind > marshal > dispatch > link-`t_o` > wire > queue), so the segment
//! sums reconcile with the observed end-to-end time *by construction*; the
//! reconciliation check guards the analyzer itself (and the trace) against
//! regressions. Everything is deterministic: same trace bytes in, same
//! report bytes out.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The attributed segments, in report order. `t_o` is the paper's software
/// overhead: link send overhead plus the uncovered residual.
pub const SEGMENTS: [&str; 7] =
    ["marshal", "t_o", "wire", "queue", "dispatch", "backoff", "rebind"];

const SEG_MARSHAL: usize = 0;
const SEG_TO: usize = 1;
const SEG_WIRE: usize = 2;
const SEG_QUEUE: usize = 3;
const SEG_DISPATCH: usize = 4;
const SEG_BACKOFF: usize = 5;
const SEG_REBIND: usize = 6;

/// Sweep priority per segment (higher wins where intervals overlap); the
/// residual (no covering interval) lands in `t_o`.
fn priority(seg: usize) -> u8 {
    match seg {
        SEG_BACKOFF => 7,
        SEG_REBIND => 6,
        SEG_MARSHAL => 5,
        SEG_DISPATCH => 4,
        SEG_WIRE => 2,
        SEG_QUEUE => 1,
        _ => 3, // link t_o intervals
    }
}

/// One invocation's attributed latency.
#[derive(Debug, Clone, PartialEq)]
pub struct InvocationProfile {
    /// The causal trace id.
    pub trace: u64,
    /// Root operation name.
    pub op: String,
    /// Root span open, virtual-clock microseconds.
    pub begin_us: u64,
    /// End-to-end latency (root span duration), microseconds.
    pub total_us: f64,
    /// Attributed microseconds per [`SEGMENTS`] entry; sums to `total_us`.
    pub segments: [f64; 7],
}

/// The analyzer's result: one entry per traced invocation, in timeline
/// order.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileReport {
    /// Per-invocation attributions, sorted by `(begin_us, trace)`.
    pub invocations: Vec<InvocationProfile>,
    /// Relative reconciliation tolerance the report was checked against.
    pub tolerance: f64,
}

#[derive(Debug, Clone)]
struct SpanRec {
    name: String,
    trace: Option<u64>,
    span: Option<u64>,
    op: Option<String>,
    begin: u64,
    end: u64,
}

#[derive(Debug, Clone, Copy)]
struct Interval {
    start: f64,
    end: f64,
    seg: usize,
    prio: u8,
}

fn arg_u64(args: Option<&Json>, key: &str) -> Option<u64> {
    args.and_then(|a| a.get(key)).and_then(Json::as_u64)
}

fn arg_f64(args: Option<&Json>, key: &str) -> Option<f64> {
    args.and_then(|a| a.get(key)).and_then(Json::as_f64)
}

fn arg_str<'j>(args: Option<&'j Json>, key: &str) -> Option<&'j str> {
    args.and_then(|a| a.get(key)).and_then(Json::as_str)
}

/// Operations that constitute registry traffic: nested under a failover
/// root they are attributed to the `rebind` segment.
fn is_registry_op(op: &str) -> bool {
    matches!(op, "resolve" | "register" | "heartbeat" | "deregister" | "watch" | "list")
}

/// Parse an exported Chrome trace and attribute every traced invocation's
/// end-to-end latency to [`SEGMENTS`]. `tolerance` is the relative
/// reconciliation bound later enforced by [`ProfileReport::reconcile`].
pub fn profile_trace(trace_json: &str, tolerance: f64) -> Result<ProfileReport, String> {
    let doc = Json::parse(trace_json)?;
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_arr)
        .ok_or_else(|| "trace has no traceEvents array".to_string())?;

    // -- pass 1: pair up B/E spans and collect interval-bearing instants --
    // Key-carrying spans are matched globally by (name, binding, req) so a
    // span closed on a different thread than it was opened on (the client's
    // comm thread finishing an invocation) still pairs up. Keyless spans
    // match LIFO per (tid, name).
    let mut keyed_open: BTreeMap<(String, u64, u64), Vec<SpanRec>> = BTreeMap::new();
    let mut tid_open: BTreeMap<(u64, String), Vec<SpanRec>> = BTreeMap::new();
    let mut spans: Vec<SpanRec> = Vec::new();
    // (trace, interval) pairs from instants.
    let mut instant_ivals: Vec<(u64, Interval)> = Vec::new();

    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).unwrap_or("");
        let name = ev.get("name").and_then(Json::as_str).unwrap_or("");
        let ts = ev.get("ts").and_then(Json::as_f64).unwrap_or(0.0);
        let tid = ev.get("tid").and_then(Json::as_u64).unwrap_or(0);
        let args = ev.get("args");
        match ph {
            "B" => {
                let rec = SpanRec {
                    name: name.to_string(),
                    trace: arg_u64(args, "trace"),
                    span: arg_u64(args, "span"),
                    op: arg_str(args, "op").map(str::to_string),
                    begin: ts as u64,
                    end: ts as u64,
                };
                match (arg_u64(args, "binding"), arg_u64(args, "req")) {
                    (Some(b), Some(r)) => {
                        keyed_open.entry((name.to_string(), b, r)).or_default().push(rec)
                    }
                    _ => tid_open.entry((tid, name.to_string())).or_default().push(rec),
                }
            }
            "E" => {
                let slot = match (arg_u64(args, "binding"), arg_u64(args, "req")) {
                    (Some(b), Some(r)) => keyed_open.get_mut(&(name.to_string(), b, r)),
                    _ => tid_open.get_mut(&(tid, name.to_string())),
                };
                if let Some(open) = slot.and_then(|v| v.pop()) {
                    let mut rec = open;
                    rec.end = ts as u64;
                    // An end may carry context the begin lacked.
                    rec.trace = rec.trace.or(arg_u64(args, "trace"));
                    spans.push(rec);
                }
            }
            "i" => {
                let Some(trace) = arg_u64(args, "trace") else { continue };
                match name {
                    "net.transit" => {
                        let arrive = arg_f64(args, "arrive_us").unwrap_or(ts);
                        let depart = arg_f64(args, "depart_us").unwrap_or(arrive);
                        let queue = arg_f64(args, "queue_us").unwrap_or(0.0);
                        let t_o = arg_f64(args, "t_o_us").unwrap_or(0.0);
                        // Layout on the lane timeline: queueing before the
                        // departure stamp, then the sender's software
                        // overhead, then wire + serialization to arrival.
                        let ivals = [
                            (depart - queue, depart, SEG_QUEUE),
                            (depart, depart + t_o, SEG_TO),
                            (depart + t_o, arrive, SEG_WIRE),
                        ];
                        for (start, end, seg) in ivals {
                            if end > start {
                                instant_ivals.push((
                                    trace,
                                    Interval { start, end, seg, prio: priority(seg) },
                                ));
                            }
                        }
                    }
                    "client.backoff" => {
                        let us = arg_f64(args, "us").unwrap_or(0.0);
                        if us > 0.0 {
                            instant_ivals.push((
                                trace,
                                Interval {
                                    start: ts - us,
                                    end: ts,
                                    seg: SEG_BACKOFF,
                                    prio: priority(SEG_BACKOFF),
                                },
                            ));
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }

    // -- pass 2: find each trace's root span and bucket child intervals --
    let mut roots: BTreeMap<u64, SpanRec> = BTreeMap::new();
    let mut child_ivals: BTreeMap<u64, Vec<Interval>> = BTreeMap::new();
    for rec in &spans {
        let Some(trace) = rec.trace else { continue };
        let is_root = rec.span == Some(trace);
        if is_root && (rec.name == "client.invoke" || rec.name == "failover.invoke") {
            // Keep the widest root if duplicates appear.
            let keep = match roots.get(&trace) {
                Some(prev) => rec.end - rec.begin > prev.end - prev.begin,
                None => true,
            };
            if keep {
                roots.insert(trace, rec.clone());
            }
            continue;
        }
        let seg = match rec.name.as_str() {
            "client.marshal_send" => Some(SEG_MARSHAL),
            "poa.dispatch" => Some(SEG_DISPATCH),
            // Registry traffic replayed under a failover root is the
            // rebind cost; its own marshal/net/dispatch events carry the
            // same trace and refine it at higher priority.
            "client.invoke" => {
                rec.op.as_deref().filter(|op| is_registry_op(op)).map(|_| SEG_REBIND)
            }
            _ => None,
        };
        if let Some(seg) = seg {
            if rec.end > rec.begin {
                child_ivals.entry(trace).or_default().push(Interval {
                    start: rec.begin as f64,
                    end: rec.end as f64,
                    seg,
                    prio: priority(seg),
                });
            }
        }
    }
    for (trace, ival) in instant_ivals {
        child_ivals.entry(trace).or_default().push(ival);
    }

    // -- pass 3: per-trace priority sweep --
    let mut invocations: Vec<InvocationProfile> = Vec::new();
    for (trace, root) in &roots {
        let (lo, hi) = (root.begin as f64, root.end as f64);
        let total = hi - lo;
        let mut segments = [0.0f64; 7];
        if total > 0.0 {
            let mut ivals: Vec<Interval> = child_ivals
                .get(trace)
                .into_iter()
                .flatten()
                .filter_map(|iv| {
                    let (s, e) = (iv.start.max(lo), iv.end.min(hi));
                    (e > s).then_some(Interval { start: s, end: e, ..*iv })
                })
                .collect();
            // Elementary-interval sweep: between consecutive boundaries the
            // covering set is constant; the highest-priority cover wins,
            // uncovered time is the t_o residual.
            let mut bounds: Vec<f64> = ivals.iter().flat_map(|iv| [iv.start, iv.end]).collect();
            bounds.push(lo);
            bounds.push(hi);
            bounds.sort_by(f64::total_cmp);
            bounds.dedup();
            ivals.sort_by(|a, b| a.start.total_cmp(&b.start));
            for w in bounds.windows(2) {
                let (s, e) = (w[0], w[1]);
                if e <= lo || s >= hi || e <= s {
                    continue;
                }
                let mid = 0.5 * (s + e);
                let winner = ivals
                    .iter()
                    .filter(|iv| iv.start <= mid && mid < iv.end)
                    .max_by_key(|iv| iv.prio);
                let seg = winner.map(|iv| iv.seg).unwrap_or(SEG_TO);
                segments[seg] += e - s;
            }
        }
        invocations.push(InvocationProfile {
            trace: *trace,
            op: root.op.clone().unwrap_or_else(|| "?".to_string()),
            begin_us: root.begin,
            total_us: total,
            segments,
        });
    }
    invocations.sort_by_key(|a| (a.begin_us, a.trace));
    Ok(ProfileReport { invocations, tolerance })
}

/// Per-op aggregate of a report.
#[derive(Debug, Clone, PartialEq)]
pub struct OpProfile {
    /// Operation name.
    pub op: String,
    /// Invocations aggregated.
    pub count: usize,
    /// Mean end-to-end latency, microseconds.
    pub mean_total_us: f64,
    /// Mean attributed microseconds per [`SEGMENTS`] entry.
    pub mean_segments: [f64; 7],
}

impl ProfileReport {
    /// Aggregate invocations per operation, sorted by op name.
    pub fn per_op(&self) -> Vec<OpProfile> {
        let mut acc: BTreeMap<&str, (usize, f64, [f64; 7])> = BTreeMap::new();
        for inv in &self.invocations {
            let e = acc.entry(&inv.op).or_insert((0, 0.0, [0.0; 7]));
            e.0 += 1;
            e.1 += inv.total_us;
            for (s, v) in e.2.iter_mut().zip(inv.segments) {
                *s += v;
            }
        }
        acc.into_iter()
            .map(|(op, (count, total, segs))| {
                let n = count as f64;
                OpProfile {
                    op: op.to_string(),
                    count,
                    mean_total_us: total / n,
                    mean_segments: segs.map(|s| s / n),
                }
            })
            .collect()
    }

    /// The largest relative mismatch between an invocation's segment sum
    /// and its observed end-to-end time.
    pub fn max_rel_err(&self) -> f64 {
        self.invocations
            .iter()
            .filter(|inv| inv.total_us > 0.0)
            .map(|inv| {
                let sum: f64 = inv.segments.iter().sum();
                ((sum - inv.total_us) / inv.total_us).abs()
            })
            .fold(0.0, f64::max)
    }

    /// Check attribution reconciles: every segment non-negative and every
    /// invocation's segment sum within `tolerance` of its end-to-end time.
    /// Returns the max relative error on success.
    pub fn reconcile(&self) -> Result<f64, String> {
        for inv in &self.invocations {
            if let Some((i, v)) =
                inv.segments.iter().enumerate().find(|(_, v)| !v.is_finite() || **v < 0.0)
            {
                return Err(format!(
                    "trace {:#x} op {}: segment {} is {v}",
                    inv.trace, inv.op, SEGMENTS[i]
                ));
            }
        }
        let err = self.max_rel_err();
        if err > self.tolerance {
            return Err(format!(
                "attribution does not reconcile: max relative error {err:.4} > tolerance {:.4}",
                self.tolerance
            ));
        }
        Ok(err)
    }

    /// The fig2-style human table: one row per op, mean microseconds per
    /// segment plus its share of the end-to-end time.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "== pardis-profile: latency attribution ({} invocations, mean µs per op) ==",
            self.invocations.len()
        );
        let _ = write!(out, "{:<14} {:>5} {:>10}", "op", "n", "total");
        for seg in SEGMENTS {
            let _ = write!(out, " {seg:>9}");
        }
        out.push('\n');
        for op in self.per_op() {
            let _ = write!(out, "{:<14} {:>5} {:>10.1}", op.op, op.count, op.mean_total_us);
            for v in op.mean_segments {
                let _ = write!(out, " {v:>9.1}");
            }
            out.push('\n');
            let _ = write!(out, "{:<14} {:>5} {:>10}", "", "", "");
            for v in op.mean_segments {
                let pct = if op.mean_total_us > 0.0 { 100.0 * v / op.mean_total_us } else { 0.0 };
                let _ = write!(out, " {:>8.1}%", pct);
            }
            out.push('\n');
        }
        match self.reconcile() {
            Ok(err) => {
                let _ = writeln!(
                    out,
                    "reconciliation: max relative error {err:.6} (tolerance {}) OK",
                    self.tolerance
                );
            }
            Err(e) => {
                let _ = writeln!(out, "reconciliation FAILED: {e}");
            }
        }
        out
    }

    /// The report as deterministic JSON (`profile.*` namespace).
    pub fn json(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = write!(
            out,
            "{{\"profile\":{{\"tolerance\":{},\"invocations\":{},\"max_rel_err\":{}",
            self.tolerance,
            self.invocations.len(),
            self.max_rel_err()
        );
        out.push_str(",\"segments\":[");
        for (i, seg) in SEGMENTS.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{seg}\"");
        }
        out.push_str("],\"ops\":[");
        for (i, op) in self.per_op().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"op\":\"{}\",\"count\":{},\"mean_total_us\":{}",
                op.op.replace('\\', "\\\\").replace('"', "\\\""),
                op.count,
                op.mean_total_us
            );
            out.push_str(",\"mean_us\":{");
            for (j, (seg, v)) in SEGMENTS.iter().zip(op.mean_segments).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{seg}\":{v}");
            }
            out.push_str("}}");
        }
        out.push_str("],\"traces\":[");
        for (i, inv) in self.invocations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"trace\":{},\"op\":\"{}\",\"begin_us\":{},\"total_us\":{}",
                inv.trace,
                inv.op.replace('\\', "\\\\").replace('"', "\\\""),
                inv.begin_us,
                inv.total_us
            );
            out.push_str(",\"us\":{");
            for (j, (seg, v)) in SEGMENTS.iter().zip(inv.segments).enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{seg}\":{v}");
            }
            out.push_str("}}");
        }
        out.push_str("]}}");
        out
    }
}
