use super::*;
use parking_lot::Mutex as PlMutex;

/// The crate's state (gate, rings, metrics, clock) is process-global, so
/// tests that exercise it must not interleave.
static SERIAL: PlMutex<()> = PlMutex::new(());

fn with_clean_state<R>(f: impl FnOnce() -> R) -> R {
    let _guard = SERIAL.lock();
    reset();
    let r = f();
    reset();
    r
}

#[test]
fn disabled_records_nothing() {
    with_clean_state(|| {
        instant("test", "never", None, vec![]);
        span_begin("test", "never", None, vec![]);
        span_end("test", "never", None, vec![]);
        enable();
        let threads = drain();
        assert!(threads.iter().all(|t| t.events.is_empty()));
    });
}

#[test]
fn events_round_trip_in_order() {
    with_clean_state(|| {
        enable();
        set_thread_label("unit");
        instant("test", "a", Some((7, 1)), vec![("n", 3u64.into())]);
        span_begin("test", "b", None, vec![]);
        span_end("test", "b", None, vec![]);
        let threads = drain();
        let t = threads.iter().find(|t| t.label == "unit").expect("labelled ring");
        let shape: Vec<(Phase, &str)> =
            t.events.iter().map(|e| (e.phase, e.name.as_ref())).collect();
        assert_eq!(shape, vec![(Phase::Instant, "a"), (Phase::Begin, "b"), (Phase::End, "b")]);
        assert_eq!(t.events[0].key, Some((7, 1)));
        // Drain removed them.
        assert!(drain().iter().all(|t| t.events.is_empty()));
    });
}

#[test]
fn ring_drops_oldest_when_full() {
    with_clean_state(|| {
        enable();
        set_thread_label("full");
        for i in 0..(RING_CAP as u64 + 10) {
            instant("test", "tick", None, vec![("i", i.into())]);
        }
        let threads = drain();
        let t = threads.iter().find(|t| t.label == "full").unwrap();
        assert_eq!(t.events.len(), RING_CAP);
        assert_eq!(t.dropped, 10);
        // The *oldest* events were discarded: the first survivor is i == 10.
        assert_eq!(t.events[0].args[0].1, ArgVal::U64(10));
    });
}

#[test]
fn span_guard_balances_across_disable() {
    with_clean_state(|| {
        enable();
        set_thread_label("guard");
        {
            let _s = Span::open("test", "work", Some((1, 2)), vec![]);
        }
        // Opened while disabled: must emit nothing, even though tracing is
        // re-enabled before the guard drops.
        disable();
        let s = Span::open("test", "ghost", None, vec![]);
        enable();
        drop(s);
        let threads = drain();
        let t = threads.iter().find(|t| t.label == "guard").unwrap();
        let names: Vec<&str> = t.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["work", "work"]);
        assert_eq!(t.events[0].phase, Phase::Begin);
        assert_eq!(t.events[1].phase, Phase::End);
    });
}

#[test]
fn clock_injection_and_default_zero() {
    with_clean_state(|| {
        enable();
        set_thread_label("clock");
        instant("test", "untimed", None, vec![]);
        set_clock_micros(Arc::new(|| 42));
        instant("test", "timed", None, vec![]);
        let threads = drain();
        let t = threads.iter().find(|t| t.label == "clock").unwrap();
        assert_eq!(t.events[0].ts_us, 0);
        assert_eq!(t.events[1].ts_us, 42);
    });
}

#[test]
fn metrics_counter_and_histogram() {
    with_clean_state(|| {
        let c = counter("test.count");
        c.inc();
        c.add(4);
        counter("test.count").inc(); // same underlying counter
        let h = histogram("test.hist");
        h.observe(0);
        h.observe(3);
        h.observe(1000);
        set_counter("test.gauge", 99);
        let snap = metrics_snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["test.count", "test.gauge", "test.hist"]); // sorted
        assert_eq!(snap[0].1, MetricSnapshot::Counter(6));
        assert_eq!(snap[1].1, MetricSnapshot::Counter(99));
        match &snap[2].1 {
            MetricSnapshot::Histogram { count, sum, buckets } => {
                assert_eq!(*count, 3);
                assert_eq!(*sum, 1003);
                assert_eq!(buckets.as_slice(), &[(0, 1), (3, 1), (1023, 1)]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    });
}

#[test]
fn export_is_valid_and_deterministic() {
    with_clean_state(|| {
        let run = || {
            reset();
            enable();
            set_thread_label("exporter");
            set_clock_micros(Arc::new(|| 5));
            span_begin("test", "op", Some((1, 1)), vec![("len", 16u64.into())]);
            instant("test", "odd \"name\"\n", None, vec![("s", "tab\there".into())]);
            span_end("test", "op", Some((1, 1)), vec![]);
            counter("x.count").add(2);
            histogram("x.hist").observe(7);
            chrome_trace_json(&drain(), &metrics_snapshot())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same inputs must export byte-identical JSON");
        assert!(is_valid_json(&a), "exported trace must be valid JSON: {a}");
        assert!(a.contains("\"ph\":\"B\""));
        assert!(a.contains("\"ph\":\"E\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"ph\":\"M\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"binding\":1"));
        assert!(a.contains("x.hist"));
    });
}

#[test]
fn summary_table_lists_threads_and_metrics() {
    with_clean_state(|| {
        enable();
        set_thread_label("summary");
        instant("test", "e", None, vec![]);
        counter("s.count").inc();
        histogram("s.hist").observe(10);
        let table = summary_table(&drain(), &metrics_snapshot());
        assert!(table.contains("summary"));
        assert!(table.contains("s.count"));
        assert!(table.contains("count=1 sum=10 mean=10.0"));
    });
}

#[test]
fn json_validator_accepts_and_rejects() {
    assert!(is_valid_json("{}"));
    assert!(is_valid_json("[1,2.5,-3e2,\"a\\n\",true,false,null,{\"k\":[]}]"));
    assert!(is_valid_json("  {\"a\": {\"b\": [1, 2]}}  "));
    assert!(!is_valid_json(""));
    assert!(!is_valid_json("{"));
    assert!(!is_valid_json("[1,]"));
    assert!(!is_valid_json("{\"a\":}"));
    assert!(!is_valid_json("{'a':1}"));
    assert!(!is_valid_json("01"));
    assert!(!is_valid_json("1 2"));
    assert!(!is_valid_json("\"unterminated"));
    assert!(!is_valid_json("nul"));
}

#[test]
fn reset_invalidates_old_rings() {
    with_clean_state(|| {
        enable();
        set_thread_label("gen");
        instant("test", "before", None, vec![]);
        reset();
        enable();
        instant("test", "after", None, vec![]);
        let threads = drain();
        let t = threads.iter().find(|t| t.label == "gen").unwrap();
        let names: Vec<&str> = t.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["after"], "reset must discard pre-reset events");
    });
}
