use super::*;
use parking_lot::Mutex as PlMutex;

/// The crate's state (gate, rings, metrics, clock) is process-global, so
/// tests that exercise it must not interleave.
static SERIAL: PlMutex<()> = PlMutex::new(());

fn with_clean_state<R>(f: impl FnOnce() -> R) -> R {
    let _guard = SERIAL.lock();
    reset();
    let r = f();
    reset();
    r
}

#[test]
fn disabled_records_nothing() {
    with_clean_state(|| {
        instant("test", "never", None, vec![]);
        span_begin("test", "never", None, vec![]);
        span_end("test", "never", None, vec![]);
        enable();
        let threads = drain();
        assert!(threads.iter().all(|t| t.events.is_empty()));
    });
}

#[test]
fn events_round_trip_in_order() {
    with_clean_state(|| {
        enable();
        set_thread_label("unit");
        instant("test", "a", Some((7, 1)), vec![("n", 3u64.into())]);
        span_begin("test", "b", None, vec![]);
        span_end("test", "b", None, vec![]);
        let threads = drain();
        let t = threads.iter().find(|t| t.label == "unit").expect("labelled ring");
        let shape: Vec<(Phase, &str)> =
            t.events.iter().map(|e| (e.phase, e.name.as_ref())).collect();
        assert_eq!(shape, vec![(Phase::Instant, "a"), (Phase::Begin, "b"), (Phase::End, "b")]);
        assert_eq!(t.events[0].key, Some((7, 1)));
        // Drain removed them.
        assert!(drain().iter().all(|t| t.events.is_empty()));
    });
}

#[test]
fn ring_drops_oldest_when_full() {
    with_clean_state(|| {
        enable();
        set_thread_label("full");
        for i in 0..(RING_CAP as u64 + 10) {
            instant("test", "tick", None, vec![("i", i.into())]);
        }
        let threads = drain();
        let t = threads.iter().find(|t| t.label == "full").unwrap();
        assert_eq!(t.events.len(), RING_CAP);
        assert_eq!(t.dropped, 10);
        // The *oldest* events were discarded: the first survivor is i == 10.
        assert_eq!(t.events[0].args[0].1, ArgVal::U64(10));
    });
}

#[test]
fn span_guard_balances_across_disable() {
    with_clean_state(|| {
        enable();
        set_thread_label("guard");
        {
            let _s = Span::open("test", "work", Some((1, 2)), vec![]);
        }
        // Opened while disabled: must emit nothing, even though tracing is
        // re-enabled before the guard drops.
        disable();
        let s = Span::open("test", "ghost", None, vec![]);
        enable();
        drop(s);
        let threads = drain();
        let t = threads.iter().find(|t| t.label == "guard").unwrap();
        let names: Vec<&str> = t.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["work", "work"]);
        assert_eq!(t.events[0].phase, Phase::Begin);
        assert_eq!(t.events[1].phase, Phase::End);
    });
}

#[test]
fn clock_injection_and_default_zero() {
    with_clean_state(|| {
        enable();
        set_thread_label("clock");
        instant("test", "untimed", None, vec![]);
        set_clock_micros(Arc::new(|| 42));
        instant("test", "timed", None, vec![]);
        let threads = drain();
        let t = threads.iter().find(|t| t.label == "clock").unwrap();
        assert_eq!(t.events[0].ts_us, 0);
        assert_eq!(t.events[1].ts_us, 42);
    });
}

#[test]
fn metrics_counter_and_histogram() {
    with_clean_state(|| {
        let c = counter("test.count");
        c.inc();
        c.add(4);
        counter("test.count").inc(); // same underlying counter
        let h = histogram("test.hist");
        h.observe(0);
        h.observe(3);
        h.observe(1000);
        set_counter("test.gauge", 99);
        let snap = metrics_snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["test.count", "test.gauge", "test.hist"]); // sorted
        assert_eq!(snap[0].1, MetricSnapshot::Counter(6));
        assert_eq!(snap[1].1, MetricSnapshot::Counter(99));
        match &snap[2].1 {
            MetricSnapshot::Histogram { count, sum, buckets } => {
                assert_eq!(*count, 3);
                assert_eq!(*sum, 1003);
                assert_eq!(buckets.as_slice(), &[(0, 1), (3, 1), (1023, 1)]);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    });
}

#[test]
fn export_is_valid_and_deterministic() {
    with_clean_state(|| {
        let run = || {
            reset();
            enable();
            set_thread_label("exporter");
            set_clock_micros(Arc::new(|| 5));
            span_begin("test", "op", Some((1, 1)), vec![("len", 16u64.into())]);
            instant("test", "odd \"name\"\n", None, vec![("s", "tab\there".into())]);
            span_end("test", "op", Some((1, 1)), vec![]);
            counter("x.count").add(2);
            histogram("x.hist").observe(7);
            chrome_trace_json(&drain(), &metrics_snapshot())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "same inputs must export byte-identical JSON");
        assert!(is_valid_json(&a), "exported trace must be valid JSON: {a}");
        assert!(a.contains("\"ph\":\"B\""));
        assert!(a.contains("\"ph\":\"E\""));
        assert!(a.contains("\"ph\":\"i\""));
        assert!(a.contains("\"ph\":\"M\""));
        assert!(a.contains("\"ph\":\"C\""));
        assert!(a.contains("\"binding\":1"));
        assert!(a.contains("x.hist"));
    });
}

#[test]
fn summary_table_lists_threads_and_metrics() {
    with_clean_state(|| {
        enable();
        set_thread_label("summary");
        instant("test", "e", None, vec![]);
        counter("s.count").inc();
        histogram("s.hist").observe(10);
        let table = summary_table(&drain(), &metrics_snapshot());
        assert!(table.contains("summary"));
        assert!(table.contains("s.count"));
        assert!(table.contains("count=1 sum=10 mean=10.0"));
    });
}

#[test]
fn json_validator_accepts_and_rejects() {
    assert!(is_valid_json("{}"));
    assert!(is_valid_json("[1,2.5,-3e2,\"a\\n\",true,false,null,{\"k\":[]}]"));
    assert!(is_valid_json("  {\"a\": {\"b\": [1, 2]}}  "));
    assert!(!is_valid_json(""));
    assert!(!is_valid_json("{"));
    assert!(!is_valid_json("[1,]"));
    assert!(!is_valid_json("{\"a\":}"));
    assert!(!is_valid_json("{'a':1}"));
    assert!(!is_valid_json("01"));
    assert!(!is_valid_json("1 2"));
    assert!(!is_valid_json("\"unterminated"));
    assert!(!is_valid_json("nul"));
}

/// Exact nearest-rank percentile of a sorted sample set: sample
/// `ceil(q·n)` (1-based) — the convention [`quantile_from_buckets`]
/// estimates with bucket-bounded error.
fn exact_nearest_rank(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as usize).clamp(1, n);
    sorted[target - 1]
}

/// The inclusive `[lo, hi]` range of the power-of-two bucket holding `v`.
fn bucket_of(v: u64) -> (u64, u64) {
    if v == 0 {
        return (0, 0);
    }
    let idx = (64 - v.leading_zeros() as usize).min(metrics::HIST_BUCKETS - 1);
    let hi = ((1u128 << idx) - 1).min(u64::MAX as u128) as u64;
    ((hi >> 1) + 1, hi)
}

#[test]
fn quantile_estimate_lands_in_the_exact_samples_bucket() {
    // The documented accuracy contract: the estimated quantile always lies
    // inside the bucket containing the exact nearest-rank sample, so its
    // error is bounded by the bucket width (a factor of two in value).
    // Exercised on adversarial shapes: point masses, bucket-boundary
    // straddles, uniform ramps, heavy tails reaching `u64::MAX`, and a
    // bimodal gap spanning many empty buckets.
    with_clean_state(|| {
        let heavy_tail: Vec<u64> = {
            let mut v = vec![1u64; 990];
            v.extend([u64::MAX; 10]);
            v
        };
        let cases: Vec<(&str, Vec<u64>)> = vec![
            ("single_zero", vec![0]),
            ("single_one", vec![1]),
            ("single_mid", vec![100]),
            ("point_mass", vec![777; 128]),
            ("boundaries", (0..16).flat_map(|k| [1u64 << k, (1u64 << k) - 1]).collect()),
            ("uniform_ramp", (1..=1000).collect()),
            ("heavy_tail", heavy_tail),
            ("bimodal_gap", [vec![2u64; 50], vec![1 << 40; 50]].concat()),
        ];
        for (name, samples) in &cases {
            let h = histogram(&format!("q.{name}"));
            for &v in samples {
                h.observe(v);
            }
            let mut sorted = samples.clone();
            sorted.sort_unstable();
            for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
                let est = h.quantile(q).expect("non-empty histogram");
                let exact = exact_nearest_rank(&sorted, q);
                let (lo, hi) = bucket_of(exact);
                assert!(
                    est >= lo as f64 && est <= hi as f64,
                    "{name} q={q}: estimate {est} outside bucket [{lo}, {hi}] \
                     of exact nearest-rank sample {exact}"
                );
            }
        }
    });
}

#[test]
fn quantile_is_exact_on_degenerate_buckets() {
    // Buckets 0 and 1 are single-valued ([0,0] and [1,1]): interpolation
    // has no width to smear over, so the estimate is exact. A point mass of
    // zeros must report 0 at every quantile, not an upper-bound artifact.
    with_clean_state(|| {
        let zeros = histogram("q.exact_zeros");
        let ones = histogram("q.exact_ones");
        for _ in 0..10 {
            zeros.observe(0);
            ones.observe(1);
        }
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(zeros.quantile(q), Some(0.0));
            assert_eq!(ones.quantile(q), Some(1.0));
        }
    });
}

#[test]
fn quantile_is_monotone_and_clamped() {
    with_clean_state(|| {
        let h = histogram("q.monotone");
        for v in [0u64, 1, 5, 9, 100, 4096, 70_000, 1 << 33] {
            h.observe(v);
        }
        let qs = [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 0.95, 0.99, 1.0];
        let ests: Vec<f64> = qs.iter().map(|&q| h.quantile(q).unwrap()).collect();
        for w in ests.windows(2) {
            assert!(w[0] <= w[1], "quantile must be monotone in q: {ests:?}");
        }
        // Out-of-range q clamps to the endpoints.
        assert_eq!(h.quantile(-3.0), h.quantile(0.0));
        assert_eq!(h.quantile(7.0), h.quantile(1.0));
    });
}

#[test]
fn quantile_from_buckets_edge_cases() {
    // Empty distribution: no answer.
    assert_eq!(quantile_from_buckets(&[], 0, 0.5), None);
    assert_eq!(quantile_from_buckets(&[(7, 1)], 0, 0.5), None);
    // Rank arithmetic across omitted empty buckets: 5 zeros + 5 ones,
    // q=0.5 targets sample 5 (a zero), anything above targets the ones.
    let b = [(0u64, 5u64), (1, 5)];
    assert_eq!(quantile_from_buckets(&b, 10, 0.5), Some(0.0));
    assert_eq!(quantile_from_buckets(&b, 10, 0.51), Some(1.0));
    assert_eq!(quantile_from_buckets(&b, 10, 1.0), Some(1.0));
    // Torn snapshot (count exceeds bucket totals, concurrent observe):
    // falls back to the top bucket's bound rather than panicking.
    assert_eq!(quantile_from_buckets(&[(3, 1)], 5, 0.99), Some(3.0));
    // The top bucket saturates at u64::MAX without overflow.
    let top = [(u64::MAX, 4u64)];
    let est = quantile_from_buckets(&top, 4, 0.5).unwrap();
    assert!(est >= ((u64::MAX >> 1) + 1) as f64 && est <= u64::MAX as f64);
}

#[test]
fn reset_invalidates_old_rings() {
    with_clean_state(|| {
        enable();
        set_thread_label("gen");
        instant("test", "before", None, vec![]);
        reset();
        enable();
        instant("test", "after", None, vec![]);
        let threads = drain();
        let t = threads.iter().find(|t| t.label == "gen").unwrap();
        let names: Vec<&str> = t.events.iter().map(|e| e.name.as_ref()).collect();
        assert_eq!(names, vec!["after"], "reset must discard pre-reset events");
    });
}
