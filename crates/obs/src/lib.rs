//! # pardis-obs — tracing and metrics for the PARDIS runtime
//!
//! The paper's whole evaluation is an exercise in knowing where invocation
//! time goes: marshaling, transfer, redistribution, overlap. This crate is
//! the instrumentation layer that makes those phases visible in the
//! reproduction — and makes the reliability machinery of the fault-injected
//! network (retransmissions, duplicate suppression, reply-cache replays)
//! inspectable instead of guessable.
//!
//! Three pieces:
//!
//! * **Event rings** — every instrumented thread records [`Event`]s
//!   (span begin/end, instants) into its own bounded ring. Recording is a
//!   single uncontended lock on the thread's own ring; when tracing is
//!   disabled the *only* cost at an instrumentation point is one relaxed
//!   atomic load ([`enabled`]) — the same zero-cost discipline as the
//!   fault layer.
//! * **Metrics registry** ([`metrics`]) — named counters and histograms
//!   (retransmissions, backoff delays, reply-cache hits, fragments
//!   reassembled, per-link traffic ...), snapshot in deterministic
//!   (sorted) order.
//! * **Exporters** ([`chrome`], [`expo`]) — Chrome trace-event JSON
//!   (loadable in `chrome://tracing` or Perfetto), a human summary table,
//!   and Prometheus-text / JSON metric expositions with p50/p95/p99
//!   estimates per histogram.
//!
//! Two more arrived with pardis-obs v2:
//!
//! * **Causal trace context** ([`trace`]) — a `(trace_id, span_id)` pair
//!   carried in the ORB's frame header and an ambient thread-local slot, so
//!   client, network, POA and failover events of one invocation stitch into
//!   a single causal tree across retransmissions and rebinds.
//! * **The profile analyzer** ([`profile`], `pardis-profile`) — reads an
//!   exported trace back and attributes each invocation's end-to-end
//!   latency to fig2-style segments (marshal, wire, queueing, dispatch,
//!   backoff, rebind, residual software overhead `t_o`).
//!
//! ## Determinism
//!
//! Timestamps come from an injectable clock ([`set_clock_micros`]); the ORB
//! installs the netsim *virtual* clock, so on a deterministic workload two
//! runs with the same fault seed export byte-identical traces. With no
//! clock installed every timestamp is 0 — never wall time — so enabling
//! tracing can never smuggle nondeterminism into a test.
//!
//! ## Usage
//!
//! Most users never touch this crate directly: `pardis_core::obs`'s
//! `TraceSession` (or the `PARDIS_TRACE=out.json` environment hook honoured
//! by the figure harnesses and the chaos suite) enables tracing, runs the
//! workload, and writes the export.

pub mod chrome;
pub mod expo;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod trace;

pub use chrome::{chrome_trace_json, is_valid_json, summary_table};
pub use expo::{metrics_json, metrics_json_with_snapshots, render_prometheus};
pub use metrics::{
    counter, histogram, metrics_reset, metrics_snapshot, quantile_from_buckets, set_counter,
    Counter, Histogram, MetricSnapshot,
};
pub use trace::{current_ctx, derive_trace_id, enter_ctx, mix64, CtxGuard, TraceCtx};

use parking_lot::Mutex;
use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Bound on the number of events a single thread's ring retains. When full,
/// the oldest events are discarded (and counted in [`ThreadTrace::dropped`]).
pub const RING_CAP: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Bumped by [`reset`]; threads whose cached ring belongs to an older
/// generation re-register lazily on their next record.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// Is tracing on? This is the *only* instruction instrumentation points pay
/// when tracing is off: one relaxed atomic load and a branch.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn event recording on.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn event recording off. Already-recorded events stay until [`drain`]
/// or [`reset`].
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Clock
// ---------------------------------------------------------------------------

type ClockFn = dyn Fn() -> u64 + Send + Sync;

static CLOCK: Mutex<Option<Arc<ClockFn>>> = Mutex::new(None);

/// Install the timestamp source (microseconds). The ORB installs the netsim
/// virtual clock here so traces are deterministic in the fault seed.
pub fn set_clock_micros(f: Arc<ClockFn>) {
    *CLOCK.lock() = Some(f);
}

/// Remove the installed clock; timestamps fall back to 0.
pub fn clear_clock() {
    *CLOCK.lock() = None;
}

/// Current timestamp in microseconds: the installed clock's reading, or 0
/// when none is installed (deterministic by default — never wall time).
pub fn now_micros() -> u64 {
    CLOCK.lock().as_ref().map(|f| f()).unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Events
// ---------------------------------------------------------------------------

/// Chrome-trace phase of an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Span open (`"B"`).
    Begin,
    /// Span close (`"E"`).
    End,
    /// Point event (`"i"`).
    Instant,
}

/// A typed event argument.
#[derive(Debug, Clone, PartialEq)]
pub enum ArgVal {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// String.
    Str(Cow<'static, str>),
}

impl From<u64> for ArgVal {
    fn from(v: u64) -> Self {
        ArgVal::U64(v)
    }
}
impl From<usize> for ArgVal {
    fn from(v: usize) -> Self {
        ArgVal::U64(v as u64)
    }
}
impl From<u32> for ArgVal {
    fn from(v: u32) -> Self {
        ArgVal::U64(v as u64)
    }
}
impl From<i64> for ArgVal {
    fn from(v: i64) -> Self {
        ArgVal::I64(v)
    }
}
impl From<f64> for ArgVal {
    fn from(v: f64) -> Self {
        ArgVal::F64(v)
    }
}
impl From<&'static str> for ArgVal {
    fn from(v: &'static str) -> Self {
        ArgVal::Str(Cow::Borrowed(v))
    }
}
impl From<String> for ArgVal {
    fn from(v: String) -> Self {
        ArgVal::Str(Cow::Owned(v))
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Timestamp in microseconds (virtual-clock when the ORB installed it).
    pub ts_us: u64,
    /// Span begin/end or instant.
    pub phase: Phase,
    /// Category, e.g. `"client"`, `"poa"`, `"net"`.
    pub cat: &'static str,
    /// Event name, e.g. `"invoke"`, `"client.retransmit"`.
    pub name: Cow<'static, str>,
    /// Invocation correlation key `(binding, req_id)`, when applicable.
    pub key: Option<(u64, u64)>,
    /// Extra arguments (rendered into the trace's `args` object).
    pub args: Vec<(&'static str, ArgVal)>,
}

/// One thread's drained events.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadTrace {
    /// The thread's label (see [`set_thread_label`]).
    pub label: String,
    /// Events in recording order.
    pub events: Vec<Event>,
    /// Events discarded because the ring overflowed.
    pub dropped: u64,
}

// ---------------------------------------------------------------------------
// Per-thread rings
// ---------------------------------------------------------------------------

struct Ring {
    label: Mutex<String>,
    /// Registration index — tie-breaker for identically-labelled rings.
    index: usize,
    events: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

static REGISTRY: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());

thread_local! {
    /// (generation, ring) cache; invalidated by [`reset`].
    static LOCAL_RING: RefCell<Option<(u64, Arc<Ring>)>> = const { RefCell::new(None) };
    /// Sticky label, surviving generations.
    static LOCAL_LABEL: RefCell<Option<String>> = const { RefCell::new(None) };
}

fn with_ring<R>(f: impl FnOnce(&Ring) -> R) -> R {
    LOCAL_RING.with(|cell| {
        let gen = GENERATION.load(Ordering::Acquire);
        let mut slot = cell.borrow_mut();
        let stale = match &*slot {
            Some((g, _)) => *g != gen,
            None => true,
        };
        if stale {
            let label = LOCAL_LABEL
                .with(|l| l.borrow().clone())
                .unwrap_or_else(|| format!("thread-{}", REGISTRY.lock().len()));
            let mut registry = REGISTRY.lock();
            let ring = Arc::new(Ring {
                label: Mutex::new(label),
                index: registry.len(),
                events: Mutex::new(VecDeque::new()),
                dropped: AtomicU64::new(0),
            });
            registry.push(ring.clone());
            *slot = Some((gen, ring));
        }
        f(&slot.as_ref().expect("just set").1)
    })
}

/// Name the calling thread in exported traces (e.g. `"client1/0"`,
/// `"poa3/2"`). Cheap; call from attach paths. The label sticks to the
/// thread across [`reset`] generations.
pub fn set_thread_label(label: &str) {
    LOCAL_LABEL.with(|l| *l.borrow_mut() = Some(label.to_string()));
    LOCAL_RING.with(|cell| {
        if let Some((gen, ring)) = &*cell.borrow() {
            if *gen == GENERATION.load(Ordering::Acquire) {
                *ring.label.lock() = label.to_string();
            }
        }
    });
}

fn push(event: Event) {
    with_ring(|ring| {
        let mut q = ring.events.lock();
        if q.len() >= RING_CAP {
            q.pop_front();
            ring.dropped.fetch_add(1, Ordering::Relaxed);
        }
        q.push_back(event);
    });
}

/// Append the ambient trace context (when one is entered and the caller
/// did not already stamp a `trace` arg) so every event recorded under a
/// context joins its causal tree without per-call-site plumbing.
fn stamp_ctx(args: &mut Vec<(&'static str, ArgVal)>) {
    if let Some(ctx) = trace::current_ctx() {
        if !args.iter().any(|(k, _)| *k == "trace") {
            args.push(("trace", ArgVal::U64(ctx.trace_id)));
            args.push(("parent", ArgVal::U64(ctx.span_id)));
        }
    }
}

/// Record an event if tracing is enabled. Prefer the shaped helpers
/// ([`instant`], [`span_begin`], [`span_end`]).
pub fn record(
    phase: Phase,
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    key: Option<(u64, u64)>,
    mut args: Vec<(&'static str, ArgVal)>,
) {
    if !enabled() {
        return;
    }
    stamp_ctx(&mut args);
    push(Event { ts_us: now_micros(), phase, cat, name: name.into(), key, args });
}

/// Record a point event.
pub fn instant(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    key: Option<(u64, u64)>,
    args: Vec<(&'static str, ArgVal)>,
) {
    record(Phase::Instant, cat, name, key, args);
}

/// Open a span. Must be closed by [`span_end`] with the same name on the
/// same thread.
pub fn span_begin(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    key: Option<(u64, u64)>,
    args: Vec<(&'static str, ArgVal)>,
) {
    record(Phase::Begin, cat, name, key, args);
}

/// Close a span opened by [`span_begin`].
pub fn span_end(
    cat: &'static str,
    name: impl Into<Cow<'static, str>>,
    key: Option<(u64, u64)>,
    args: Vec<(&'static str, ArgVal)>,
) {
    record(Phase::End, cat, name, key, args);
}

/// RAII span: opens on construction (when tracing is enabled), closes on
/// drop. If tracing was off at construction the drop emits nothing, so
/// spans stay balanced across enable/disable edges.
pub struct Span {
    cat: &'static str,
    name: Cow<'static, str>,
    key: Option<(u64, u64)>,
    live: bool,
}

impl Span {
    /// Open a span guard.
    pub fn open(
        cat: &'static str,
        name: impl Into<Cow<'static, str>>,
        key: Option<(u64, u64)>,
        mut args: Vec<(&'static str, ArgVal)>,
    ) -> Span {
        let name = name.into();
        let live = enabled();
        if live {
            stamp_ctx(&mut args);
            push(Event {
                ts_us: now_micros(),
                phase: Phase::Begin,
                cat,
                name: name.clone(),
                key,
                args,
            });
        }
        Span { cat, name, key, live }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.live {
            push(Event {
                ts_us: now_micros(),
                phase: Phase::End,
                cat: self.cat,
                name: self.name.clone(),
                key: self.key,
                args: Vec::new(),
            });
        }
    }
}

/// Drain every thread's ring: events leave the rings and are returned
/// grouped per thread, threads sorted by label (ties by registration
/// order). Rings stay registered so their threads keep recording.
pub fn drain() -> Vec<ThreadTrace> {
    let rings: Vec<Arc<Ring>> = REGISTRY.lock().clone();
    let mut out: Vec<(usize, ThreadTrace)> = rings
        .iter()
        .map(|ring| {
            let events: Vec<Event> = std::mem::take(&mut *ring.events.lock()).into();
            (
                ring.index,
                ThreadTrace {
                    label: ring.label.lock().clone(),
                    events,
                    dropped: ring.dropped.swap(0, Ordering::Relaxed),
                },
            )
        })
        .collect();
    out.sort_by(|(ia, a), (ib, b)| a.label.cmp(&b.label).then(ia.cmp(ib)));
    out.into_iter().map(|(_, t)| t).collect()
}

/// Clear everything: disable tracing, drop all rings and recorded events,
/// zero the metrics registry, and remove the clock. Live threads re-register
/// their rings lazily on their next recorded event.
pub fn reset() {
    disable();
    GENERATION.fetch_add(1, Ordering::Release);
    REGISTRY.lock().clear();
    metrics::metrics_reset();
    clear_clock();
}

#[cfg(test)]
mod tests;
