//! Exporters: Chrome trace-event JSON and a human summary table.
//!
//! The JSON is hand-rolled (the build carries no serialization dependency)
//! and fully deterministic: threads are pre-sorted by [`crate::drain`],
//! metrics arrive in name order, and every map is emitted in a fixed key
//! order — so byte-identical inputs yield byte-identical output.

use crate::metrics::MetricSnapshot;
use crate::{ArgVal, Event, Phase, ThreadTrace};
use std::fmt::Write as _;

fn esc(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_str(out: &mut String, s: &str) {
    out.push('"');
    esc(out, s);
    out.push('"');
}

fn json_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

fn json_arg(out: &mut String, v: &ArgVal) {
    match v {
        ArgVal::U64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgVal::I64(n) => {
            let _ = write!(out, "{n}");
        }
        ArgVal::F64(f) => json_f64(out, *f),
        ArgVal::Str(s) => json_str(out, s),
    }
}

fn push_event(out: &mut String, ev: &Event, tid: usize) {
    out.push_str("{\"name\":");
    json_str(out, &ev.name);
    out.push_str(",\"cat\":");
    json_str(out, ev.cat);
    let ph = match ev.phase {
        Phase::Begin => "B",
        Phase::End => "E",
        Phase::Instant => "i",
    };
    let _ = write!(out, ",\"ph\":\"{ph}\",\"ts\":{},\"pid\":1,\"tid\":{tid}", ev.ts_us);
    if ev.phase == Phase::Instant {
        out.push_str(",\"s\":\"t\"");
    }
    if ev.key.is_some() || !ev.args.is_empty() {
        out.push_str(",\"args\":{");
        let mut first = true;
        if let Some((binding, req)) = ev.key {
            let _ = write!(out, "\"binding\":{binding},\"req\":{req}");
            first = false;
        }
        for (k, v) in &ev.args {
            if !first {
                out.push(',');
            }
            first = false;
            json_str(out, k);
            out.push(':');
            json_arg(out, v);
        }
        out.push('}');
    }
    out.push('}');
}

/// Render drained thread traces plus a metrics snapshot as a Chrome
/// trace-event JSON object (loadable in `chrome://tracing` / Perfetto).
///
/// Layout: one fake process (`pid` 1); each [`ThreadTrace`] becomes a `tid`
/// (1-based, in the given order) introduced by a `thread_name` metadata
/// event. Counters are emitted as `"C"` counter samples on `tid` 0;
/// histograms go into `otherData` (the trace format has no native
/// histogram event).
pub fn chrome_trace_json(threads: &[ThreadTrace], metrics: &[(String, MetricSnapshot)]) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    for (i, t) in threads.iter().enumerate() {
        let tid = i + 1;
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":"
        );
        json_str(&mut out, &t.label);
        out.push_str("}}");
    }
    for (i, t) in threads.iter().enumerate() {
        let tid = i + 1;
        for ev in &t.events {
            sep(&mut out);
            push_event(&mut out, ev, tid);
        }
    }
    for (name, snap) in metrics {
        if let MetricSnapshot::Counter(v) = snap {
            sep(&mut out);
            out.push_str("{\"name\":");
            json_str(&mut out, name);
            let _ = write!(
                out,
                ",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{{\"value\":{v}}}}}"
            );
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\",\"otherData\":{\"histograms\":{");
    let mut first_h = true;
    for (name, snap) in metrics {
        if let MetricSnapshot::Histogram { count, sum, buckets } = snap {
            if !first_h {
                out.push(',');
            }
            first_h = false;
            json_str(&mut out, name);
            let _ = write!(out, ":{{\"count\":{count},\"sum\":{sum},\"buckets\":[");
            for (i, (le, n)) in buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{{\"le\":{le},\"count\":{n}}}");
            }
            out.push_str("]}");
        }
    }
    out.push_str("}}}");
    out
}

/// Render a fixed-width human summary: per-thread event counts and every
/// metric's value. Deterministic for deterministic input.
pub fn summary_table(threads: &[ThreadTrace], metrics: &[(String, MetricSnapshot)]) -> String {
    let mut out = String::new();
    out.push_str("== threads ==\n");
    let wide = threads.iter().map(|t| t.label.len()).max().unwrap_or(0).max("thread".len());
    let _ = writeln!(out, "{:<wide$}  {:>8}  {:>8}", "thread", "events", "dropped");
    for t in threads {
        let _ = writeln!(out, "{:<wide$}  {:>8}  {:>8}", t.label, t.events.len(), t.dropped);
    }
    out.push_str("== metrics ==\n");
    let mwide = metrics.iter().map(|(n, _)| n.len()).max().unwrap_or(0).max("metric".len());
    for (name, snap) in metrics {
        match snap {
            MetricSnapshot::Counter(v) => {
                let _ = writeln!(out, "{name:<mwide$}  {v}");
            }
            MetricSnapshot::Histogram { count, sum, .. } => {
                let mean = if *count > 0 { *sum as f64 / *count as f64 } else { 0.0 };
                let _ = writeln!(out, "{name:<mwide$}  count={count} sum={sum} mean={mean:.1}");
            }
        }
    }
    out
}

// ---------------------------------------------------------------------------
// JSON validation
// ---------------------------------------------------------------------------

struct P<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> P<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        if self.i < self.b.len() && self.b[self.i] == c {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn lit(&mut self, s: &[u8]) -> bool {
        if self.b[self.i..].starts_with(s) {
            self.i += s.len();
            true
        } else {
            false
        }
    }

    fn string(&mut self) -> bool {
        if !self.eat(b'"') {
            return false;
        }
        while self.i < self.b.len() {
            match self.b[self.i] {
                b'"' => {
                    self.i += 1;
                    return true;
                }
                b'\\' => {
                    self.i += 1;
                    if self.i >= self.b.len() {
                        return false;
                    }
                    match self.b[self.i] {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => self.i += 1,
                        b'u' => {
                            if self.b.len() < self.i + 5
                                || !self.b[self.i + 1..self.i + 5].iter().all(u8::is_ascii_hexdigit)
                            {
                                return false;
                            }
                            self.i += 5;
                        }
                        _ => return false,
                    }
                }
                0x00..=0x1f => return false,
                _ => self.i += 1,
            }
        }
        false
    }

    fn number(&mut self) -> bool {
        let start = self.i;
        let _ = self.eat(b'-');
        let first_digit = self.i;
        let mut digits = 0;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
            digits += 1;
        }
        if digits == 0 {
            self.i = start;
            return false;
        }
        if digits > 1 && self.b[first_digit] == b'0' {
            return false; // leading zeros are not JSON
        }
        if self.eat(b'.') {
            let mut frac = 0;
            while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
                self.i += 1;
                frac += 1;
            }
            if frac == 0 {
                return false;
            }
        }
        if self.i < self.b.len() && matches!(self.b[self.i], b'e' | b'E') {
            self.i += 1;
            if self.i < self.b.len() && matches!(self.b[self.i], b'+' | b'-') {
                self.i += 1;
            }
            let mut exp = 0;
            while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
                self.i += 1;
                exp += 1;
            }
            if exp == 0 {
                return false;
            }
        }
        true
    }

    fn value(&mut self) -> bool {
        self.ws();
        if self.i >= self.b.len() {
            return false;
        }
        match self.b[self.i] {
            b'{' => {
                self.i += 1;
                self.ws();
                if self.eat(b'}') {
                    return true;
                }
                loop {
                    self.ws();
                    if !self.string() {
                        return false;
                    }
                    self.ws();
                    if !self.eat(b':') || !self.value() {
                        return false;
                    }
                    self.ws();
                    if self.eat(b',') {
                        continue;
                    }
                    return self.eat(b'}');
                }
            }
            b'[' => {
                self.i += 1;
                self.ws();
                if self.eat(b']') {
                    return true;
                }
                loop {
                    if !self.value() {
                        return false;
                    }
                    self.ws();
                    if self.eat(b',') {
                        continue;
                    }
                    return self.eat(b']');
                }
            }
            b'"' => self.string(),
            b't' => self.lit(b"true"),
            b'f' => self.lit(b"false"),
            b'n' => self.lit(b"null"),
            _ => self.number(),
        }
    }
}

/// Strict JSON well-formedness check (full grammar, no extensions). Used by
/// tests to assert exported traces are loadable without shipping a JSON
/// dependency.
pub fn is_valid_json(s: &str) -> bool {
    let mut p = P { b: s.as_bytes(), i: 0 };
    if !p.value() {
        return false;
    }
    p.ws();
    p.i == p.b.len()
}
