//! `pardis-profile` — fig2-style latency attribution from an exported trace.
//!
//! ```text
//! pardis-profile <trace.json> [--json <out.json>] [--tol <rel>] [--quiet]
//! ```
//!
//! Reads a `PARDIS_TRACE` Chrome-trace export, reconstructs every traced
//! invocation's critical path, and prints the per-op overhead table
//! (marshal / t_o / wire / queue / dispatch / backoff / rebind). With
//! `--json` the full report is also written as deterministic JSON. Exits
//! nonzero when segment attribution fails to reconcile end-to-end latency
//! within the tolerance (default 1%), making it usable as a CI gate.

use pardis_obs::profile::profile_trace;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!("usage: pardis-profile <trace.json> [--json <out.json>] [--tol <rel>] [--quiet]");
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut input: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut tol = 0.01f64;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json_out = Some(args.next().unwrap_or_else(|| usage())),
            "--tol" => {
                tol = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--quiet" => quiet = true,
            "--help" | "-h" => usage(),
            _ if input.is_none() && !arg.starts_with('-') => input = Some(arg),
            _ => usage(),
        }
    }
    let Some(input) = input else { usage() };

    let trace = match std::fs::read_to_string(&input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pardis-profile: cannot read {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match profile_trace(&trace, tol) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("pardis-profile: cannot analyze {input}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !quiet {
        print!("{}", report.table());
    }
    if let Some(path) = &json_out {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(path, report.json()) {
            eprintln!("pardis-profile: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        if !quiet {
            eprintln!("profile json written to {path}");
        }
    }
    if report.invocations.is_empty() {
        eprintln!("pardis-profile: {input} contains no traced invocations");
        return ExitCode::FAILURE;
    }
    match report.reconcile() {
        Ok(_) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("pardis-profile: {e}");
            ExitCode::FAILURE
        }
    }
}
