//! Grid algorithms over row-major distributed vectors.
//!
//! §4.3 of the PARDIS paper represents a 2-D field as "a vector in
//! row-major order" and computes the *magnitude gradient* of the diffusion
//! field in HPC++ PSTL to identify the areas of most intensive change.

use crate::DistVector;
use bytes::Bytes;
use pardis_rts::Rts;

/// Tag for gradient halo-row traffic (user band).
const ROW_TAG: u64 = 0x7003;

/// Compute `sqrt(gx^2 + gy^2)` of an `nx × ny` row-major grid held in a
/// row-aligned block-distributed vector, using central differences inside
/// and one-sided differences on the boundary. Collective.
///
/// # Panics
/// Panics if the vector's shape is not `nx * ny` or its blocks do not align
/// to whole rows (redistribute first — for `ny % nthreads == 0` the BLOCK
/// template is automatically row-aligned).
pub fn magnitude_gradient(
    v: &DistVector<f64>,
    nx: usize,
    ny: usize,
    rts: &dyn Rts,
) -> DistVector<f64> {
    assert_eq!(v.len(), nx * ny, "vector is not an {nx}x{ny} grid");
    let first = v.first_index();
    let count = v.local().len();
    assert!(
        first.is_multiple_of(nx) && count.is_multiple_of(nx),
        "blocks must align to whole rows (first {first}, count {count}, nx {nx})"
    );
    let first_row = first / nx;
    let local_rows = count / nx;
    let t = v.thread();
    let n = v.nthreads();
    assert!(
        n == 1 || ny >= n,
        "gradient needs at least one row per thread ({ny} rows, {n} threads)"
    );
    debug_assert_eq!(rts.rank(), t, "gradient called from the wrong thread");

    // Exchange boundary rows with neighbours. Threads with zero rows still
    // participate (sending empty payloads keeps the exchange collective).
    let local = v.local();
    if t > 0 {
        let row = if local_rows > 0 { &local[..nx] } else { &[][..] };
        rts.send(t - 1, ROW_TAG, Bytes::from(rowvec(row)));
    }
    if t + 1 < n {
        let row = if local_rows > 0 { &local[count - nx..] } else { &[][..] };
        rts.send(t + 1, ROW_TAG, Bytes::from(rowvec(row)));
    }
    let above: Option<Vec<f64>> = if t > 0 {
        let msg = rts.recv(Some(t - 1), ROW_TAG);
        (!msg.data.is_empty()).then(|| unrow(&msg.data))
    } else {
        None
    };
    let below: Option<Vec<f64>> = if t + 1 < n {
        let msg = rts.recv(Some(t + 1), ROW_TAG);
        (!msg.data.is_empty()).then(|| unrow(&msg.data))
    } else {
        None
    };

    let get = |i: usize, j: usize| -> f64 {
        // `j == first_row - 1`, written to avoid underflow.
        if let (true, Some(above)) = (j + 1 == first_row, above.as_ref()) {
            above[i]
        } else if j == first_row + local_rows {
            below.as_ref().expect("gradient reads one row past the block")[i]
        } else {
            local[(j - first_row) * nx + i]
        }
    };

    let mut out = Vec::with_capacity(count);
    for lj in 0..local_rows {
        let j = first_row + lj;
        for i in 0..nx {
            let gx = match i {
                0 => get(1, j) - get(0, j),
                _ if i == nx - 1 => get(nx - 1, j) - get(nx - 2, j),
                _ => (get(i + 1, j) - get(i - 1, j)) / 2.0,
            };
            let gy = match j {
                0 => get(i, 1) - get(i, 0),
                _ if j == ny - 1 => get(i, ny - 1) - get(i, ny - 2),
                _ => (get(i, j + 1) - get(i, j - 1)) / 2.0,
            };
            out.push((gx * gx + gy * gy).sqrt());
        }
    }
    DistVector::from_local(out, nx * ny, n, t)
}

/// Sequential reference implementation (tests and single-process
/// visualizers).
pub fn magnitude_gradient_seq(grid: &[f64], nx: usize, ny: usize) -> Vec<f64> {
    assert_eq!(grid.len(), nx * ny, "grid is not {nx}x{ny}");
    let get = |i: usize, j: usize| grid[j * nx + i];
    let mut out = Vec::with_capacity(grid.len());
    for j in 0..ny {
        for i in 0..nx {
            let gx = match i {
                0 => get(1, j) - get(0, j),
                _ if i == nx - 1 => get(nx - 1, j) - get(nx - 2, j),
                _ => (get(i + 1, j) - get(i - 1, j)) / 2.0,
            };
            let gy = match j {
                0 => get(i, 1) - get(i, 0),
                _ if j == ny - 1 => get(i, ny - 1) - get(i, ny - 2),
                _ => (get(i, j + 1) - get(i, j - 1)) / 2.0,
            };
            out.push((gx * gx + gy * gy).sqrt());
        }
    }
    out
}

fn rowvec(row: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(row.len() * 8);
    for v in row {
        out.extend_from_slice(&v.to_be_bytes());
    }
    out
}

fn unrow(bytes: &[u8]) -> Vec<f64> {
    bytes.chunks_exact(8).map(|c| f64::from_be_bytes(c.try_into().expect("8-byte chunk"))).collect()
}
