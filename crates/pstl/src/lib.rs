//! pstl-rs — an HPC++ Parallel Standard Template Library substrate.
//!
//! HPC++ PSTL (Gannon et al.) gave C++ programs STL-style containers and
//! algorithms over distributed memory; its flagship container is the
//! *distributed vector*. PARDIS §4.3 maps IDL `dsequence`s onto PSTL
//! distributed vectors with `#pragma HPC++:vector` and implements the
//! gradient stage of the diffusion pipeline in PSTL.
//!
//! This crate rebuilds that surface:
//!
//! * [`DistVector`] — a block-distributed vector over the computing threads
//!   of an SPMD program, with STL-flavoured parallel algorithms
//!   (`par_transform`, `par_for_each`, `par_reduce`, `par_inclusive_scan`);
//! * [`grid`] — grid helpers over row-major vectors, including the
//!   magnitude-gradient kernel the paper's §4.3 metaapplication computes;
//! * conversions to and from the PARDIS
//!   [`DSequence`](pardis_core::DSequence) — the runtime half of the
//!   `#pragma HPC++:vector` mapping.

pub mod grid;

mod vector;

pub use vector::DistVector;

#[cfg(test)]
mod tests;
