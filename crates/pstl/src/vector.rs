//! The distributed vector.

use bytes::Bytes;
use pardis_cdr::CdrCodec;
use pardis_core::{DSequence, Distribution};
use pardis_rts::{ReduceOp, Rts};

/// Tag for vector shift/halo traffic (user band).
const SHIFT_TAG: u64 = 0x7001;
/// Tag for scan prefix exchange (user band).
const SCAN_TAG: u64 = 0x7002;

/// One computing thread's block of a distributed vector.
///
/// Elements are block-distributed (the PSTL default): thread `t` of `n`
/// holds a contiguous run, first `len % n` threads one element longer.
#[derive(Debug, Clone, PartialEq)]
pub struct DistVector<T> {
    global_len: usize,
    nthreads: usize,
    thread: usize,
    local: Vec<T>,
}

impl<T: Clone + Send> DistVector<T> {
    /// Build this thread's block by distributing a full vector.
    pub fn distribute(full: &[T], nthreads: usize, thread: usize) -> Self {
        let (start, count) = block_range(full.len(), nthreads, thread);
        DistVector {
            global_len: full.len(),
            nthreads,
            thread,
            local: full[start..start + count].to_vec(),
        }
    }

    /// Build from a generator of global indices.
    pub fn from_fn(len: usize, nthreads: usize, thread: usize, f: impl Fn(usize) -> T) -> Self {
        let (start, count) = block_range(len, nthreads, thread);
        DistVector {
            global_len: len,
            nthreads,
            thread,
            local: (start..start + count).map(f).collect(),
        }
    }

    /// Wrap an already-local block.
    ///
    /// # Panics
    /// Panics if the block size does not match the distribution.
    pub fn from_local(local: Vec<T>, global_len: usize, nthreads: usize, thread: usize) -> Self {
        let (_, count) = block_range(global_len, nthreads, thread);
        assert_eq!(local.len(), count, "local block has the wrong size");
        DistVector { global_len, nthreads, thread, local }
    }

    /// Global length.
    pub fn len(&self) -> usize {
        self.global_len
    }

    /// True if globally empty.
    pub fn is_empty(&self) -> bool {
        self.global_len == 0
    }

    /// This thread's block.
    pub fn local(&self) -> &[T] {
        &self.local
    }

    /// Mutable access to this thread's block.
    pub fn local_mut(&mut self) -> &mut [T] {
        &mut self.local
    }

    /// First global index of this thread's block.
    pub fn first_index(&self) -> usize {
        block_range(self.global_len, self.nthreads, self.thread).0
    }

    /// Owning thread count.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// This block's thread.
    pub fn thread(&self) -> usize {
        self.thread
    }

    /// Parallel for-each over (global index, &mut element).
    pub fn par_for_each(&mut self, f: impl Fn(usize, &mut T)) {
        let first = self.first_index();
        for (off, v) in self.local.iter_mut().enumerate() {
            f(first + off, v);
        }
    }

    /// Parallel transform into a new distributed vector of the same shape.
    pub fn par_transform<U: Clone + Send>(&self, f: impl Fn(usize, &T) -> U) -> DistVector<U> {
        let first = self.first_index();
        DistVector {
            global_len: self.global_len,
            nthreads: self.nthreads,
            thread: self.thread,
            local: self.local.iter().enumerate().map(|(o, v)| f(first + o, v)).collect(),
        }
    }
}

impl DistVector<f64> {
    /// Parallel dot product with a shape-matched vector. Collective.
    ///
    /// # Panics
    /// Panics if the vectors differ in shape.
    pub fn par_dot(&self, other: &DistVector<f64>, rts: &dyn Rts) -> f64 {
        assert_eq!(self.global_len, other.global_len, "dot of different lengths");
        assert_eq!(self.thread, other.thread, "dot across different threads");
        let local: f64 = self.local.iter().zip(other.local.iter()).map(|(a, b)| a * b).sum();
        if self.nthreads == 1 {
            local
        } else {
            rts.all_reduce_f64(local, ReduceOp::Sum)
        }
    }

    /// Euclidean norm. Collective.
    pub fn par_norm2(&self, rts: &dyn Rts) -> f64 {
        self.par_dot(self, rts).sqrt()
    }

    /// `self = a * x + self` (the BLAS `axpy`), elementwise over the local
    /// blocks. No communication.
    ///
    /// # Panics
    /// Panics if the vectors differ in shape.
    pub fn par_axpy(&mut self, a: f64, x: &DistVector<f64>) {
        assert_eq!(self.global_len, x.global_len, "axpy of different lengths");
        assert_eq!(self.thread, x.thread, "axpy across different threads");
        for (s, v) in self.local.iter_mut().zip(x.local.iter()) {
            *s += a * v;
        }
    }

    /// Number of elements satisfying a predicate, delivered to every
    /// thread. Collective.
    pub fn par_count_if(&self, rts: &dyn Rts, pred: impl Fn(f64) -> bool) -> usize {
        let local = self.local.iter().filter(|v| pred(**v)).count();
        if self.nthreads == 1 {
            local
        } else {
            rts.all_reduce_f64(local as f64, ReduceOp::Sum) as usize
        }
    }

    /// Parallel reduction to a scalar, delivered to every thread.
    /// Collective.
    pub fn par_reduce(&self, rts: &dyn Rts, op: ReduceOp) -> f64 {
        let local = match op {
            ReduceOp::Sum => self.local.iter().sum(),
            ReduceOp::Max => self.local.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            ReduceOp::Min => self.local.iter().copied().fold(f64::INFINITY, f64::min),
        };
        if self.nthreads == 1 {
            local
        } else {
            rts.all_reduce_f64(local, op)
        }
    }

    /// Parallel inclusive prefix sum (scan). Collective.
    pub fn par_inclusive_scan(&self, rts: &dyn Rts) -> DistVector<f64> {
        let mut local = Vec::with_capacity(self.local.len());
        let mut acc = 0.0;
        for v in &self.local {
            acc += v;
            local.push(acc);
        }
        // Exchange block totals: thread t adds the sum of blocks < t.
        if self.nthreads > 1 {
            let total = acc;
            let parts = rts.all_gather(Bytes::copy_from_slice(&total.to_be_bytes()));
            let offset: f64 = parts[..self.thread]
                .iter()
                .map(|b| f64::from_be_bytes(b[..8].try_into().expect("8 bytes")))
                .sum();
            for v in &mut local {
                *v += offset;
            }
            let _ = SCAN_TAG;
        }
        DistVector {
            global_len: self.global_len,
            nthreads: self.nthreads,
            thread: self.thread,
            local,
        }
    }

    /// Fetch the element one position left/right of this block's edges from
    /// the neighbouring threads (`None` past the global ends). Collective.
    /// This is the halo primitive the gradient kernel builds on.
    pub fn halo(&self, rts: &dyn Rts) -> (Option<f64>, Option<f64>) {
        let t = self.thread;
        let n = self.nthreads;
        if n == 1 {
            return (None, None);
        }
        debug_assert_eq!(rts.rank(), t, "halo called from the wrong thread");
        // Ship edges to neighbours. Empty blocks (len < n) still
        // participate with NaN markers to keep the exchange collective.
        let left_edge = self.local.first().copied().unwrap_or(f64::NAN);
        let right_edge = self.local.last().copied().unwrap_or(f64::NAN);
        if t > 0 {
            rts.send(t - 1, SHIFT_TAG, Bytes::copy_from_slice(&left_edge.to_be_bytes()));
        }
        if t + 1 < n {
            rts.send(t + 1, SHIFT_TAG, Bytes::copy_from_slice(&right_edge.to_be_bytes()));
        }
        let mut left = None;
        let mut right = None;
        if t > 0 {
            let msg = rts.recv(Some(t - 1), SHIFT_TAG);
            let v = f64::from_be_bytes(msg.data[..8].try_into().expect("8 bytes"));
            if !v.is_nan() {
                left = Some(v);
            }
        }
        if t + 1 < n {
            let msg = rts.recv(Some(t + 1), SHIFT_TAG);
            let v = f64::from_be_bytes(msg.data[..8].try_into().expect("8 bytes"));
            if !v.is_nan() {
                right = Some(v);
            }
        }
        (left, right)
    }
}

impl<T: CdrCodec + Clone + Send> DistVector<T> {
    /// Convert to a PARDIS distributed sequence — the runtime half of the
    /// `#pragma HPC++:vector` mapping. No data moves: PSTL's block layout
    /// *is* the BLOCK template.
    pub fn to_dseq(&self) -> DSequence<T> {
        DSequence::from_local(
            self.local.clone(),
            self.global_len as u64,
            Distribution::Block,
            self.nthreads,
            self.thread,
        )
    }

    /// Rebuild a block from a BLOCK-distributed sequence.
    ///
    /// # Panics
    /// Panics if the sequence is not block-distributed.
    pub fn from_dseq(ds: &DSequence<T>) -> Self {
        assert_eq!(
            ds.dist(),
            &Distribution::Block,
            "PSTL vectors require the BLOCK template; redistribute first"
        );
        DistVector {
            global_len: ds.len() as usize,
            nthreads: ds.nthreads(),
            thread: ds.thread(),
            local: ds.local().to_vec(),
        }
    }
}

/// The (start, count) of thread `t`'s block of `len` elements over `n`
/// threads.
pub fn block_range(len: usize, n: usize, t: usize) -> (usize, usize) {
    assert!(n > 0, "zero threads");
    assert!(t < n, "thread {t} out of range");
    let base = len / n;
    let extra = len % n;
    if t < extra {
        (t * (base + 1), base + 1)
    } else {
        (extra * (base + 1) + (t - extra) * base, base)
    }
}
