use crate::grid::{magnitude_gradient, magnitude_gradient_seq};
use crate::vector::block_range;
use crate::DistVector;
use pardis_rts::{MpiRts, ReduceOp, World};

#[test]
fn block_range_partitions() {
    assert_eq!(block_range(10, 3, 0), (0, 4));
    assert_eq!(block_range(10, 3, 1), (4, 3));
    assert_eq!(block_range(10, 3, 2), (7, 3));
    assert_eq!(block_range(2, 4, 3), (2, 0));
}

#[test]
fn distribute_and_from_fn_agree() {
    let full: Vec<f64> = (0..11).map(|i| i as f64).collect();
    for t in 0..3 {
        let a = DistVector::distribute(&full, 3, t);
        let b = DistVector::from_fn(11, 3, t, |i| i as f64);
        assert_eq!(a, b);
        assert_eq!(a.first_index(), block_range(11, 3, t).0);
    }
}

#[test]
fn par_transform_and_for_each_use_global_indices() {
    let mut v = DistVector::from_fn(9, 2, 1, |_| 0.0f64);
    v.par_for_each(|g, x| *x = g as f64);
    let doubled = v.par_transform(|g, x| 2.0 * x + g as f64);
    for (off, val) in doubled.local().iter().enumerate() {
        let g = doubled.first_index() + off;
        assert_eq!(*val, 3.0 * g as f64);
    }
}

#[test]
fn par_reduce_matches_sequential() {
    let out = World::run(4, |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        let v = DistVector::from_fn(21, 4, t, |i| i as f64);
        (v.par_reduce(&rts, ReduceOp::Sum), v.par_reduce(&rts, ReduceOp::Max))
    });
    let expect_sum: f64 = (0..21).map(|i| i as f64).sum();
    for (s, m) in out {
        assert_eq!(s, expect_sum);
        assert_eq!(m, 20.0);
    }
}

#[test]
fn inclusive_scan_matches_sequential() {
    let out = World::run(3, |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        let v = DistVector::from_fn(14, 3, t, |i| (i + 1) as f64);
        let scanned = v.par_inclusive_scan(&rts);
        scanned.to_dseq().gather(&rts)
    });
    let mut expect = Vec::new();
    let mut acc = 0.0;
    for i in 0..14 {
        acc += (i + 1) as f64;
        expect.push(acc);
    }
    for got in out {
        assert_eq!(got, expect);
    }
}

#[test]
fn dot_norm_axpy_count() {
    let out = World::run(3, |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        let x = DistVector::from_fn(10, 3, t, |i| i as f64);
        let y = DistVector::from_fn(10, 3, t, |_| 2.0);
        let dot = x.par_dot(&y, &rts);
        let norm = y.par_norm2(&rts);
        let mut z = x.clone();
        z.par_axpy(3.0, &y); // z = x + 6
        let count = z.par_count_if(&rts, |v| v >= 10.0);
        (dot, norm, count, z.to_dseq().gather(&rts))
    });
    let expect_dot: f64 = (0..10).map(|i| 2.0 * i as f64).sum();
    for (dot, norm, count, z) in out {
        assert_eq!(dot, expect_dot);
        assert!((norm - (4.0f64 * 10.0).sqrt()).abs() < 1e-12);
        assert_eq!(count, 6); // x + 6 >= 10 for x in 4..10
        assert_eq!(z, (0..10).map(|i| i as f64 + 6.0).collect::<Vec<_>>());
    }
}

#[test]
fn halo_returns_neighbour_edges() {
    let out = World::run(3, |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        let v = DistVector::from_fn(9, 3, t, |i| i as f64);
        v.halo(&rts)
    });
    assert_eq!(out[0], (None, Some(3.0)));
    assert_eq!(out[1], (Some(2.0), Some(6.0)));
    assert_eq!(out[2], (Some(5.0), None));
}

#[test]
fn dseq_mapping_roundtrip() {
    World::run(2, |rank| {
        let t = rank.rank();
        let v = DistVector::from_fn(13, 2, t, |i| i as f64 * 0.5);
        let ds = v.to_dseq();
        assert_eq!(ds.len(), 13);
        let back = DistVector::from_dseq(&ds);
        assert_eq!(back, v);
    });
}

#[test]
#[should_panic(expected = "BLOCK template")]
fn from_dseq_rejects_cyclic() {
    let ds = pardis_core::DSequence::from_local(
        vec![0.0f64; 5],
        5,
        pardis_core::Distribution::Cyclic,
        1,
        0,
    );
    // Cyclic over one thread is materially block, but the mapping insists on
    // the declared template, as the compiler-generated stubs do.
    let _ = DistVector::from_dseq(&ds);
}

#[test]
fn gradient_of_linear_ramp_is_constant() {
    // f(i,j) = 3i + 4j has |grad| = 5 away from boundary effects — and the
    // one-sided boundary differences of a linear field are exact, so
    // everywhere.
    let (nx, ny) = (8, 8);
    let out = World::run(2, move |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        let v = DistVector::from_fn(nx * ny, 2, t, |g| (3 * (g % nx) + 4 * (g / nx)) as f64);
        let grad = magnitude_gradient(&v, nx, ny, &rts);
        grad.to_dseq().gather(&rts)
    });
    for got in out {
        for v in got {
            assert!((v - 5.0).abs() < 1e-12, "gradient {v} != 5");
        }
    }
}

#[test]
fn parallel_gradient_matches_sequential() {
    let (nx, ny) = (12, 16);
    let f = move |g: usize| ((g * 37 + 11) % 23) as f64 * 0.25;
    let seq = {
        let grid: Vec<f64> = (0..nx * ny).map(f).collect();
        magnitude_gradient_seq(&grid, nx, ny)
    };
    for threads in [1usize, 2, 4] {
        let seq = seq.clone();
        let out = World::run(threads, move |rank| {
            let t = rank.rank();
            let rts = MpiRts::new(rank);
            let v = DistVector::from_fn(nx * ny, threads, t, f);
            let grad = magnitude_gradient(&v, nx, ny, &rts);
            grad.to_dseq().gather(&rts)
        });
        for got in out {
            for (a, b) in got.iter().zip(seq.iter()) {
                assert!((a - b).abs() < 1e-12, "{threads} threads: {a} vs {b}");
            }
        }
    }
}

#[test]
#[should_panic(expected = "computing thread panicked")]
fn gradient_rejects_unaligned_blocks() {
    World::run(3, |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        // 4x4 grid over 3 threads: blocks of 6,5,5 — not row-aligned.
        let v = DistVector::from_fn(16, 3, t, |g| g as f64);
        let _ = magnitude_gradient(&v, 4, 4, &rts);
    });
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn scan_last_equals_reduce(len in 1usize..60, n in 1usize..5) {
            let out = World::run(n, move |rank| {
                let t = rank.rank();
                let rts = MpiRts::new(rank);
                let v = DistVector::from_fn(len, n, t, |i| (i % 7) as f64);
                let total = v.par_reduce(&rts, ReduceOp::Sum);
                let scanned = v.par_inclusive_scan(&rts);
                let gathered = scanned.to_dseq().gather(&rts);
                (total, gathered)
            });
            for (total, scanned) in out {
                prop_assert!((scanned.last().copied().unwrap_or(0.0) - total).abs() < 1e-9);
                // Monotone for non-negative inputs.
                for w in scanned.windows(2) {
                    prop_assert!(w[1] >= w[0] - 1e-12);
                }
            }
        }

        #[test]
        fn gradient_parallel_equivalence(
            nx in 4usize..10,
            ny_mult in 2usize..5,
            threads in 1usize..4,
        ) {
            let ny = threads * ny_mult; // row-aligned by construction
            let f = move |g: usize| ((g * 13 + 5) % 17) as f64;
            let grid: Vec<f64> = (0..nx * ny).map(f).collect();
            let seq = magnitude_gradient_seq(&grid, nx, ny);
            let out = World::run(threads, move |rank| {
                let t = rank.rank();
                let rts = MpiRts::new(rank);
                let v = DistVector::from_fn(nx * ny, threads, t, f);
                magnitude_gradient(&v, nx, ny, &rts).to_dseq().gather(&rts)
            });
            for got in out {
                for (a, b) in got.iter().zip(seq.iter()) {
                    prop_assert!((a - b).abs() < 1e-12);
                }
            }
        }
    }
}
