use crate::*;
use bytes::Bytes;
use std::time::Duration;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

#[test]
fn send_recv_between_two_ranks() {
    let out = World::run(2, |rank| {
        if rank.rank() == 0 {
            rank.send(1, 7, b("hello"));
            String::new()
        } else {
            let msg = rank.recv(Some(0), 7);
            assert_eq!(msg.from, 0);
            String::from_utf8(msg.data.to_vec()).unwrap()
        }
    });
    assert_eq!(out[1], "hello");
}

#[test]
fn recv_matches_by_tag_out_of_order() {
    World::run(2, |rank| {
        if rank.rank() == 0 {
            rank.send(1, 1, b("first"));
            rank.send(1, 2, b("second"));
        } else {
            // Receive tag 2 first even though tag 1 arrived earlier.
            let m2 = rank.recv(Some(0), 2);
            assert_eq!(&m2.data[..], b"second");
            let m1 = rank.recv(Some(0), 1);
            assert_eq!(&m1.data[..], b"first");
        }
    });
}

#[test]
fn recv_any_source() {
    World::run(3, |rank| {
        if rank.rank() == 0 {
            let m1 = rank.recv(None, 5);
            let m2 = rank.recv(None, 5);
            let mut froms = vec![m1.from, m2.from];
            froms.sort_unstable();
            assert_eq!(froms, vec![1, 2]);
        } else {
            rank.send(0, 5, b("x"));
        }
    });
}

#[test]
fn try_recv_and_probe() {
    World::run(2, |rank| {
        if rank.rank() == 0 {
            assert!(rank.try_recv(None, 9).is_none());
            assert!(!rank.probe(None, 9));
            rank.barrier();
            rank.barrier();
            assert!(rank.probe(Some(1), 9));
            assert_eq!(rank.pending(), 1);
            assert!(rank.try_recv(None, 9).is_some());
            assert_eq!(rank.pending(), 0);
        } else {
            rank.barrier();
            rank.send(0, 9, b("m"));
            rank.barrier();
        }
    });
}

#[test]
fn recv_timeout_expires() {
    World::run(1, |rank| {
        let start = std::time::Instant::now();
        assert!(rank.recv_timeout(None, 1, Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
    });
}

#[test]
fn barrier_synchronises() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let before = AtomicUsize::new(0);
    World::run(4, |rank| {
        before.fetch_add(1, Ordering::SeqCst);
        rank.barrier();
        // After the barrier every rank must observe all 4 increments.
        assert_eq!(before.load(Ordering::SeqCst), 4);
    });
}

#[test]
fn repeated_barriers_do_not_deadlock() {
    World::run(3, |rank| {
        for _ in 0..100 {
            rank.barrier();
        }
    });
}

#[test]
fn broadcast_delivers_to_all() {
    let out = World::run(4, |rank| {
        let data = if rank.rank() == 2 { Some(b("payload")) } else { None };
        rank.broadcast(2, data)
    });
    for part in out {
        assert_eq!(&part[..], b"payload");
    }
}

#[test]
fn gather_collects_in_rank_order() {
    let out = World::run(4, |rank| {
        let part = Bytes::from(vec![rank.rank() as u8]);
        rank.gather(1, part)
    });
    assert!(out[0].is_none());
    let parts = out[1].as_ref().unwrap();
    assert_eq!(parts.len(), 4);
    for (i, p) in parts.iter().enumerate() {
        assert_eq!(p[0] as usize, i);
    }
}

#[test]
fn scatter_routes_per_rank() {
    let out = World::run(3, |rank| {
        let parts =
            (rank.rank() == 0).then(|| (0..3).map(|i| Bytes::from(vec![i as u8 * 10])).collect());
        rank.scatter(0, parts)
    });
    for (i, p) in out.iter().enumerate() {
        assert_eq!(p[0] as usize, i * 10);
    }
}

#[test]
fn all_gather_gives_everyone_everything() {
    let out = World::run(5, |rank| {
        let part = Bytes::from(format!("r{}", rank.rank()));
        rank.all_gather(part)
    });
    for parts in out {
        assert_eq!(parts.len(), 5);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(&p[..], format!("r{i}").as_bytes());
        }
    }
}

#[test]
fn collectives_interleave_with_point_to_point() {
    World::run(2, |rank| {
        // Point-to-point traffic between collectives must not confuse the
        // collective tag matching.
        if rank.rank() == 0 {
            rank.send(1, 3, b("p2p"));
        }
        let bc = rank.broadcast(0, (rank.rank() == 0).then(|| b("bc1")));
        assert_eq!(&bc[..], b"bc1");
        if rank.rank() == 1 {
            assert_eq!(&rank.recv(Some(0), 3).data[..], b"p2p");
        }
        let bc2 = rank.broadcast(1, (rank.rank() == 1).then(|| b("bc2")));
        assert_eq!(&bc2[..], b"bc2");
    });
}

#[test]
fn mixed_roots_sequence_correctly() {
    World::run(3, |rank| {
        for round in 0..10u8 {
            let root = (round as usize) % 3;
            let data = (rank.rank() == root).then(|| Bytes::from(vec![round]));
            let got = rank.broadcast(root, data);
            assert_eq!(got[0], round);
            rank.barrier();
        }
    });
}

#[test]
#[should_panic(expected = "world size must be at least 1")]
fn zero_size_world_rejected() {
    let _ = World::new(0);
}

#[test]
fn single_rank_world_collectives_are_identities() {
    World::run(1, |rank| {
        assert_eq!(rank.size(), 1);
        rank.barrier();
        assert_eq!(&rank.broadcast(0, Some(b("x")))[..], b"x");
        assert_eq!(rank.gather(0, b("g")).unwrap().len(), 1);
        assert_eq!(&rank.scatter(0, Some(vec![b("s")]))[..], b"s");
        assert_eq!(rank.all_gather(b("a")).len(), 1);
    });
}

#[test]
fn reduce_op_apply() {
    assert_eq!(ReduceOp::Sum.apply(&[1.0, 2.0, 3.0]), 6.0);
    assert_eq!(ReduceOp::Max.apply(&[1.0, 5.0, 3.0]), 5.0);
    assert_eq!(ReduceOp::Min.apply(&[1.0, 5.0, 3.0]), 1.0);
}

#[test]
fn tags_bands_are_disjoint() {
    assert!(tags::is_user(0));
    assert!(tags::is_user(tags::PARDIS_BASE - 1));
    assert!(!tags::is_user(tags::PARDIS_BASE));
    assert!(!tags::is_user(tags::pardis(42)));
    assert!(tags::pardis(42) < tags::COLLECTIVE_BASE);
}

#[test]
fn orb_tags_fall_inside_the_reserved_range() {
    // §2.2: every ORB point-to-point tag must live in the reserved band,
    // below the runtime's private collective band.
    for &tag in &tags::ORB_TAGS {
        assert!(tags::RESERVED_TAG_RANGE.contains(&tag), "{tag:#x} outside reserved range");
        assert!(tags::is_reserved(tag));
        assert!(!tags::is_user(tag));
        assert!(!tags::is_collective(tag), "{tag:#x} must not collide with collectives");
    }
    // The reserved range starts exactly at the PARDIS band and covers the
    // collective band too.
    assert_eq!(tags::RESERVED_TAG_RANGE.start, tags::PARDIS_BASE);
    assert!(tags::is_reserved(tags::COLLECTIVE_BASE));
    assert!(tags::is_collective(tags::COLLECTIVE_BASE));
    assert!(!tags::is_reserved(tags::PARDIS_BASE - 1));
}

mod rts_trait_tests {
    use super::*;

    #[test]
    fn mpi_rts_wraps_rank() {
        let out = World::run(3, |rank| {
            let r = rank.rank();
            let rts = MpiRts::new(rank);
            exercise(&rts, r, 3)
        });
        assert_eq!(out, vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn tulip_rts_meets_the_same_contract() {
        let (_world, endpoints) = TulipWorld::new(3);
        let out: Vec<f64> = std::thread::scope(|s| {
            endpoints
                .into_iter()
                .enumerate()
                .map(|(i, ep)| s.spawn(move || exercise(&ep, i, 3)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(out, vec![3.0, 3.0, 3.0]);
    }

    /// Shared conformance exercise run against any [`Rts`] implementation:
    /// point-to-point ring, barrier, broadcast, gather/scatter, all-reduce.
    fn exercise(rts: &dyn Rts, expect_rank: usize, expect_size: usize) -> f64 {
        assert_eq!(rts.rank(), expect_rank);
        assert_eq!(rts.size(), expect_size);
        let n = rts.size();
        let me = rts.rank();

        // Ring: send to the right, receive from the left.
        rts.send((me + 1) % n, 11, Bytes::from(vec![me as u8]));
        let from_left = rts.recv(Some((me + n - 1) % n), 11);
        assert_eq!(from_left.data[0] as usize, (me + n - 1) % n);

        rts.barrier();

        let bc = rts.broadcast(0, (me == 0).then(|| b("z")));
        assert_eq!(&bc[..], b"z");

        let gathered = rts.gather(0, Bytes::from(vec![me as u8]));
        let scattered = if me == 0 {
            let parts = gathered.unwrap();
            assert_eq!(parts.len(), n);
            rts.scatter(0, Some(parts))
        } else {
            rts.scatter(0, None)
        };
        assert_eq!(scattered[0] as usize, me);

        assert!(rts.try_recv(None, 999).is_none());
        assert!(rts.recv_timeout(None, 999, Duration::from_millis(5)).is_none());

        // Each rank contributes 1.0; the sum is the world size.
        rts.all_reduce_f64(1.0, ReduceOp::Sum)
    }
}

mod tulip_one_sided {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let (_w, eps) = TulipWorld::new(2);
        let id = eps[0].register_region(1, vec![0u8; 8]);
        eps[1].put(id, 2, &[0xaa, 0xbb]);
        assert_eq!(eps[0].get(id, 0, 8), vec![0, 0, 0xaa, 0xbb, 0, 0, 0, 0]);
        eps[0].unregister_region(id);
    }

    #[test]
    #[should_panic(expected = "put out of bounds")]
    fn put_out_of_bounds_rejected() {
        let (_w, eps) = TulipWorld::new(1);
        let id = eps[0].register_region(1, vec![0u8; 4]);
        eps[0].put(id, 2, &[1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_region_rejected() {
        let (_w, eps) = TulipWorld::new(1);
        eps[0].register_region(1, vec![]);
        eps[0].register_region(1, vec![]);
    }

    #[test]
    #[should_panic(expected = "unknown region")]
    fn unknown_region_rejected() {
        let (_w, eps) = TulipWorld::new(1);
        eps[0].get(RegionId { owner: 0, number: 99 }, 0, 0);
    }
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Messages between a fixed (sender, receiver, tag) triple are
        /// delivered in FIFO order regardless of world size.
        #[test]
        fn p2p_fifo_order(n in 2usize..6, count in 1usize..20) {
            World::run(n, |rank| {
                if rank.rank() == 0 {
                    for i in 0..count {
                        rank.send(1, 4, Bytes::from(vec![i as u8]));
                    }
                } else if rank.rank() == 1 {
                    for i in 0..count {
                        let m = rank.recv(Some(0), 4);
                        assert_eq!(m.data[0] as usize, i);
                    }
                }
            });
        }

        /// all_gather result is identical on every rank and ordered by rank.
        #[test]
        fn all_gather_consistency(n in 1usize..6) {
            let out = World::run(n, |rank| {
                rank.all_gather(Bytes::from(vec![rank.rank() as u8; rank.rank() + 1]))
            });
            for parts in &out {
                prop_assert_eq!(parts.len(), n);
                for (i, p) in parts.iter().enumerate() {
                    prop_assert_eq!(p.len(), i + 1);
                    prop_assert!(p.iter().all(|&x| x as usize == i));
                }
            }
        }

        /// all-reduce agrees with a sequential reduction on every rank.
        #[test]
        fn all_reduce_matches_sequential(
            n in 1usize..6,
            values in proptest::collection::vec(-1e6f64..1e6, 6),
        ) {
            let vals = values.clone();
            let out = World::run(n, move |rank| {
                let rts = MpiRts::new(rank);
                let mine = vals[rts.rank()];
                (
                    rts.all_reduce_f64(mine, ReduceOp::Sum),
                    rts.all_reduce_f64(mine, ReduceOp::Max),
                )
            });
            let expected_sum: f64 = values[..n].iter().sum();
            let expected_max = values[..n].iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for (sum, max) in out {
                prop_assert!((sum - expected_sum).abs() < 1e-6);
                prop_assert_eq!(max, expected_max);
            }
        }
    }
}
