use crate::*;
use bytes::Bytes;
use std::time::Duration;

fn b(s: &str) -> Bytes {
    Bytes::copy_from_slice(s.as_bytes())
}

#[test]
fn send_recv_between_two_ranks() {
    let out = World::run(2, |rank| {
        if rank.rank() == 0 {
            rank.send(1, 7, b("hello"));
            String::new()
        } else {
            let msg = rank.recv(Some(0), 7);
            assert_eq!(msg.from, 0);
            String::from_utf8(msg.data.to_vec()).unwrap()
        }
    });
    assert_eq!(out[1], "hello");
}

#[test]
fn recv_matches_by_tag_out_of_order() {
    World::run(2, |rank| {
        if rank.rank() == 0 {
            rank.send(1, 1, b("first"));
            rank.send(1, 2, b("second"));
        } else {
            // Receive tag 2 first even though tag 1 arrived earlier.
            let m2 = rank.recv(Some(0), 2);
            assert_eq!(&m2.data[..], b"second");
            let m1 = rank.recv(Some(0), 1);
            assert_eq!(&m1.data[..], b"first");
        }
    });
}

#[test]
fn recv_any_source() {
    World::run(3, |rank| {
        if rank.rank() == 0 {
            let m1 = rank.recv(None, 5);
            let m2 = rank.recv(None, 5);
            let mut froms = vec![m1.from, m2.from];
            froms.sort_unstable();
            assert_eq!(froms, vec![1, 2]);
        } else {
            rank.send(0, 5, b("x"));
        }
    });
}

#[test]
fn try_recv_and_probe() {
    World::run(2, |rank| {
        if rank.rank() == 0 {
            assert!(rank.try_recv(None, 9).is_none());
            assert!(!rank.probe(None, 9));
            rank.barrier();
            rank.barrier();
            assert!(rank.probe(Some(1), 9));
            assert_eq!(rank.pending(), 1);
            assert!(rank.try_recv(None, 9).is_some());
            assert_eq!(rank.pending(), 0);
        } else {
            rank.barrier();
            rank.send(0, 9, b("m"));
            rank.barrier();
        }
    });
}

#[test]
fn recv_timeout_expires() {
    World::run(1, |rank| {
        let start = std::time::Instant::now();
        assert!(rank.recv_timeout(None, 1, Duration::from_millis(30)).is_none());
        assert!(start.elapsed() >= Duration::from_millis(25));
    });
}

#[test]
fn barrier_synchronises() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let before = AtomicUsize::new(0);
    World::run(4, |rank| {
        before.fetch_add(1, Ordering::SeqCst);
        rank.barrier();
        // After the barrier every rank must observe all 4 increments.
        assert_eq!(before.load(Ordering::SeqCst), 4);
    });
}

#[test]
fn repeated_barriers_do_not_deadlock() {
    World::run(3, |rank| {
        for _ in 0..100 {
            rank.barrier();
        }
    });
}

#[test]
fn broadcast_delivers_to_all() {
    let out = World::run(4, |rank| {
        let data = if rank.rank() == 2 { Some(b("payload")) } else { None };
        rank.broadcast(2, data)
    });
    for part in out {
        assert_eq!(&part[..], b"payload");
    }
}

#[test]
fn gather_collects_in_rank_order() {
    let out = World::run(4, |rank| {
        let part = Bytes::from(vec![rank.rank() as u8]);
        rank.gather(1, part)
    });
    assert!(out[0].is_none());
    let parts = out[1].as_ref().unwrap();
    assert_eq!(parts.len(), 4);
    for (i, p) in parts.iter().enumerate() {
        assert_eq!(p[0] as usize, i);
    }
}

#[test]
fn scatter_routes_per_rank() {
    let out = World::run(3, |rank| {
        let parts =
            (rank.rank() == 0).then(|| (0..3).map(|i| Bytes::from(vec![i as u8 * 10])).collect());
        rank.scatter(0, parts)
    });
    for (i, p) in out.iter().enumerate() {
        assert_eq!(p[0] as usize, i * 10);
    }
}

#[test]
fn all_gather_gives_everyone_everything() {
    let out = World::run(5, |rank| {
        let part = Bytes::from(format!("r{}", rank.rank()));
        rank.all_gather(part)
    });
    for parts in out {
        assert_eq!(parts.len(), 5);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(&p[..], format!("r{i}").as_bytes());
        }
    }
}

#[test]
fn collectives_interleave_with_point_to_point() {
    World::run(2, |rank| {
        // Point-to-point traffic between collectives must not confuse the
        // collective tag matching.
        if rank.rank() == 0 {
            rank.send(1, 3, b("p2p"));
        }
        let bc = rank.broadcast(0, (rank.rank() == 0).then(|| b("bc1")));
        assert_eq!(&bc[..], b"bc1");
        if rank.rank() == 1 {
            assert_eq!(&rank.recv(Some(0), 3).data[..], b"p2p");
        }
        let bc2 = rank.broadcast(1, (rank.rank() == 1).then(|| b("bc2")));
        assert_eq!(&bc2[..], b"bc2");
    });
}

#[test]
fn mixed_roots_sequence_correctly() {
    World::run(3, |rank| {
        for round in 0..10u8 {
            let root = (round as usize) % 3;
            let data = (rank.rank() == root).then(|| Bytes::from(vec![round]));
            let got = rank.broadcast(root, data);
            assert_eq!(got[0], round);
            rank.barrier();
        }
    });
}

#[test]
#[should_panic(expected = "world size must be at least 1")]
fn zero_size_world_rejected() {
    let _ = World::new(0);
}

#[test]
fn single_rank_world_collectives_are_identities() {
    World::run(1, |rank| {
        assert_eq!(rank.size(), 1);
        rank.barrier();
        assert_eq!(&rank.broadcast(0, Some(b("x")))[..], b"x");
        assert_eq!(rank.gather(0, b("g")).unwrap().len(), 1);
        assert_eq!(&rank.scatter(0, Some(vec![b("s")]))[..], b"s");
        assert_eq!(rank.all_gather(b("a")).len(), 1);
    });
}

#[test]
fn reduce_op_apply() {
    assert_eq!(ReduceOp::Sum.apply(&[1.0, 2.0, 3.0]), 6.0);
    assert_eq!(ReduceOp::Max.apply(&[1.0, 5.0, 3.0]), 5.0);
    assert_eq!(ReduceOp::Min.apply(&[1.0, 5.0, 3.0]), 1.0);
}

#[test]
fn tags_bands_are_disjoint() {
    assert!(tags::is_user(0));
    assert!(tags::is_user(tags::PARDIS_BASE - 1));
    assert!(!tags::is_user(tags::PARDIS_BASE));
    assert!(!tags::is_user(tags::pardis(42)));
    assert!(tags::pardis(42) < tags::COLLECTIVE_BASE);
}

#[test]
fn orb_tags_fall_inside_the_reserved_range() {
    // §2.2: every ORB point-to-point tag must live in the reserved band,
    // below the runtime's private collective band.
    for &tag in &tags::ORB_TAGS {
        assert!(tags::RESERVED_TAG_RANGE.contains(&tag), "{tag:#x} outside reserved range");
        assert!(tags::is_reserved(tag));
        assert!(!tags::is_user(tag));
        assert!(!tags::is_collective(tag), "{tag:#x} must not collide with collectives");
    }
    // The reserved range starts exactly at the PARDIS band and covers the
    // collective band too.
    assert_eq!(tags::RESERVED_TAG_RANGE.start, tags::PARDIS_BASE);
    assert!(tags::is_reserved(tags::COLLECTIVE_BASE));
    assert!(tags::is_collective(tags::COLLECTIVE_BASE));
    assert!(!tags::is_reserved(tags::PARDIS_BASE - 1));
}

mod rts_trait_tests {
    use super::*;

    #[test]
    fn mpi_rts_wraps_rank() {
        let out = World::run(3, |rank| {
            let r = rank.rank();
            let rts = MpiRts::new(rank);
            exercise(&rts, r, 3)
        });
        assert_eq!(out, vec![3.0, 3.0, 3.0]);
    }

    #[test]
    fn tulip_rts_meets_the_same_contract() {
        let (_world, endpoints) = TulipWorld::new(3);
        let out: Vec<f64> = std::thread::scope(|s| {
            endpoints
                .into_iter()
                .enumerate()
                .map(|(i, ep)| s.spawn(move || exercise(&ep, i, 3)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(out, vec![3.0, 3.0, 3.0]);
    }

    /// Shared conformance exercise run against any [`Rts`] implementation:
    /// point-to-point ring, barrier, broadcast, gather/scatter, all-reduce.
    fn exercise(rts: &dyn Rts, expect_rank: usize, expect_size: usize) -> f64 {
        assert_eq!(rts.rank(), expect_rank);
        assert_eq!(rts.size(), expect_size);
        let n = rts.size();
        let me = rts.rank();

        // Ring: send to the right, receive from the left.
        rts.send((me + 1) % n, 11, Bytes::from(vec![me as u8]));
        let from_left = rts.recv(Some((me + n - 1) % n), 11);
        assert_eq!(from_left.data[0] as usize, (me + n - 1) % n);

        rts.barrier();

        let bc = rts.broadcast(0, (me == 0).then(|| b("z")));
        assert_eq!(&bc[..], b"z");

        let gathered = rts.gather(0, Bytes::from(vec![me as u8]));
        let scattered = if me == 0 {
            let parts = gathered.unwrap();
            assert_eq!(parts.len(), n);
            rts.scatter(0, Some(parts))
        } else {
            rts.scatter(0, None)
        };
        assert_eq!(scattered[0] as usize, me);

        assert!(rts.try_recv(None, 999).is_none());
        assert!(rts.recv_timeout(None, 999, Duration::from_millis(5)).is_none());

        // Each rank contributes 1.0; the sum is the world size.
        rts.all_reduce_f64(1.0, ReduceOp::Sum)
    }
}

mod tulip_one_sided {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let (_w, eps) = TulipWorld::new(2);
        let id = eps[0].register_region(1, vec![0u8; 8]);
        eps[1].put(id, 2, &[0xaa, 0xbb]).expect("in-bounds put");
        assert_eq!(eps[0].get(id, 0, 8).expect("get"), vec![0, 0, 0xaa, 0xbb, 0, 0, 0, 0]);
        assert_eq!(
            eps[0].unregister_region(id).expect("deregister"),
            vec![0, 0, 0xaa, 0xbb, 0, 0, 0, 0]
        );
    }

    #[test]
    fn put_out_of_bounds_rejected() {
        let (_w, eps) = TulipWorld::new(1);
        let id = eps[0].register_region(1, vec![0u8; 4]);
        // Typed error, not a panic: the write 2..5 exceeds the 4-byte region.
        match eps[0].put(id, 2, &[1, 2, 3]) {
            Err(RtsError::OutOfBounds { offset: 2, len: 3, size: 4, .. }) => {}
            other => panic!("expected OutOfBounds, got {other:?}"),
        }
        // The region is untouched by the rejected write.
        assert_eq!(eps[0].get(id, 0, 4).expect("get"), vec![0; 4]);
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_region_rejected() {
        let (_w, eps) = TulipWorld::new(1);
        eps[0].register_region(1, vec![]);
        eps[0].register_region(1, vec![]);
    }

    #[test]
    fn unknown_region_rejected() {
        let (_w, eps) = TulipWorld::new(1);
        match eps[0].get(RegionId { owner: 0, number: 99 }, 0, 0) {
            Err(RtsError::UnknownWindow(_)) => {}
            other => panic!("expected UnknownWindow, got {other:?}"),
        }
    }
}

mod windows {
    use super::*;
    use pardis_netsim::{LinkPreset, Network, TimeScale, TransportMode};

    #[test]
    fn put_nb_completes_and_notifies() {
        let (_w, ranks) = World::new(2);
        let id = ranks[0].windows().expose(0x100, vec![0u8; 16]).expect("expose");
        let c =
            ranks[1].windows().put_nb_notify(id, 4, Bytes::from(vec![9u8; 4]), 77).expect("put");
        c.wait();
        let n = ranks[0].windows().wait_notify(77);
        assert_eq!(n.from, 1);
        assert_eq!(n.window, id);
        let back = ranks[0].windows().read_local(id, 0, 16).expect("read");
        assert_eq!(&back[4..8], &[9, 9, 9, 9]);
    }

    #[test]
    fn get_vec_concatenates_spans() {
        let (_w, ranks) = World::new(2);
        let data: Vec<u8> = (0..32).collect();
        let id = ranks[0].windows().expose(0, data).expect("expose");
        let got =
            ranks[1].windows().get_vec_nb(id, &[(4, 2), (30, 2), (0, 1)]).expect("get").wait();
        assert_eq!(&got[..], &[4, 5, 30, 31, 0]);
    }

    #[test]
    fn fence_drains_inflight_ops() {
        let (_w, ranks) = World::new(2);
        let id = ranks[0].windows().expose(0, vec![0u8; 64]).expect("expose");
        for k in 0..8u8 {
            ranks[1].windows().put_nb(id, k as u64 * 8, Bytes::from(vec![k; 8])).expect("put");
        }
        ranks[1].windows().fence();
        assert_eq!(ranks[1].windows().pending_ops(), 0);
        let all = ranks[0].windows().read_local(id, 0, 64).expect("read");
        for k in 0..8usize {
            assert!(all[k * 8..(k + 1) * 8].iter().all(|&b| b == k as u8));
        }
    }

    #[test]
    fn deregister_requires_owner() {
        let (_w, ranks) = World::new(2);
        let id = ranks[0].windows().expose(0, vec![1, 2, 3]).expect("expose");
        assert!(matches!(
            ranks[1].windows().deregister(id),
            Err(RtsError::NotOwner { rank: 1, .. })
        ));
        assert_eq!(ranks[0].windows().deregister(id).expect("deregister"), vec![1, 2, 3]);
        assert!(matches!(ranks[1].windows().get_nb(id, 0, 1), Err(RtsError::UnknownWindow(_))));
    }

    /// With a network attached, one-sided transfers accrue modelled wire
    /// time on the lanes (and still deliver the bytes).
    #[test]
    fn attached_network_accrues_wire_time() {
        let net = Network::with_transport(TimeScale::off(), TransportMode::Overlapped);
        let h0 = net.add_host("A");
        let h1 = net.add_host("B");
        net.connect(h0, h1, LinkPreset::AtmOc3.link());
        let (world, ranks) = World::new(2);
        world.attach_network(net.clone(), vec![h0, h1]);
        let id = ranks[0].windows().expose(0, vec![0u8; 1024]).expect("expose");
        ranks[1].windows().put_nb(id, 0, Bytes::from(vec![7u8; 1024])).expect("put").wait();
        let got = ranks[1].windows().get_nb(id, 0, 1024).expect("get").wait();
        assert!(got.iter().all(|&b| b == 7));
        // One put frame + a get request/reply pair went over the wire.
        assert!(net.makespan() > 0.0, "one-sided traffic must advance the virtual clock");
    }

    /// Two-sided sends over an attached network pay the rendezvous chain,
    /// which costs strictly more than a one-sided put of the same payload.
    #[test]
    fn rendezvous_costs_more_than_put() {
        let cost = |one_sided: bool| {
            let net = Network::with_transport(TimeScale::off(), TransportMode::Overlapped);
            let h0 = net.add_host("A");
            let h1 = net.add_host("B");
            net.connect(h0, h1, LinkPreset::AtmOc3.link());
            let (world, ranks) = World::new(2);
            world.attach_network(net.clone(), vec![h0, h1]);
            if one_sided {
                let id = ranks[1].windows().expose(0, vec![0u8; 256]).expect("expose");
                ranks[0].windows().put_nb(id, 0, Bytes::from(vec![1u8; 256])).expect("put").wait();
            } else {
                ranks[0].send(1, 5, Bytes::from(vec![1u8; 256]));
                ranks[1].recv(Some(0), 5);
            }
            net.makespan()
        };
        let put = cost(true);
        let send = cost(false);
        assert!(
            send > put * 1.5,
            "rendezvous send ({send:.6}s) should cost well over the one-sided put ({put:.6}s)"
        );
    }
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Messages between a fixed (sender, receiver, tag) triple are
        /// delivered in FIFO order regardless of world size.
        #[test]
        fn p2p_fifo_order(n in 2usize..6, count in 1usize..20) {
            World::run(n, |rank| {
                if rank.rank() == 0 {
                    for i in 0..count {
                        rank.send(1, 4, Bytes::from(vec![i as u8]));
                    }
                } else if rank.rank() == 1 {
                    for i in 0..count {
                        let m = rank.recv(Some(0), 4);
                        assert_eq!(m.data[0] as usize, i);
                    }
                }
            });
        }

        /// all_gather result is identical on every rank and ordered by rank.
        #[test]
        fn all_gather_consistency(n in 1usize..6) {
            let out = World::run(n, |rank| {
                rank.all_gather(Bytes::from(vec![rank.rank() as u8; rank.rank() + 1]))
            });
            for parts in &out {
                prop_assert_eq!(parts.len(), n);
                for (i, p) in parts.iter().enumerate() {
                    prop_assert_eq!(p.len(), i + 1);
                    prop_assert!(p.iter().all(|&x| x as usize == i));
                }
            }
        }

        /// all-reduce agrees with a sequential reduction on every rank.
        #[test]
        fn all_reduce_matches_sequential(
            n in 1usize..6,
            values in proptest::collection::vec(-1e6f64..1e6, 6),
        ) {
            let vals = values.clone();
            let out = World::run(n, move |rank| {
                let rts = MpiRts::new(rank);
                let mine = vals[rts.rank()];
                (
                    rts.all_reduce_f64(mine, ReduceOp::Sum),
                    rts.all_reduce_f64(mine, ReduceOp::Max),
                )
            });
            let expected_sum: f64 = values[..n].iter().sum();
            let expected_max = values[..n].iter().copied().fold(f64::NEG_INFINITY, f64::max);
            for (sum, max) in out {
                prop_assert!((sum - expected_sum).abs() < 1e-6);
                prop_assert_eq!(max, expected_max);
            }
        }

        /// put-then-get roundtrips arbitrary in-bounds (offset, len) spans;
        /// out-of-bounds spans are rejected with a typed error and leave the
        /// window untouched.
        #[test]
        fn window_put_get_roundtrip(
            size in 1usize..256,
            offset in 0u64..256,
            len in 0usize..256,
            fill in any::<u8>(),
        ) {
            let (_w, ranks) = World::new(2);
            let id = ranks[0].windows().expose(0x1000, vec![0u8; size]).expect("expose");
            let payload = Bytes::from(vec![fill; len]);
            let in_bounds = offset as usize + len <= size;
            match ranks[1].windows().put_nb(id, offset, payload) {
                Ok(c) => {
                    prop_assert!(in_bounds);
                    c.wait();
                    let got = ranks[1].windows().get_nb(id, offset, len as u64).expect("get").wait();
                    prop_assert!(got.iter().all(|&b| b == fill));
                    // Bytes outside the span are untouched.
                    let all = ranks[0].windows().read_local(id, 0, size as u64).expect("read");
                    for (i, &b) in all.iter().enumerate() {
                        let inside = i as u64 >= offset && i < offset as usize + len;
                        prop_assert_eq!(b, if inside { fill } else { 0 });
                    }
                }
                Err(RtsError::OutOfBounds { .. }) => {
                    prop_assert!(!in_bounds);
                    let all = ranks[0].windows().read_local(id, 0, size as u64).expect("read");
                    prop_assert!(all.iter().all(|&b| b == 0));
                }
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
        }

        /// expose accepts exactly the non-overlapping base placements:
        /// acceptance must match interval arithmetic on the byte address
        /// space.
        #[test]
        fn window_overlap_rejection_matches_intervals(
            base_a in 0u64..64,
            len_a in 1usize..32,
            base_b in 0u64..64,
            len_b in 1usize..32,
        ) {
            let (_w, ranks) = World::new(1);
            let w = ranks[0].windows();
            let a = w.expose(base_a, vec![0u8; len_a]).expect("first expose");
            let disjoint = base_b + len_b as u64 <= base_a || base_a + len_a as u64 <= base_b;
            match w.expose(base_b, vec![0u8; len_b]) {
                Ok(b) => {
                    prop_assert!(disjoint, "accepted overlapping [{base_b}, +{len_b})");
                    w.deregister(b).expect("deregister b");
                }
                Err(RtsError::WindowOverlap { .. }) => prop_assert!(!disjoint),
                Err(e) => prop_assert!(false, "unexpected error {e:?}"),
            }
            w.deregister(a).expect("deregister a");
        }
    }
}
