//! The message unit moved by the runtime.

use bytes::Bytes;

/// One message: sender rank, tag, payload.
///
/// Payloads are [`Bytes`] so a broadcast of a large buffer shares one
/// allocation across receivers instead of copying per destination.
#[derive(Debug, Clone, PartialEq)]
pub struct Msg {
    /// Rank of the sender within its world.
    pub from: usize,
    /// Message tag (see [`crate::tags`] for the reserved bands).
    pub tag: u64,
    /// Payload bytes.
    pub data: Bytes,
}

impl Msg {
    /// Construct a message.
    pub fn new(from: usize, tag: u64, data: Bytes) -> Self {
        Msg { from, tag, data }
    }

    /// Does this message match a receive posted for `(from, tag)`?
    /// `None` acts as MPI's `ANY_SOURCE`.
    pub fn matches(&self, from: Option<usize>, tag: u64) -> bool {
        self.tag == tag && from.is_none_or(|f| f == self.from)
    }
}
