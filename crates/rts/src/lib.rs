//! The PARDIS run-time system (RTS) substrate.
//!
//! In the paper, a *parallel server* or *parallel client* is a set of
//! computing threads living in distinct address spaces and communicating
//! through some message-passing medium (MPI, the Tulip run-time system, or
//! POOMA's communication abstraction). The ORB deliberately assumes only "a
//! very small subset of basic message passing primitives", plus a way to keep
//! PARDIS traffic apart from the application's own messages (a reserved tag
//! band).
//!
//! This crate rebuilds that world:
//!
//! * [`World`] / [`Rank`] — an MPI-like runtime whose computing threads are
//!   OS threads that share **no** user data; every exchange goes through
//!   tagged `send`/`recv` and collectives, so the distinct-address-space
//!   discipline of the original testbed is preserved by construction.
//! * [`Rts`] — the trait capturing exactly the primitives the ORB needs;
//!   the paper's claim that the interface is small enough to implement over
//!   several run-time systems is demonstrated with two implementations here
//!   ([`MpiRts`], [`TulipRts`]) and one in `pooma-rs` (`PoomaComm`).
//! * [`tags`] — the reserved tag bands separating PARDIS messages from user
//!   computation messages.

mod msg;
mod rts_trait;
mod tulip;
mod window;
mod world;

pub use bytes::Bytes;
pub use msg::Msg;
pub use rts_trait::{MpiRts, ReduceOp, Rts};
pub use tulip::{Region, RegionId, TulipRts, TulipWorld};
pub use window::{
    one_sided_enabled, set_one_sided, Completion, GetHandle, Notice, RtsError, WindowId,
    WindowShared, Windows, CTRL_FRAME_BYTES,
};
pub use world::{Rank, World};

/// Reserved tag bands.
///
/// User computation may use any tag below [`tags::PARDIS_BASE`]; the ORB tags
/// its own traffic inside the PARDIS band; the collectives implementation
/// uses a third, private band. This mirrors §2.2's requirement for "a set of
/// reserved message tags".
pub mod tags {
    /// First tag reserved for PARDIS (ORB) traffic.
    pub const PARDIS_BASE: u64 = 1 << 62;
    /// First tag reserved for the runtime's own collectives.
    pub const COLLECTIVE_BASE: u64 = 1 << 63;

    /// The whole reserved band: every tag at or above [`PARDIS_BASE`] belongs
    /// to the ORB or the runtime, never to user computation. Single source of
    /// truth for §2.2's "set of reserved message tags"; re-exported by
    /// `pardis_core::protocol` so ORB code and checkers agree on the range.
    pub const RESERVED_TAG_RANGE: core::ops::Range<u64> = PARDIS_BASE..u64::MAX;

    /// Tag of the ORB's request-forwarding channel (POA dispatch traffic).
    pub const ORB_FORWARD: u64 = PARDIS_BASE | 0xF0;
    /// Tag of the ORB's distributed-sequence redistribution channel.
    pub const ORB_REDIST: u64 = PARDIS_BASE | 0x5344;
    /// Every point-to-point tag the ORB itself uses inside the reserved band.
    /// (Collectives use the separate [`COLLECTIVE_BASE`] band.)
    pub const ORB_TAGS: [u64; 2] = [ORB_FORWARD, ORB_REDIST];

    /// Build a PARDIS-band tag from a small discriminator.
    pub fn pardis(n: u64) -> u64 {
        debug_assert!(n < (1 << 62));
        PARDIS_BASE | n
    }

    /// Is this tag available to user computation?
    pub fn is_user(tag: u64) -> bool {
        tag < PARDIS_BASE
    }

    /// Is this tag inside the reserved (ORB + runtime) band?
    pub fn is_reserved(tag: u64) -> bool {
        RESERVED_TAG_RANGE.contains(&tag)
    }

    /// Is this tag in the runtime's private collective band?
    pub fn is_collective(tag: u64) -> bool {
        tag >= COLLECTIVE_BASE
    }
}

#[cfg(test)]
mod tests;
