//! The run-time system interface the ORB programs against.

use crate::{Msg, Rank, Windows};
use bytes::Bytes;
use std::time::Duration;

/// Reductions supported by [`Rts::all_reduce_f64`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Sum of contributions.
    Sum,
    /// Maximum contribution.
    Max,
    /// Minimum contribution.
    Min,
}

impl ReduceOp {
    /// Apply the reduction to a slice of contributions.
    pub fn apply(self, values: &[f64]) -> f64 {
        match self {
            ReduceOp::Sum => values.iter().sum(),
            ReduceOp::Max => values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            ReduceOp::Min => values.iter().copied().fold(f64::INFINITY, f64::min),
        }
    }
}

/// The paper's run-time system interface (§2.2): the "very small subset of
/// basic message passing primitives" through which the ORB extends into the
/// communication domain of a parallel client or server.
///
/// Three implementations demonstrate its portability, mirroring the paper's
/// MPI / Tulip / POOMA ports:
///
/// * [`MpiRts`] — two-sided message passing over [`crate::World`];
/// * [`crate::TulipRts`] — the same contract built on one-sided put/get;
/// * `pooma_rs::PoomaComm` — POOMA's communication abstraction.
pub trait Rts: Send + Sync {
    /// This computing thread's rank.
    fn rank(&self) -> usize;
    /// Number of computing threads in the program.
    fn size(&self) -> usize;
    /// Asynchronous tagged send.
    fn send(&self, to: usize, tag: u64, data: Bytes);
    /// Blocking tagged receive; `from = None` matches any source.
    fn recv(&self, from: Option<usize>, tag: u64) -> Msg;
    /// Receive with a deadline, `None` on expiry.
    fn recv_timeout(&self, from: Option<usize>, tag: u64, timeout: Duration) -> Option<Msg>;
    /// Non-blocking receive.
    fn try_recv(&self, from: Option<usize>, tag: u64) -> Option<Msg>;
    /// Synchronise all computing threads.
    fn barrier(&self);
    /// Broadcast `data` from `root` (root passes `Some`).
    fn broadcast(&self, root: usize, data: Option<Bytes>) -> Bytes;
    /// Gather parts at `root` in rank order.
    fn gather(&self, root: usize, part: Bytes) -> Option<Vec<Bytes>>;
    /// Scatter one part per rank from `root`.
    fn scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes;

    /// The backend's one-sided window endpoint, when it has one. Errors of
    /// the one-sided operations surface as typed [`crate::RtsError`] values
    /// through the endpoint's `Result` returns — never panics. `None` means
    /// the backend is purely two-sided and callers must fall back to
    /// send/recv emulation.
    fn windows(&self) -> Option<&Windows> {
        None
    }

    /// All-gather: everyone receives every rank's part, in rank order.
    /// Default: gather to 0, broadcast a framed concatenation.
    fn all_gather(&self, part: Bytes) -> Vec<Bytes> {
        let gathered = self.gather(0, part);
        if self.rank() == 0 {
            let parts = gathered.expect("rank 0 gathers");
            let mut framed = bytes::BytesMut::new();
            use bytes::BufMut;
            framed.put_u32(parts.len() as u32);
            for p in &parts {
                framed.put_u32(p.len() as u32);
                framed.extend_from_slice(p);
            }
            self.broadcast(0, Some(framed.freeze()));
            parts
        } else {
            let framed = self.broadcast(0, None);
            let mut parts = Vec::new();
            let mut pos = 0usize;
            let count = u32::from_be_bytes(framed[0..4].try_into().unwrap()) as usize;
            pos += 4;
            for _ in 0..count {
                let len = u32::from_be_bytes(framed[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 4;
                parts.push(framed.slice(pos..pos + len));
                pos += len;
            }
            parts
        }
    }

    /// All-reduce a scalar. Default: gather-to-0 + broadcast.
    fn all_reduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        let part = Bytes::copy_from_slice(&value.to_be_bytes());
        let gathered = self.gather(0, part);
        if self.rank() == 0 {
            let values: Vec<f64> = gathered
                .expect("rank 0 gathers")
                .iter()
                .map(|b| f64::from_be_bytes(b[..8].try_into().unwrap()))
                .collect();
            let result = op.apply(&values);
            self.broadcast(0, Some(Bytes::copy_from_slice(&result.to_be_bytes())));
            result
        } else {
            let b = self.broadcast(0, None);
            f64::from_be_bytes(b[..8].try_into().unwrap())
        }
    }
}

/// The MPI implementation of the RTS interface: a thin veneer over
/// [`Rank`], just as the original PARDIS MPI port was a veneer over
/// `MPI_Send`/`MPI_Recv`.
pub struct MpiRts {
    rank: Rank,
}

impl MpiRts {
    /// Wrap a computing thread's rank handle.
    pub fn new(rank: Rank) -> Self {
        MpiRts { rank }
    }

    /// Access the underlying rank (for application-level communication,
    /// which the paper assumes flows through the same medium with
    /// non-reserved tags).
    pub fn raw(&self) -> &Rank {
        &self.rank
    }
}

impl Rts for MpiRts {
    fn rank(&self) -> usize {
        self.rank.rank()
    }
    fn size(&self) -> usize {
        self.rank.size()
    }
    fn send(&self, to: usize, tag: u64, data: Bytes) {
        self.rank.send(to, tag, data);
    }
    fn recv(&self, from: Option<usize>, tag: u64) -> Msg {
        self.rank.recv(from, tag)
    }
    fn recv_timeout(&self, from: Option<usize>, tag: u64, timeout: Duration) -> Option<Msg> {
        self.rank.recv_timeout(from, tag, timeout)
    }
    fn try_recv(&self, from: Option<usize>, tag: u64) -> Option<Msg> {
        self.rank.try_recv(from, tag)
    }
    fn barrier(&self) {
        self.rank.barrier();
    }
    fn broadcast(&self, root: usize, data: Option<Bytes>) -> Bytes {
        self.rank.broadcast(root, data)
    }
    fn gather(&self, root: usize, part: Bytes) -> Option<Vec<Bytes>> {
        self.rank.gather(root, part)
    }
    fn scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        self.rank.scatter(root, parts)
    }
    fn all_gather(&self, part: Bytes) -> Vec<Bytes> {
        self.rank.all_gather(part)
    }
    fn windows(&self) -> Option<&Windows> {
        Some(self.rank.windows())
    }
}
