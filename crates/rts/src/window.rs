//! One-sided memory windows: the real RDMA-style RTS layer.
//!
//! The paper names one-sided run-time systems (Tulip) as the direction for
//! distributed-argument transfer, and DART-style PGAS runtimes show the
//! shape: each rank *exposes* windows of memory, remote ranks issue
//! non-blocking [`Windows::put_nb`] / [`Windows::get_nb`] operations that
//! complete without any matching receive, and a [`Windows::fence`] (or a
//! delivery notification) establishes completion.
//!
//! Key properties of this implementation:
//!
//! * **Lock-free lookups** — the window table is a [`Published`] snapshot
//!   map, so the per-operation lookup in `put_nb`/`get_nb` acquires no lock;
//!   only [`Windows::expose`] / [`Windows::deregister`] republish.
//! * **Non-blocking with completion handles** — operations return a
//!   [`Completion`] / [`GetHandle`] immediately; `fence` drains everything
//!   this rank initiated; [`Windows::put_nb_notify`] additionally enqueues a
//!   [`Notice`] at the window owner when the data lands.
//! * **Modelled wire time** — when the owning world is attached to a
//!   [`Network`] ([`WindowShared::attach`] via `World::attach_network`), a
//!   put occupies the sender→owner lane for one frame and a get for a tiny
//!   request frame plus the payload reply, through the PR 5 overlapped
//!   engine: the initiating thread pays only the software overhead `t_o`,
//!   wire time accrues on the lane timeline and the delivery effect runs at
//!   the frame's modelled arrival. With no network attached the operations
//!   complete inline at zero modelled cost (plain shared-memory semantics).
//!
//! The `PARDIS_ONESIDED` environment knob (see [`one_sided_enabled`])
//! gates the *users* of this layer — pull-based `dseq` redistribution and
//! `pooma-rs` halo exchange — so `PARDIS_ONESIDED=off` preserves the legacy
//! two-sided paths byte-for-byte.

use bytes::{Bytes, BytesMut};
use pardis_netsim::{HostId, Network, Published};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Identifier of an exposed window: the owning rank plus the window's base
/// address in that rank's exposed byte-address space. The base *is* the
/// name — ranks that agree on a base (e.g. through the collective numbering
/// of [`Windows::collective_window_base`]) can address each other's windows
/// without exchanging ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WindowId {
    /// Rank that exposed the window.
    pub owner: usize,
    /// Base address in the owner's exposed address space.
    pub base: u64,
}

impl std::fmt::Display for WindowId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "window {:#x}@rank{}", self.base, self.owner)
    }
}

/// Typed errors of the one-sided layer (and of the emulated
/// `TulipRts::put`/`get` region API, which is built on it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RtsError {
    /// The addressed window is not (or no longer) exposed.
    UnknownWindow(WindowId),
    /// The access `[offset, offset+len)` falls outside the window's `size`.
    OutOfBounds {
        /// The addressed window.
        window: WindowId,
        /// First byte of the access.
        offset: u64,
        /// Access length in bytes.
        len: u64,
        /// The window's actual size in bytes.
        size: u64,
    },
    /// The new window `[base, base+len)` overlaps an already-exposed window
    /// of the same rank.
    WindowOverlap {
        /// Requested base address.
        base: u64,
        /// Requested length.
        len: u64,
        /// The live window it collides with.
        existing: WindowId,
    },
    /// Only the owning rank may deregister a window.
    NotOwner {
        /// The addressed window.
        window: WindowId,
        /// The rank that attempted the operation.
        rank: usize,
    },
}

impl std::fmt::Display for RtsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RtsError::UnknownWindow(id) => write!(f, "unknown {id}"),
            RtsError::OutOfBounds { window, offset, len, size } => {
                write!(
                    f,
                    "access out of bounds: {}..{} of {size} in {window}",
                    offset,
                    offset + len
                )
            }
            RtsError::WindowOverlap { base, len, existing } => {
                write!(f, "window {base:#x}+{len} overlaps live {existing}")
            }
            RtsError::NotOwner { window, rank } => {
                write!(f, "rank {rank} does not own {window}")
            }
        }
    }
}

impl std::error::Error for RtsError {}

/// A delivery notification: pushed to the window owner's queue when a
/// [`Windows::put_nb_notify`] lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Notice {
    /// Rank that issued the put.
    pub from: usize,
    /// The window the data landed in.
    pub window: WindowId,
    /// Caller-chosen discriminator, matched by [`Windows::wait_notify`].
    pub tag: u64,
}

/// One exposed window: a fixed-size byte buffer remote ranks put into and
/// get from. The buffer lives behind its own lock so concurrent accesses to
/// *different* windows never contend.
struct WindowCell {
    len: usize,
    data: RwLock<Vec<u8>>,
}

/// Modelled-network binding of a world: the per-rank host placement.
#[derive(Clone)]
struct NetBinding {
    net: Network,
    hosts: Vec<HostId>,
}

/// Control-frame footprint of one-sided requests (window id + offset +
/// length descriptors); also used by the rendezvous handshake of two-sided
/// sends over an attached network.
pub const CTRL_FRAME_BYTES: usize = 64;

/// Per-rank completion/notification state.
struct RankState {
    /// Operations this rank initiated that have not yet delivered.
    inflight: Mutex<u64>,
    drained: Condvar,
    /// Delivery notifications addressed to this rank (as window owner).
    notices: Mutex<VecDeque<Notice>>,
    notice_cv: Condvar,
}

/// The shared one-sided state of a world: the window table plus per-rank
/// completion state. One per `World`/`TulipWorld`; ranks hold [`Windows`]
/// endpoints into it.
pub struct WindowShared {
    size: usize,
    /// Window table: lock-free snapshot loads on the put/get hot path.
    map: Published<HashMap<WindowId, Arc<WindowCell>>>,
    /// Serialises expose/deregister republishing.
    mutate: Mutex<()>,
    /// Optional modelled-network binding (set once by `attach`).
    net: Published<Option<NetBinding>>,
    ranks: Vec<RankState>,
}

impl WindowShared {
    /// Shared state for a world of `size` ranks.
    pub fn new(size: usize) -> Arc<WindowShared> {
        Arc::new(WindowShared {
            size,
            map: Published::new(HashMap::new()),
            mutate: Mutex::new(()),
            net: Published::new(None),
            ranks: (0..size)
                .map(|_| RankState {
                    inflight: Mutex::new(0),
                    drained: Condvar::new(),
                    notices: Mutex::new(VecDeque::new()),
                    notice_cv: Condvar::new(),
                })
                .collect(),
        })
    }

    /// Bind the world to a modelled network: `hosts[r]` is the host rank `r`
    /// runs on. One-sided operations (and the owning world's two-sided
    /// sends) then accrue wire time on the network's lanes.
    ///
    /// # Panics
    /// Panics if `hosts` does not name one host per rank.
    pub fn attach(&self, net: Network, hosts: Vec<HostId>) {
        assert_eq!(hosts.len(), self.size, "one host per rank required");
        self.net.store(Some(NetBinding { net, hosts }));
    }

    /// The attached network and the placement of two ranks, if bound.
    pub(crate) fn net_route(&self, from: usize, to: usize) -> Option<(Network, HostId, HostId)> {
        let bind = self.net.load();
        bind.as_ref().as_ref().map(|b| (b.net.clone(), b.hosts[from], b.hosts[to]))
    }

    fn lookup(&self, id: WindowId) -> Result<Arc<WindowCell>, RtsError> {
        self.map.load().get(&id).cloned().ok_or(RtsError::UnknownWindow(id))
    }
}

/// Shared core of an in-flight operation. The delivery side is idempotent
/// (`fired`) because a faulty attached network may run a duplicated frame's
/// release twice.
struct OpCore {
    shared: Arc<WindowShared>,
    initiator: usize,
    fired: AtomicBool,
    state: Mutex<(bool, Option<Bytes>)>,
    done: Condvar,
}

impl OpCore {
    fn new(shared: &Arc<WindowShared>, initiator: usize) -> Arc<OpCore> {
        *shared.ranks[initiator].inflight.lock() += 1;
        Arc::new(OpCore {
            shared: shared.clone(),
            initiator,
            fired: AtomicBool::new(false),
            state: Mutex::new((false, None)),
            done: Condvar::new(),
        })
    }

    /// Mark delivered (at most once), waking waiters and the initiator's
    /// fence.
    fn complete(&self, data: Option<Bytes>) {
        if self.fired.swap(true, Ordering::AcqRel) {
            return;
        }
        {
            let mut st = self.state.lock();
            *st = (true, data);
            self.done.notify_all();
        }
        let rs = &self.shared.ranks[self.initiator];
        let mut n = rs.inflight.lock();
        *n -= 1;
        if *n == 0 {
            rs.drained.notify_all();
        }
    }

    fn wait(&self) -> Option<Bytes> {
        let mut st = self.state.lock();
        while !st.0 {
            self.done.wait(&mut st);
        }
        st.1.take()
    }

    fn is_done(&self) -> bool {
        self.state.lock().0
    }
}

/// Completion handle of a non-blocking put.
pub struct Completion(Arc<OpCore>);

impl Completion {
    /// Has the data landed in the target window?
    pub fn is_done(&self) -> bool {
        self.0.is_done()
    }

    /// Block until the data has landed.
    pub fn wait(self) {
        self.0.wait();
    }
}

/// Completion handle of a non-blocking get; resolves to the read bytes.
pub struct GetHandle(Arc<OpCore>);

impl GetHandle {
    /// Has the reply arrived?
    pub fn is_done(&self) -> bool {
        self.0.is_done()
    }

    /// Block until the reply arrives and take the bytes (the requested
    /// spans, concatenated in request order).
    pub fn wait(self) -> Bytes {
        self.0.wait().expect("get completion carries data")
    }
}

/// Reserved region of the per-rank window address space used by collective
/// window numbering ([`Windows::collective_window_base`]).
const COLL_WINDOW_REGION: u64 = 1 << 62;
/// Stride between consecutive collective windows: windows up to 1 TiB never
/// collide with the previous round even before it deregisters.
const COLL_WINDOW_STRIDE: u64 = 1 << 40;
/// Collective bases cycle after this many rounds.
const COLL_WINDOW_ROUNDS: u64 = 1 << 20;

/// One rank's endpoint into the one-sided layer. Obtained from
/// [`crate::Rts::windows`]; owned by (at most) one thread like the rank
/// handle itself.
pub struct Windows {
    shared: Arc<WindowShared>,
    rank: usize,
    /// Collective window sequence (SPMD discipline makes equal sequence
    /// numbers agree across ranks, like collective tags).
    coll_seq: AtomicU64,
}

impl Windows {
    /// Endpoint for `rank` into `shared`.
    pub fn endpoint(shared: Arc<WindowShared>, rank: usize) -> Windows {
        assert!(rank < shared.size, "rank {rank} out of range");
        Windows { shared, rank, coll_seq: AtomicU64::new(0) }
    }

    /// This endpoint's rank.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.shared.size
    }

    /// The shared window-world state (to attach a network or derive sibling
    /// endpoints).
    pub fn shared(&self) -> &Arc<WindowShared> {
        &self.shared
    }

    /// Expose `data` as a window at `base` in this rank's address space.
    /// Rejects any overlap with a live window of this rank ([`RtsError::
    /// WindowOverlap`]); zero-length windows only conflict on an equal base.
    pub fn expose(&self, base: u64, data: Vec<u8>) -> Result<WindowId, RtsError> {
        let id = WindowId { owner: self.rank, base };
        let len = data.len() as u64;
        let _g = self.shared.mutate.lock();
        let cur = self.shared.map.load();
        for (wid, cell) in cur.iter().filter(|(w, _)| w.owner == self.rank) {
            let clash = if len == 0 || cell.len == 0 {
                wid.base == base
            } else {
                base < wid.base.saturating_add(cell.len as u64)
                    && wid.base < base.saturating_add(len)
            };
            if clash {
                return Err(RtsError::WindowOverlap { base, len, existing: *wid });
            }
        }
        let mut next = (*cur).clone();
        next.insert(id, Arc::new(WindowCell { len: data.len(), data: RwLock::new(data) }));
        self.shared.map.store(next);
        if pardis_obs::enabled() {
            pardis_obs::counter("rts.win.exposed").inc();
        }
        Ok(id)
    }

    /// Withdraw a window this rank exposed, returning its buffer. In-flight
    /// remote operations that already resolved the window keep writing the
    /// detached buffer (as with real RDMA, deregistering before a fence is
    /// an application error, not a crash).
    pub fn deregister(&self, id: WindowId) -> Result<Vec<u8>, RtsError> {
        if id.owner != self.rank {
            return Err(RtsError::NotOwner { window: id, rank: self.rank });
        }
        let _g = self.shared.mutate.lock();
        let cur = self.shared.map.load();
        let cell = cur.get(&id).cloned().ok_or(RtsError::UnknownWindow(id))?;
        let mut next = (*cur).clone();
        next.remove(&id);
        self.shared.map.store(next);
        let taken = std::mem::take(&mut *cell.data.write());
        Ok(taken)
    }

    /// Size in bytes of a live window.
    pub fn window_len(&self, id: WindowId) -> Result<usize, RtsError> {
        Ok(self.shared.lookup(id)?.len)
    }

    /// A fresh base in the reserved collective region, identical on every
    /// rank at the same collective step (SPMD discipline). Consecutive
    /// rounds are strided far apart, so a round's windows never collide
    /// with the previous round's even mid-deregistration.
    pub fn collective_window_base(&self) -> u64 {
        let seq = self.coll_seq.fetch_add(1, Ordering::Relaxed) % COLL_WINDOW_ROUNDS;
        COLL_WINDOW_REGION | (seq * COLL_WINDOW_STRIDE)
    }

    /// Non-blocking one-sided write of `data` at `offset` into a window.
    /// Returns immediately with a [`Completion`]; the data lands when the
    /// modelled frame arrives (inline when no network is attached).
    pub fn put_nb(&self, id: WindowId, offset: u64, data: Bytes) -> Result<Completion, RtsError> {
        self.put_impl(id, offset, data, None)
    }

    /// [`Windows::put_nb`] plus notify-on-delivery: when the data lands, a
    /// [`Notice`] with `tag` is queued at the window owner
    /// ([`Windows::wait_notify`]).
    pub fn put_nb_notify(
        &self,
        id: WindowId,
        offset: u64,
        data: Bytes,
        tag: u64,
    ) -> Result<Completion, RtsError> {
        self.put_impl(id, offset, data, Some(tag))
    }

    fn put_impl(
        &self,
        id: WindowId,
        offset: u64,
        data: Bytes,
        notify: Option<u64>,
    ) -> Result<Completion, RtsError> {
        let cell = self.shared.lookup(id)?;
        if out_of_bounds(offset, data.len() as u64, cell.len) {
            return Err(RtsError::OutOfBounds {
                window: id,
                offset,
                len: data.len() as u64,
                size: cell.len as u64,
            });
        }
        if pardis_obs::enabled() {
            pardis_obs::counter("rts.win.puts").inc();
            pardis_obs::counter("rts.win.put.bytes").add(data.len() as u64);
        }
        let core = OpCore::new(&self.shared, self.rank);
        let shared = self.shared.clone();
        let from = self.rank;
        let frame_bytes = data.len() + CTRL_FRAME_BYTES;
        let deliver = {
            let core = core.clone();
            move || {
                {
                    let mut buf = cell.data.write();
                    buf[offset as usize..offset as usize + data.len()].copy_from_slice(&data);
                }
                if let Some(tag) = notify {
                    let rs = &shared.ranks[id.owner];
                    rs.notices.lock().push_back(Notice { from, window: id, tag });
                    rs.notice_cv.notify_all();
                }
                core.complete(None);
            }
        };
        match self.shared.net_route(self.rank, id.owner) {
            Some((net, fh, th)) => {
                net.transmit(fh, th, frame_bytes, deliver);
            }
            None => deliver(),
        }
        Ok(Completion(core))
    }

    /// Non-blocking one-sided read of `[offset, offset+len)` from a window.
    pub fn get_nb(&self, id: WindowId, offset: u64, len: u64) -> Result<GetHandle, RtsError> {
        self.get_vec_nb(id, &[(offset, len)])
    }

    /// Vectored get: read several `(offset, len)` spans of one window in a
    /// single operation — one request frame, one reply frame carrying the
    /// concatenated spans. This is what makes pulling many plan pieces from
    /// one source pay the per-message overhead once instead of per piece.
    pub fn get_vec_nb(&self, id: WindowId, spans: &[(u64, u64)]) -> Result<GetHandle, RtsError> {
        let cell = self.shared.lookup(id)?;
        let mut total = 0usize;
        for &(offset, len) in spans {
            if out_of_bounds(offset, len, cell.len) {
                return Err(RtsError::OutOfBounds {
                    window: id,
                    offset,
                    len,
                    size: cell.len as u64,
                });
            }
            total += len as usize;
        }
        if pardis_obs::enabled() {
            pardis_obs::counter("rts.win.gets").inc();
            pardis_obs::counter("rts.win.get.bytes").add(total as u64);
        }
        let core = OpCore::new(&self.shared, self.rank);
        let spans: Arc<[(u64, u64)]> = spans.into();
        let read = move || {
            let buf = cell.data.read();
            let mut out = BytesMut::with_capacity(total);
            for &(offset, len) in spans.iter() {
                out.extend_from_slice(&buf[offset as usize..(offset + len) as usize]);
            }
            out.freeze()
        };
        match self.shared.net_route(self.rank, id.owner) {
            Some((net, fh, th)) => {
                // Request frame to the owner; at its arrival the window is
                // read and the payload frame carries the spans back. The
                // initiating thread pays only the request's t_o.
                let core = core.clone();
                let reply_net = net.clone();
                net.transmit(fh, th, CTRL_FRAME_BYTES, move || {
                    let data = read();
                    let core = core.clone();
                    reply_net.transmit(th, fh, data.len() + CTRL_FRAME_BYTES, move || {
                        core.complete(Some(data.clone()));
                    });
                });
            }
            None => core.complete(Some(read())),
        }
        Ok(GetHandle(core))
    }

    /// Read a span of a *local* window directly (a memcpy, no modelled wire
    /// cost — the owner reaching into its own exposed memory).
    pub fn read_local(&self, id: WindowId, offset: u64, len: u64) -> Result<Bytes, RtsError> {
        if id.owner != self.rank {
            return Err(RtsError::NotOwner { window: id, rank: self.rank });
        }
        let cell = self.shared.lookup(id)?;
        if out_of_bounds(offset, len, cell.len) {
            return Err(RtsError::OutOfBounds { window: id, offset, len, size: cell.len as u64 });
        }
        let buf = cell.data.read();
        Ok(Bytes::copy_from_slice(&buf[offset as usize..(offset + len) as usize]))
    }

    /// Block until every operation this rank initiated has delivered
    /// (puts landed, gets replied). The one-sided analogue of `MPI_Win_fence`
    /// restricted to the origin side.
    pub fn fence(&self) {
        if pardis_obs::enabled() {
            pardis_obs::counter("rts.win.fences").inc();
        }
        let _span = pardis_obs::Span::open("rts", "rts.win.fence", None, Vec::new());
        let rs = &self.shared.ranks[self.rank];
        let mut n = rs.inflight.lock();
        while *n > 0 {
            rs.drained.wait(&mut n);
        }
    }

    /// Operations initiated by this rank still in flight.
    pub fn pending_ops(&self) -> u64 {
        *self.shared.ranks[self.rank].inflight.lock()
    }

    /// Block until a delivery [`Notice`] with `tag` arrives at this rank.
    pub fn wait_notify(&self, tag: u64) -> Notice {
        let rs = &self.shared.ranks[self.rank];
        let mut q = rs.notices.lock();
        loop {
            if let Some(i) = q.iter().position(|n| n.tag == tag) {
                return q.remove(i).expect("index valid");
            }
            rs.notice_cv.wait(&mut q);
        }
    }

    /// Non-blocking check for a delivery [`Notice`] with `tag`.
    pub fn try_notify(&self, tag: u64) -> Option<Notice> {
        let rs = &self.shared.ranks[self.rank];
        let mut q = rs.notices.lock();
        let i = q.iter().position(|n| n.tag == tag)?;
        q.remove(i)
    }
}

impl std::fmt::Debug for Windows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Windows(rank {}/{})", self.rank, self.shared.size)
    }
}

/// Overflow-safe `[offset, offset+len) ⊄ [0, size)` check.
fn out_of_bounds(offset: u64, len: u64, size: usize) -> bool {
    offset.checked_add(len).is_none_or(|end| end > size as u64)
}

/// `PARDIS_ONESIDED` resolution: 0 = unresolved, 1 = on, 2 = off.
static ONESIDED: AtomicU8 = AtomicU8::new(0);

/// Is the one-sided fast path enabled? Defaults to on; `PARDIS_ONESIDED=off`
/// (or `0`) selects the legacy two-sided emulation everywhere the one-sided
/// layer would otherwise be used (pull redistribution, halo puts).
pub fn one_sided_enabled() -> bool {
    match ONESIDED.load(Ordering::Relaxed) {
        0 => {
            let on = !std::env::var("PARDIS_ONESIDED")
                .map(|v| {
                    let v = v.to_ascii_lowercase();
                    v == "off" || v == "0" || v == "false"
                })
                .unwrap_or(false);
            ONESIDED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
            on
        }
        1 => true,
        _ => false,
    }
}

/// Override the `PARDIS_ONESIDED` resolution at runtime (benches and
/// cross-mode tests flip this between measurements).
pub fn set_one_sided(on: bool) {
    ONESIDED.store(if on { 1 } else { 2 }, Ordering::Relaxed);
}
