//! The MPI-like world of computing threads.

use crate::window::{WindowShared, Windows, CTRL_FRAME_BYTES};
use crate::{tags, Msg};
use bytes::Bytes;
use pardis_netsim::{HostId, Network};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-rank mailbox with unordered tag matching (like an MPI receive queue).
struct Mailbox {
    queue: Mutex<VecDeque<Msg>>,
    arrived: Condvar,
}

impl Mailbox {
    fn new() -> Self {
        Mailbox { queue: Mutex::new(VecDeque::new()), arrived: Condvar::new() }
    }

    fn push(&self, msg: Msg) {
        self.queue.lock().push_back(msg);
        self.arrived.notify_all();
    }

    fn take_match(&self, from: Option<usize>, tag: u64) -> Option<Msg> {
        let mut q = self.queue.lock();
        let idx = q.iter().position(|m| m.matches(from, tag))?;
        q.remove(idx)
    }

    fn wait_match(&self, from: Option<usize>, tag: u64, timeout: Option<Duration>) -> Option<Msg> {
        let deadline = timeout.map(|t| Instant::now() + t);
        let mut q = self.queue.lock();
        loop {
            if let Some(idx) = q.iter().position(|m| m.matches(from, tag)) {
                return q.remove(idx);
            }
            match deadline {
                Some(dl) => {
                    if self.arrived.wait_until(&mut q, dl).timed_out() {
                        return q
                            .iter()
                            .position(|m| m.matches(from, tag))
                            .and_then(|idx| q.remove(idx));
                    }
                }
                None => self.arrived.wait(&mut q),
            }
        }
    }
}

struct Barrier {
    state: Mutex<(usize, u64)>, // (count, generation)
    released: Condvar,
}

struct WorldInner {
    size: usize,
    mailboxes: Vec<Mailbox>,
    barrier: Barrier,
    /// One-sided window state shared by all ranks; also holds the optional
    /// modelled-network binding consulted by [`Rank::send`].
    windows: Arc<WindowShared>,
}

/// A world of `size` computing threads.
///
/// Analogous to `MPI_COMM_WORLD`: create one, hand each thread its
/// [`Rank`], and let them communicate. The convenience entry point
/// [`World::run`] spawns the threads for you (the usual SPMD launch).
#[derive(Clone)]
pub struct World {
    inner: Arc<WorldInner>,
}

impl World {
    /// Create a world and return the per-thread [`Rank`] handles, in rank
    /// order.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> (World, Vec<Rank>) {
        assert!(size > 0, "world size must be at least 1");
        let windows = WindowShared::new(size);
        let inner = Arc::new(WorldInner {
            size,
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            barrier: Barrier { state: Mutex::new((0, 0)), released: Condvar::new() },
            windows: windows.clone(),
        });
        let ranks = (0..size)
            .map(|r| Rank {
                world: inner.clone(),
                rank: r,
                coll_seq: AtomicU64::new(0),
                windows: Windows::endpoint(windows.clone(), r),
            })
            .collect();
        (World { inner }, ranks)
    }

    /// SPMD launch: run `f(rank)` on `size` OS threads and collect the
    /// results in rank order. Panics in any thread propagate.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Rank) -> R + Send + Sync,
    {
        let (_world, ranks) = World::new(size);
        let f = &f;
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                ranks.into_iter().map(|rank| scope.spawn(move || f(rank))).collect();
            handles.into_iter().map(|h| h.join().expect("computing thread panicked")).collect()
        })
    }

    /// Number of computing threads.
    pub fn size(&self) -> usize {
        self.inner.size
    }

    /// Bind the world to a modelled [`Network`]: `hosts[r]` is the host rank
    /// `r` runs on. Two-sided sends then pay a rendezvous (request-to-send,
    /// clear-to-send, payload — three frames plus the receiver's matching
    /// overhead) and one-sided window operations pay their single- or
    /// two-frame cost, all through the overlapped transmit engine. Bind
    /// fault-free networks only: this layer models cost, not loss, so a
    /// dropped frame would stall a receive forever.
    ///
    /// # Panics
    /// Panics if `hosts` does not name one host per rank.
    pub fn attach_network(&self, net: Network, hosts: Vec<HostId>) {
        self.inner.windows.attach(net, hosts);
    }
}

/// One computing thread's endpoint into its [`World`].
///
/// A `Rank` is owned by exactly one thread (it is `Send` but deliberately not
/// `Clone`); all state it reaches is behind the world's locks.
pub struct Rank {
    world: Arc<WorldInner>,
    rank: usize,
    /// Collective sequence number. SPMD discipline (all ranks execute
    /// collectives in the same order) makes equal sequence numbers match up,
    /// which keys each collective's internal tags.
    coll_seq: AtomicU64,
    /// This rank's endpoint into the one-sided window layer.
    windows: Windows,
}

impl Rank {
    /// This thread's rank, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn size(&self) -> usize {
        self.world.size
    }

    /// This rank's one-sided window endpoint.
    pub fn windows(&self) -> &Windows {
        &self.windows
    }

    /// Asynchronous tagged send. Never blocks (mailboxes are unbounded).
    ///
    /// With a network attached ([`World::attach_network`]) the send is
    /// modelled as an MPI-style rendezvous — a request-to-send control
    /// frame, a clear-to-send back, then the payload frame, with the
    /// receiver paying one matching overhead at delivery — so two-sided
    /// traffic carries the three-frame handshake cost the one-sided layer
    /// avoids. Without a network the message lands immediately at zero
    /// modelled cost, as ever.
    ///
    /// # Panics
    /// Panics if `to` is out of range.
    pub fn send(&self, to: usize, tag: u64, data: Bytes) {
        assert!(to < self.world.size, "send to rank {to} out of range");
        if pardis_obs::enabled() {
            pardis_obs::counter("rts.sends").inc();
            pardis_obs::counter("rts.bytes").add(data.len() as u64);
        }
        let msg = Msg::new(self.rank, tag, data);
        if let Some((net, fh, th)) = self.world.windows.net_route(self.rank, to) {
            let world = self.world.clone();
            let payload_bytes = msg.data.len() + CTRL_FRAME_BYTES;
            let cts_net = net.clone();
            // Rendezvous chain: each stage departs at the previous frame's
            // modelled arrival (the engine's local-clock causality), so the
            // makespan sees 3 latencies + 3 software overheads + the
            // payload's wire time per message.
            net.transmit(fh, th, CTRL_FRAME_BYTES, move || {
                let world = world.clone();
                let msg = msg.clone();
                let payload_net = cts_net.clone();
                cts_net.transmit(th, fh, CTRL_FRAME_BYTES, move || {
                    let world = world.clone();
                    let msg = msg.clone();
                    let deliver_net = payload_net.clone();
                    payload_net.transmit(fh, th, payload_bytes, move || {
                        // Receiver-side matching overhead, then delivery.
                        let t_o = deliver_net.link_between(fh, th).overhead_s;
                        deliver_net.charge_wait(th, Duration::from_secs_f64(t_o));
                        world.mailboxes[to].push(msg.clone());
                    });
                });
            });
            return;
        }
        self.world.mailboxes[to].push(msg);
    }

    /// Blocking receive matching `(from, tag)`; `from = None` accepts any
    /// source.
    pub fn recv(&self, from: Option<usize>, tag: u64) -> Msg {
        self.world.mailboxes[self.rank]
            .wait_match(from, tag, None)
            .expect("untimed wait always yields a message")
    }

    /// Blocking receive with a timeout. `None` on expiry.
    pub fn recv_timeout(&self, from: Option<usize>, tag: u64, timeout: Duration) -> Option<Msg> {
        self.world.mailboxes[self.rank].wait_match(from, tag, Some(timeout))
    }

    /// Non-blocking receive.
    pub fn try_recv(&self, from: Option<usize>, tag: u64) -> Option<Msg> {
        self.world.mailboxes[self.rank].take_match(from, tag)
    }

    /// Is a matching message waiting? (MPI_Probe without dequeuing.)
    pub fn probe(&self, from: Option<usize>, tag: u64) -> bool {
        self.world.mailboxes[self.rank].queue.lock().iter().any(|m| m.matches(from, tag))
    }

    /// Number of queued (unreceived) messages, any tag.
    pub fn pending(&self) -> usize {
        self.world.mailboxes[self.rank].queue.lock().len()
    }

    fn next_coll_tag(&self) -> u64 {
        tags::COLLECTIVE_BASE | self.coll_seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Synchronise all ranks (central counter barrier).
    pub fn barrier(&self) {
        // Barrier participation also consumes a collective sequence number so
        // barriers interleave correctly with the message-based collectives.
        self.coll_seq.fetch_add(1, Ordering::Relaxed);
        let b = &self.world.barrier;
        let mut state = b.state.lock();
        let gen = state.1;
        state.0 += 1;
        if state.0 == self.world.size {
            state.0 = 0;
            state.1 = state.1.wrapping_add(1);
            b.released.notify_all();
        } else {
            while state.1 == gen {
                b.released.wait(&mut state);
            }
        }
    }

    /// Broadcast from `root`: the root passes `Some(data)`, everyone gets the
    /// payload.
    ///
    /// # Panics
    /// Panics if the root passes `None` or a non-root passes `Some`.
    pub fn broadcast(&self, root: usize, data: Option<Bytes>) -> Bytes {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let data = data.expect("broadcast root must supply data");
            for to in 0..self.world.size {
                if to != root {
                    self.world.mailboxes[to].push(Msg::new(self.rank, tag, data.clone()));
                }
            }
            data
        } else {
            assert!(data.is_none(), "non-root rank passed data to broadcast");
            self.recv(Some(root), tag).data
        }
    }

    /// Gather each rank's `part` at `root` (in rank order). Non-roots get
    /// `None`.
    pub fn gather(&self, root: usize, part: Bytes) -> Option<Vec<Bytes>> {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut parts: Vec<Option<Bytes>> = vec![None; self.world.size];
            parts[root] = Some(part);
            for _ in 0..self.world.size - 1 {
                let msg = self.recv(None, tag);
                parts[msg.from] = Some(msg.data);
            }
            Some(parts.into_iter().map(|p| p.expect("every rank contributed")).collect())
        } else {
            self.send(root, tag, part);
            None
        }
    }

    /// Scatter: the root supplies one payload per rank; each rank receives
    /// its own.
    ///
    /// # Panics
    /// Panics if the root's `parts` has the wrong length, the root passes
    /// `None`, or a non-root passes `Some`.
    pub fn scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let parts = parts.expect("scatter root must supply parts");
            assert_eq!(parts.len(), self.world.size, "scatter needs one part per rank");
            let mut own = None;
            for (to, part) in parts.into_iter().enumerate() {
                if to == root {
                    own = Some(part);
                } else {
                    self.world.mailboxes[to].push(Msg::new(self.rank, tag, part));
                }
            }
            own.expect("root part present")
        } else {
            assert!(parts.is_none(), "non-root rank passed parts to scatter");
            self.recv(Some(root), tag).data
        }
    }

    /// All-gather: everyone receives every rank's part, in rank order.
    pub fn all_gather(&self, part: Bytes) -> Vec<Bytes> {
        // Gather to 0, then broadcast the concatenation framing.
        let gathered = self.gather(0, part);
        if self.rank == 0 {
            let parts = gathered.expect("rank 0 gathers");
            let mut framed = bytes::BytesMut::new();
            use bytes::BufMut;
            framed.put_u32(parts.len() as u32);
            for p in &parts {
                framed.put_u32(p.len() as u32);
                framed.extend_from_slice(p);
            }
            self.broadcast(0, Some(framed.freeze()));
            parts
        } else {
            let framed = self.broadcast(0, None);
            let mut parts = Vec::new();
            let mut pos = 0usize;
            let count = u32::from_be_bytes(framed[0..4].try_into().unwrap()) as usize;
            pos += 4;
            for _ in 0..count {
                let len = u32::from_be_bytes(framed[pos..pos + 4].try_into().unwrap()) as usize;
                pos += 4;
                parts.push(framed.slice(pos..pos + len));
                pos += len;
            }
            parts
        }
    }
}

impl std::fmt::Debug for Rank {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Rank({}/{})", self.rank, self.world.size)
    }
}
