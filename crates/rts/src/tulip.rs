//! A Tulip-style one-sided run-time system, and the RTS interface built on
//! top of it.
//!
//! Tulip (Beckman & Gannon, IPPS'96) is an object-parallel run-time system
//! built around *one-sided* operations: a thread registers memory regions
//! and remote threads `put`/`get` them without a matching receive. PARDIS
//! lists Tulip as one of the run-time systems its ORB interface was
//! implemented over, and names one-sided systems as the future direction for
//! distributed arguments.
//!
//! Here the named-region API is a thin veneer over the real one-sided
//! window layer ([`Windows`]): a region is a window at a strided base in
//! the owner's exposed address space, and `put`/`get` are blocking wrappers
//! around the non-blocking window operations. [`TulipRts`] shows that the
//! ORB's two-sided [`Rts`] contract can be met with nothing but `put`s into
//! per-destination queue regions.

use crate::window::{RtsError, WindowId, WindowShared, Windows};
use crate::{Msg, ReduceOp, Rts};
use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Identifier of a registered region: (owning rank, region number).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegionId {
    /// Rank that owns (registered) the region.
    pub owner: usize,
    /// Owner-local region number.
    pub number: u64,
}

/// Regions live in the owner's window address space at `number * stride`,
/// so distinct region numbers below 2^32 can never overlap as long as each
/// region stays under 4 GiB.
const REGION_STRIDE: u64 = 1 << 32;

impl RegionId {
    /// The window backing this region.
    fn window(self) -> WindowId {
        WindowId { owner: self.owner, base: self.number.wrapping_mul(REGION_STRIDE) }
    }
}

/// A registered memory region: a byte buffer remote ranks can `put` into and
/// `get` from. (Kept as the named concept of the Tulip API; storage lives in
/// the window layer.)
#[derive(Debug, Default)]
pub struct Region {
    /// Region contents.
    pub data: Vec<u8>,
}

struct QueueCell {
    queue: Mutex<VecDeque<Msg>>,
    arrived: Condvar,
}

struct TulipShared {
    size: usize,
    /// One incoming queue region per rank, pre-registered; `send` is a `put`
    /// appended here.
    queues: Vec<QueueCell>,
    barrier: Mutex<(usize, u64)>,
    barrier_cv: Condvar,
}

/// The shared state of a Tulip program: create once, derive a [`TulipRts`]
/// per computing thread.
#[derive(Clone)]
pub struct TulipWorld {
    shared: Arc<TulipShared>,
}

impl TulipWorld {
    /// Number of computing threads.
    pub fn size(&self) -> usize {
        self.shared.size
    }
}

impl TulipWorld {
    /// Create the shared state for `size` computing threads and hand out the
    /// per-thread endpoints.
    ///
    /// # Panics
    /// Panics if `size` is zero.
    pub fn new(size: usize) -> (TulipWorld, Vec<TulipRts>) {
        assert!(size > 0, "world size must be at least 1");
        let shared = Arc::new(TulipShared {
            size,
            queues: (0..size)
                .map(|_| QueueCell { queue: Mutex::new(VecDeque::new()), arrived: Condvar::new() })
                .collect(),
            barrier: Mutex::new((0, 0)),
            barrier_cv: Condvar::new(),
        });
        let windows = WindowShared::new(size);
        let endpoints = (0..size)
            .map(|rank| TulipRts {
                shared: shared.clone(),
                rank,
                coll_seq: std::sync::atomic::AtomicU64::new(0),
                windows: Windows::endpoint(windows.clone(), rank),
            })
            .collect();
        (TulipWorld { shared }, endpoints)
    }
}

/// One computing thread's endpoint into a Tulip program.
pub struct TulipRts {
    shared: Arc<TulipShared>,
    rank: usize,
    coll_seq: std::sync::atomic::AtomicU64,
    windows: Windows,
}

impl TulipRts {
    /// Register a region owned by this rank with initial contents.
    ///
    /// # Panics
    /// Panics if the region number is already registered by this rank.
    pub fn register_region(&self, number: u64, data: Vec<u8>) -> RegionId {
        let id = RegionId { owner: self.rank, number };
        self.windows
            .expose(id.window().base, data)
            .unwrap_or_else(|_| panic!("region {id:?} registered twice"));
        id
    }

    /// One-sided write of `data` at `offset` into a remote (or local)
    /// region. Blocks until delivered (the legacy synchronous contract);
    /// [`Windows::put_nb`] on [`TulipRts::windows`] is the non-blocking
    /// form. Unknown regions and out-of-bounds writes surface as typed
    /// [`RtsError`] values.
    pub fn put(&self, id: RegionId, offset: usize, data: &[u8]) -> Result<(), RtsError> {
        self.windows.put_nb(id.window(), offset as u64, Bytes::copy_from_slice(data))?.wait();
        Ok(())
    }

    /// One-sided read of `len` bytes at `offset` from a region. Blocking;
    /// errors are typed like [`TulipRts::put`]'s.
    pub fn get(&self, id: RegionId, offset: usize, len: usize) -> Result<Vec<u8>, RtsError> {
        Ok(self.windows.get_nb(id.window(), offset as u64, len as u64)?.wait().to_vec())
    }

    /// Drop a region registration, returning its final contents.
    pub fn unregister_region(&self, id: RegionId) -> Result<Vec<u8>, RtsError> {
        self.windows.deregister(id.window())
    }

    /// This endpoint's window layer (the real one-sided API the region
    /// emulation is built on).
    pub fn windows(&self) -> &Windows {
        &self.windows
    }

    fn next_coll_tag(&self) -> u64 {
        crate::tags::COLLECTIVE_BASE
            | self.coll_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
    }
}

impl Rts for TulipRts {
    fn rank(&self) -> usize {
        self.rank
    }
    fn size(&self) -> usize {
        self.shared.size
    }
    fn send(&self, to: usize, tag: u64, data: Bytes) {
        assert!(to < self.shared.size, "send to rank {to} out of range");
        let cell = &self.shared.queues[to];
        cell.queue.lock().push_back(Msg::new(self.rank, tag, data));
        cell.arrived.notify_all();
    }
    fn recv(&self, from: Option<usize>, tag: u64) -> Msg {
        let cell = &self.shared.queues[self.rank];
        let mut q = cell.queue.lock();
        loop {
            if let Some(idx) = q.iter().position(|m| m.matches(from, tag)) {
                return q.remove(idx).expect("index valid");
            }
            cell.arrived.wait(&mut q);
        }
    }
    fn recv_timeout(&self, from: Option<usize>, tag: u64, timeout: Duration) -> Option<Msg> {
        let deadline = Instant::now() + timeout;
        let cell = &self.shared.queues[self.rank];
        let mut q = cell.queue.lock();
        loop {
            if let Some(idx) = q.iter().position(|m| m.matches(from, tag)) {
                return q.remove(idx);
            }
            if cell.arrived.wait_until(&mut q, deadline).timed_out() {
                return q.iter().position(|m| m.matches(from, tag)).and_then(|i| q.remove(i));
            }
        }
    }
    fn try_recv(&self, from: Option<usize>, tag: u64) -> Option<Msg> {
        let cell = &self.shared.queues[self.rank];
        let mut q = cell.queue.lock();
        let idx = q.iter().position(|m| m.matches(from, tag))?;
        q.remove(idx)
    }
    fn barrier(&self) {
        self.coll_seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut state = self.shared.barrier.lock();
        let gen = state.1;
        state.0 += 1;
        if state.0 == self.shared.size {
            state.0 = 0;
            state.1 = state.1.wrapping_add(1);
            self.shared.barrier_cv.notify_all();
        } else {
            while state.1 == gen {
                self.shared.barrier_cv.wait(&mut state);
            }
        }
    }
    fn broadcast(&self, root: usize, data: Option<Bytes>) -> Bytes {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let data = data.expect("broadcast root must supply data");
            for to in 0..self.shared.size {
                if to != root {
                    self.send(to, tag, data.clone());
                }
            }
            data
        } else {
            assert!(data.is_none(), "non-root rank passed data to broadcast");
            self.recv(Some(root), tag).data
        }
    }
    fn gather(&self, root: usize, part: Bytes) -> Option<Vec<Bytes>> {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let mut parts: Vec<Option<Bytes>> = vec![None; self.shared.size];
            parts[root] = Some(part);
            for _ in 0..self.shared.size - 1 {
                let msg = self.recv(None, tag);
                parts[msg.from] = Some(msg.data);
            }
            Some(parts.into_iter().map(|p| p.expect("every rank contributed")).collect())
        } else {
            self.send(root, tag, part);
            None
        }
    }
    fn scatter(&self, root: usize, parts: Option<Vec<Bytes>>) -> Bytes {
        let tag = self.next_coll_tag();
        if self.rank == root {
            let parts = parts.expect("scatter root must supply parts");
            assert_eq!(parts.len(), self.shared.size, "scatter needs one part per rank");
            let mut own = None;
            for (to, part) in parts.into_iter().enumerate() {
                if to == root {
                    own = Some(part);
                } else {
                    self.send(to, tag, part);
                }
            }
            own.expect("root part present")
        } else {
            assert!(parts.is_none(), "non-root rank passed parts to scatter");
            self.recv(Some(root), tag).data
        }
    }
    fn windows(&self) -> Option<&Windows> {
        Some(&self.windows)
    }
}

// ReduceOp re-exported for convenience in one-sided contexts.
const _: fn(ReduceOp, &[f64]) -> f64 = ReduceOp::apply;
