//! Shared harness utilities.

use std::io;
use std::path::PathBuf;

/// Read a scale/size knob from the environment with a default, so sweeps
/// can be shrunk for smoke runs (`PARDIS_TIME_SCALE=0 PARDIS_QUICK=1 ...`).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Integer environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Is `PARDIS_QUICK` set? Harnesses then shrink their sweeps to smoke-test
/// size.
pub fn quick() -> bool {
    std::env::var("PARDIS_QUICK").is_ok_and(|v| v != "0")
}

/// Render one table row of f64 seconds.
pub fn row(label: &str, values: &[f64]) -> String {
    let mut out = format!("{label:<22}");
    for v in values {
        out.push_str(&format!(" {v:>9.3}"));
    }
    out
}

/// Machine-readable companion to the figure harnesses' text tables: one
/// `results/BENCH_<id>.json` file per harness, with the swept column values
/// and every series, in insertion order so reruns diff cleanly.
pub struct BenchJson {
    id: String,
    title: String,
    params: Vec<(String, String)>,
    columns: Vec<f64>,
    series: Vec<(String, Vec<f64>)>,
}

impl BenchJson {
    /// New report; `id` names the output file (`results/BENCH_<id>.json`).
    pub fn new(id: &str, title: &str) -> BenchJson {
        let mut b = BenchJson {
            id: id.to_string(),
            title: title.to_string(),
            params: Vec::new(),
            columns: Vec::new(),
            series: Vec::new(),
        };
        b.param_bool("quick", quick());
        b
    }

    pub fn param_f64(&mut self, name: &str, v: f64) {
        self.params.push((name.to_string(), json_num(v)));
    }

    pub fn param_usize(&mut self, name: &str, v: usize) {
        self.params.push((name.to_string(), v.to_string()));
    }

    pub fn param_bool(&mut self, name: &str, v: bool) {
        self.params.push((name.to_string(), v.to_string()));
    }

    /// The swept axis (problem sizes, processor counts, ...).
    pub fn columns(&mut self, values: &[f64]) {
        self.columns = values.to_vec();
    }

    /// One measured series, same length as the columns.
    pub fn series(&mut self, name: &str, values: &[f64]) {
        self.series.push((name.to_string(), values.to_vec()));
    }

    /// Render the report as JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"bench\": {},\n", json_str(&self.id)));
        s.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        s.push_str("  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {v}", json_str(k)));
        }
        s.push_str("\n  },\n");
        s.push_str(&format!("  \"columns\": {},\n", json_nums(&self.columns)));
        s.push_str("  \"series\": {");
        for (i, (k, v)) in self.series.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {}", json_str(k), json_nums(v)));
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Write to `results/BENCH_<id>.json` (creating `results/`), returning
    /// the path.
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Compare this report against a baseline `BENCH_*.json` text over the
    /// shared series/columns; returns human-readable regression complaints.
    /// Direction comes from the series name ([`higher_is_better`]); columns
    /// absent from either side are skipped, so a quick run gates cleanly
    /// against a full-sweep baseline. `slack` is an absolute allowance (in
    /// the series' own unit) on top of the relative tolerance, so
    /// millisecond-scale points on noisy CI runners don't gate on
    /// scheduling jitter.
    pub fn compare(&self, baseline_text: &str, tol: f64, slack: f64) -> Vec<String> {
        let arrays = parse_arrays(baseline_text);
        let Some(base_cols) = arrays.iter().find(|(n, _)| n == "columns").map(|(_, v)| v.clone())
        else {
            return vec!["baseline has no columns array".into()];
        };
        let mut complaints = Vec::new();
        for (name, vals) in &self.series {
            let Some((_, base_vals)) = arrays.iter().find(|(n, _)| n == name) else { continue };
            for (ci, col) in self.columns.iter().enumerate() {
                let Some(bi) = base_cols.iter().position(|c| c == col) else { continue };
                let (Some(&cur_v), Some(&base_v)) = (vals.get(ci), base_vals.get(bi)) else {
                    continue;
                };
                if !cur_v.is_finite() || !base_v.is_finite() || base_v == 0.0 {
                    continue;
                }
                let bad = if higher_is_better(name) {
                    cur_v < base_v * (1.0 - tol) - slack
                } else {
                    cur_v > base_v * (1.0 + tol) + slack
                };
                if bad {
                    complaints.push(format!(
                        "{name} @ {col}: {cur_v:.3} vs baseline {base_v:.3} \
                         (>{:.0}% regression)",
                        tol * 100.0
                    ));
                }
            }
        }
        complaints
    }

    /// The `--compare <baseline>` regression gate every figure bin shares:
    /// with the flag absent this is a no-op; with it, compare against the
    /// baseline file under `PARDIS_BENCH_TOL` (default 30%, plus an
    /// absolute `PARDIS_BENCH_SLACK`, default 0) and exit(1) listing every
    /// regressed series point.
    pub fn gate_from_args(&self) {
        let Some(path) = std::env::args().skip_while(|a| a != "--compare").nth(1) else {
            return;
        };
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
        let tol = env_f64("PARDIS_BENCH_TOL", 0.30);
        let slack = env_f64("PARDIS_BENCH_SLACK", 0.0);
        let complaints = self.compare(&text, tol, slack);
        if complaints.is_empty() {
            println!("regression gate: ok (tolerance {:.0}%)", tol * 100.0);
        } else {
            for c in &complaints {
                eprintln!("regression: {c}");
            }
            std::process::exit(1);
        }
    }
}

/// Pull every `"name": [v, v, ...]` array out of a BenchJson file (the
/// format is line-regular; no JSON dependency needed).
pub fn parse_arrays(text: &str) -> Vec<(String, Vec<f64>)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim().trim_end_matches(',');
        let Some((name, rest)) = line.split_once(':') else { continue };
        let name = name.trim().trim_matches('"');
        let rest = rest.trim();
        if !rest.starts_with('[') || !rest.ends_with(']') {
            continue;
        }
        let vals: Option<Vec<f64>> = rest[1..rest.len() - 1]
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().ok())
            .collect();
        if let Some(vals) = vals {
            out.push((name.to_string(), vals));
        }
    }
    out
}

/// True when higher values of the series are better: throughput
/// (`*_mb_s`, `*_mbps`, `*_rps`), bandwidth scaling, and hidden-fraction
/// series. Everything else (seconds, milliseconds) regresses upward.
pub fn higher_is_better(name: &str) -> bool {
    name.ends_with("_mb_s")
        || name.ends_with("_mbps")
        || name.ends_with("_frac")
        || name.ends_with("_rps")
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_nums(vs: &[f64]) -> String {
    let body: Vec<String> = vs.iter().map(|v| json_num(*v)).collect();
    format!("[{}]", body.join(", "))
}
