//! Shared harness utilities.

use std::io;
use std::path::PathBuf;

/// Read a scale/size knob from the environment with a default, so sweeps
/// can be shrunk for smoke runs (`PARDIS_TIME_SCALE=0 PARDIS_QUICK=1 ...`).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Integer environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Is `PARDIS_QUICK` set? Harnesses then shrink their sweeps to smoke-test
/// size.
pub fn quick() -> bool {
    std::env::var("PARDIS_QUICK").is_ok_and(|v| v != "0")
}

/// Render one table row of f64 seconds.
pub fn row(label: &str, values: &[f64]) -> String {
    let mut out = format!("{label:<22}");
    for v in values {
        out.push_str(&format!(" {v:>9.3}"));
    }
    out
}

/// Machine-readable companion to the figure harnesses' text tables: one
/// `results/BENCH_<id>.json` file per harness, with the swept column values
/// and every series, in insertion order so reruns diff cleanly.
pub struct BenchJson {
    id: String,
    title: String,
    params: Vec<(String, String)>,
    columns: Vec<f64>,
    series: Vec<(String, Vec<f64>)>,
}

impl BenchJson {
    /// New report; `id` names the output file (`results/BENCH_<id>.json`).
    pub fn new(id: &str, title: &str) -> BenchJson {
        let mut b = BenchJson {
            id: id.to_string(),
            title: title.to_string(),
            params: Vec::new(),
            columns: Vec::new(),
            series: Vec::new(),
        };
        b.param_bool("quick", quick());
        b
    }

    pub fn param_f64(&mut self, name: &str, v: f64) {
        self.params.push((name.to_string(), json_num(v)));
    }

    pub fn param_usize(&mut self, name: &str, v: usize) {
        self.params.push((name.to_string(), v.to_string()));
    }

    pub fn param_bool(&mut self, name: &str, v: bool) {
        self.params.push((name.to_string(), v.to_string()));
    }

    /// The swept axis (problem sizes, processor counts, ...).
    pub fn columns(&mut self, values: &[f64]) {
        self.columns = values.to_vec();
    }

    /// One measured series, same length as the columns.
    pub fn series(&mut self, name: &str, values: &[f64]) {
        self.series.push((name.to_string(), values.to_vec()));
    }

    /// Render the report as JSON.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n");
        s.push_str(&format!("  \"bench\": {},\n", json_str(&self.id)));
        s.push_str(&format!("  \"title\": {},\n", json_str(&self.title)));
        s.push_str("  \"params\": {");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {v}", json_str(k)));
        }
        s.push_str("\n  },\n");
        s.push_str(&format!("  \"columns\": {},\n", json_nums(&self.columns)));
        s.push_str("  \"series\": {");
        for (i, (k, v)) in self.series.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&format!("\n    {}: {}", json_str(k), json_nums(v)));
        }
        s.push_str("\n  }\n}\n");
        s
    }

    /// Write to `results/BENCH_<id>.json` (creating `results/`), returning
    /// the path.
    pub fn write(&self) -> io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("BENCH_{}.json", self.id));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_nums(vs: &[f64]) -> String {
    let body: Vec<String> = vs.iter().map(|v| json_num(*v)).collect();
    format!("[{}]", body.join(", "))
}
