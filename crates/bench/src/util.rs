//! Shared harness utilities.

/// Read a scale/size knob from the environment with a default, so sweeps
/// can be shrunk for smoke runs (`PARDIS_TIME_SCALE=0 PARDIS_QUICK=1 ...`).
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Integer environment knob.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Is `PARDIS_QUICK` set? Harnesses then shrink their sweeps to smoke-test
/// size.
pub fn quick() -> bool {
    std::env::var("PARDIS_QUICK").is_ok_and(|v| v != "0")
}

/// Render one table row of f64 seconds.
pub fn row(label: &str, values: &[f64]) -> String {
    let mut out = format!("{label:<22}");
    for v in values {
        out.push_str(&format!(" {v:>9.3}"));
    }
    out
}
