//! Concurrency-auditor overhead microbench: per-call cost of the audited
//! lock wrappers and instrumentation hooks, in nanoseconds.
//!
//! The contract `pardis-audit` makes with the ORB core is that a *disabled*
//! wrapper costs one relaxed atomic load over the bare `std` primitive —
//! cheap enough to leave every core lock wrapped unconditionally. This
//! harness measures that gate (lock/unlock, rwlock read, access/channel
//! hooks) against a raw `std::sync::Mutex` baseline, plus the enabled-path
//! costs, so a regression that sneaks bookkeeping ahead of the gate shows
//! up as a gated series.
//!
//! ```text
//! cargo run --release -p pardis-bench --bin audit_overhead
//! ... -- --compare results/BENCH_audit.json   (regression gate)
//! ```

use pardis::audit::{self, lock_site, AuditMutex, AuditRwLock};
use pardis_bench::util::{quick, row, BenchJson};
use std::hint::black_box;
use std::time::Instant;

/// Nanoseconds per call of `f` over `iters` iterations.
fn per_op_ns(iters: u64, f: impl Fn(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        f(black_box(i));
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    let iters: u64 = if quick() { 200_000 } else { 2_000_000 };
    audit::disable();
    audit::reset();

    let raw = std::sync::Mutex::new(0u64);
    let lock = AuditMutex::new(lock_site!("bench: audited mutex"), 0u64);
    let rw = AuditRwLock::new(lock_site!("bench: audited rwlock"), 0u64);
    let site = lock_site!("bench: audited table");

    // Baseline: the bare std primitive the wrappers delegate to.
    let std_lock = per_op_ns(iters, |i| {
        *raw.lock().unwrap() = i;
    });

    // The disabled gate: what every ORB lock pays when auditing is off.
    let disabled_lock = per_op_ns(iters, |i| {
        *lock.lock() = i;
    });
    let disabled_read = per_op_ns(iters, |_| {
        black_box(*rw.read());
    });
    let disabled_access = per_op_ns(iters, |_| audit::access_write(site, 1));
    let disabled_chan = per_op_ns(iters, |i| audit::chan_send(i & 7));

    // Enabled paths: full bookkeeping — held-stack push/pop, order-graph
    // probe, vector-clock joins. Reset afterwards so the bench leaves no
    // global state behind.
    audit::enable();
    let enabled_lock = per_op_ns(iters / 4, |i| {
        *lock.lock() = i;
    });
    let enabled_access = per_op_ns(iters / 4, |_| audit::access_write(site, 1));
    audit::disable();
    audit::reset();

    println!("# Concurrency-audit overhead — ns per call ({iters} iterations)");
    let cols = [iters as f64];
    println!("{}", row("iters", &cols));
    println!("{}", row("std mutex lock", &[std_lock]));
    println!("{}", row("disabled audited lock", &[disabled_lock]));
    println!("{}", row("disabled rwlock read", &[disabled_read]));
    println!("{}", row("disabled access hook", &[disabled_access]));
    println!("{}", row("disabled chan hook", &[disabled_chan]));
    println!("{}", row("enabled audited lock", &[enabled_lock]));
    println!("{}", row("enabled access hook", &[enabled_access]));

    let mut report = BenchJson::new("audit", "concurrency-audit hot-path overhead");
    report.param_usize("iters", iters as usize);
    report.columns(&cols);
    report.series("std_mutex_lock_ns", &[std_lock]);
    report.series("disabled_lock_ns", &[disabled_lock]);
    report.series("disabled_rwlock_read_ns", &[disabled_read]);
    report.series("disabled_access_ns", &[disabled_access]);
    report.series("disabled_chan_ns", &[disabled_chan]);
    report.series("enabled_lock_ns", &[enabled_lock]);
    report.series("enabled_access_ns", &[enabled_access]);
    match report.write() {
        Ok(path) => eprintln!("  wrote {}", path.display()),
        Err(e) => eprintln!("  JSON write failed: {e}"),
    }
    report.gate_from_args();

    println!("#");
    println!("# contract: the disabled series track the std baseline to within a");
    println!("# few ns — one relaxed atomic load and a branch; no lock-order or");
    println!("# vector-clock work happens before the gate.");
}
