//! Figure 4 — "centralized and distributed single objects on a parallel
//! server": execution time of a fixed batch of list-server queries while
//! the SPMD search runs, as a function of the server's processor count,
//! under the two placement schemes; plus the difference between the
//! schemes (the right-hand panel).
//!
//! The total single-object query *work* is the same for every point —
//! the paper's "total time spent in single object queries for both cases
//! was the same (30 seconds)", scaled down. The centralized scheme funnels
//! all of it through computing thread 0; the distributed scheme deals the
//! five objects round-robin, balancing by count not weight, which is why
//! the paper sees the 2→3 processor dip.
//!
//! ```text
//! cargo run --release -p pardis-bench --bin fig4_dna
//! ```

use pardis::core::{
    ClientGroup, Orb, Servant, ServerGroup, ServerReply, ServerRequest, DEFAULT_REPOSITORY,
};
use pardis::generated::dna::{DnaDbProxy, ListServerProxy};
use pardis::netsim::{Link, LinkPreset, Network, TimeScale, TransportMode};
use pardis::registry::{BindingPolicy, GroupProxy, RegistryClient, RegistryServer};
use pardis_apps::dna::{spawn_dna_server, DnaServerConfig, Placement, LIST_NAMES};
use pardis_bench::util::{env_usize, quick, row, BenchJson};
use std::sync::Arc;
use std::time::Instant;

/// Per-list modelled query cost in microseconds: unequal, as in the paper
/// ("different list servers take different time to process the queries").
/// The ordering is chosen so round-robin placement — which balances "by
/// numbers, not by weight" — misplaces the heavy lists when going from 2 to
/// 3 processors, reproducing the paper's dip in the difference curve.
const WEIGHTS: [u64; 5] = [24_000, 3_000, 3_000, 12_000, 6_000];

fn run_once(p: usize, placement: Placement, rounds: usize) -> f64 {
    // The paper's first testbed: the client on HOST_1, the parallel server
    // on HOST_2, over the dedicated ATM link (so invocations really cross
    // the wire; collocated calls would otherwise bypass the transport).
    let net = Network::paper_atm_testbed(TimeScale::off());
    let client_host = net.host_by_name("HOST_1").unwrap();
    let host = net.host_by_name("HOST_2").unwrap();
    let orb = Orb::new(net);
    let trace = pardis::core::trace_from_env(&orb);
    let cfg = DnaServerConfig {
        nthreads: p,
        db_size: 4_000, // fixed database: the search itself scales with P
        len_range: (40, 60),
        seed: 42,
        placement,
        chunk: 8,
        weights: WEIGHTS,
        scan_cost_us: 400, // the paper's heavier per-sequence analysis
    };
    let server = spawn_dna_server(&orb, host, cfg);

    let client = ClientGroup::create(&orb, client_host, 1).attach(0, None);
    let db = DnaDbProxy::spmd_bind(&client, "dna_db").expect("bind dna_db");
    let lists: Vec<ListServerProxy> =
        LIST_NAMES.iter().map(|n| ListServerProxy::bind(&client, n).expect("bind list")).collect();

    let start = Instant::now();
    let search = db.search_nb(&"ACGTA".to_string()).expect("search_nb");
    // A fixed batch of query work, issued concurrently across the five
    // lists each round.
    for round in 0..rounds {
        let sub = ["GAT", "TTA", "CGC"][round % 3].to_string();
        let pending: Vec<_> = lists.iter().map(|l| l.match_nb(&sub).expect("match_nb")).collect();
        for fut in pending {
            let _ = fut.l.get().expect("query result");
        }
    }
    let _ = search.ret.get().expect("search completes");
    let elapsed = start.elapsed().as_secs_f64();
    server.shutdown();
    if let Some(session) = trace {
        match pardis::core::finish_env_trace(session) {
            Ok(path) => eprintln!("  trace written to {}", path.display()),
            Err(e) => eprintln!("  trace write failed: {e}"),
        }
    }
    elapsed
}

/// Aggregate transfer bandwidth over `streams` concurrent fragment streams,
/// at the netsim level: one client host per stream, each bursting frames at
/// the same server. On dedicated per-pair ATM links every stream owns its
/// wire, so the overlapped engine's aggregate bandwidth scales with the
/// stream count; on shared 10 Mb/s Ethernet there is one segment and the
/// curve stays flat. Pure virtual time (`TimeScale::off`), so the numbers
/// are bit-stable run to run — Mbit/s = total bits / makespan.
fn aggregate_bandwidth_mbps(streams: usize, shared: bool) -> f64 {
    const FRAMES: usize = 16;
    const BYTES: usize = 64 * 1024;
    let net = Network::with_transport(TimeScale::off(), TransportMode::Overlapped);
    let server = net.add_host("server");
    let link = if shared { LinkPreset::Ethernet10.link() } else { LinkPreset::AtmOc3.link() };
    let clients: Vec<_> = (0..streams)
        .map(|i| {
            let h = net.add_host(&format!("client_{i}"));
            net.connect(h, server, link);
            h
        })
        .collect();
    for _ in 0..FRAMES {
        for &c in &clients {
            net.transmit(c, server, BYTES, || {});
        }
    }
    net.quiesce();
    (FRAMES * streams * BYTES * 8) as f64 / net.makespan() / 1e6
}

/// Per-replica work weight (virtual units per query) in a replicated
/// list-server fleet: deliberately unequal, echoing the figure's unequal
/// list weights, so balancing by count and balancing by reported load
/// separate.
const FLEET_WEIGHTS: [u64; 4] = [7, 1, 3, 5];

/// A fleet worker that identifies itself: `serve()` returns the replica
/// index, which is all the client needs to do the load bookkeeping.
struct FleetWorker {
    idx: u64,
}

impl Servant for FleetWorker {
    fn interface(&self) -> &str {
        "fleet_worker"
    }
    fn dispatch(&self, _req: ServerRequest<'_>) -> Result<ServerReply, String> {
        let mut rep = ServerReply::new();
        rep.push_scalar(&self.idx);
        Ok(rep)
    }
}

/// The registry-balanced fleet: `replicas` workers on their own hosts
/// register under one group, and the client issues `queries` invocations
/// through a [`GroupProxy`], heartbeating each replica's accumulated
/// weighted load back to the registry after every call. Returns the
/// heaviest per-replica accumulated load — the imbalance the binding policy
/// leaves behind. Pure virtual bookkeeping on free links: the numbers are
/// bit-stable run to run, so the series gates at the plain tolerance.
fn fleet_max_load(replicas: usize, queries: usize, policy: BindingPolicy) -> f64 {
    let net = Network::with_transport(TimeScale::off(), TransportMode::Sync);
    let ch = net.add_host("client");
    let hreg = net.add_host("registry");
    net.connect(ch, hreg, Link::free());
    let hosts: Vec<_> = (0..replicas)
        .map(|i| {
            let h = net.add_host(&format!("w{i}"));
            net.connect(ch, h, Link::free());
            h
        })
        .collect();
    let orb = Orb::new(net);
    let client = ClientGroup::create(&orb, ch, 1).attach(0, None);
    let registry = RegistryServer::spawn(&orb, hreg, "fleet-registry");
    orb.resolve(DEFAULT_REPOSITORY, "fleet-registry").expect("registry activates");

    let mut workers = Vec::new();
    for (i, &host) in hosts.iter().enumerate() {
        let group = ServerGroup::create(&orb, &format!("w{i}-server"), host, 1);
        let g = group.clone();
        let name = format!("fleet-w{i}");
        let n = name.clone();
        let thread = std::thread::spawn(move || {
            let mut poa = g.attach(0, None);
            poa.activate_single(&n, Arc::new(FleetWorker { idx: i as u64 }));
            poa.impl_is_ready();
        });
        let oref = orb.resolve(DEFAULT_REPOSITORY, &name).expect("worker activates");
        workers.push((group, thread, oref));
    }

    let admin = RegistryClient::bind(&client, "fleet-registry").expect("bind registry");
    for (i, (_, _, oref)) in workers.iter().enumerate() {
        admin.register_default("fleet", &format!("w{i}"), oref).expect("register worker");
    }

    let group = GroupProxy::bind(&client, "fleet-registry", "fleet", policy).expect("bind group");
    let mut loads = vec![0u64; replicas];
    for _ in 0..queries {
        let idx: u64 =
            group.call("serve").invoke().expect("serve").scalar(0).expect("worker index");
        let idx = idx as usize;
        loads[idx] += FLEET_WEIGHTS[idx % FLEET_WEIGHTS.len()];
        admin.heartbeat("fleet", &format!("w{idx}"), loads[idx]).expect("heartbeat");
    }

    registry.shutdown();
    for (group, thread, _) in workers {
        group.shutdown();
        thread.join().expect("worker thread");
    }
    *loads.iter().max().expect("at least one replica") as f64
}

fn main() {
    let rounds = env_usize("PARDIS_ROUNDS", if quick() { 4 } else { 24 });
    let procs: Vec<usize> = if quick() { vec![1, 2, 3] } else { (1..=8).collect() };
    println!("# Figure 4 — centralized vs distributed single objects on a parallel server");
    println!("# {rounds} rounds of queries over 5 list servers (weights {WEIGHTS:?})");
    println!("{}", row("processors", &procs.iter().map(|p| *p as f64).collect::<Vec<_>>()));

    let mut central = Vec::new();
    let mut distributed = Vec::new();
    for &p in &procs {
        central.push(run_once(p, Placement::Centralized, rounds));
        distributed.push(run_once(p, Placement::Distributed, rounds));
        eprintln!("  done P = {p}");
    }
    let difference: Vec<f64> = central.iter().zip(&distributed).map(|(c, d)| c - d).collect();

    // Aggregate bandwidth vs. concurrent streams, on the same processor
    // axis: the overlapped engine's scaling signature (and the shared
    // segment's lack of one).
    let agg_dedicated: Vec<f64> =
        procs.iter().map(|&s| aggregate_bandwidth_mbps(s, false)).collect();
    let agg_shared: Vec<f64> = procs.iter().map(|&s| aggregate_bandwidth_mbps(s, true)).collect();

    // The registry-balanced fleet on the same axis: max per-replica weighted
    // load after a fixed query batch, round-robin (balances by count, like
    // the figure's distributed placement) vs least-loaded (balances by the
    // heartbeat-reported weight).
    let fleet_queries = rounds * 5;
    let fleet_rr: Vec<f64> = procs
        .iter()
        .map(|&p| fleet_max_load(p, fleet_queries, BindingPolicy::RoundRobin))
        .collect();
    let fleet_ll: Vec<f64> = procs
        .iter()
        .map(|&p| fleet_max_load(p, fleet_queries, BindingPolicy::LeastLoaded))
        .collect();

    println!("{}", row("centralized", &central));
    println!("{}", row("distributed", &distributed));
    println!("{}", row("difference", &difference));
    println!("{}", row("agg bw ded (Mb/s)", &agg_dedicated));
    println!("{}", row("agg bw shared (Mb/s)", &agg_shared));
    println!("{}", row("fleet RR max load", &fleet_rr));
    println!("{}", row("fleet LL max load", &fleet_ll));

    let mut report =
        BenchJson::new("fig4", "centralized vs distributed single objects on a parallel server");
    report.param_usize("rounds", rounds);
    report.param_bool("protocol_check", pardis::check::env_requested());
    report.columns(&procs.iter().map(|p| *p as f64).collect::<Vec<_>>());
    report.series("centralized", &central);
    report.series("distributed", &distributed);
    report.series("difference", &difference);
    report.series("agg_bw_dedicated_mbps", &agg_dedicated);
    report.series("agg_bw_shared_mbps", &agg_shared);
    report.series("fleet_rr_max_load", &fleet_rr);
    report.series("fleet_ll_max_load", &fleet_ll);
    match report.write() {
        Ok(path) => eprintln!("  wrote {}", path.display()),
        Err(e) => eprintln!("  JSON write failed: {e}"),
    }
    report.gate_from_args();

    println!("#");
    println!("# expected shape (paper, fig 4): distributed below centralized for P >= 2;");
    println!("# the difference dips where count-based balancing misplaces the heavy lists");
    println!("# (the paper's 2 -> 3 processor note).");
}
