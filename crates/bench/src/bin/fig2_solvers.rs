//! Figure 2 — "distributed vs local performance": execution time of the
//! solver metaapplication vs problem size, four series:
//!
//! * direct method alone (HOST_1, 4 computing threads),
//! * iterative method alone (HOST_2, 8 computing threads — the bigger,
//!   faster machine),
//! * different servers (direct on HOST_1, iterative on HOST_2, ATM link;
//!   non-blocking + blocking overlap: t = t_o + max(t_i, t_d)),
//! * same server (both objects share one HOST_1 server; the invocations
//!   serialise: t ≈ t_i + t_d).
//!
//! ```text
//! cargo run --release -p pardis-bench --bin fig2_solvers
//! PARDIS_QUICK=1 ... (tiny sweep)   PARDIS_TIME_SCALE=0.1 ... (slower link model)
//! ```

use pardis::core::{ClientGroup, DSequence, Distribution, Orb};
use pardis::generated::solvers::{DirectProxy, IterativeProxy};
use pardis::netsim::{Network, TimeScale, TransportMode};
use pardis::rts::{MpiRts, Rts, World};
use pardis_apps::solvers::{
    compute_difference, gen_system, spawn_combined_server_paced, spawn_direct_server_paced,
    spawn_iterative_server_paced, ComputePace,
};
use pardis_bench::util::{env_f64, quick, row, BenchJson};
use std::sync::Arc;
use std::time::Instant;

const CLIENT_THREADS: usize = 2;
const DIRECT_THREADS: usize = 4;
const ITER_THREADS: usize = 8;
const TOL: f64 = 1e-6;

struct Case {
    direct: bool,
    iterative: bool,
}

/// Run the client once; returns elapsed seconds (max over client threads).
fn run_case(orb: &Orb, host: pardis::netsim::HostId, a: &[Vec<f64>], b: &[f64], case: Case) -> f64 {
    let client = ClientGroup::create(orb, host, CLIENT_THREADS);
    let chk = pardis::check::for_world(CLIENT_THREADS);
    let out = World::run(CLIENT_THREADS, |rank| {
        let t = rank.rank();
        let rts: Arc<dyn Rts> = pardis::check::wrap_if(&chk, Arc::new(MpiRts::new(rank)));
        let ct = client.attach(t, Some(rts.clone()));
        let d_solver = case.direct.then(|| DirectProxy::spmd_bind(&ct, "direct_solver").unwrap());
        let i_solver =
            case.iterative.then(|| IterativeProxy::spmd_bind(&ct, "itrt_solver").unwrap());
        let a_ds = DSequence::distribute(a, Distribution::Block, CLIENT_THREADS, t);
        let b_ds = DSequence::distribute(b, Distribution::Block, CLIENT_THREADS, t);

        let start = Instant::now();
        match (&d_solver, &i_solver) {
            (Some(d), Some(i)) => {
                // The paper's client: non-blocking iterative, blocking
                // direct, then resolve the future and compare.
                let x1 = i.solve_nb(&TOL, &a_ds, &b_ds, Distribution::Block).unwrap();
                let (x2_real,) = d.solve(&a_ds, &b_ds, Distribution::Block).unwrap();
                let x1_real = x1.x.get().unwrap();
                let _difference = compute_difference(&x1_real, &x2_real, Some(rts.as_ref()));
            }
            (Some(d), None) => {
                let (_x,) = d.solve(&a_ds, &b_ds, Distribution::Block).unwrap();
            }
            (None, Some(i)) => {
                let (_x,) = i.solve(&TOL, &a_ds, &b_ds, Distribution::Block).unwrap();
            }
            (None, None) => unreachable!("a case always uses at least one solver"),
        }
        start.elapsed().as_secs_f64()
    });
    pardis::check::enforce(&chk);
    out.into_iter().fold(0.0, f64::max)
}

/// Netsim-level overlap probe: `K` bulk transfers of the N×N matrix payload
/// HOST_1 → HOST_2 over the ATM link, each followed by an equal slice of
/// modelled compute. The blocking transport pays the full transfer on the
/// caller's thread; the overlapped engine pays only the software overhead
/// `t_o` while the wire share elapses concurrently with the compute. The
/// fraction of the modelled transfer time the overlap hides is
/// `(wall_blocking − wall_overlapped) / (K · t_transfer)`.
fn overlap_hidden_frac(n: usize, scale: f64) -> f64 {
    if scale <= 0.0 {
        return f64::NAN; // no real time injected: nothing to measure
    }
    const K: u32 = 4;
    let bytes = n * n * 8;
    let wall = |mode: TransportMode| -> (f64, f64) {
        let net = Network::paper_atm_testbed_with(TimeScale::new(scale), mode);
        let h1 = net.host_by_name("HOST_1").unwrap();
        let h2 = net.host_by_name("HOST_2").unwrap();
        let t = net.transfer_time(h1, h2, bytes).as_secs_f64();
        let compute = std::time::Duration::from_secs_f64(t * scale);
        let start = Instant::now();
        for _ in 0..K {
            net.transmit(h1, h2, bytes, || {});
            std::thread::sleep(compute);
        }
        net.quiesce();
        (start.elapsed().as_secs_f64(), t)
    };
    let (wall_sync, t) = wall(TransportMode::Sync);
    let (wall_eng, _) = wall(TransportMode::Overlapped);
    let modelled = f64::from(K) * t * scale;
    ((wall_sync - wall_eng) / modelled).max(0.0)
}

fn main() {
    let scale = env_f64("PARDIS_TIME_SCALE", 1.0);
    // Modelled per-processor speed: HOST_1's R4400s at 40 MFLOP/s, HOST_2's
    // R8000s 1.8x faster — the figure-2 testbed asymmetry.
    let mflops = env_f64("PARDIS_MFLOPS", 40.0) * 1e6;
    let sizes: Vec<usize> =
        if quick() { vec![100, 200] } else { vec![200, 400, 600, 800, 1000, 1200] };
    println!("# Figure 2 — distributed vs local performance");
    println!(
        "# client: {CLIENT_THREADS} threads on HOST_1; direct: {DIRECT_THREADS} threads on HOST_1; \
         iterative: {ITER_THREADS} threads on HOST_2; ATM OC-3 at time scale {scale}"
    );
    println!("{}", row("N", &sizes.iter().map(|n| *n as f64).collect::<Vec<_>>()));

    let mut direct_series = Vec::new();
    let mut iter_series = Vec::new();
    let mut diff_series = Vec::new();
    let mut diff_sync_series = Vec::new();
    let mut same_series = Vec::new();
    let mut hidden_series = Vec::new();

    for &n in &sizes {
        let (a, b) = gen_system(n, 42);
        let net = Network::paper_atm_testbed(TimeScale::new(scale));
        let h1 = net.host_by_name("HOST_1").unwrap();
        let h2 = net.host_by_name("HOST_2").unwrap();

        let pace_h1 = Some(ComputePace { flops_per_sec: mflops, time_scale: scale });
        let pace_h2 = Some(ComputePace { flops_per_sec: mflops * 1.8, time_scale: scale });

        // Distributed-servers configuration (also yields the two
        // single-method baselines).
        let orb = Orb::new(net.clone());
        let trace = pardis::core::trace_from_env(&orb);
        let direct = spawn_direct_server_paced(&orb, h1, "direct_solver", DIRECT_THREADS, pace_h1);
        let iterative =
            spawn_iterative_server_paced(&orb, h2, "itrt_solver", ITER_THREADS, pace_h2);
        direct_series.push(run_case(&orb, h1, &a, &b, Case { direct: true, iterative: false }));
        iter_series.push(run_case(&orb, h1, &a, &b, Case { direct: false, iterative: true }));
        diff_series.push(run_case(&orb, h1, &a, &b, Case { direct: true, iterative: true }));
        direct.shutdown();
        iterative.shutdown();
        if let Some(session) = trace {
            match pardis::core::finish_env_trace(session) {
                Ok(path) => eprintln!("  trace written to {}", path.display()),
                Err(e) => eprintln!("  trace write failed: {e}"),
            }
        }

        // The same distributed-servers client on the blocking wire
        // (`PARDIS_TRANSPORT=sync`): the sender's thread pays every
        // transfer in full, so nothing the non-blocking invocation could
        // hide is hidden.
        let sync_net = Network::paper_atm_testbed_with(TimeScale::new(scale), TransportMode::Sync);
        let orb = Orb::new(sync_net);
        let direct = spawn_direct_server_paced(&orb, h1, "direct_solver", DIRECT_THREADS, pace_h1);
        let iterative =
            spawn_iterative_server_paced(&orb, h2, "itrt_solver", ITER_THREADS, pace_h2);
        diff_sync_series.push(run_case(&orb, h1, &a, &b, Case { direct: true, iterative: true }));
        direct.shutdown();
        iterative.shutdown();

        hidden_series.push(overlap_hidden_frac(n, scale));

        // Same-server configuration.
        let orb = Orb::new(net);
        let combined = spawn_combined_server_paced(
            &orb,
            h1,
            "direct_solver",
            "itrt_solver",
            DIRECT_THREADS,
            pace_h1,
        );
        same_series.push(run_case(&orb, h1, &a, &b, Case { direct: true, iterative: true }));
        combined.shutdown();
        eprintln!("  done N = {n}");
    }

    println!("{}", row("direct (HOST_1)", &direct_series));
    println!("{}", row("iterative (HOST_2)", &iter_series));
    println!("{}", row("different servers", &diff_series));
    println!("{}", row("different (blocking)", &diff_sync_series));
    println!("{}", row("same server (HOST_1)", &same_series));
    println!("{}", row("overlap hidden frac", &hidden_series));

    let mut report = BenchJson::new("fig2", "distributed vs local performance");
    report.param_f64("time_scale", scale);
    report.param_f64("mflops", mflops);
    report.param_usize("client_threads", CLIENT_THREADS);
    report.param_usize("direct_threads", DIRECT_THREADS);
    report.param_usize("iter_threads", ITER_THREADS);
    report.param_bool("protocol_check", pardis::check::env_requested());
    report.columns(&sizes.iter().map(|n| *n as f64).collect::<Vec<_>>());
    report.series("direct (HOST_1)", &direct_series);
    report.series("iterative (HOST_2)", &iter_series);
    report.series("different servers", &diff_series);
    report.series("different servers (blocking)", &diff_sync_series);
    report.series("same server (HOST_1)", &same_series);
    report.series("overlap_hidden_frac", &hidden_series);
    match report.write() {
        Ok(path) => eprintln!("  wrote {}", path.display()),
        Err(e) => eprintln!("  JSON write failed: {e}"),
    }
    report.gate_from_args();

    println!("#");
    println!("# expected shape (paper): different ≈ t_o + max(direct, iterative);");
    println!("#                         same     ≈ direct + iterative (serialised);");
    println!("#                         overlap hides ≥ 1 − t_o/t of each transfer.");
}
