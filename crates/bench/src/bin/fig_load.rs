//! Load & concurrency sweep — the sharded, batching request core under
//! 1 → 10k synthetic clients.
//!
//! Each synthetic client is an independent binding with its own pipeline of
//! non-blocking invocations; clients are multiplexed over a small pool of
//! OS worker threads (each with its own client endpoint, pump, and
//! communication thread) against one single-threaded server over the
//! Ethernet10 netsim link. Per concurrency level the harness reports wall
//! and virtual-clock request throughput plus wall p50/p99 invocation
//! latency, for four request-core configurations:
//!
//! * `mono`    — one router shard, no batching: the pre-sharding core.
//! * `sharded` — 16 router shards, no batching.
//! * `batched` — 16 shards + adaptive same-destination coalescing.
//! * `capped`  — batched + a 64-deep per-endpoint in-flight cap.
//!
//! The virtual-clock series is where the LogGP-style win shows: coalescing
//! N small frames into one envelope pays the per-frame software overhead
//! once instead of N times, so `batched_virt_rps` runs away from
//! `mono_virt_rps` as the client count grows.
//!
//! ```text
//! cargo run --release -p pardis-bench --bin fig_load
//! PARDIS_QUICK=1 ...                  (smoke sweep: 1/32/256 clients)
//! ... -- --compare results/BENCH_load.json   (regression gate)
//! ```

use pardis::core::{BatchMode, ClientGroup, Orb, Servant, ServerGroup, ServerReply, ServerRequest};
use pardis::netsim::{LinkPreset, Network, TimeScale};
use pardis_bench::util::{quick, row, BenchJson};
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// OS worker threads multiplexing the synthetic clients.
const WORKERS: usize = 8;
/// Non-blocking pipeline depth per synthetic client.
const DEPTH: usize = 4;

struct Load;

impl Servant for Load {
    fn interface(&self) -> &str {
        "load"
    }
    fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
        let x: i64 = req.scalar(0).map_err(|e| e.to_string())?;
        let mut rep = ServerReply::new();
        rep.push_scalar(&(2 * x));
        Ok(rep)
    }
}

#[derive(Clone, Copy)]
struct Mode {
    name: &'static str,
    shards: usize,
    batch: BatchMode,
    cap: usize,
}

const MODES: [Mode; 4] = [
    Mode { name: "mono", shards: 1, batch: BatchMode::Off, cap: 0 },
    Mode { name: "sharded", shards: 16, batch: BatchMode::Off, cap: 0 },
    Mode { name: "batched", shards: 16, batch: BatchMode::Adaptive, cap: 0 },
    Mode { name: "capped", shards: 16, batch: BatchMode::Adaptive, cap: 64 },
];

struct LevelOut {
    rps: f64,
    virt_rps: f64,
    p50_us: f64,
    p99_us: f64,
    frames: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One (mode, level) measurement.
fn run_level(mode: Mode, clients: usize) -> LevelOut {
    let net = Network::new(TimeScale::off());
    let ch = net.add_host("clients");
    let sh = net.add_host("server");
    net.connect(ch, sh, LinkPreset::Ethernet10.link());
    let orb = Orb::new(net);
    orb.set_router_shards(mode.shards);
    orb.set_batch_mode(mode.batch);
    orb.set_inflight_cap(mode.cap);

    let group = ServerGroup::create(&orb, "load-server", sh, 1);
    let g = group.clone();
    let server = std::thread::spawn(move || {
        let mut poa = g.attach(0, None);
        poa.activate_single("load", Arc::new(Load));
        poa.impl_is_ready();
    });

    let total_reqs = (clients * 2).clamp(2048, 20_000);
    let workers = WORKERS.min(clients);
    let wall_start = Instant::now();
    let mut joins = Vec::new();
    for w in 0..workers {
        let orb = orb.clone();
        // Split clients and requests as evenly as integer division allows.
        let cpw = clients / workers + usize::from(w < clients % workers);
        let reqs = total_reqs / workers + usize::from(w < total_reqs % workers);
        joins.push(std::thread::spawn(move || {
            let thread = ClientGroup::create(&orb, ch, 1).attach(0, None);
            let comm = thread.start_comm_thread();
            let proxies: Vec<_> =
                (0..cpw).map(|_| thread.bind("load").expect("bind load")).collect();
            let mut queues: Vec<VecDeque<(i64, Instant, pardis::core::InvocationHandle)>> =
                (0..cpw).map(|_| VecDeque::with_capacity(DEPTH)).collect();
            let mut lat_us: Vec<f64> = Vec::with_capacity(reqs);
            let mut issued = 0usize;
            loop {
                let mut open = false;
                for (q, proxy) in queues.iter_mut().zip(&proxies) {
                    while q.len() < DEPTH && issued < reqs {
                        let x = issued as i64;
                        let h = proxy.call("bump").arg(&x).invoke_nb().expect("launch");
                        q.push_back((x, Instant::now(), h));
                        issued += 1;
                    }
                    if let Some((x, t0, h)) = q.pop_front() {
                        let reply = h.wait().expect("invocation");
                        let y: i64 = reply.scalar(0).expect("scalar out");
                        assert_eq!(y, 2 * x, "reply routed to the wrong invocation");
                        lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                    }
                    open |= !q.is_empty();
                }
                if issued >= reqs && !open {
                    break;
                }
            }
            comm.stop();
            lat_us
        }));
    }
    let mut lat_us: Vec<f64> = Vec::with_capacity(total_reqs);
    for j in joins {
        lat_us.extend(j.join().expect("worker"));
    }
    let wall = wall_start.elapsed().as_secs_f64();
    orb.network().quiesce();
    let virt = orb.network().clock().now();
    let (frames, _bytes) = orb.traffic();
    group.shutdown();
    server.join().expect("server");

    assert_eq!(lat_us.len(), total_reqs, "every request must complete");
    lat_us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    LevelOut {
        rps: total_reqs as f64 / wall,
        virt_rps: if virt > 0.0 { total_reqs as f64 / virt } else { f64::NAN },
        p50_us: percentile(&lat_us, 0.50),
        p99_us: percentile(&lat_us, 0.99),
        frames,
    }
}

fn main() {
    let levels: Vec<usize> =
        if quick() { vec![1, 32, 256] } else { vec![1, 32, 256, 1000, 10_000] };

    let mut json = BenchJson::new("load", "Request throughput and latency vs client count");
    json.param_usize("workers", WORKERS);
    json.param_usize("pipeline_depth", DEPTH);
    json.columns(&levels.iter().map(|&l| l as f64).collect::<Vec<_>>());

    println!("fig_load: {} clients sweep, modes: mono/sharded/batched/capped", levels.len());
    println!("{}", row("clients", &levels.iter().map(|&l| l as f64).collect::<Vec<_>>()));
    for mode in MODES {
        let outs: Vec<LevelOut> = levels.iter().map(|&l| run_level(mode, l)).collect();
        let rps: Vec<f64> = outs.iter().map(|o| o.rps).collect();
        let virt: Vec<f64> = outs.iter().map(|o| o.virt_rps).collect();
        let p50: Vec<f64> = outs.iter().map(|o| o.p50_us).collect();
        let p99: Vec<f64> = outs.iter().map(|o| o.p99_us).collect();
        let frames: Vec<f64> = outs.iter().map(|o| o.frames as f64).collect();
        println!("{}", row(&format!("{}_rps", mode.name), &rps));
        println!("{}", row(&format!("{}_virt_rps", mode.name), &virt));
        println!("{}", row(&format!("{}_p50_us", mode.name), &p50));
        println!("{}", row(&format!("{}_p99_us", mode.name), &p99));
        println!("{}", row(&format!("{}_frames", mode.name), &frames));
        json.series(&format!("{}_rps", mode.name), &rps);
        json.series(&format!("{}_virt_rps", mode.name), &virt);
        json.series(&format!("{}_p50_us", mode.name), &p50);
        json.series(&format!("{}_p99_us", mode.name), &p99);
    }

    match json.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("write failed: {e}"),
    }
    json.gate_from_args();
}
