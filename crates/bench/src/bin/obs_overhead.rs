//! Observability overhead microbench: per-call cost of the tracing and
//! metrics hot paths, in nanoseconds.
//!
//! The contract the obs layer makes with the data path is that a *disabled*
//! hook costs one relaxed atomic load — cheap enough to leave compiled into
//! every marshal/transmit/dispatch path. This harness measures that gate
//! plus the enabled-path costs (ring append, span open/close, histogram
//! observe, counter bump) so a regression that sneaks a lock or an
//! allocation into a hook shows up as a gated series.
//!
//! ```text
//! cargo run --release -p pardis-bench --bin obs_overhead
//! ... -- --compare results/BENCH_obs.json   (regression gate)
//! ```

use pardis::obs::{self, ArgVal};
use pardis_bench::util::{quick, row, BenchJson};
use std::hint::black_box;
use std::time::Instant;

/// Nanoseconds per call of `f` over `iters` iterations.
fn per_op_ns(iters: u64, f: impl Fn(u64)) -> f64 {
    let start = Instant::now();
    for i in 0..iters {
        f(black_box(i));
    }
    start.elapsed().as_secs_f64() * 1e9 / iters as f64
}

fn main() {
    let iters: u64 = if quick() { 200_000 } else { 2_000_000 };
    obs::reset();

    // Warm both paths so lazy ring/metric registration is off the clock.
    obs::enable();
    per_op_ns(1_000, |i| obs::instant("bench", "obs.warm", None, vec![("i", i.into())]));
    let _ = obs::histogram("bench.obs.warm_us");
    obs::disable();
    per_op_ns(1_000, |_| obs::instant("bench", "obs.warm", None, vec![]));

    // The disabled gate: what every instrumented hot path pays when tracing
    // is off.
    let disabled_instant = per_op_ns(iters, |_| obs::instant("bench", "obs.gate", None, vec![]));
    let disabled_span = per_op_ns(iters, |_| {
        let _s = obs::Span::open("bench", "obs.gate_span", None, vec![]);
    });

    // Enabled paths: ring append with a typed arg, a full span open/close
    // pair, and the metrics primitives (registry-independent once cached).
    obs::enable();
    let enabled_instant = per_op_ns(iters, |i| {
        obs::instant("bench", "obs.tick", None, vec![("i", ArgVal::U64(i))]);
    });
    let enabled_span = per_op_ns(iters, |i| {
        let _s = obs::Span::open("bench", "obs.span", Some((1, i)), vec![]);
    });
    let hist = obs::histogram("bench.obs.lat_us");
    let observe = per_op_ns(iters, |i| hist.observe(i & 0xFFFF));
    let counter = obs::counter("bench.obs.count");
    let count = per_op_ns(iters, |_| counter.inc());
    obs::reset();

    println!("# Observability overhead — ns per call ({iters} iterations)");
    let cols = [iters as f64];
    println!("{}", row("iters", &cols));
    println!("{}", row("disabled instant", &[disabled_instant]));
    println!("{}", row("disabled span", &[disabled_span]));
    println!("{}", row("enabled instant", &[enabled_instant]));
    println!("{}", row("enabled span", &[enabled_span]));
    println!("{}", row("histogram observe", &[observe]));
    println!("{}", row("counter inc", &[count]));

    let mut report = BenchJson::new("obs", "observability hot-path overhead");
    report.param_usize("iters", iters as usize);
    report.columns(&cols);
    report.series("disabled_instant_ns", &[disabled_instant]);
    report.series("disabled_span_ns", &[disabled_span]);
    report.series("enabled_instant_ns", &[enabled_instant]);
    report.series("enabled_span_ns", &[enabled_span]);
    report.series("histogram_observe_ns", &[observe]);
    report.series("counter_inc_ns", &[count]);
    match report.write() {
        Ok(path) => eprintln!("  wrote {}", path.display()),
        Err(e) => eprintln!("  JSON write failed: {e}"),
    }
    report.gate_from_args();

    println!("#");
    println!("# contract: the disabled series stay within a few ns — one relaxed");
    println!("# atomic load and a branch; no lock, no allocation.");
}
