//! Marshaling & transfer microbenchmarks — the §4.1/§4.2 cost spine.
//!
//! Records the throughput/latency of the argument-transfer hot path so the
//! perf trajectory of the marshal/transfer layers is pinned in
//! `results/BENCH_marshal.json`:
//!
//! * large-sequence CDR marshal/unmarshal throughput (`Vec<f64>`),
//! * fragment frame encode/decode throughput (the POA funneling unit),
//! * funneled fan-out: unframe + decode a thread-0 gather of N fragments,
//! * redistribution latency across distribution-template pairs.
//!
//! ```text
//! cargo run --release -p pardis-bench --bin fig_marshal
//! PARDIS_QUICK=1 ...                        (16K-element smoke sweep)
//! fig_marshal --compare results/BENCH_marshal.json
//!                                           (regression gate: exit 1 when a
//!                                            shared series/column is >30%
//!                                            worse than the baseline;
//!                                            PARDIS_BENCH_TOL overrides)
//! ```

use pardis::cdr::{ByteOrder, CdrCodec, Encoder};
use pardis::core::protocol::{frame_list, unframe_list, ArgDir, FragmentMsg, Message};
use pardis::core::{BindingId, DSequence, Distribution};
use pardis::rts::{MpiRts, Rts, World};
use pardis_bench::util::{env_usize, quick, row, BenchJson};
use std::time::Instant;

const THREADS: usize = 4;
const FANOUT: usize = 8;

/// Best-of-`reps` wall time of `f`, in seconds (one untimed warmup call).
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn mb(n_elems: usize) -> f64 {
    (n_elems * 8) as f64 / 1e6
}

/// A fragment message over `payload` (global range `[0, count)`).
fn fragment(count: u64, payload: &[u8]) -> Message {
    Message::Fragment(FragmentMsg {
        req_id: 1,
        binding: BindingId(1),
        arg: 0,
        dir: ArgDir::In,
        start: 0,
        count,
        dst_thread: 0,
        src_thread: 0,
        data: payload.to_vec().into(),
    })
}

/// Per-redistribute wall milliseconds (max over threads) for an `a` → `b` →
/// `a` round-trip ping-pong, so repeated calls hit any plan reuse the same
/// way a real iterative application would.
fn redist_ms(n: usize, reps: usize, a: &Distribution, b: &Distribution) -> f64 {
    let full: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let (a, b) = (a.clone(), b.clone());
    let times = World::run(THREADS, move |rank| {
        let t = rank.rank();
        let rts = MpiRts::new(rank);
        let mut ds = DSequence::distribute(&full, a.clone(), THREADS, t);
        ds.redistribute(&rts, b.clone());
        ds.redistribute(&rts, a.clone());
        rts.barrier();
        let start = Instant::now();
        for _ in 0..reps {
            ds.redistribute(&rts, b.clone());
            ds.redistribute(&rts, a.clone());
        }
        let elapsed = start.elapsed().as_secs_f64();
        rts.barrier();
        if t == 0 && n > 0 {
            assert_eq!(ds.local().first().copied(), Some(0.0), "round-trip must restore data");
        }
        elapsed
    });
    times.into_iter().fold(0.0, f64::max) / (reps * 2) as f64 * 1e3
}

struct Measured {
    columns: Vec<f64>,
    series: Vec<(&'static str, Vec<f64>)>,
}

fn measure() -> Measured {
    let sizes: Vec<usize> = if quick() { vec![1 << 14] } else { vec![1 << 14, 1 << 17, 1 << 20] };
    let reps = env_usize("PARDIS_BENCH_REPS", if quick() { 3 } else { 5 });

    let mut enc = Vec::new();
    let mut dec = Vec::new();
    let mut frag_enc = Vec::new();
    let mut frag_dec = Vec::new();
    let mut fanout = Vec::new();
    let mut r_b2c = Vec::new();
    let mut r_b2k = Vec::new();
    let mut r_c2b = Vec::new();

    for &n in &sizes {
        let values: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();

        // Large-sequence CDR marshal / unmarshal. Encode measures CDR byte
        // production into a presized buffer — the ORB's fragment-staging
        // path — so the number tracks the encoder, not allocator churn.
        let mut sink = 0usize;
        let cap = 16 + n * 8;
        enc.push(
            mb(n)
                / best_of(reps, || {
                    let mut e = Encoder::with_capacity(ByteOrder::native(), cap);
                    values.encode(&mut e);
                    sink ^= e.len();
                }),
        );
        let wire = pardis::cdr::to_bytes(&values);
        dec.push(
            mb(n)
                / best_of(reps, || {
                    sink ^= pardis::cdr::from_bytes::<Vec<f64>>(&wire).expect("decode").len();
                }),
        );

        // Fragment framing: one bulk in-argument fragment of n doubles
        // (message built once; the loop times frame encoding).
        let payload = pardis::cdr::to_bytes(&values).to_vec();
        let count = n as u64;
        let frag_msg = fragment(count, &payload);
        frag_enc.push(mb(n) / best_of(reps, || sink ^= frag_msg.encode().len()));
        let frag_wire = fragment(count, &payload).encode();
        frag_dec.push(
            mb(n)
                / best_of(reps, || match Message::decode(&frag_wire).expect("fragment") {
                    Message::Fragment(f) => sink ^= f.data.len(),
                    other => panic!("unexpected {other:?}"),
                }),
        );

        // Funneled fan-out: thread 0 receives one gathered buffer holding a
        // fragment per destination thread and must unframe + decode each to
        // route it onward.
        let chunk: Vec<f64> = values[..n / FANOUT].to_vec();
        let chunk_payload = pardis::cdr::to_bytes(&chunk).to_vec();
        let frames: Vec<_> =
            (0..FANOUT).map(|_| fragment((n / FANOUT) as u64, &chunk_payload).encode()).collect();
        let gathered = frame_list(&frames);
        fanout.push(
            mb(n)
                / best_of(reps, || {
                    for sub in unframe_list(&gathered).expect("frame list") {
                        match Message::decode(&sub).expect("fragment") {
                            Message::Fragment(f) => sink ^= f.data.len(),
                            other => panic!("unexpected {other:?}"),
                        }
                    }
                }),
        );
        assert_ne!(sink, usize::MAX, "keep the measured work observable");

        // Redistribution latency across template pairs.
        let rreps = env_usize("PARDIS_REDIST_REPS", if n >= 1 << 20 { 2 } else { 4 });
        r_b2c.push(redist_ms(n, rreps, &Distribution::Block, &Distribution::Cyclic));
        r_b2k.push(redist_ms(n, rreps, &Distribution::Block, &Distribution::Concentrated(0)));
        r_c2b.push(redist_ms(n, rreps, &Distribution::Cyclic, &Distribution::Block));
    }

    Measured {
        columns: sizes.iter().map(|&n| n as f64).collect(),
        series: vec![
            ("seq_encode_mb_s", enc),
            ("seq_decode_mb_s", dec),
            ("frag_encode_mb_s", frag_enc),
            ("frag_decode_mb_s", frag_dec),
            ("fanout_decode_mb_s", fanout),
            ("redist_block_cyclic_ms", r_b2c),
            ("redist_block_conc_ms", r_b2k),
            ("redist_cyclic_block_ms", r_c2b),
        ],
    }
}

fn main() {
    let m = measure();

    println!("{}", row("n elements", &m.columns));
    for (name, vals) in &m.series {
        println!("{}", row(name, vals));
    }

    let mut json = BenchJson::new("marshal", "Marshaling & transfer performance");
    json.param_usize("threads", THREADS);
    json.param_usize("fanout", FANOUT);
    json.columns(&m.columns);
    for (name, vals) in &m.series {
        json.series(name, vals);
    }
    match json.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write results: {e}"),
    }
    json.gate_from_args();
}
