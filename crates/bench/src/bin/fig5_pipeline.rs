//! Figure 5 — "overall performance vs performance of components": the
//! diffusion → gradient metaapplication with matched processor counts.
//!
//! Series, per processor count P:
//!
//! * overall time — the full metaapplication from the (diffusion) client's
//!   perspective: 128x128 grid, 100 steps, every step shown to the
//!   diffusion visualizer, every 5th step's field pipelined to the gradient
//!   unit, whose result goes to its own visualizer;
//! * diffusion (SGI_PC) — the diffusion component alone (no gradient
//!   requests);
//! * gradient (SP2) — the gradient component alone, driven back-to-back
//!   with the same number of requests.
//!
//! ```text
//! cargo run --release -p pardis-bench --bin fig5_pipeline
//! ```

use pardis::core::Orb;
use pardis::netsim::{Network, TimeScale, TransportMode};
use pardis_apps::pipeline::{
    run_diffusion, run_gradient_alone, spawn_gradient_server_paced, spawn_visualizer,
    PipelineConfig,
};
use pardis_apps::solvers::ComputePace;
use pardis_bench::util::{env_f64, quick, row, BenchJson};

fn main() {
    let scale = env_f64("PARDIS_TIME_SCALE", 0.2);
    let procs: Vec<usize> = if quick() { vec![1, 2] } else { vec![1, 2, 4, 8] };
    let base = PipelineConfig { steps: if quick() { 20 } else { 100 }, ..Default::default() };
    println!("# Figure 5 — overall performance vs performance of components");
    println!(
        "# {}x{} grid, {} steps, gradient every {}th step, Ethernet at time scale {scale}",
        base.nx, base.ny, base.steps, base.gradient_every
    );
    println!("{}", row("processors", &procs.iter().map(|p| *p as f64).collect::<Vec<_>>()));

    let mut overall = Vec::new();
    let mut overall_sync = Vec::new();
    let mut diffusion = Vec::new();
    let mut gradient = Vec::new();

    for &p in &procs {
        let cfg = PipelineConfig { threads: p, ..base.clone() };
        let net = Network::paper_ethernet_testbed(TimeScale::new(scale));
        let pc = net.host_by_name("SGI_PC").unwrap();
        let sp2 = net.host_by_name("SP2").unwrap();
        let indy = net.host_by_name("INDY").unwrap();
        let orb = Orb::new(net);
        let trace = pardis::core::trace_from_env(&orb);

        let (vis_d, _sd) = spawn_visualizer(&orb, pc, "vis_diffusion");
        let (vis_g, _sg) = spawn_visualizer(&orb, indy, "vis_gradient");
        // The SP/2's modelled per-node speed: slow enough that the gradient
        // computation dominates at low processor counts, as in the paper.
        let pace = Some(ComputePace { flops_per_sec: 4.0e6, time_scale: scale });
        let grad = spawn_gradient_server_paced(
            &orb,
            sp2,
            "fops",
            p,
            Some("vis_gradient"),
            cfg.nx,
            cfg.ny,
            pace,
        );

        let (t_overall, _) =
            run_diffusion(&orb, pc, "vis_diffusion", Some("fops"), &cfg).expect("overall run");
        let (t_diffusion, _) =
            run_diffusion(&orb, pc, "vis_diffusion", None, &cfg).expect("diffusion alone");
        let t_gradient =
            run_gradient_alone(&orb, pc, "fops", p, cfg.nx, cfg.ny, cfg.steps / cfg.gradient_every)
                .expect("gradient alone");

        overall.push(t_overall);
        diffusion.push(t_diffusion);
        gradient.push(t_gradient);

        grad.shutdown();
        vis_d.shutdown();
        vis_g.shutdown();
        if let Some(session) = trace {
            match pardis::core::finish_env_trace(session) {
                Ok(path) => eprintln!("  trace written to {}", path.display()),
                Err(e) => eprintln!("  trace write failed: {e}"),
            }
        }

        // The full metaapplication once more on the blocking wire
        // (`PARDIS_TRANSPORT=sync`): every visualizer/gradient send pays
        // its transfer on the sender's thread, so the pipeline overlaps
        // nothing.
        let net = Network::paper_ethernet_testbed_with(TimeScale::new(scale), TransportMode::Sync);
        let pc = net.host_by_name("SGI_PC").unwrap();
        let sp2 = net.host_by_name("SP2").unwrap();
        let indy = net.host_by_name("INDY").unwrap();
        let orb = Orb::new(net);
        let (vis_d, _sd) = spawn_visualizer(&orb, pc, "vis_diffusion");
        let (vis_g, _sg) = spawn_visualizer(&orb, indy, "vis_gradient");
        let grad = spawn_gradient_server_paced(
            &orb,
            sp2,
            "fops",
            p,
            Some("vis_gradient"),
            cfg.nx,
            cfg.ny,
            pace,
        );
        let (t_sync, _) =
            run_diffusion(&orb, pc, "vis_diffusion", Some("fops"), &cfg).expect("blocking run");
        overall_sync.push(t_sync);
        grad.shutdown();
        vis_d.shutdown();
        vis_g.shutdown();
        eprintln!("  done P = {p}");
    }

    println!("{}", row("overall", &overall));
    println!("{}", row("overall (blocking)", &overall_sync));
    println!("{}", row("diffusion (SGI_PC)", &diffusion));
    println!("{}", row("gradient (SP2)", &gradient));

    let mut report = BenchJson::new("fig5", "overall performance vs performance of components");
    report.param_f64("time_scale", scale);
    report.param_usize("steps", base.steps);
    report.param_bool("protocol_check", pardis::check::env_requested());
    report.columns(&procs.iter().map(|p| *p as f64).collect::<Vec<_>>());
    report.series("overall", &overall);
    report.series("overall (blocking)", &overall_sync);
    report.series("diffusion (SGI_PC)", &diffusion);
    report.series("gradient (SP2)", &gradient);
    match report.write() {
        Ok(path) => eprintln!("  wrote {}", path.display()),
        Err(e) => eprintln!("  JSON write failed: {e}"),
    }
    report.gate_from_args();

    println!("#");
    println!("# expected shape (paper, fig 5): overall sits above both components and the");
    println!("# advantage of adding processors does not scale — the non-oneway sends and");
    println!("# pipeline congestion eat it (section 4.3).");
}
