//! One-sided vs two-sided redistribution on the modelled network.
//!
//! Redistributes a Block-distributed f64 sequence to BlockCyclic over a
//! rank pair on a dedicated ATM OC-3 link, and reports the virtual-clock
//! makespan of the exchange in both wire strategies:
//!
//! * `push` — the classic two-sided exchange: coalesced per-destination
//!   sends, each paying the MPI-style rendezvous (request-to-send,
//!   clear-to-send, payload, receiver matching overhead);
//! * `pull` — the one-sided path: every rank exposes its encoded local in a
//!   memory window and destinations issue one vectored `get` per source
//!   (request control frame + payload reply, no handshake and no matching).
//!
//! Both strategies move identical bytes over an identical message topology
//! (one transfer per ordered rank pair), so the gap is pure protocol: the
//! rendezvous costs `3L + 4t_o` in fixed overhead per message against the
//! get's `2L + 2t_o`. With many small plan pieces the fixed costs dominate
//! the wire time and pull settles near the ~2x the ATM numbers predict.
//!
//! ```text
//! cargo run --release -p pardis-bench --bin fig_onesided
//! PARDIS_QUICK=1 ...                  (smoke sweep: 16/64 pieces)
//! ... -- --compare results/BENCH_onesided.json   (regression gate)
//! ```

use pardis::core::{DSequence, Distribution};
use pardis::netsim::{LinkPreset, Network, TimeScale, TransportMode};
use pardis::rts::{set_one_sided, MpiRts, World};
use pardis_bench::util::{quick, row, BenchJson};

/// Computing threads (one per modelled host). A single pair keeps the
/// comparison a pure protocol shoot-out: both strategies move one
/// coalesced transfer each way, so the makespan gap is the per-message
/// fixed cost and not an artifact of mesh scheduling.
const RANKS: usize = 2;
/// Elements per plan piece: 16 f64 = 128 B on the wire, well under the
/// 64 KiB piece ceiling the small-transfer regime targets.
const PIECE_ELEMS: usize = 16;

/// Virtual-clock seconds for one redistribution of `pieces` plan pieces.
fn run_once(pieces: usize, one_sided: bool) -> f64 {
    set_one_sided(one_sided);
    let net = Network::with_transport(TimeScale::off(), TransportMode::Overlapped);
    net.set_default_link(LinkPreset::AtmOc3.link());
    let hosts: Vec<_> = (0..RANKS).map(|r| net.add_host(&format!("rank{r}"))).collect();
    let len = pieces * PIECE_ELEMS;
    let full: Vec<f64> = (0..len).map(|i| i as f64 * 0.125).collect();
    let (world, ranks) = World::new(RANKS);
    world.attach_network(net.clone(), hosts);
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranks
            .into_iter()
            .map(|rank| {
                let full = full.clone();
                scope.spawn(move || {
                    let t = rank.rank();
                    let rts = MpiRts::new(rank);
                    let mut ds = DSequence::distribute(&full, Distribution::Block, RANKS, t);
                    ds.redistribute(&rts, Distribution::BlockCyclic(PIECE_ELEMS as u64));
                    // Checksum guards against either path going quiet.
                    ds.local().iter().sum::<f64>()
                })
            })
            .collect();
        let total: f64 = handles.into_iter().map(|h| h.join().expect("rank")).sum();
        let expect: f64 = full.iter().sum();
        assert!((total - expect).abs() < 1e-6 * expect.abs().max(1.0), "elements lost in transit");
    });
    net.makespan()
}

fn main() {
    let piece_counts: Vec<usize> = if quick() { vec![16, 64] } else { vec![16, 64, 256] };

    let mut json = BenchJson::new("onesided", "One-sided pull vs two-sided push redistribution");
    json.param_usize("ranks", RANKS);
    json.param_usize("piece_elems", PIECE_ELEMS);
    json.columns(&piece_counts.iter().map(|&p| p as f64).collect::<Vec<_>>());

    println!(
        "fig_onesided: Block->BlockCyclic over {RANKS} ranks on ATM OC-3, {} B pieces",
        PIECE_ELEMS * 8
    );
    println!("{}", row("pieces", &piece_counts.iter().map(|&p| p as f64).collect::<Vec<_>>()));

    let push_ms: Vec<f64> = piece_counts.iter().map(|&p| run_once(p, false) * 1e3).collect();
    let pull_ms: Vec<f64> = piece_counts.iter().map(|&p| run_once(p, true) * 1e3).collect();
    set_one_sided(true);
    let speedup: Vec<f64> = push_ms.iter().zip(&pull_ms).map(|(a, b)| a / b).collect();

    println!("{}", row("push_virt_ms", &push_ms));
    println!("{}", row("pull_virt_ms", &pull_ms));
    println!("{}", row("pull_speedup_frac", &speedup));
    json.series("push_virt_ms", &push_ms);
    json.series("pull_virt_ms", &pull_ms);
    json.series("pull_speedup_frac", &speedup);

    for (&p, &s) in piece_counts.iter().zip(&speedup) {
        assert!(
            p < 64 || s >= 1.5,
            "one-sided pull must be at least 1.5x push at {p} pieces, measured {s:.2}x"
        );
    }

    match json.write() {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("write failed: {e}"),
    }
    json.gate_from_args();
}
