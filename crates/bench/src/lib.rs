//! pardis-bench: figure harnesses live in src/bin, criterion benches in benches/.
pub mod util;
