//! Ablation for §4.3's diagnosis: the pipeline's non-blocking invocations
//! were *not oneway*, so the client still pays send + reply costs. Compare
//! blocking, non-blocking (reply still flows), oneway (no reply at all),
//! and non-blocking with a dedicated communication thread (§6 future work).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pardis::core::{
    ClientGroup, ClientThread, Orb, Servant, ServerGroup, ServerReply, ServerRequest,
};
use std::hint::black_box;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Counter {
    hits: Arc<AtomicUsize>,
}

impl Servant for Counter {
    fn interface(&self) -> &str {
        "counter"
    }
    fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
        let payload: Vec<u8> = req.scalar(0).map_err(|e| e.to_string())?;
        black_box(payload.len());
        self.hits.fetch_add(1, Ordering::Relaxed);
        Ok(ServerReply::new())
    }
}

struct Setup {
    _orb: Orb,
    group: ServerGroup,
    join: Option<std::thread::JoinHandle<()>>,
    client: ClientThread,
    hits: Arc<AtomicUsize>,
}

fn setup() -> Setup {
    let (orb, host) = Orb::single_host();
    orb.set_local_bypass(false);
    let hits = Arc::new(AtomicUsize::new(0));
    let group = ServerGroup::create(&orb, "counter", host, 1);
    let (g, h) = (group.clone(), hits.clone());
    let join = std::thread::spawn(move || {
        let mut poa = g.attach(0, None);
        poa.activate_single("c1", Arc::new(Counter { hits: h }));
        poa.impl_is_ready();
    });
    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    Setup { _orb: orb, group, join: Some(join), client, hits }
}

impl Setup {
    fn teardown(mut self) {
        self.group.shutdown();
        self.join.take().unwrap().join().unwrap();
    }
}

fn oneway_ablation(c: &mut Criterion) {
    let payload = vec![0u8; 4096];
    let mut group = c.benchmark_group("oneway_ablation");
    group.throughput(Throughput::Elements(1));

    {
        let s = setup();
        let proxy = s.client.bind("c1").unwrap();
        group.bench_function("blocking", |b| {
            b.iter(|| proxy.call("hit").arg(&payload).invoke().unwrap())
        });
        s.teardown();
    }

    {
        let s = setup();
        let proxy = s.client.bind("c1").unwrap();
        group.bench_function("nonblocking_then_wait", |b| {
            b.iter(|| {
                let inv = proxy.call("hit").arg(&payload).invoke_nb().unwrap();
                inv.wait().unwrap()
            })
        });
        s.teardown();
    }

    {
        let s = setup();
        let proxy = s.client.bind("c1").unwrap();
        let hits = s.hits.clone();
        group.bench_function("oneway", |b| {
            b.iter(|| proxy.call("hit").arg(&payload).invoke_oneway().unwrap());
            // Make sure the fired requests actually land (outside timing).
            let sent = hits.load(Ordering::Relaxed);
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
            while hits.load(Ordering::Relaxed) < sent && std::time::Instant::now() < deadline {
                std::thread::yield_now();
            }
        });
        s.teardown();
    }

    {
        let s = setup();
        let comm = s.client.start_comm_thread();
        let proxy = s.client.bind("c1").unwrap();
        group.bench_function("nonblocking_with_comm_thread", |b| {
            b.iter(|| {
                let inv = proxy.call("hit").arg(&payload).invoke_nb().unwrap();
                inv.wait().unwrap()
            })
        });
        comm.stop();
        s.teardown();
    }

    group.finish();
}

criterion_group!(benches, oneway_ablation);
criterion_main!(benches);
