//! Futures overhead: blocking invocation vs non-blocking + immediate get
//! vs non-blocking with overlap (§3.3). Futures are handles, so their
//! instantiation should be near-free; the interesting cost is the extra
//! bookkeeping per invocation.

use criterion::{criterion_group, criterion_main, Criterion};
use pardis::core::{
    ClientGroup, Orb, PFuture, Proxy, Servant, ServerGroup, ServerReply, ServerRequest,
};
use std::hint::black_box;
use std::sync::Arc;

struct Worker;

impl Servant for Worker {
    fn interface(&self) -> &str {
        "worker"
    }
    fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
        let spin: u64 = req.scalar(0).map_err(|e| e.to_string())?;
        let mut acc = 1u64;
        for i in 0..spin {
            acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        let mut rep = ServerReply::new();
        rep.push_scalar(&acc);
        Ok(rep)
    }
}

fn setup() -> (Orb, ServerGroup, std::thread::JoinHandle<()>, Proxy) {
    let (orb, host) = Orb::single_host();
    orb.set_local_bypass(false);
    let group = ServerGroup::create(&orb, "worker", host, 1);
    let g = group.clone();
    let join = std::thread::spawn(move || {
        let mut poa = g.attach(0, None);
        poa.activate_single("w1", Arc::new(Worker));
        poa.impl_is_ready();
    });
    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let proxy = client.bind("w1").unwrap();
    (orb, group, join, proxy)
}

fn futures(c: &mut Criterion) {
    let mut group = c.benchmark_group("futures");
    let (_orb, server, join, proxy) = setup();

    group.bench_function("blocking_invoke", |b| {
        b.iter(|| {
            let reply = proxy.call("work").arg(black_box(&100u64)).invoke().unwrap();
            reply.scalar::<u64>(0).unwrap()
        })
    });

    group.bench_function("nb_invoke_then_get", |b| {
        b.iter(|| {
            let inv = proxy.call("work").arg(black_box(&100u64)).invoke_nb().unwrap();
            let fut: PFuture<u64> = inv.scalar_future(0);
            fut.get().unwrap()
        })
    });

    group.bench_function("nb_pair_overlapped", |b| {
        // Two concurrent requests resolved together — the §4.1 pattern.
        b.iter(|| {
            let a = proxy.call("work").arg(black_box(&100u64)).invoke_nb().unwrap();
            let bb = proxy.call("work").arg(black_box(&100u64)).invoke_nb().unwrap();
            let fa: PFuture<u64> = a.scalar_future(0);
            let fb: PFuture<u64> = bb.scalar_future(0);
            (fa.get().unwrap(), fb.get().unwrap())
        })
    });

    group.finish();
    server.shutdown();
    join.join().unwrap();
}

criterion_group!(benches, futures);
criterion_main!(benches);
