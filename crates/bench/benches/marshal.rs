//! CDR marshaling micro-benchmarks — the cost of the automatically
//! generated marshaling for dynamically-sized nested structures (§4.1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pardis_cdr::{from_bytes, to_bytes, ByteOrder, Decoder, Encoder};
use std::hint::black_box;

fn flat_f64(c: &mut Criterion) {
    let mut group = c.benchmark_group("marshal/flat_f64");
    for n in [256usize, 4096, 65536] {
        let data: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
        group.throughput(Throughput::Bytes((n * 8) as u64));
        group.bench_with_input(BenchmarkId::new("encode_elementwise", n), &data, |b, data| {
            b.iter(|| to_bytes(black_box(data)))
        });
        group.bench_with_input(BenchmarkId::new("encode_bulk", n), &data, |b, data| {
            b.iter(|| {
                let mut e = Encoder::with_capacity(ByteOrder::native(), data.len() * 8 + 8);
                e.write_f64_slice(black_box(data));
                e.finish()
            })
        });
        let encoded = to_bytes(&data);
        group.bench_with_input(BenchmarkId::new("decode_elementwise", n), &encoded, |b, enc| {
            b.iter(|| from_bytes::<Vec<f64>>(black_box(enc)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("decode_bulk", n), &encoded, |b, enc| {
            b.iter(|| {
                let mut d = Decoder::new(enc.clone(), ByteOrder::native());
                d.read_f64_vec().unwrap()
            })
        });
    }
    group.finish();
}

fn nested_matrix(c: &mut Criterion) {
    // The paper's `matrix`: dsequence of dynamically-sized rows — the case
    // programmers previously hand-coded marshaling for.
    let mut group = c.benchmark_group("marshal/nested_rows");
    for n in [64usize, 256] {
        let matrix: Vec<Vec<f64>> =
            (0..n).map(|i| (0..n).map(|j| (i * j) as f64).collect()).collect();
        group.throughput(Throughput::Bytes((n * n * 8) as u64));
        group.bench_with_input(BenchmarkId::new("encode", n), &matrix, |b, m| {
            b.iter(|| to_bytes(black_box(m)))
        });
        let encoded = to_bytes(&matrix);
        group.bench_with_input(BenchmarkId::new("decode", n), &encoded, |b, enc| {
            b.iter(|| from_bytes::<Vec<Vec<f64>>>(black_box(enc)).unwrap())
        });
    }
    group.finish();
}

fn strings(c: &mut Criterion) {
    let mut group = c.benchmark_group("marshal/dna_lists");
    let list: Vec<String> = (0..1000).map(|i| format!("ACGT{:0>40}", i)).collect();
    group.throughput(Throughput::Elements(1000));
    group.bench_function("encode", |b| b.iter(|| to_bytes(black_box(&list))));
    let encoded = to_bytes(&list);
    group.bench_function("decode", |b| {
        b.iter(|| from_bytes::<Vec<String>>(black_box(&encoded)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, flat_f64, nested_matrix, strings);
criterion_main!(benches);
