//! Ablation: parallel thread-to-thread distributed-argument transfer (the
//! \[KG97\] optimisation) vs funneling everything through thread 0.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pardis::core::{
    ClientGroup, DSequence, DistPolicy, Distribution, Orb, Servant, ServerGroup, ServerReply,
    ServerRequest, TransferStrategy,
};
use pardis::rts::{MpiRts, Rts, World};
use std::sync::Arc;

struct Sink;

impl Servant for Sink {
    fn interface(&self) -> &str {
        "sink"
    }
    fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
        // Touch the data (forces assembly) but do no compute.
        let v: DSequence<f64> = req.dseq(0).map_err(|e| e.to_string())?;
        let _ = v.local().len();
        Ok(ServerReply::new())
    }
}

fn transfer(c: &mut Criterion) {
    const SERVER_THREADS: usize = 4;
    const CLIENT_THREADS: usize = 4;

    let mut group = c.benchmark_group("transfer");
    group.sample_size(20);

    for n in [4096usize, 65536] {
        let full: Vec<f64> = (0..n).map(|i| i as f64).collect();
        for strategy in [TransferStrategy::Parallel, TransferStrategy::Funneled] {
            let (orb, host) = Orb::single_host();
            orb.set_transfer_strategy(strategy);
            let server = ServerGroup::create(&orb, "sink", host, SERVER_THREADS);
            let g = server.clone();
            let join = std::thread::spawn(move || {
                World::run(SERVER_THREADS, |rank| {
                    let t = rank.rank();
                    let rts: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
                    let mut poa = g.attach(t, Some(rts));
                    poa.activate_spmd("sink1", Arc::new(Sink), DistPolicy::new());
                    poa.impl_is_ready();
                });
            });

            group.throughput(Throughput::Bytes((n * 8) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{strategy:?}"), n),
                &full,
                |b, full| {
                    b.iter(|| {
                        let client = ClientGroup::create(&orb, host, CLIENT_THREADS);
                        let out = World::run(CLIENT_THREADS, |rank| {
                            let t = rank.rank();
                            let rts: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
                            let ct = client.attach(t, Some(rts));
                            let proxy = ct.spmd_bind("sink1").unwrap();
                            let ds =
                                DSequence::distribute(full, Distribution::Block, CLIENT_THREADS, t);
                            proxy.call("push").dseq_in(&ds).invoke().unwrap();
                        });
                        out.len()
                    })
                },
            );
            server.shutdown();
            join.join().unwrap();
        }
    }
    group.finish();
}

criterion_group!(benches, transfer);
criterion_main!(benches);
