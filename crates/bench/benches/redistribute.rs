//! Redistribution-template costs: applying a new distribution template to
//! a distributed sequence over the run-time system (§3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pardis::core::{DSequence, Distribution};
use pardis::rts::{MpiRts, World};

fn redistribute(c: &mut Criterion) {
    const THREADS: usize = 4;
    let mut group = c.benchmark_group("redistribute");
    group.sample_size(20);

    let cases: [(&str, Distribution, Distribution); 3] = [
        ("block_to_cyclic", Distribution::Block, Distribution::Cyclic),
        ("block_to_concentrated", Distribution::Block, Distribution::Concentrated(0)),
        ("cyclic_to_block", Distribution::Cyclic, Distribution::Block),
    ];

    for n in [4096usize, 65536] {
        let full: Vec<f64> = (0..n).map(|i| i as f64).collect();
        for (name, src, dst) in &cases {
            group.throughput(Throughput::Bytes((n * 8) as u64));
            group.bench_with_input(BenchmarkId::new(*name, n), &full, |b, full| {
                b.iter(|| {
                    let src = src.clone();
                    let dst = dst.clone();
                    World::run(THREADS, move |rank| {
                        let t = rank.rank();
                        let rts = MpiRts::new(rank);
                        let mut ds = DSequence::distribute(full, src.clone(), THREADS, t);
                        ds.redistribute(&rts, dst.clone());
                        ds.local().len()
                    })
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, redistribute);
criterion_main!(benches);
