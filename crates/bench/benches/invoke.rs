//! Invocation-path micro-benchmarks: the collocated direct call (§4.1's
//! "invocation on a local object becomes a direct call, bypassing the
//! network transport") against the full wire path.

use criterion::{criterion_group, criterion_main, Criterion};
use pardis::core::{ClientGroup, Orb, Proxy, Servant, ServerGroup, ServerReply, ServerRequest};
use std::hint::black_box;
use std::sync::Arc;

struct Echo;

impl Servant for Echo {
    fn interface(&self) -> &str {
        "echo"
    }
    fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
        let v: i64 = req.scalar(0).map_err(|e| e.to_string())?;
        let mut rep = ServerReply::new();
        rep.push_scalar(&(v + 1));
        Ok(rep)
    }
}

/// (orb, polling server handle, bound proxy).
fn setup(bypass: bool) -> (Orb, pardis::core::ServerGroup, std::thread::JoinHandle<()>, Proxy) {
    let (orb, host) = Orb::single_host();
    orb.set_local_bypass(bypass);
    let group = ServerGroup::create(&orb, "echo", host, 1);
    let g = group.clone();
    let join = std::thread::spawn(move || {
        let mut poa = g.attach(0, None);
        poa.activate_single("echo1", Arc::new(Echo));
        poa.impl_is_ready();
    });
    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let proxy = client.bind("echo1").unwrap();
    (orb, group, join, proxy)
}

fn invoke_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("invoke");

    let (_orb, server, join, proxy) = setup(true);
    group.bench_function("collocated_direct_call", |b| {
        b.iter(|| {
            let reply = proxy.call("bump").arg(black_box(&41i64)).invoke().unwrap();
            reply.scalar::<i64>(0).unwrap()
        })
    });
    server.shutdown();
    join.join().unwrap();

    let (_orb, server, join, proxy) = setup(false);
    group.bench_function("wire_roundtrip", |b| {
        b.iter(|| {
            let reply = proxy.call("bump").arg(black_box(&41i64)).invoke().unwrap();
            reply.scalar::<i64>(0).unwrap()
        })
    });
    server.shutdown();
    join.join().unwrap();

    group.finish();
}

criterion_group!(benches, invoke_paths);
criterion_main!(benches);
