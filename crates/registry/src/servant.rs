//! The naming-service servant.
//!
//! The registry is itself a PARDIS object: a [`RegistryServant`] activated
//! as a *single* object through the ordinary POA machinery, so every
//! register/heartbeat/resolve is a real invocation riding the same
//! transport, fault injection, and at-most-once layer as application
//! traffic.
//!
//! Entries carry a time-to-live judged against the simulated network's
//! virtual clock: a server that stops heartbeating lapses after `ttl_ms`
//! virtual milliseconds and disappears from resolution. Liveness is swept
//! lazily on every operation — there is no background reaper thread, which
//! keeps chaos runs deterministic.

use crate::wire::{join_entries, validate_name};
use pardis_audit::{lock_site, AuditMutex};
use pardis_core::{Orb, Poa, Servant, ServerGroup, ServerReply, ServerRequest};
use pardis_netsim::HostId;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Interface repository id the registry servant answers to.
pub const REGISTRY_INTERFACE: &str = "pardis::Registry";

/// One live registration: a member of a replicated object group.
#[derive(Debug, Clone)]
struct Entry {
    oref: String,
    ttl_ms: u64,
    deadline_ms: u64,
    load: u64,
}

/// A replicated object group: N members behind one logical name.
#[derive(Debug, Default)]
struct GroupState {
    /// Bumped on every membership change (register, lapse, deregister) —
    /// what `watch` compares against.
    epoch: u64,
    members: BTreeMap<String, Entry>,
}

#[derive(Debug, Default)]
struct State {
    groups: BTreeMap<String, GroupState>,
}

/// Shared-table identity of the registry's lease map (group → member →
/// lease) for the happens-before checker.
static LEASE_MAP: pardis_audit::Site = pardis_audit::Site {
    label: "registry: lease map table",
    krate: "pardis-registry",
    file: file!(),
    line: line!(),
};

/// The naming/registry servant. Share one instance per registry server; all
/// state lives behind a mutex so the servant is `Sync` for the POA.
pub struct RegistryServant {
    orb: Orb,
    state: AuditMutex<State>,
}

impl RegistryServant {
    /// A servant judging TTLs against `orb`'s network virtual clock.
    pub fn new(orb: Orb) -> RegistryServant {
        RegistryServant {
            orb,
            state: AuditMutex::new(lock_site!("registry: lease map"), State::default()),
        }
    }

    /// Current virtual time in milliseconds — the liveness timeline.
    fn now_ms(&self) -> u64 {
        (self.orb.network().clock().now() * 1e3) as u64
    }

    /// Drop every entry whose deadline has passed, bumping the owning
    /// group's epoch per lapse.
    fn sweep(state: &mut State, now_ms: u64) {
        for group in state.groups.values_mut() {
            let before = group.members.len();
            group.members.retain(|_, e| e.deadline_ms >= now_ms);
            let lapsed = before - group.members.len();
            if lapsed > 0 {
                group.epoch += 1;
                if pardis_obs::enabled() {
                    pardis_obs::counter("registry.lapses").add(lapsed as u64);
                }
            }
        }
    }
}

impl Servant for RegistryServant {
    fn interface(&self) -> &str {
        REGISTRY_INTERFACE
    }

    fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
        let now = self.now_ms();
        let mut state = self.state.lock();
        // Inside the guard: the access inherits the lock's release clock,
        // so lock-ordered accesses never read as races.
        pardis_audit::access_write(&LEASE_MAP, &self.state as *const _ as usize);
        Self::sweep(&mut state, now);
        let mut rep = ServerReply::new();
        match req.op {
            // register(group, member, oref, ttl_ms) -> epoch
            "register" => {
                let group: String = req.scalar(0).map_err(|e| e.to_string())?;
                let member: String = req.scalar(1).map_err(|e| e.to_string())?;
                let oref: String = req.scalar(2).map_err(|e| e.to_string())?;
                let ttl_ms: u64 = req.scalar(3).map_err(|e| e.to_string())?;
                validate_name(&group)?;
                validate_name(&member)?;
                if ttl_ms == 0 {
                    return Err("registration ttl must be positive".into());
                }
                let g = state.groups.entry(group).or_default();
                g.members
                    .insert(member, Entry { oref, ttl_ms, deadline_ms: now + ttl_ms, load: 0 });
                g.epoch += 1;
                rep.push_scalar(&g.epoch);
                if pardis_obs::enabled() {
                    pardis_obs::counter("registry.registers").inc();
                }
            }
            // heartbeat(group, member, load) -> alive
            "heartbeat" => {
                let group: String = req.scalar(0).map_err(|e| e.to_string())?;
                let member: String = req.scalar(1).map_err(|e| e.to_string())?;
                let load: u64 = req.scalar(2).map_err(|e| e.to_string())?;
                let alive = state
                    .groups
                    .get_mut(&group)
                    .and_then(|g| g.members.get_mut(&member))
                    .map(|e| {
                        e.deadline_ms = now + e.ttl_ms;
                        e.load = load;
                    })
                    .is_some();
                rep.push_scalar(&alive);
                if pardis_obs::enabled() {
                    pardis_obs::counter("registry.heartbeats").inc();
                }
            }
            // deregister(group, member) -> existed
            "deregister" => {
                let group: String = req.scalar(0).map_err(|e| e.to_string())?;
                let member: String = req.scalar(1).map_err(|e| e.to_string())?;
                let existed = state
                    .groups
                    .get_mut(&group)
                    .map(|g| {
                        let removed = g.members.remove(&member).is_some();
                        if removed {
                            g.epoch += 1;
                        }
                        removed
                    })
                    .unwrap_or(false);
                rep.push_scalar(&existed);
            }
            // resolve(group) -> "member|oref|load" lines, live members only
            "resolve" => {
                let group: String = req.scalar(0).map_err(|e| e.to_string())?;
                let lines = state
                    .groups
                    .get(&group)
                    .map(|g| {
                        join_entries(
                            g.members.iter().map(|(m, e)| (m.as_str(), e.oref.as_str(), e.load)),
                        )
                    })
                    .unwrap_or_default();
                rep.push_scalar(&lines);
                if pardis_obs::enabled() {
                    pardis_obs::counter("registry.resolves").inc();
                }
            }
            // list() -> group names (groups with live members), newline-joined
            "list" => {
                let names: Vec<&str> = state
                    .groups
                    .iter()
                    .filter(|(_, g)| !g.members.is_empty())
                    .map(|(n, _)| n.as_str())
                    .collect();
                rep.push_scalar(&names.join("\n"));
            }
            // watch(group, since_epoch) -> (epoch, changed, members) — a
            // non-blocking poll: callers re-resolve when changed is true.
            "watch" => {
                let group: String = req.scalar(0).map_err(|e| e.to_string())?;
                let since: u64 = req.scalar(1).map_err(|e| e.to_string())?;
                let (epoch, members) = state
                    .groups
                    .get(&group)
                    .map(|g| {
                        (
                            g.epoch,
                            join_entries(
                                g.members
                                    .iter()
                                    .map(|(m, e)| (m.as_str(), e.oref.as_str(), e.load)),
                            ),
                        )
                    })
                    .unwrap_or((0, String::new()));
                rep.push_scalar(&epoch);
                rep.push_scalar(&(epoch > since));
                rep.push_scalar(&members);
            }
            other => return Err(format!("registry has no operation {other:?}")),
        }
        Ok(rep)
    }
}

/// A running registry server: one single-threaded PARDIS server group
/// hosting a [`RegistryServant`] under a well-known name.
pub struct RegistryServer {
    group: ServerGroup,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl RegistryServer {
    /// Spawn a registry on `host`, activated as single object `name` in the
    /// default namespace. Clients reach it with an ordinary `bind(name)`.
    pub fn spawn(orb: &Orb, host: HostId, name: &str) -> RegistryServer {
        let group = ServerGroup::create(orb, &format!("{name}-server"), host, 1);
        let g2 = group.clone();
        let orb2 = orb.clone();
        let name = name.to_string();
        let thread = std::thread::spawn(move || {
            let mut poa: Poa = g2.attach(0, None);
            poa.activate_single(&name, Arc::new(RegistryServant::new(orb2)));
            poa.impl_is_ready();
        });
        RegistryServer { group, thread: Some(thread) }
    }

    /// Stop serving and join the server thread.
    pub fn shutdown(mut self) {
        self.group.shutdown();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}
