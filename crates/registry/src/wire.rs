//! Wire format of registry membership listings.
//!
//! Member listings cross the wire as one string — `member|oref|load` lines —
//! so the registry interface needs nothing beyond scalar CDR. Stringified
//! object references contain `:` but never `|` or newlines; group and member
//! names are validated against both at registration time.

/// Reject names that would corrupt the listing encoding.
pub(crate) fn validate_name(name: &str) -> Result<(), String> {
    if name.is_empty() {
        return Err("registry names must be non-empty".into());
    }
    if name.contains('|') || name.contains('\n') {
        return Err(format!("registry name {name:?} may not contain '|' or newlines"));
    }
    Ok(())
}

/// Encode `(member, oref, load)` tuples as newline-separated lines.
pub(crate) fn join_entries<'a>(entries: impl Iterator<Item = (&'a str, &'a str, u64)>) -> String {
    entries.map(|(m, o, l)| format!("{m}|{o}|{l}")).collect::<Vec<_>>().join("\n")
}

/// Decode a listing back into `(member, oref, load)` tuples, skipping
/// malformed lines (a registry bug, not a client error).
pub(crate) fn split_entries(lines: &str) -> Vec<(String, String, u64)> {
    lines
        .split('\n')
        .filter(|l| !l.is_empty())
        .filter_map(|l| {
            let mut it = l.splitn(3, '|');
            let member = it.next()?.to_string();
            let oref = it.next()?.to_string();
            let load = it.next()?.parse().ok()?;
            Some((member, oref, load))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entries_round_trip() {
        let entries = vec![
            ("r0".to_string(), "PARDIS:7:bump:3:0:1:single@0".to_string(), 4u64),
            ("r1".to_string(), "PARDIS:9:bump:4:1:1:single@0".to_string(), 0u64),
        ];
        let joined = join_entries(entries.iter().map(|(m, o, l)| (m.as_str(), o.as_str(), *l)));
        assert_eq!(split_entries(&joined), entries);
        assert!(split_entries("").is_empty());
    }

    #[test]
    fn names_are_validated() {
        assert!(validate_name("solver-group").is_ok());
        assert!(validate_name("").is_err());
        assert!(validate_name("a|b").is_err());
        assert!(validate_name("a\nb").is_err());
    }
}
