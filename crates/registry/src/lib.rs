//! # pardis-registry — replicated naming with heartbeat liveness
//!
//! A naming/registry service for PARDIS, served through the ordinary
//! ORB/POA machinery so the registry is itself a PARDIS object:
//!
//! * **Registry servant** — [`RegistryServant`] / [`RegistryServer`]:
//!   servers register `name → binding` entries with a TTL and renew them via
//!   heartbeat; entries lapse when heartbeats stop. Liveness is judged
//!   against the simulated network's virtual clock and swept lazily per
//!   operation, so chaos runs stay deterministic.
//! * **Replicated object groups** — N servers register under one logical
//!   group name; [`RegistryClient::resolve`] returns the live members.
//! * **Binding policies** — [`BindingPolicy`]: round-robin, least-loaded
//!   (heartbeat-reported load, typically a `pardis-obs` dispatch counter),
//!   or locality-aware (cheapest modelled link in the netsim topology).
//! * **Transparent failover** — [`GroupProxy`] / [`GroupCall`]: when the
//!   at-most-once retry layer exhausts its deadline against a dead replica,
//!   the client re-resolves the group, marks the replica suspect, and
//!   replays the idempotent invocation against a survivor.
//!   [`pardis_core::OrbError::NoReplicaAvailable`] surfaces only when the
//!   registry lists no live member at all.
//!
//! ## A replicated group in six lines
//!
//! ```no_run
//! use pardis_registry::{BindingPolicy, GroupProxy, RegistryClient, RegistryServer};
//! # fn demo(orb: &pardis_core::Orb, host: pardis_netsim::HostId,
//! #          ct: &pardis_core::ClientThread, oref: &pardis_core::ObjectRef) {
//! let registry = RegistryServer::spawn(orb, host, "registry");
//! let admin = RegistryClient::bind(ct, "registry").unwrap();
//! admin.register("workers", "r0", oref, 5_000).unwrap();
//! let group = GroupProxy::bind(ct, "registry", "workers", BindingPolicy::RoundRobin).unwrap();
//! let reply = group.call("bump").arg(&7i64).invoke().unwrap();
//! # let _ = (reply, registry);
//! # }
//! ```

mod client;
mod servant;
mod wire;

pub use client::{BindingPolicy, GroupCall, GroupProxy, RegistryClient, Replica};
pub use servant::{RegistryServant, RegistryServer, REGISTRY_INTERFACE};
