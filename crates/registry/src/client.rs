//! Client side: typed registry access, replicated-group binding policies,
//! and transparent failover.
//!
//! [`RegistryClient`] is a thin typed wrapper over an ordinary [`Proxy`] to
//! the registry object. [`GroupProxy`] layers replicated object groups on
//! top: one logical name resolves to N live replicas, a [`BindingPolicy`]
//! picks which one to bind, and [`GroupCall::invoke`] replays an idempotent
//! invocation against a survivor when the at-most-once retry layer exhausts
//! its deadline against a dead replica. [`OrbError::NoReplicaAvailable`]
//! surfaces only when the registry lists no live member at all.

use crate::wire::split_entries;
use pardis_audit::{lock_site, AuditMutex};
use pardis_cdr::CdrCodec;
use pardis_core::{
    CallBuilder, ClientThread, DSequence, Distribution, ObjectRef, OrbError, OrbResult, Proxy,
    ReplyData,
};
use pardis_netsim::HostId;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One live member of a replicated object group, as resolved from the
/// registry.
#[derive(Debug, Clone)]
pub struct Replica {
    /// Member name within the group (unique, stable).
    pub member: String,
    /// The replica's object reference.
    pub oref: ObjectRef,
    /// Load the replica reported in its last heartbeat (replicas typically
    /// feed a `pardis-obs` dispatch counter here).
    pub load: u64,
    /// Host the replica lives on (from the reference).
    pub host: HostId,
}

/// Typed proxy to a [`RegistryServant`](crate::RegistryServant).
pub struct RegistryClient {
    orb: pardis_core::Orb,
    proxy: Proxy,
}

impl RegistryClient {
    /// Bind to the registry object activated under `name`.
    pub fn bind(ct: &ClientThread, name: &str) -> OrbResult<RegistryClient> {
        Ok(RegistryClient { orb: ct.orb().clone(), proxy: ct.bind(name)? })
    }

    /// [`RegistryClient::register`] with the ORB's configured default TTL
    /// (`OrbConfig::registry_ttl_ms`).
    pub fn register_default(&self, group: &str, member: &str, oref: &ObjectRef) -> OrbResult<u64> {
        let ttl = self.orb.config().registry_ttl_ms;
        self.register(group, member, oref, ttl)
    }

    /// Register (or refresh) `member` in `group` with a TTL in virtual
    /// milliseconds. Returns the group's new epoch.
    pub fn register(
        &self,
        group: &str,
        member: &str,
        oref: &ObjectRef,
        ttl_ms: u64,
    ) -> OrbResult<u64> {
        self.proxy
            .call("register")
            .arg(&group.to_string())
            .arg(&member.to_string())
            .arg(&oref.stringify())
            .arg(&ttl_ms)
            .invoke()?
            .scalar(0)
    }

    /// Renew `member`'s lease and report its current load. Returns false
    /// when the entry already lapsed — the server must re-register.
    pub fn heartbeat(&self, group: &str, member: &str, load: u64) -> OrbResult<bool> {
        self.proxy
            .call("heartbeat")
            .arg(&group.to_string())
            .arg(&member.to_string())
            .arg(&load)
            .invoke()?
            .scalar(0)
    }

    /// Remove `member` from `group`. Returns whether it was registered.
    pub fn deregister(&self, group: &str, member: &str) -> OrbResult<bool> {
        self.proxy
            .call("deregister")
            .arg(&group.to_string())
            .arg(&member.to_string())
            .invoke()?
            .scalar(0)
    }

    /// The live members of `group`, sorted by member name.
    pub fn resolve(&self, group: &str) -> OrbResult<Vec<Replica>> {
        let lines: String =
            self.proxy.call("resolve").arg(&group.to_string()).invoke()?.scalar(0)?;
        Ok(parse_replicas(&lines))
    }

    /// Names of groups that currently have live members.
    pub fn list(&self) -> OrbResult<Vec<String>> {
        let lines: String = self.proxy.call("list").invoke()?.scalar(0)?;
        Ok(lines.split('\n').filter(|l| !l.is_empty()).map(str::to_string).collect())
    }

    /// Non-blocking membership poll: returns `(epoch, members)`; the member
    /// list is meaningful when `epoch` moved past `since_epoch`.
    pub fn watch(&self, group: &str, since_epoch: u64) -> OrbResult<(u64, Vec<Replica>)> {
        let rep = self.proxy.call("watch").arg(&group.to_string()).arg(&since_epoch).invoke()?;
        let epoch: u64 = rep.scalar(0)?;
        let _changed: bool = rep.scalar(1)?;
        let lines: String = rep.scalar(2)?;
        Ok((epoch, parse_replicas(&lines)))
    }
}

fn parse_replicas(lines: &str) -> Vec<Replica> {
    split_entries(lines)
        .into_iter()
        .filter_map(|(member, oref, load)| {
            let oref = ObjectRef::destringify(&oref)?;
            Some(Replica { member, host: oref.host, load, oref })
        })
        .collect()
}

/// How a [`GroupProxy`] picks the replica to bind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BindingPolicy {
    /// Rotate through the live members in name order. The default.
    #[default]
    RoundRobin,
    /// The member with the lowest heartbeat-reported load (ties broken by
    /// member name).
    LeastLoaded,
    /// The member with the cheapest modelled link from the client's host,
    /// judged by the netsim topology (ties broken by member name).
    Locality,
}

/// Frame size used to rank links under [`BindingPolicy::Locality`] — large
/// enough that bandwidth matters, not just latency.
const LOCALITY_PROBE_BYTES: usize = 64 * 1024;

/// An argument applier: replays one recorded `CallBuilder` step against a
/// fresh proxy, so a failed invocation can be rebuilt against a survivor.
type Applier = Box<dyn for<'p> Fn(CallBuilder<'p>) -> CallBuilder<'p> + Send + Sync>;

/// A proxy to a replicated object group: one logical name, N replicas
/// registered in the registry, invocations transparently failing over.
pub struct GroupProxy<'c> {
    ct: &'c ClientThread,
    registry: RegistryClient,
    group: String,
    policy: BindingPolicy,
    collective: bool,
    /// Replicas a failed invocation was observed against. Suspects are
    /// avoided while any non-suspect member is live; when every live member
    /// is suspect the set resets and they get another chance (a replica may
    /// have recovered — only an empty live list is fatal).
    suspects: AuditMutex<HashSet<String>>,
    /// Cached per-member bindings, so steady-state calls reuse a binding
    /// instead of re-binding every invocation.
    bound: AuditMutex<HashMap<String, Arc<Proxy>>>,
    rr: AtomicU64,
    /// Group invocations issued through this proxy, numbering each
    /// `failover.invoke` trace deterministically (no global counter, so
    /// same-seed runs stamp identical trace ids).
    calls: AtomicU64,
}

impl<'c> GroupProxy<'c> {
    /// A per-thread group proxy (single-object semantics, like
    /// [`ClientThread::bind`]).
    pub fn bind(
        ct: &'c ClientThread,
        registry_name: &str,
        group: &str,
        policy: BindingPolicy,
    ) -> OrbResult<GroupProxy<'c>> {
        Self::new(ct, registry_name, group, policy, false)
    }

    /// A collective group proxy (SPMD semantics, like
    /// [`ClientThread::spmd_bind`]): every computing thread must construct
    /// it, and invoke through it, in the same order.
    pub fn bind_collective(
        ct: &'c ClientThread,
        registry_name: &str,
        group: &str,
        policy: BindingPolicy,
    ) -> OrbResult<GroupProxy<'c>> {
        Self::new(ct, registry_name, group, policy, true)
    }

    fn new(
        ct: &'c ClientThread,
        registry_name: &str,
        group: &str,
        policy: BindingPolicy,
        collective: bool,
    ) -> OrbResult<GroupProxy<'c>> {
        Ok(GroupProxy {
            ct,
            registry: RegistryClient::bind(ct, registry_name)?,
            group: group.to_string(),
            policy,
            collective,
            suspects: AuditMutex::new(lock_site!("registry-client: suspect set"), HashSet::new()),
            bound: AuditMutex::new(lock_site!("registry-client: bound proxies"), HashMap::new()),
            rr: AtomicU64::new(0),
            calls: AtomicU64::new(0),
        })
    }

    /// The logical group name.
    pub fn group(&self) -> &str {
        &self.group
    }

    /// The registry client this proxy resolves through.
    pub fn registry(&self) -> &RegistryClient {
        &self.registry
    }

    /// Members currently marked suspect (sorted, for deterministic tests).
    pub fn suspects(&self) -> Vec<String> {
        let mut v: Vec<String> = self.suspects.lock().iter().cloned().collect();
        v.sort();
        v
    }

    /// Forget every suspicion (e.g. after reviving a partition).
    pub fn clear_suspects(&self) {
        self.suspects.lock().clear();
    }

    /// Begin an invocation of `op` on whichever replica the policy picks.
    pub fn call(&self, op: &str) -> GroupCall<'_, 'c> {
        GroupCall { gp: self, op: op.to_string(), appliers: Vec::new() }
    }

    /// Pick a replica out of `candidates` (non-empty) under the policy.
    fn pick<'r>(&self, candidates: &[&'r Replica]) -> &'r Replica {
        match self.policy {
            BindingPolicy::RoundRobin => {
                let n = self.rr.fetch_add(1, Ordering::Relaxed);
                candidates[(n % candidates.len() as u64) as usize]
            }
            BindingPolicy::LeastLoaded => candidates
                .iter()
                .min_by_key(|r| (r.load, r.member.as_str()))
                .expect("non-empty candidates"),
            BindingPolicy::Locality => {
                let net = self.ct.orb().network();
                let home = self.ct.host();
                candidates
                    .iter()
                    .min_by_key(|r| {
                        (net.transfer_time(home, r.host, LOCALITY_PROBE_BYTES), r.member.as_str())
                    })
                    .expect("non-empty candidates")
            }
        }
    }

    /// Bind (or reuse a cached binding) to one replica.
    fn proxy_for(&self, replica: &Replica) -> OrbResult<Arc<Proxy>> {
        if let Some(p) = self.bound.lock().get(&replica.member) {
            return Ok(p.clone());
        }
        let proxy = if self.collective {
            self.ct.spmd_bind_object(&replica.oref)?
        } else {
            self.ct.bind_object(&replica.oref)?
        };
        let proxy = Arc::new(proxy);
        self.bound.lock().insert(replica.member.clone(), proxy.clone());
        Ok(proxy)
    }

    /// A stable identity for this proxy's invocation stream: the group name
    /// folded with the calling thread, feeding the deterministic trace-id
    /// derivation.
    fn trace_entity(&self) -> u64 {
        // FNV-1a over the group name, then fold in the thread index.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in self.group.bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3);
        }
        h ^ (((self.ct.thread() as u64) << 1) | 1)
    }

    /// The failover loop: resolve live members, pick, invoke; on a
    /// transport-level failure mark the replica suspect, re-resolve, and
    /// replay against a survivor — up to the ORB's `failover_limit`.
    fn invoke_failover(&self, op: &str, appliers: &[Applier]) -> OrbResult<ReplyData> {
        let limit = self.ct.orb().config().failover_limit;
        let mut rebinds = 0u32;
        // One root trace spans the whole loop: the registry resolves, every
        // rebind, and each replayed ORB invocation (their launches see this
        // context ambient and join the trace as children), so a failed-over
        // call still reads as one causal tree.
        let root = pardis_obs::enabled().then(|| {
            let seq = self.calls.fetch_add(1, Ordering::Relaxed);
            pardis_obs::TraceCtx::root(pardis_obs::derive_trace_id(self.trace_entity(), seq))
        });
        let _span = root.map(|root| {
            pardis_obs::Span::open(
                "failover",
                "failover.invoke",
                None,
                vec![
                    ("group", pardis_obs::ArgVal::Str(self.group.clone().into())),
                    ("op", pardis_obs::ArgVal::Str(op.to_string().into())),
                    ("trace", pardis_obs::ArgVal::U64(root.trace_id)),
                    ("span", pardis_obs::ArgVal::U64(root.span_id)),
                ],
            )
        });
        let _ctx_guard = root.map(pardis_obs::enter_ctx);
        loop {
            let live = self.registry.resolve(&self.group)?;
            if live.is_empty() {
                if pardis_obs::enabled() {
                    pardis_obs::counter("failover.no_replica").inc();
                }
                return Err(OrbError::NoReplicaAvailable { group: self.group.clone() });
            }
            let mut candidates: Vec<&Replica> = {
                let suspects = self.suspects.lock();
                live.iter().filter(|r| !suspects.contains(&r.member)).collect()
            };
            if candidates.is_empty() {
                // Every live member is suspect: give them another chance
                // rather than declaring a still-registered group dead.
                self.suspects.lock().clear();
                candidates = live.iter().collect();
            }
            let pick = self.pick(&candidates);
            let proxy = self.proxy_for(pick)?;
            let mut cb = proxy.call(op);
            for apply in appliers {
                cb = apply(cb);
            }
            match cb.invoke() {
                Ok(rep) => return Ok(rep),
                Err(e) if e.is_retryable() && rebinds < limit => {
                    rebinds += 1;
                    self.suspects.lock().insert(pick.member.clone());
                    if pardis_obs::enabled() {
                        pardis_obs::counter("failover.rebinds").inc();
                        pardis_obs::counter("failover.suspects").inc();
                        pardis_obs::instant(
                            "failover",
                            "failover.rebind",
                            None,
                            vec![
                                ("group", pardis_obs::ArgVal::Str(self.group.clone().into())),
                                ("suspect", pardis_obs::ArgVal::Str(pick.member.clone().into())),
                                ("attempt", pardis_obs::ArgVal::U64(u64::from(rebinds))),
                            ],
                        );
                    }
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Builder for one group invocation. Arguments are recorded (cloned) rather
/// than encoded once, so the invocation can be replayed verbatim against a
/// different replica on failover — which also means group operations must be
/// idempotent, as the original request may have executed on a replica whose
/// reply was lost.
pub struct GroupCall<'g, 'c> {
    gp: &'g GroupProxy<'c>,
    op: String,
    appliers: Vec<Applier>,
}

impl GroupCall<'_, '_> {
    /// Append a scalar in-argument (cloned for replay).
    pub fn arg<T: CdrCodec + Clone + Send + Sync + 'static>(mut self, v: &T) -> Self {
        let v = v.clone();
        self.appliers.push(Box::new(move |cb| cb.arg(&v)));
        self
    }

    /// Append a distributed in-argument (cloned for replay).
    pub fn dseq_in<T: CdrCodec + Clone + Send + Sync + 'static>(
        mut self,
        ds: &DSequence<T>,
    ) -> Self {
        let ds = ds.clone();
        self.appliers.push(Box::new(move |cb| cb.dseq_in(&ds)));
        self
    }

    /// Declare a distributed out-argument with its expected distribution.
    pub fn dseq_out(mut self, expected_dist: Distribution) -> Self {
        self.appliers.push(Box::new(move |cb| cb.dseq_out(expected_dist.clone())));
        self
    }

    /// Invoke with transparent failover (the retry/suspect semantics
    /// described on [`GroupProxy`]'s type docs).
    pub fn invoke(self) -> OrbResult<ReplyData> {
        self.gp.invoke_failover(&self.op, &self.appliers)
    }
}
