//! Loom models of the ORB core's three hottest synchronization protocols.
//!
//! Each model re-states a protocol from `pardis-core` in loom primitives
//! and asserts its invariant under explored interleavings:
//!
//! 1. **Reply-table rendezvous** (`client.rs`): a waiter registers an
//!    invocation slot in the router table; the pump routes a reply into
//!    the slot; the waiter observes it exactly once and unregisters.
//! 2. **Arc-swap endpoint republish vs. concurrent `send_wire`**
//!    (`orb.rs`/`publish.rs`): a publisher installs a new endpoint
//!    snapshot while senders load; a sender must observe a complete
//!    snapshot of *some* generation, never a torn one.
//! 3. **Bounded reply-cache eviction vs. duplicate replay** (`poa.rs`):
//!    the accept path inserts and evicts under a capacity bound while the
//!    replay path probes for duplicates; the cache's size bound and
//!    set/queue agreement must hold throughout.
//!
//! The in-tree `loom` stand-in explores seeded randomized interleavings
//! (see `vendor/loom`); against the real crate these same tests run under
//! exhaustive model checking.

use loom::sync::atomic::{AtomicU64, Ordering};
use loom::sync::{Arc, Mutex};
use std::collections::{HashMap, HashSet, VecDeque};

/// Protocol 1: reply-table rendezvous. The waiter's slot, registered
/// under the router lock, receives the reply exactly once; unregistration
/// leaves the table empty.
#[test]
fn reply_table_rendezvous() {
    loom::model(|| {
        type Slot = Arc<Mutex<Option<u32>>>;
        let router: Arc<Mutex<HashMap<u64, Slot>>> = Arc::new(Mutex::new(HashMap::new()));

        let waiter_router = router.clone();
        let waiter = loom::thread::spawn(move || {
            let slot: Slot = Arc::new(Mutex::new(None));
            waiter_router.lock().unwrap().insert(1, slot.clone());
            // Rendezvous: wait for the pump to route the reply in.
            let got = loop {
                if let Some(v) = *slot.lock().unwrap() {
                    break v;
                }
                loom::thread::yield_now();
            };
            let removed = waiter_router.lock().unwrap().remove(&1);
            assert!(removed.is_some(), "waiter unregisters its own slot");
            got
        });

        let pump_router = router.clone();
        let pump = loom::thread::spawn(move || loop {
            let slot = pump_router.lock().unwrap().get(&1).cloned();
            if let Some(slot) = slot {
                let prev = slot.lock().unwrap().replace(42);
                assert_eq!(prev, None, "a reply is routed exactly once");
                break;
            }
            loom::thread::yield_now();
        });

        pump.join().unwrap();
        assert_eq!(waiter.join().unwrap(), 42);
        assert!(router.lock().unwrap().is_empty(), "table empty after rendezvous");
    });
}

/// Protocol 2: endpoint republish vs. concurrent send. Generation `g`'s
/// snapshot is fully constructed before `g` is published; a sender that
/// loads `g` must find the complete snapshot for `g`.
#[test]
fn republish_vs_concurrent_send_wire() {
    loom::model(|| {
        // `snapshots` plays the retired-snapshot keeper; `current` is the
        // Arc-swap pointer (a generation id here).
        let snapshots: Arc<Mutex<HashMap<u64, Vec<u64>>>> = Arc::new(Mutex::new(HashMap::new()));
        let current = Arc::new(AtomicU64::new(0));
        snapshots.lock().unwrap().insert(0, vec![0; 3]);

        let pub_snaps = snapshots.clone();
        let pub_cur = current.clone();
        let publisher = loom::thread::spawn(move || {
            for generation in 1..=3u64 {
                // Build the whole table, install it, then swap the pointer.
                pub_snaps.lock().unwrap().insert(generation, vec![generation; 3]);
                pub_cur.store(generation, Ordering::Release);
            }
        });

        let send_snaps = snapshots.clone();
        let send_cur = current.clone();
        let sender = loom::thread::spawn(move || {
            for _ in 0..4 {
                let generation = send_cur.load(Ordering::Acquire);
                let table = send_snaps
                    .lock()
                    .unwrap()
                    .get(&generation)
                    .cloned()
                    .expect("published generation has an installed snapshot");
                assert_eq!(table, vec![generation; 3], "snapshot is never torn");
            }
        });

        publisher.join().unwrap();
        sender.join().unwrap();
        assert_eq!(current.load(Ordering::Acquire), 3);
    });
}

/// Protocol 3: bounded reply-cache eviction vs. duplicate replay. The
/// accept path evicts FIFO under a capacity bound while the replay path
/// probes; the set and queue always agree and never exceed the bound.
#[test]
fn reply_cache_eviction_vs_duplicate_replay() {
    const CAP: usize = 4;
    loom::model(|| {
        type Cache = Arc<Mutex<(VecDeque<u64>, HashSet<u64>)>>;
        let cache: Cache = Arc::new(Mutex::new((VecDeque::new(), HashSet::new())));

        let accept_cache = cache.clone();
        let accept = loom::thread::spawn(move || {
            for id in 0..8u64 {
                let mut c = accept_cache.lock().unwrap();
                let (queue, seen) = &mut *c;
                if seen.insert(id) {
                    queue.push_back(id);
                    if queue.len() > CAP {
                        let evicted = queue.pop_front().expect("nonempty over capacity");
                        assert!(seen.remove(&evicted), "set and queue agree");
                    }
                }
                assert!(queue.len() <= CAP, "capacity bound holds");
                assert_eq!(queue.len(), seen.len(), "set and queue agree");
            }
        });

        let replay_cache = cache.clone();
        let replay = loom::thread::spawn(move || {
            let mut suppressed = 0usize;
            for id in 0..8u64 {
                let c = replay_cache.lock().unwrap();
                let (queue, seen) = &*c;
                // Either outcome is legal (evicted duplicates re-execute),
                // but the probe must see a consistent cache.
                if seen.contains(&id) {
                    suppressed += 1;
                    assert!(queue.contains(&id), "set member is queued");
                }
                assert_eq!(queue.len(), seen.len(), "set and queue agree");
            }
            suppressed
        });

        accept.join().unwrap();
        let _ = replay.join().unwrap();
        let c = cache.lock().unwrap();
        assert_eq!(c.0.len(), c.1.len());
        assert!(c.0.len() <= CAP);
    });
}
