//! # pardis-audit — concurrency auditor for the PARDIS ORB core
//!
//! ROADMAP item 2 rewrites the ORB's locking; this crate is the gate that
//! refactor lands against. It audits the ORB's *thread synchronization*
//! the way `pardis-check` audits the SPMD *protocol*: an always-compiled,
//! zero-cost-when-off runtime analyzer plus model tests and CI gates.
//!
//! * **Lock-order deadlock detection** — every [`AuditMutex`]/
//!   [`AuditRwLock`] acquisition is tagged with a static [`Site`] (from
//!   [`lock_site!`]); nested acquisitions grow a global lock-order graph,
//!   and any cycle is reported as a *potential* deadlock with the witness
//!   stack of every participating edge — even when no run ever deadlocks.
//! * **Happens-before race auditing** — a vector-clock engine tracks
//!   acquire/release, channel send/recv ([`chan_send`]/[`chan_recv`]) and
//!   Arc-swap publish/load ([`publish`]/[`load_published`]) edges;
//!   [`access_read`]/[`access_write`]-instrumented shared tables (reply table, endpoint
//!   snapshot, plan cache, reply cache, registry lease map) are checked
//!   FastTrack-style for conflicting unsynchronized accesses.
//! * **Hazard patterns** — a lock held across a wire call
//!   ([`note_wire_call`]), hold time above an opt-in virtual-clock budget
//!   ([`set_hold_budget_us`]), and re-entrant acquisition.
//!
//! Findings render as a severity-tiered [`AuditReport`] (human table +
//! JSON), same shape as `pardis-check`'s `CheckReport`.
//!
//! ## Zero cost when off
//!
//! Everything hides behind one global atomic gate: [`enabled`] is a
//! single relaxed load, and every hook is a passthrough when it returns
//! false. Poison recovery (and its `lock.poisoned` obs counter) is the
//! one behaviour that stays on unconditionally — recovering a guard is
//! strictly better than cascading a panic across ORB threads.
//!
//! ## Wiring
//!
//! ```
//! use pardis_audit::{lock_site, AuditMutex};
//!
//! static TABLE: AuditMutex<Vec<u32>> = AuditMutex::new(
//!     lock_site!("example: shared table"),
//!     Vec::new(),
//! );
//!
//! pardis_audit::enable();
//! TABLE.lock().push(7);
//! let report = pardis_audit::report();
//! assert!(report.is_clean());
//! # pardis_audit::disable();
//! # pardis_audit::reset();
//! ```
//!
//! The e2e suites call [`enforce_env`] at teardown, so `PARDIS_AUDIT=1`
//! turns every chaos/failover scenario into a synchronization-verification
//! run.

mod core;
mod report;
mod sync;

pub use report::{AuditReport, Finding, Kind, Severity};
pub use sync::{
    AuditCondvar, AuditMutex, AuditMutexGuard, AuditReadGuard, AuditRwLock, AuditWriteGuard,
};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// A static acquisition/access site: where in the source a lock lives (or
/// a shared table is touched) and what a human calls it. Identity is the
/// static's address; construct through [`lock_site!`].
#[derive(Debug)]
pub struct Site {
    /// Human label, e.g. `"client: reply router"`.
    pub label: &'static str,
    /// Crate the site lives in (`CARGO_PKG_NAME`).
    pub krate: &'static str,
    /// Source file (`file!`).
    pub file: &'static str,
    /// Source line (`line!`).
    pub line: u32,
}

/// Declare a static [`Site`] in place and evaluate to `&'static Site`.
///
/// Expands to a `static` item, so it is usable in `const`/`static`
/// initializers (e.g. a `static AuditMutex`), and the site's address is a
/// stable id for the whole process lifetime.
#[macro_export]
macro_rules! lock_site {
    ($label:expr) => {{
        static SITE: $crate::Site = $crate::Site {
            label: $label,
            krate: env!("CARGO_PKG_NAME"),
            file: file!(),
            line: line!(),
        };
        &SITE
    }};
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is auditing on? One relaxed atomic load — safe to call on hot paths.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turn the audit gate on.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turn the audit gate off.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Was auditing requested through the environment (`PARDIS_AUDIT=1`)?
/// Read once per process; a hit also flips the global gate on.
pub fn env_requested() -> bool {
    static REQUESTED: OnceLock<bool> = OnceLock::new();
    let req = *REQUESTED.get_or_init(|| std::env::var("PARDIS_AUDIT").is_ok_and(|v| v == "1"));
    if req {
        enable();
    }
    req
}

/// Record a happens-before edge source: something was sent on the channel
/// identified by `chan` (callers pick any id stable for the channel's
/// lifetime, e.g. an endpoint's raw id).
#[inline]
pub fn chan_send(chan: u64) {
    if enabled() {
        core::on_chan_send(chan);
    }
}

/// Record a happens-before edge sink: something was received from `chan`.
#[inline]
pub fn chan_recv(chan: u64) {
    if enabled() {
        core::on_chan_recv(chan);
    }
}

/// Record an Arc-swap publish: the snapshot cell at address `cell` now
/// holds everything the calling thread did so far.
#[inline]
pub fn publish(cell: usize) {
    if enabled() {
        core::on_publish(cell);
    }
}

/// Record an Arc-swap load from the cell at address `cell`.
#[inline]
pub fn load_published(cell: usize) {
    if enabled() {
        core::on_load(cell);
    }
}

/// Race-check a read of the shared table named by `site`. `instance`
/// distinguishes independent tables reached through the same code path
/// (e.g. one reply router per client thread) — pass the table's address.
#[inline]
pub fn access_read(site: &'static Site, instance: usize) {
    if enabled() {
        core::on_access(site, instance, false);
    }
}

/// Race-check a write of the shared table named by `site`; see
/// [`access_read`] for `instance`.
#[inline]
pub fn access_write(site: &'static Site, instance: usize) {
    if enabled() {
        core::on_access(site, instance, true);
    }
}

/// The calling thread is about to block on a wire/network call described
/// by `what`; any audited lock currently held is flagged as a
/// [`Kind::WireCall`] hazard.
#[inline]
pub fn note_wire_call(what: &str) {
    if enabled() {
        core::on_wire_call(what);
    }
}

/// Set (or clear with `None`) the virtual-clock lock-hold budget in
/// micros. Off by default — the virtual clock is global, so wall-clock
/// unrelated threads advance it and a default budget would fire
/// spuriously; opt in per experiment, or set
/// `PARDIS_AUDIT_HOLD_BUDGET_US` in the environment.
pub fn set_hold_budget_us(us: Option<u64>) {
    core::set_hold_budget(us);
}

/// Snapshot the findings so far: accumulated hazards/races plus the
/// lock-order cycles currently in the graph. Does not clear state.
pub fn report() -> AuditReport {
    core::build_report()
}

/// Clear all auditor state: the order graph, every vector clock, access
/// histories and findings. Call between independent scenarios in one
/// process so edges from one workload cannot implicate another.
pub fn reset() {
    core::reset_state();
}

/// Fail loudly on findings: panics with the rendered table when the
/// report has warnings or errors; prints advice to stderr. State is reset
/// either way.
pub fn enforce() {
    let report = report();
    reset();
    if !report.is_clean() {
        panic!("concurrency audit failed\n{}", report.render_table());
    }
    if !report.findings.is_empty() {
        eprintln!("{}", report.render_table());
    }
}

/// [`enforce`], but only when auditing was requested via `PARDIS_AUDIT=1`
/// (the e2e-suite teardown hook; a no-op in ordinary runs).
pub fn enforce_env() {
    if env_requested() {
        enforce();
    }
}

#[cfg(test)]
mod tests;
