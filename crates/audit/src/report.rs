//! Findings and the [`AuditReport`] they are collected into.
//!
//! Deliberately the same shape as `pardis-check`'s `CheckReport`: a
//! severity-tiered finding list with a fixed-width human table and a
//! dependency-free JSON rendering, so CI tooling written against one
//! analyzer's output parses the other's.

use std::fmt;

/// How bad a finding is. Ordering is by increasing badness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: a hazard worth knowing about, never a failure
    /// (hold-time budget overrun on the virtual clock, recovered poison).
    Advice,
    /// Probably a bug (a lock held across a wire call, a happens-before
    /// race on a shared table).
    Warning,
    /// A defect (a lock-order cycle, a re-entrant acquisition).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Advice => "advice",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The class of concurrency defect a finding reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A cycle in the static lock-order graph: two or more lock sites
    /// acquired in inconsistent nesting orders on different threads. A
    /// *potential* deadlock — reported even when no run ever deadlocks.
    LockCycle,
    /// Conflicting accesses to a shared table with no happens-before edge
    /// between them (vector-clock race detection over acquire/release,
    /// channel send/recv and publish/load edges).
    DataRace,
    /// An audited lock held across a `Network::transmit`/wire call: the
    /// hold time then includes modelled network latency, and the lock
    /// couples unrelated endpoints.
    WireCall,
    /// Lock hold time above the configured virtual-clock budget.
    HoldBudget,
    /// The same lock instance acquired again by the thread already holding
    /// it — guaranteed (mutex) or schedule-dependent (rwlock) deadlock.
    Reentrant,
    /// A poisoned lock was recovered by [`crate::AuditMutex`]'s
    /// recover-on-poison path instead of cascading the panic.
    Poisoned,
}

impl Kind {
    /// Stable machine-readable code, also used in the JSON rendering.
    pub fn code(self) -> &'static str {
        match self {
            Kind::LockCycle => "lock-cycle",
            Kind::DataRace => "data-race",
            Kind::WireCall => "wire-call-hazard",
            Kind::HoldBudget => "hold-budget",
            Kind::Reentrant => "reentrant-lock",
            Kind::Poisoned => "lock-poisoned",
        }
    }
}

/// One defect the auditor observed, attributed to the lock or memory site
/// that triggered it (`site = None` for graph-global findings).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Severity tier.
    pub severity: Severity,
    /// Defect class.
    pub kind: Kind,
    /// The `crate/file:line label` of the site the defect is attributed
    /// to, if any.
    pub site: Option<String>,
    /// Human-readable detail (witness threads, held-lock stacks, cycle
    /// members, vector-clock epochs).
    pub detail: String,
}

/// Everything the auditor found since the last [`crate::reset`].
///
/// Render with [`AuditReport::render_table`] for humans or
/// [`AuditReport::render_json`] for tooling; gate CI on
/// [`AuditReport::is_clean`] (advice does not fail a run).
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Lock sites the auditor observed at least one acquisition through.
    pub sites_seen: usize,
    /// All findings: accumulated hazard/race findings in the order they
    /// were recorded, then lock-order cycles in deterministic site order.
    pub findings: Vec<Finding>,
}

impl AuditReport {
    /// True when no finding is a warning or an error (advice is allowed).
    pub fn is_clean(&self) -> bool {
        self.findings.iter().all(|f| f.severity < Severity::Warning)
    }

    /// Findings at warning severity or above.
    pub fn failures(&self) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(|f| f.severity >= Severity::Warning)
    }

    /// Count findings of one class.
    pub fn count(&self, kind: Kind) -> usize {
        self.findings.iter().filter(|f| f.kind == kind).count()
    }

    /// Human-readable fixed-width table, one row per finding.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "pardis-audit report — {} lock site(s) observed, {} finding(s)\n",
            self.sites_seen,
            self.findings.len()
        ));
        if self.findings.is_empty() {
            out.push_str("  synchronization clean: no findings\n");
            return out;
        }
        out.push_str(&format!(
            "  {:<8} {:<18} {:<40} detail\n  {:-<8} {:-<18} {:-<40} {:-<40}\n",
            "severity", "kind", "site", "", "", "", ""
        ));
        for f in &self.findings {
            let site = f.site.as_deref().unwrap_or("-");
            out.push_str(&format!(
                "  {:<8} {:<18} {:<40} {}\n",
                f.severity.to_string(),
                f.kind.code(),
                site,
                f.detail
            ));
        }
        out
    }

    /// Machine-readable JSON rendering (no external deps; strings escaped).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"sites_seen\":{},\"findings\":[", self.sites_seen));
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let site = f
                .site
                .as_deref()
                .map_or_else(|| "null".to_string(), |s| format!("\"{}\"", escape_json(s)));
            out.push_str(&format!(
                "{{\"severity\":\"{}\",\"kind\":\"{}\",\"site\":{},\"detail\":\"{}\"}}",
                f.severity,
                f.kind.code(),
                site,
                escape_json(&f.detail)
            ));
        }
        out.push_str("]}");
        out
    }
}

pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
