//! Property/unit suite for the cycle detector, the vector-clock engine and
//! the hazard detectors: synthetic graphs (2-cycle, 3-cycle,
//! diamond-no-cycle), seeded random acquisition orders, and the
//! lock-held-across-transmit regression fixture.
//!
//! The auditor's state is process-global, so every test serializes on one
//! static mutex and resets the engine on entry and exit.

use crate::{AuditCondvar, AuditMutex, AuditRwLock, Kind, Severity, Site};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

/// Serialize on `SERIAL`, reset the engine, enable the gate; the returned
/// guard restores a disabled, clean engine on drop (even on panic).
fn audited() -> impl Drop {
    struct Restore(Option<std::sync::MutexGuard<'static, ()>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            crate::disable();
            crate::reset();
            self.0.take();
        }
    }
    let guard = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
    crate::reset();
    crate::enable();
    Restore(Some(guard))
}

/// Eight distinct sites for graph-shape tests.
static SITES: [Site; 8] = {
    const fn s(label: &'static str) -> Site {
        Site { label, krate: "pardis-audit", file: file!(), line: line!() }
    }
    [s("s0"), s("s1"), s("s2"), s("s3"), s("s4"), s("s5"), s("s6"), s("s7")]
};

fn locks() -> Vec<AuditMutex<u32>> {
    SITES.iter().map(|site| AuditMutex::new(site, 0)).collect()
}

/// Acquire `order` in sequence (guards stacked), then release in reverse.
fn chain(locks: &[AuditMutex<u32>], order: &[usize]) {
    let mut guards = Vec::new();
    for &i in order {
        guards.push(locks[i].lock());
    }
    while guards.pop().is_some() {}
}

#[test]
fn two_lock_cycle_detected_once_with_both_sites() {
    let _g = audited();
    let locks = locks();
    chain(&locks, &[0, 1]);
    chain(&locks, &[1, 0]);
    let report = crate::report();
    assert_eq!(report.count(Kind::LockCycle), 1, "{}", report.render_table());
    let f = report.findings.iter().find(|f| f.kind == Kind::LockCycle).unwrap();
    assert_eq!(f.severity, Severity::Error);
    assert!(f.detail.contains("`s0`") && f.detail.contains("`s1`"), "{}", f.detail);
    assert!(f.detail.matches("witness:").count() >= 2, "both witness stacks: {}", f.detail);
}

#[test]
fn three_lock_cycle_is_one_finding_naming_all_members() {
    let _g = audited();
    let locks = locks();
    chain(&locks, &[0, 1]);
    chain(&locks, &[1, 2]);
    chain(&locks, &[2, 0]);
    let report = crate::report();
    assert_eq!(report.count(Kind::LockCycle), 1, "{}", report.render_table());
    let f = report.findings.iter().find(|f| f.kind == Kind::LockCycle).unwrap();
    for s in ["`s0`", "`s1`", "`s2`"] {
        assert!(f.detail.contains(s), "missing {s} in {}", f.detail);
    }
}

#[test]
fn diamond_is_not_a_cycle() {
    let _g = audited();
    let locks = locks();
    chain(&locks, &[0, 1, 3]);
    chain(&locks, &[0, 2, 3]);
    let report = crate::report();
    assert!(report.is_clean(), "{}", report.render_table());
    assert_eq!(report.count(Kind::LockCycle), 0);
}

#[test]
fn prop_order_respecting_acquisitions_are_clean() {
    let _g = audited();
    let locks = locks();
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        // Random ascending chains: any interleaving that respects one
        // total order can never close a cycle.
        let mut order: Vec<usize> = Vec::new();
        let mut next = 0usize;
        while next < locks.len() && order.len() < 4 {
            next = rng.random_range(next..locks.len());
            order.push(next);
            next += 1;
        }
        chain(&locks, &order);
    }
    let report = crate::report();
    assert!(report.is_clean(), "{}", report.render_table());
    assert_eq!(report.count(Kind::LockCycle), 0);
}

#[test]
fn prop_seeded_inversion_always_caught() {
    for seed in 0..20u64 {
        let _g = audited();
        let locks = locks();
        let mut rng = StdRng::seed_from_u64(0xA0D17 + seed);
        let a = rng.random_range(0..locks.len() - 1);
        let b = rng.random_range(a + 1..locks.len());
        // Background of well-ordered traffic, then one inversion.
        for _ in 0..rng.random_range(0..6) {
            let x = rng.random_range(0..locks.len() - 1);
            let y = rng.random_range(x + 1..locks.len());
            chain(&locks, &[x, y]);
        }
        chain(&locks, &[a, b]);
        chain(&locks, &[b, a]);
        let report = crate::report();
        assert_eq!(
            report.count(Kind::LockCycle),
            1,
            "seed {seed} (pair {a},{b}):\n{}",
            report.render_table()
        );
    }
}

#[test]
fn reentrant_acquisition_is_an_error() {
    let _g = audited();
    let lock = AuditMutex::new(lock_site!("reentrant fixture"), 0u32);
    let g1 = lock.try_lock().expect("first acquisition");
    // A second `lock()` would genuinely self-deadlock; `try_lock` fails
    // at the std layer without reaching the hooks, so drive the check
    // through the engine the way a re-entrant `lock()` would.
    crate::core::on_locked(
        lock_site!("reentrant fixture second site"),
        instance_of(&g1),
        crate::core::Acq::Write,
    );
    let report = crate::report();
    assert_eq!(report.count(Kind::Reentrant), 1, "{}", report.render_table());
    assert!(!report.is_clean());
    drop(g1);
}

/// The engine keys re-entrancy by lock-instance address; recover it from
/// the guard's lock for the synthetic second acquisition above.
fn instance_of<T>(guard: &crate::AuditMutexGuard<'_, T>) -> usize {
    crate::sync::guard_instance(guard)
}

#[test]
fn lock_held_across_transmit_regression() {
    let _g = audited();
    let lock = AuditMutex::new(lock_site!("held across wire"), ());
    {
        let _held = lock.lock();
        crate::note_wire_call("Network::transmit");
    }
    let report = crate::report();
    assert_eq!(report.count(Kind::WireCall), 1, "{}", report.render_table());
    assert!(!report.is_clean());

    // Regression half two: the same call with nothing held is clean.
    crate::reset();
    crate::enable();
    crate::note_wire_call("Network::transmit");
    let report = crate::report();
    assert!(report.is_clean(), "{}", report.render_table());
}

#[test]
fn unsynchronized_writes_race_lock_synchronized_do_not() {
    let _g = audited();
    // Unsynchronized: two threads write the same table with no
    // happens-before edge between them (thread spawn/join edges are
    // deliberately not modelled — only lock/channel/publish edges order).
    let site = lock_site!("race fixture table");
    std::thread::spawn(move || crate::access_write(site, 1)).join().unwrap();
    std::thread::spawn(move || crate::access_write(site, 1)).join().unwrap();
    let report = crate::report();
    assert_eq!(report.count(Kind::DataRace), 1, "{}", report.render_table());

    // Synchronized: the same shape under one mutex is ordered by the
    // release→acquire edge.
    crate::reset();
    crate::enable();
    let site2 = lock_site!("guarded fixture table");
    let lock = std::sync::Arc::new(AuditMutex::new(lock_site!("fixture table lock"), ()));
    for _ in 0..2 {
        let lock = lock.clone();
        std::thread::spawn(move || {
            let _g = lock.lock();
            crate::access_write(site2, 1);
        })
        .join()
        .unwrap();
    }
    let report = crate::report();
    assert!(report.is_clean(), "{}", report.render_table());
}

#[test]
fn channel_and_publish_edges_order_accesses() {
    let _g = audited();
    let site = lock_site!("channel-ordered table");
    std::thread::spawn(move || {
        crate::access_write(site, 1);
        crate::chan_send(7);
    })
    .join()
    .unwrap();
    std::thread::spawn(move || {
        crate::chan_recv(7);
        crate::access_write(site, 1);
    })
    .join()
    .unwrap();
    let report = crate::report();
    assert!(report.is_clean(), "{}", report.render_table());

    crate::reset();
    crate::enable();
    let site = lock_site!("publish-ordered table");
    std::thread::spawn(move || {
        crate::access_write(site, 1);
        crate::publish(0xC0FFEE);
    })
    .join()
    .unwrap();
    std::thread::spawn(move || {
        crate::load_published(0xC0FFEE);
        crate::access_read(site, 1);
    })
    .join()
    .unwrap();
    let report = crate::report();
    assert!(report.is_clean(), "{}", report.render_table());
}

#[test]
fn hold_budget_is_opt_in_and_advice_only() {
    let _g = audited();
    static VIRT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    pardis_obs::set_clock_micros(std::sync::Arc::new(|| {
        VIRT.load(std::sync::atomic::Ordering::Relaxed)
    }));
    let lock = AuditMutex::new(lock_site!("budgeted lock"), ());

    // No budget configured: a long hold is not a finding.
    {
        let _held = lock.lock();
        VIRT.store(5_000, std::sync::atomic::Ordering::Relaxed);
    }
    assert!(crate::report().findings.is_empty(), "{}", crate::report().render_table());

    crate::set_hold_budget_us(Some(1_000));
    {
        let _held = lock.lock();
        VIRT.store(10_000, std::sync::atomic::Ordering::Relaxed);
    }
    let report = crate::report();
    assert_eq!(report.count(Kind::HoldBudget), 1, "{}", report.render_table());
    assert!(report.is_clean(), "hold budget is advice, not a failure");
    crate::set_hold_budget_us(None);
    pardis_obs::clear_clock();
}

#[test]
fn poisoned_lock_recovers_and_counts() {
    let _g = audited();
    let before = pardis_obs::counter("lock.poisoned").get();
    let lock = std::sync::Arc::new(AuditMutex::new(lock_site!("poisoned fixture"), 7u32));
    let poisoner = lock.clone();
    let _ = std::thread::spawn(move || {
        let _held = poisoner.lock();
        panic!("poison the guard");
    })
    .join();
    // Recovered, not a cascading panic — and the value is still there.
    assert_eq!(*lock.lock(), 7);
    assert_eq!(pardis_obs::counter("lock.poisoned").get(), before + 1);
    let report = crate::report();
    assert_eq!(report.count(Kind::Poisoned), 1, "{}", report.render_table());
    assert!(report.is_clean(), "recovered poison is advice");
}

#[test]
fn condvar_wait_releases_the_held_stack() {
    let _g = audited();
    let pair = std::sync::Arc::new((
        AuditMutex::new(lock_site!("condvar mutex"), false),
        AuditCondvar::new(),
    ));
    let notifier = pair.clone();
    let waiter = std::thread::spawn(move || {
        let (lock, cv) = &*notifier;
        let mut ready = lock.lock();
        while !*ready {
            cv.wait(&mut ready);
        }
    });
    {
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
    }
    waiter.join().unwrap();
    let report = crate::report();
    assert!(report.is_clean(), "{}", report.render_table());
}

#[test]
fn rwlock_participates_in_the_order_graph() {
    let _g = audited();
    let a = AuditRwLock::new(lock_site!("rw a"), ());
    let b = AuditMutex::new(lock_site!("mx b"), ());
    {
        let _ra = a.read();
        let _gb = b.lock();
    }
    {
        let _gb = b.lock();
        let _wa = a.write();
    }
    let report = crate::report();
    assert_eq!(report.count(Kind::LockCycle), 1, "{}", report.render_table());
}

#[test]
fn report_renders_table_and_json() {
    let _g = audited();
    let locks = locks();
    chain(&locks, &[0, 1]);
    chain(&locks, &[1, 0]);
    let report = crate::report();
    let table = report.render_table();
    assert!(table.contains("lock-cycle"), "{table}");
    let json = report.render_json();
    assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
    assert!(json.contains("\"kind\":\"lock-cycle\""), "{json}");
    assert!(json.contains("\"severity\":\"error\""), "{json}");
}

#[test]
fn disabled_gate_records_nothing() {
    let _g = audited();
    crate::disable();
    let locks = locks();
    chain(&locks, &[0, 1]);
    chain(&locks, &[1, 0]);
    crate::note_wire_call("Network::transmit");
    let report = crate::report();
    assert!(report.findings.is_empty(), "{}", report.render_table());
    assert_eq!(report.sites_seen, 0);
}
