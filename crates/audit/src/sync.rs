//! Audited drop-in lock wrappers over `std::sync` primitives.
//!
//! The wrappers expose the same surface as the workspace's `parking_lot`
//! stand-in — `lock()` returning a guard directly, `try_lock()` returning
//! an `Option`, `Condvar::wait(&mut guard)` — so sweeping a crate is a
//! type-and-constructor change, not a call-site rewrite. Two behaviours
//! are layered on top:
//!
//! * **Poison recovery** (always on): a poisoned guard is recovered via
//!   [`std::sync::PoisonError::into_inner`] instead of cascading the
//!   panic across ORB threads, and the `lock.poisoned` obs counter is
//!   bumped so the event is visible in metrics even with auditing off.
//! * **Audit hooks** (behind the gate): acquisition/release bookkeeping
//!   feeds the lock-order graph, the vector-clock engine and the hazard
//!   detectors in [`crate::core`]. With the gate off the only cost is one
//!   relaxed atomic load per operation.
//!
//! Whether a given guard participates in auditing is decided at
//! *acquisition* and remembered in the guard, so a gate flip mid-hold
//! never unbalances the held-lock stack.

use crate::core::{self, Acq};
use crate::Site;
use std::fmt;
use std::ops::{Deref, DerefMut};

fn recover<G>(r: Result<G, std::sync::PoisonError<G>>, site: &'static Site) -> G {
    r.unwrap_or_else(|e| {
        pardis_obs::counter("lock.poisoned").inc();
        if crate::enabled() {
            core::on_poison_recovered(site);
        }
        e.into_inner()
    })
}

/// A mutex whose acquisitions are tagged with a static [`Site`] and fed to
/// the audit engine when the gate is on.
pub struct AuditMutex<T> {
    site: &'static Site,
    inner: std::sync::Mutex<T>,
}

impl<T> AuditMutex<T> {
    /// Wrap `value`; `site` (from [`crate::lock_site!`]) names every
    /// acquisition of this lock in findings. `const` so audited locks can
    /// live in statics.
    pub const fn new(site: &'static Site, value: T) -> AuditMutex<T> {
        AuditMutex { site, inner: std::sync::Mutex::new(value) }
    }

    fn instance(&self) -> usize {
        &self.inner as *const _ as usize
    }

    /// Acquire, blocking; recovers poisoned guards (recording
    /// `lock.poisoned`) instead of panicking.
    pub fn lock(&self) -> AuditMutexGuard<'_, T> {
        let guard = recover(self.inner.lock(), self.site);
        let audited = crate::enabled();
        if audited {
            core::on_locked(self.site, self.instance(), Acq::Write);
        }
        AuditMutexGuard { lock: self, guard: Some(guard), audited }
    }

    /// Try to acquire without blocking.
    pub fn try_lock(&self) -> Option<AuditMutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => {
                let audited = crate::enabled();
                if audited {
                    core::on_locked(self.site, self.instance(), Acq::Write);
                }
                Some(AuditMutexGuard { lock: self, guard: Some(guard), audited })
            }
            Err(std::sync::TryLockError::WouldBlock) => None,
            Err(std::sync::TryLockError::Poisoned(e)) => {
                pardis_obs::counter("lock.poisoned").inc();
                let audited = crate::enabled();
                if audited {
                    core::on_poison_recovered(self.site);
                    core::on_locked(self.site, self.instance(), Acq::Write);
                }
                Some(AuditMutexGuard { lock: self, guard: Some(e.into_inner()), audited })
            }
        }
    }

    /// Exclusive access without locking (no audit hooks: `&mut self`
    /// proves no concurrency).
    pub fn get_mut(&mut self) -> &mut T {
        let site = self.site;
        recover(self.inner.get_mut(), site)
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        let site = self.site;
        recover(self.inner.into_inner(), site)
    }
}

impl<T: fmt::Debug> fmt::Debug for AuditMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditMutex").field("site", &self.site.label).finish_non_exhaustive()
    }
}

/// Guard for [`AuditMutex`]; release bookkeeping runs on drop when the
/// acquisition was audited.
pub struct AuditMutexGuard<'a, T> {
    lock: &'a AuditMutex<T>,
    /// `Option` so [`AuditCondvar::wait`] can hand the inner guard to the
    /// condvar and reinstall the re-acquired one.
    guard: Option<std::sync::MutexGuard<'a, T>>,
    audited: bool,
}

impl<T> Deref for AuditMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.guard.as_ref().expect("guard present outside wait")
    }
}

impl<T> DerefMut for AuditMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.guard.as_mut().expect("guard present outside wait")
    }
}

impl<T> Drop for AuditMutexGuard<'_, T> {
    fn drop(&mut self) {
        if self.audited {
            core::on_unlocked(self.lock.site, self.lock.instance());
        }
    }
}

/// The lock-instance id behind a guard — the engine's re-entrancy key.
/// Test-only: lets the suite drive a synthetic second acquisition of a
/// held instance without actually self-deadlocking on the std mutex.
#[cfg(test)]
pub(crate) fn guard_instance<T>(guard: &AuditMutexGuard<'_, T>) -> usize {
    guard.lock.instance()
}

/// A reader-writer lock whose acquisitions are tagged with a static
/// [`Site`] and fed to the audit engine when the gate is on.
pub struct AuditRwLock<T> {
    site: &'static Site,
    inner: std::sync::RwLock<T>,
}

impl<T> AuditRwLock<T> {
    /// Wrap `value`; see [`AuditMutex::new`].
    pub const fn new(site: &'static Site, value: T) -> AuditRwLock<T> {
        AuditRwLock { site, inner: std::sync::RwLock::new(value) }
    }

    fn instance(&self) -> usize {
        &self.inner as *const _ as usize
    }

    /// Acquire shared, blocking; recovers poison.
    pub fn read(&self) -> AuditReadGuard<'_, T> {
        let guard = recover(self.inner.read(), self.site);
        let audited = crate::enabled();
        if audited {
            core::on_locked(self.site, self.instance(), Acq::Read);
        }
        AuditReadGuard { lock: self, guard, audited }
    }

    /// Acquire exclusive, blocking; recovers poison.
    pub fn write(&self) -> AuditWriteGuard<'_, T> {
        let guard = recover(self.inner.write(), self.site);
        let audited = crate::enabled();
        if audited {
            core::on_locked(self.site, self.instance(), Acq::Write);
        }
        AuditWriteGuard { lock: self, guard, audited }
    }

    /// Exclusive access without locking (no audit hooks).
    pub fn get_mut(&mut self) -> &mut T {
        let site = self.site;
        recover(self.inner.get_mut(), site)
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        let site = self.site;
        recover(self.inner.into_inner(), site)
    }
}

impl<T: fmt::Debug> fmt::Debug for AuditRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditRwLock").field("site", &self.site.label).finish_non_exhaustive()
    }
}

/// Shared guard for [`AuditRwLock`].
pub struct AuditReadGuard<'a, T> {
    lock: &'a AuditRwLock<T>,
    guard: std::sync::RwLockReadGuard<'a, T>,
    audited: bool,
}

impl<T> Deref for AuditReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for AuditReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.audited {
            core::on_unlocked(self.lock.site, self.lock.instance());
        }
    }
}

/// Exclusive guard for [`AuditRwLock`].
pub struct AuditWriteGuard<'a, T> {
    lock: &'a AuditRwLock<T>,
    guard: std::sync::RwLockWriteGuard<'a, T>,
    audited: bool,
}

impl<T> Deref for AuditWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> DerefMut for AuditWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for AuditWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.audited {
            core::on_unlocked(self.lock.site, self.lock.instance());
        }
    }
}

/// Condition variable paired with [`AuditMutex`]: a wait releases and
/// re-acquires the mutex, and the audit bookkeeping mirrors that (the
/// held-lock stack does not show the mutex while the thread is parked).
pub struct AuditCondvar {
    inner: std::sync::Condvar,
}

impl Default for AuditCondvar {
    fn default() -> AuditCondvar {
        AuditCondvar::new()
    }
}

impl AuditCondvar {
    /// A fresh condvar.
    pub const fn new() -> AuditCondvar {
        AuditCondvar { inner: std::sync::Condvar::new() }
    }

    /// Park until notified, releasing the guard's mutex while parked.
    pub fn wait<T>(&self, guard: &mut AuditMutexGuard<'_, T>) {
        let site = guard.lock.site;
        let instance = guard.lock.instance();
        if guard.audited {
            core::on_unlocked(site, instance);
        }
        let inner = guard.guard.take().expect("guard present outside wait");
        let inner = recover(self.inner.wait(inner), site);
        if guard.audited {
            core::on_locked(site, instance, Acq::Write);
        }
        guard.guard = Some(inner);
    }

    /// Park until notified or `timeout` elapses; true when notified.
    pub fn wait_timeout<T>(
        &self,
        guard: &mut AuditMutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> bool {
        let site = guard.lock.site;
        let instance = guard.lock.instance();
        if guard.audited {
            core::on_unlocked(site, instance);
        }
        let inner = guard.guard.take().expect("guard present outside wait");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, !r.timed_out()),
            Err(e) => {
                pardis_obs::counter("lock.poisoned").inc();
                if crate::enabled() {
                    core::on_poison_recovered(site);
                }
                let (g, r) = e.into_inner();
                (g, !r.timed_out())
            }
        };
        if guard.audited {
            core::on_locked(site, instance, Acq::Write);
        }
        guard.guard = Some(inner);
        res
    }

    /// Wake one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for AuditCondvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditCondvar").finish_non_exhaustive()
    }
}
