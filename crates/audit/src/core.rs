//! The audit engine: lock-order graph, vector-clock happens-before
//! checker, and hazard detectors.
//!
//! All state lives behind one plain `std::sync::Mutex` (never an audited
//! wrapper — the auditor does not audit itself). Every hook is a single
//! short critical section; the gate in `lib.rs` keeps all of this off the
//! path entirely when auditing is disabled.

use crate::report::{AuditReport, Finding, Kind, Severity};
use crate::Site;
use std::cell::Cell;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// A vector clock: logical time per audited thread, indexed by thread id.
type Vc = Vec<u32>;

fn vc_join(into: &mut Vc, other: &Vc) {
    if into.len() < other.len() {
        into.resize(other.len(), 0);
    }
    for (a, b) in into.iter_mut().zip(other.iter()) {
        *a = (*a).max(*b);
    }
}

/// Does epoch `(tid, clk)` happen-before the thread whose clock is `vc`?
fn epoch_hb(tid: usize, clk: u32, vc: &Vc) -> bool {
    vc.get(tid).copied().unwrap_or(0) >= clk
}

/// How a lock site was acquired — reads may share, writes exclude. Only
/// the re-entrancy diagnosis differs; the order graph is conservative and
/// tracks both identically (writer-priority interactions can deadlock
/// read cycles too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Acq {
    /// Exclusive acquisition (mutex lock, rwlock write).
    Write,
    /// Shared acquisition (rwlock read).
    Read,
}

/// One lock currently held by some thread.
struct Held {
    /// Address of the static [`Site`] — the stable site id.
    site: usize,
    /// Address of the lock instance (re-entrancy is per-instance).
    instance: usize,
    /// Virtual-clock micros at acquisition, for the hold budget.
    since_us: u64,
}

/// First witness recorded for a lock-order edge `held → acquired`.
struct EdgeWitness {
    /// Name of the witnessing thread.
    thread: String,
    /// Labels of every lock held at the moment of acquisition, outermost
    /// first (the "witness stack").
    held_stack: Vec<String>,
}

/// Last-access bookkeeping for one audited memory site (shared table).
#[derive(Default)]
struct MemState {
    /// Epoch and thread name of the last write.
    last_write: Option<(usize, u32, String)>,
    /// Per-thread read epochs since the last write.
    reads: BTreeMap<usize, (u32, String)>,
}

/// All auditor state. One instance per process, behind [`lock_core`].
pub(crate) struct CoreState {
    /// Bumped by reset; thread-local tids from an older epoch are
    /// re-allocated on first use so a reset fully clears the clocks.
    epoch: u64,
    next_tid: usize,
    thread_vcs: Vec<Vc>,
    thread_names: Vec<String>,
    /// Per-thread stacks of currently held audited locks.
    held: Vec<Vec<Held>>,
    /// Site registry: site address → the site, for rendering.
    sites: HashMap<usize, &'static Site>,
    /// Lock-order graph: `(held site, acquired site)` → first witness.
    edges: HashMap<(usize, usize), EdgeWitness>,
    /// Release clocks per lock instance (acquire joins, release stores).
    lock_clocks: HashMap<usize, Vc>,
    /// Happens-before clocks per channel id (send joins in, recv joins out).
    chan_clocks: HashMap<u64, Vc>,
    /// Happens-before clocks per publish/load cell (Arc-swap snapshots).
    pub_clocks: HashMap<usize, Vc>,
    /// Access history per audited memory site *instance* — keyed
    /// `(site address, instance address)` so independent tables behind
    /// the same code path (one router per client thread, one reply cache
    /// per adapter) never cross-implicate.
    mem: HashMap<(usize, usize), MemState>,
    /// Accumulated hazard/race/poison findings (cycles are derived from
    /// `edges` at report time).
    findings: Vec<Finding>,
    /// Dedup keys so a hot path reports each distinct defect once.
    dedup: HashSet<(u8, usize, usize)>,
    /// Hold-time budget on the virtual clock, micros. Opt-in: `None`
    /// disables the detector (the global virtual clock advances from
    /// other threads, so a default budget would fire spuriously).
    hold_budget_us: Option<u64>,
}

impl CoreState {
    fn new() -> CoreState {
        CoreState {
            epoch: 1,
            next_tid: 0,
            thread_vcs: Vec::new(),
            thread_names: Vec::new(),
            held: Vec::new(),
            sites: HashMap::new(),
            edges: HashMap::new(),
            lock_clocks: HashMap::new(),
            chan_clocks: HashMap::new(),
            pub_clocks: HashMap::new(),
            mem: HashMap::new(),
            findings: Vec::new(),
            dedup: HashSet::new(),
            hold_budget_us: std::env::var("PARDIS_AUDIT_HOLD_BUDGET_US")
                .ok()
                .and_then(|v| v.parse().ok()),
        }
    }

    fn reset(&mut self) {
        // Monotone across resets so no thread's cached tid ever matches a
        // post-reset epoch (including the initial epoch 1).
        static RESETS: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let budget = self.hold_budget_us;
        *self = CoreState::new();
        self.hold_budget_us = budget;
        self.epoch = RESETS.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
    }
}

thread_local! {
    /// `(core epoch, tid)` — tid is valid only while the epoch matches.
    static TID: Cell<(u64, usize)> = const { Cell::new((0, 0)) };
}

fn lock_core() -> MutexGuard<'static, CoreState> {
    static CORE: OnceLock<Mutex<CoreState>> = OnceLock::new();
    // The auditor's own lock is never audited and each hook is a short
    // straight-line section; recover from poison (a panicking caller mid
    // hook) rather than cascading.
    CORE.get_or_init(|| Mutex::new(CoreState::new())).lock().unwrap_or_else(|e| e.into_inner())
}

/// The calling thread's id in `st`, allocating on first use (or after a
/// reset invalidated the cached one).
fn tid(st: &mut CoreState) -> usize {
    TID.with(|c| {
        let (epoch, t) = c.get();
        if epoch == st.epoch {
            return t;
        }
        let t = st.next_tid;
        st.next_tid += 1;
        let mut vc = vec![0; t + 1];
        vc[t] = 1;
        st.thread_vcs.push(vc);
        st.thread_names.push(
            std::thread::current().name().map_or_else(|| format!("thread-{t}"), str::to_string),
        );
        st.held.push(Vec::new());
        c.set((st.epoch, t));
        t
    })
}

fn site_desc(site: &Site) -> String {
    format!("{}/{}:{} `{}`", site.krate, site.file, site.line, site.label)
}

fn record(st: &mut CoreState, dedup: (u8, usize, usize), finding: Finding) {
    if st.dedup.insert(dedup) {
        st.findings.push(finding);
    }
}

/// Acquisition bookkeeping, called *after* the underlying lock succeeded:
/// re-entrancy check, lock-order edges from every held lock, push onto the
/// held stack, and the happens-before join from the lock's release clock.
pub(crate) fn on_locked(site: &'static Site, instance: usize, acq: Acq) {
    let mut st = lock_core();
    let st = &mut *st;
    let t = tid(st);
    let site_id = site as *const Site as usize;
    st.sites.entry(site_id).or_insert(site);

    if st.held[t].iter().any(|h| h.instance == instance) {
        let finding = Finding {
            severity: Severity::Error,
            kind: Kind::Reentrant,
            site: Some(site_desc(site)),
            detail: format!(
                "thread `{}` re-acquired a lock it already holds ({})",
                st.thread_names[t],
                match acq {
                    Acq::Write => "exclusive: guaranteed self-deadlock",
                    Acq::Read => "shared: deadlocks under writer priority",
                }
            ),
        };
        record(st, (0, instance, 0), finding);
    }

    // One order edge per held lock, first witness wins. Self-edges are
    // skipped: same-site nesting (two instances reached through one code
    // path) is ordered by construction, and flagging it would damn every
    // striping pattern.
    for i in 0..st.held[t].len() {
        let held_site = st.held[t][i].site;
        if held_site == site_id || st.edges.contains_key(&(held_site, site_id)) {
            continue;
        }
        let witness = EdgeWitness {
            thread: st.thread_names[t].clone(),
            held_stack: st.held[t].iter().map(|h| site_desc(st.sites[&h.site])).collect(),
        };
        st.edges.insert((held_site, site_id), witness);
    }

    st.held[t].push(Held { site: site_id, instance, since_us: pardis_obs::now_micros() });

    if let Some(clock) = st.lock_clocks.get(&instance).cloned() {
        vc_join(&mut st.thread_vcs[t], &clock);
    }
}

/// Release bookkeeping: pop the held entry, check the hold budget, publish
/// the thread's clock into the lock's release clock, advance the epoch.
pub(crate) fn on_unlocked(site: &'static Site, instance: usize) {
    let mut st = lock_core();
    let st = &mut *st;
    let t = tid(st);
    if let Some(pos) = st.held[t].iter().rposition(|h| h.instance == instance) {
        let held = st.held[t].remove(pos);
        if let Some(budget) = st.hold_budget_us {
            let held_us = pardis_obs::now_micros().saturating_sub(held.since_us);
            if held_us > budget {
                let finding = Finding {
                    severity: Severity::Advice,
                    kind: Kind::HoldBudget,
                    site: Some(site_desc(site)),
                    detail: format!(
                        "thread `{}` held the lock {held_us}µs of virtual time (budget \
                         {budget}µs)",
                        st.thread_names[t]
                    ),
                };
                record(st, (1, held.site, 0), finding);
            }
        }
    }
    let t_vc = st.thread_vcs[t].clone();
    vc_join(st.lock_clocks.entry(instance).or_default(), &t_vc);
    st.thread_vcs[t][t] += 1;
}

/// A blocking wire/network call is about to run on this thread; flag every
/// audited lock currently held across it.
pub(crate) fn on_wire_call(what: &str) {
    let mut st = lock_core();
    let st = &mut *st;
    let t = tid(st);
    let mut what_hash = 0usize;
    for b in what.bytes() {
        what_hash = what_hash.wrapping_mul(31).wrapping_add(b as usize);
    }
    for i in 0..st.held[t].len() {
        let site_id = st.held[t][i].site;
        let finding = Finding {
            severity: Severity::Warning,
            kind: Kind::WireCall,
            site: Some(site_desc(st.sites[&site_id])),
            detail: format!(
                "thread `{}` holds this lock across {what}: hold time includes modelled \
                 network latency",
                st.thread_names[t]
            ),
        };
        record(st, (2, site_id, what_hash), finding);
    }
}

/// Happens-before: a channel send. The sender's clock joins the channel's
/// clock (over-approximate: every send orders before every later recv).
pub(crate) fn on_chan_send(chan: u64) {
    let mut st = lock_core();
    let st = &mut *st;
    let t = tid(st);
    let t_vc = st.thread_vcs[t].clone();
    vc_join(st.chan_clocks.entry(chan).or_default(), &t_vc);
    st.thread_vcs[t][t] += 1;
}

/// Happens-before: a channel receive joins the channel's clock into the
/// receiver.
pub(crate) fn on_chan_recv(chan: u64) {
    let mut st = lock_core();
    let st = &mut *st;
    let t = tid(st);
    if let Some(clock) = st.chan_clocks.get(&chan).cloned() {
        vc_join(&mut st.thread_vcs[t], &clock);
    }
}

/// Happens-before: an Arc-swap publish (`Published::store`). Everything
/// the publisher did orders before any load that observes the snapshot.
pub(crate) fn on_publish(cell: usize) {
    let mut st = lock_core();
    let st = &mut *st;
    let t = tid(st);
    let t_vc = st.thread_vcs[t].clone();
    vc_join(st.pub_clocks.entry(cell).or_default(), &t_vc);
    st.thread_vcs[t][t] += 1;
}

/// Happens-before: an Arc-swap load (`Published::load`) joins the cell's
/// publish clock into the loader.
pub(crate) fn on_load(cell: usize) {
    let mut st = lock_core();
    let st = &mut *st;
    let t = tid(st);
    if let Some(clock) = st.pub_clocks.get(&cell).cloned() {
        vc_join(&mut st.thread_vcs[t], &clock);
    }
}

/// Race-check one access to an audited shared table. FastTrack-style: the
/// last write must happen-before every later access; reads accumulate per
/// thread and must all happen-before the next write.
pub(crate) fn on_access(site: &'static Site, instance: usize, write: bool) {
    let mut st = lock_core();
    let st = &mut *st;
    let t = tid(st);
    let site_id = site as *const Site as usize;
    let name = st.thread_names[t].clone();
    let my_vc = st.thread_vcs[t].clone();
    let my_clk = my_vc.get(t).copied().unwrap_or(0);
    let mem = st.mem.entry((site_id, instance)).or_default();

    let mut race: Option<String> = None;
    if let Some((w_tid, w_clk, w_name)) = &mem.last_write {
        if *w_tid != t && !epoch_hb(*w_tid, *w_clk, &my_vc) {
            race = Some(format!(
                "prior write by `{w_name}` is not ordered before this {} by `{name}`",
                if write { "write" } else { "read" }
            ));
        }
    }
    if write && race.is_none() {
        for (r_tid, (r_clk, r_name)) in &mem.reads {
            if *r_tid != t && !epoch_hb(*r_tid, *r_clk, &my_vc) {
                race = Some(format!(
                    "prior read by `{r_name}` is not ordered before this write by `{name}`"
                ));
                break;
            }
        }
    }

    if write {
        mem.last_write = Some((t, my_clk, name));
        mem.reads.clear();
    } else {
        mem.reads.insert(t, (my_clk, name));
    }

    if let Some(detail) = race {
        let finding = Finding {
            severity: Severity::Warning,
            kind: Kind::DataRace,
            site: Some(site_desc(site)),
            detail,
        };
        record(st, (4, site_id ^ instance.rotate_left(16), usize::from(write)), finding);
    }
}

/// A poisoned lock was recovered; record the advice finding (the
/// `lock.poisoned` obs counter is bumped by the wrapper, gate-independent).
pub(crate) fn on_poison_recovered(site: &'static Site) {
    let mut st = lock_core();
    let st = &mut *st;
    let site_id = site as *const Site as usize;
    st.sites.entry(site_id).or_insert(site);
    record(
        st,
        (5, site_id, 0),
        Finding {
            severity: Severity::Advice,
            kind: Kind::Poisoned,
            site: Some(site_desc(site)),
            detail: "recovered a poisoned guard (a holder panicked); state may be mid-update"
                .to_string(),
        },
    );
}

/// Set (or clear) the virtual-clock hold-time budget programmatically.
pub(crate) fn set_hold_budget(us: Option<u64>) {
    lock_core().hold_budget_us = us;
}

/// Strongly-connected components of the lock-order graph (iterative
/// Tarjan). Nodes are site addresses; only components with ≥ 2 members
/// are returned (self-edges never enter the graph).
fn sccs(nodes: &[usize], edges: &HashMap<(usize, usize), EdgeWitness>) -> Vec<Vec<usize>> {
    let index_of: HashMap<usize, usize> = nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
    for (from, to) in edges.keys() {
        adj[index_of[from]].push(index_of[to]);
    }
    for a in &mut adj {
        a.sort_unstable();
    }

    let n = nodes.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack = Vec::new();
    let mut next = 0usize;
    let mut out = Vec::new();
    let mut frames: Vec<(usize, usize)> = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        frames.push((root, 0));
        while let Some(&(v, cursor)) = frames.last() {
            if cursor == 0 {
                index[v] = next;
                low[v] = next;
                next += 1;
                stack.push(v);
                on_stack[v] = true;
            }
            if let Some(&w) = adj[v].get(cursor) {
                frames.last_mut().expect("frame present").1 += 1;
                if index[w] == usize::MAX {
                    frames.push((w, 0));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                frames.pop();
                if let Some(&(parent, _)) = frames.last() {
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let mut comp = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        comp.push(nodes[w]);
                        if w == v {
                            break;
                        }
                    }
                    if comp.len() > 1 {
                        out.push(comp);
                    }
                }
            }
        }
    }
    out
}

/// Build the report: accumulated findings plus one [`Kind::LockCycle`]
/// finding per strongly-connected component of the order graph, each
/// naming every member site and quoting the witness stack of every edge
/// inside the component.
pub(crate) fn build_report() -> AuditReport {
    let st = lock_core();
    let mut findings = st.findings.clone();

    let mut nodes: Vec<usize> = st.sites.keys().copied().collect();
    nodes.sort_by_key(|id| {
        let s = st.sites[id];
        (s.krate, s.file, s.line)
    });

    let mut comps = sccs(&nodes, &st.edges);
    for comp in &mut comps {
        comp.sort_by_key(|id| {
            let s = st.sites[id];
            (s.krate, s.file, s.line)
        });
    }
    comps.sort_by_key(|comp| {
        let s = st.sites[&comp[0]];
        (s.krate, s.file, s.line)
    });

    for comp in comps {
        let members: Vec<String> = comp.iter().map(|id| site_desc(st.sites[id])).collect();
        let in_comp: HashSet<usize> = comp.iter().copied().collect();
        // Witnesses sorted by rendered site pair: deterministic across
        // runs (site *addresses* are not).
        let mut edge_lines: Vec<(String, String)> = st
            .edges
            .iter()
            .filter(|((f, to), _)| in_comp.contains(f) && in_comp.contains(to))
            .map(|((_, to), w)| {
                (
                    site_desc(st.sites[to]),
                    format!(
                        "witness: thread `{}` acquired {} while holding [{}]",
                        w.thread,
                        site_desc(st.sites[to]),
                        w.held_stack.join(" -> ")
                    ),
                )
            })
            .collect();
        edge_lines.sort();
        let mut detail = format!("inconsistent lock order over {{{}}}", members.join(", "));
        for (_, line) in edge_lines {
            detail.push_str("; ");
            detail.push_str(&line);
        }
        findings.push(Finding {
            severity: Severity::Error,
            kind: Kind::LockCycle,
            site: Some(site_desc(st.sites[&comp[0]])),
            detail,
        });
    }

    AuditReport { sites_seen: st.sites.len(), findings }
}

/// Clear all auditor state (graph, clocks, findings); thread ids allocate
/// afresh on next use.
pub(crate) fn reset_state() {
    lock_core().reset();
}
