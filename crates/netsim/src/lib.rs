//! Network simulation substrate for PARDIS.
//!
//! The original PARDIS evaluation ran on a testbed of SGI and IBM SP/2
//! machines joined by a dedicated 155 Mb/s ATM link (figures 2 and 4) and by
//! Ethernet (figure 5). This crate replaces that hardware with a simple but
//! faithful cost model: every pair of [`Host`]s is joined by a [`Link`] with a
//! fixed latency, a bandwidth, and a fixed per-message software overhead. The
//! time to move an `n`-byte message is
//!
//! ```text
//! t(n) = latency + overhead + n / bandwidth
//! ```
//!
//! which is the classic alpha/beta (Hockney) model. Transfers inside one host
//! use the host's loopback link (typically near-zero cost).
//!
//! The simulator supports two clock modes:
//!
//! * **Scaled real time** ([`Network::charge`]): the caller is put to sleep for
//!   the modelled duration multiplied by a global [`TimeScale`]. This is what
//!   the figure-reproduction harnesses use — real computation runs at full
//!   speed while communication costs are injected at a scale that keeps a
//!   whole parameter sweep under a minute.
//! * **Virtual time** ([`Network::charge_virtual`]): no sleeping; the modelled
//!   cost is accumulated on a per-host virtual clock. Deterministic, used by
//!   unit tests of the cost model itself.
//!
//! A third mode layers **deterministic fault injection** on either clock: a
//! seeded [`FaultPlan`] (drop probability, duplication, burst loss, timed
//! link-down windows) attaches per link or network-wide, and
//! [`Network::deliver`] returns a [`Verdict`] the transport must honour
//! instead of assuming every frame arrives. Without a plan installed,
//! `deliver` is bit-identical to [`Network::charge`].

mod clock;
mod engine;
mod fault;
mod link;
mod network;
mod publish;

pub use clock::{TimeScale, VirtualClock};
pub use engine::{LinkUsage, TransportMode};
pub use fault::{FaultPlan, FaultStats, Verdict};
pub use link::{Link, LinkPreset};
pub use network::{Host, HostId, Network};
pub use publish::Published;

#[cfg(test)]
mod tests;
