//! Lock-free publication of immutable snapshots.
//!
//! [`Published<T>`] holds an `Arc<T>` that readers load with a single atomic
//! RMW and no lock acquisition — the mechanism behind the steady-state
//! zero-lock guarantee of frame routing ([`crate::Network`]'s topology
//! snapshot and the ORB's endpoint table). Writers install a whole new
//! snapshot; readers that raced keep the old one alive through their own
//! `Arc`.
//!
//! Reclamation is deliberately deferred: every snapshot ever stored stays
//! alive until the `Published` itself drops, which is what makes the
//! unsynchronised pointer read safe without epochs or hazard pointers.
//! Memory therefore grows with the number of *stores*, not loads — fine for
//! topologies and endpoint tables, which mutate during setup and then go
//! read-only.

use pardis_audit::{lock_site, AuditMutex};
use std::sync::atomic::{AtomicPtr, Ordering};
use std::sync::Arc;

/// An atomically swappable, lock-free-readable `Arc<T>` slot.
pub struct Published<T> {
    /// Raw pointer of the current snapshot. Always points into one of the
    /// `Arc`s retained in `kept`, so it can never dangle.
    current: AtomicPtr<T>,
    /// Every snapshot ever stored (including the current one). Drained only
    /// when the `Published` drops.
    kept: AuditMutex<Vec<Arc<T>>>,
}

impl<T> Published<T> {
    /// Publish an initial snapshot.
    pub fn new(value: T) -> Published<T> {
        let arc = Arc::new(value);
        let ptr = Arc::as_ptr(&arc) as *mut T;
        Published {
            current: AtomicPtr::new(ptr),
            kept: AuditMutex::new(lock_site!("publish: retained snapshots"), vec![arc]),
        }
    }

    /// Load the current snapshot without acquiring any lock.
    pub fn load(&self) -> Arc<T> {
        pardis_audit::load_published(self as *const _ as *const () as usize);
        let ptr = self.current.load(Ordering::Acquire);
        // SAFETY: `ptr` was produced by `Arc::as_ptr` on an `Arc` that `kept`
        // retains until `self` drops, so the allocation is alive and holds at
        // least one strong reference for the duration of this call.
        unsafe {
            Arc::increment_strong_count(ptr);
            Arc::from_raw(ptr)
        }
    }

    /// Install a new snapshot. Readers switch over atomically; in-flight
    /// loads of the previous snapshot stay valid.
    pub fn store(&self, value: T) {
        let arc = Arc::new(value);
        let ptr = Arc::as_ptr(&arc) as *mut T;
        let mut kept = self.kept.lock();
        kept.push(arc);
        // Record the happens-before edge before the pointer swap: no reader
        // can observe the new snapshot without the publish clock already
        // holding everything this thread did.
        pardis_audit::publish(self as *const _ as *const () as usize);
        self.current.store(ptr, Ordering::Release);
    }

    /// Number of snapshots retained (diagnostics; grows by one per store).
    pub fn generations(&self) -> usize {
        self.kept.lock().len()
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Published<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Published").field("current", &self.load()).finish()
    }
}
