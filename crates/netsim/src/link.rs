//! Link cost model.

use std::time::Duration;

/// A point-to-point link characterised by the Hockney (alpha/beta) model plus
/// a fixed per-message software overhead.
///
/// `transfer_time(n) = latency + overhead + n / bandwidth`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// One-way wire latency in seconds.
    pub latency_s: f64,
    /// Bandwidth in bytes per second.
    pub bandwidth_bps: f64,
    /// Fixed per-message software overhead in seconds (protocol stack,
    /// marshaling entry/exit — the `t_o` of figure 2's cost equation).
    pub overhead_s: f64,
    /// Shared medium: concurrent transfers serialise (classic half-duplex
    /// Ethernet). Dedicated/switched links let transfers overlap.
    pub shared: bool,
}

/// Named link configurations matching the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkPreset {
    /// Dedicated 155 Mb/s ATM (OC-3) link between HOST 1 and HOST 2
    /// (figures 2 and 4).
    AtmOc3,
    /// Shared 10 Mb/s Ethernet between the SGI PC and the IBM SP/2
    /// (figure 5).
    Ethernet10,
    /// 100 Mb/s Ethernet, for what-if sweeps.
    Ethernet100,
    /// Loopback / shared memory inside one host.
    Loopback,
}

impl LinkPreset {
    /// Materialise the preset as a [`Link`].
    pub fn link(self) -> Link {
        match self {
            // 155 Mb/s ≈ 19.4 MB/s payload; ATM SAR + AAL5 keeps latency low.
            // Dedicated: transfers in different directions/threads overlap.
            LinkPreset::AtmOc3 => Link::new(0.000_9, 155.0e6 / 8.0, 0.000_6),
            // 10 Mb/s *shared* Ethernet with a mid-90s IP stack: one frame
            // on the wire at a time.
            LinkPreset::Ethernet10 => Link::new(0.001_2, 10.0e6 / 8.0, 0.001_0).shared_medium(),
            LinkPreset::Ethernet100 => Link::new(0.000_5, 100.0e6 / 8.0, 0.000_4),
            // Same-host transport: memcpy-class bandwidth, negligible latency.
            LinkPreset::Loopback => Link::new(0.000_005, 400.0e6, 0.000_005),
        }
    }
}

impl Link {
    /// Create a link from raw parameters.
    ///
    /// # Panics
    /// Panics if `bandwidth_bps` is not strictly positive or any parameter is
    /// negative or non-finite.
    pub fn new(latency_s: f64, bandwidth_bps: f64, overhead_s: f64) -> Self {
        assert!(
            latency_s.is_finite() && latency_s >= 0.0,
            "latency must be finite and non-negative"
        );
        assert!(
            bandwidth_bps.is_finite() && bandwidth_bps > 0.0,
            "bandwidth must be finite and positive"
        );
        assert!(
            overhead_s.is_finite() && overhead_s >= 0.0,
            "overhead must be finite and non-negative"
        );
        Link { latency_s, bandwidth_bps, overhead_s, shared: false }
    }

    /// Mark this link as a shared medium (transfers serialise).
    pub fn shared_medium(mut self) -> Self {
        self.shared = true;
        self
    }

    /// A zero-cost link (useful to disable network accounting in tests).
    pub fn free() -> Self {
        Link::new(0.0, f64::MAX / 4.0, 0.0)
    }

    /// Modelled time to move `bytes` across this link, in seconds.
    pub fn transfer_seconds(&self, bytes: usize) -> f64 {
        self.latency_s + self.overhead_s + bytes as f64 / self.bandwidth_bps
    }

    /// Modelled time to move `bytes` across this link.
    pub fn transfer_time(&self, bytes: usize) -> Duration {
        Duration::from_secs_f64(self.transfer_seconds(bytes))
    }

    /// Effective throughput in bytes/second for messages of a given size,
    /// i.e. `bytes / transfer_seconds(bytes)`. Approaches `bandwidth_bps`
    /// as the message grows.
    pub fn effective_throughput(&self, bytes: usize) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        bytes as f64 / self.transfer_seconds(bytes)
    }

    /// The message size at which half of the peak bandwidth is achieved
    /// (the classic `n_1/2` metric).
    pub fn n_half(&self) -> usize {
        ((self.latency_s + self.overhead_s) * self.bandwidth_bps).ceil() as usize
    }
}
