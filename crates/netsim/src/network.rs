//! Host registry and delay injection.

use crate::fault::{FaultState, FrameFate};
use crate::{FaultPlan, FaultStats, Link, LinkPreset, TimeScale, Verdict, VirtualClock};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Opaque identifier of a registered host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub(crate) u32);

impl HostId {
    /// Raw numeric id (stable for the lifetime of the [`Network`]).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild a `HostId` from its raw value (used when object references
    /// cross the wire). Only meaningful within the network that issued it.
    pub fn from_raw(raw: u32) -> HostId {
        HostId(raw)
    }
}

/// A registered host: a named machine in the simulated testbed.
#[derive(Debug, Clone)]
pub struct Host {
    /// Identifier within the owning network.
    pub id: HostId,
    /// Human-readable name, e.g. `"HOST_1"`.
    pub name: String,
    /// Loopback link used for intra-host transfers.
    pub loopback: Link,
    /// Relative compute speed of one processor of this host (1.0 = baseline).
    /// Figure 2 depends on HOST 2 being the faster machine.
    pub speed: f64,
}

struct Inner {
    hosts: Vec<Host>,
    by_name: HashMap<String, HostId>,
    links: HashMap<(HostId, HostId), Link>,
    default_link: Link,
    /// One wire-guard per unordered host pair, taken while a transfer over
    /// a shared-medium link is in flight.
    medium_locks: HashMap<(HostId, HostId), Arc<parking_lot::Mutex<()>>>,
}

/// Fault-injection state, kept outside `Inner` so the hot lossless path
/// never takes the registry lock for it.
#[derive(Default)]
struct Faults {
    /// Network-wide plan (inter-host links only; loopback is exempt).
    global: Option<FaultPlan>,
    /// Per-link overrides (win over the global plan). `None` exempts the
    /// link explicitly.
    per_link: HashMap<(HostId, HostId), Option<FaultPlan>>,
    /// Lazily materialised per-directed-link schedule state.
    states: HashMap<(HostId, HostId), FaultState>,
}

/// The simulated testbed: a set of hosts and the links joining them.
///
/// Cloning a `Network` is cheap and shares all state.
#[derive(Clone)]
pub struct Network {
    inner: Arc<RwLock<Inner>>,
    scale: TimeScale,
    clock: VirtualClock,
    /// Fast gate: false means no plan anywhere and [`Network::deliver`] is
    /// exactly [`Network::charge`] plus one relaxed load.
    faults_on: Arc<AtomicBool>,
    faults: Arc<Mutex<Faults>>,
    dropped: Arc<AtomicU64>,
    duplicated: Arc<AtomicU64>,
    delivered: Arc<AtomicU64>,
    burst_dropped: Arc<AtomicU64>,
    down_dropped: Arc<AtomicU64>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new(TimeScale::off())
    }
}

impl Network {
    /// Create an empty network with the given time scale for delay injection.
    pub fn new(scale: TimeScale) -> Self {
        Network {
            inner: Arc::new(RwLock::new(Inner {
                hosts: Vec::new(),
                by_name: HashMap::new(),
                links: HashMap::new(),
                default_link: LinkPreset::Ethernet10.link(),
                medium_locks: HashMap::new(),
            })),
            scale,
            clock: VirtualClock::new(),
            faults_on: Arc::new(AtomicBool::new(false)),
            faults: Arc::new(Mutex::new(Faults::default())),
            dropped: Arc::new(AtomicU64::new(0)),
            duplicated: Arc::new(AtomicU64::new(0)),
            delivered: Arc::new(AtomicU64::new(0)),
            burst_dropped: Arc::new(AtomicU64::new(0)),
            down_dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The paper's figure 2/4 testbed: `HOST_1` (4-node SGI Onyx, slower
    /// processors) and `HOST_2` (10-node SGI PowerChallenge, faster
    /// processors) joined by a dedicated ATM OC-3 link.
    pub fn paper_atm_testbed(scale: TimeScale) -> Self {
        let net = Network::new(scale);
        net.add_host_with_speed("HOST_1", 1.0);
        net.add_host_with_speed("HOST_2", 1.8);
        net.connect_by_name("HOST_1", "HOST_2", LinkPreset::AtmOc3.link());
        net
    }

    /// The paper's figure 5 testbed: the SGI PC (diffusion + its visualizer)
    /// and the IBM SP/2 (gradient), communicating over Ethernet; an SGI Indy
    /// workstation runs the gradient's visualizer.
    pub fn paper_ethernet_testbed(scale: TimeScale) -> Self {
        let net = Network::new(scale);
        net.add_host_with_speed("SGI_PC", 1.0);
        net.add_host_with_speed("SP2", 1.1);
        net.add_host_with_speed("INDY", 0.6);
        let eth = LinkPreset::Ethernet10.link();
        net.connect_by_name("SGI_PC", "SP2", eth);
        net.connect_by_name("SGI_PC", "INDY", eth);
        net.connect_by_name("SP2", "INDY", eth);
        net
    }

    /// Register a host with baseline speed.
    pub fn add_host(&self, name: &str) -> HostId {
        self.add_host_with_speed(name, 1.0)
    }

    /// Register a host with a relative per-processor compute speed.
    ///
    /// # Panics
    /// Panics if a host of the same name already exists or speed is not
    /// strictly positive.
    pub fn add_host_with_speed(&self, name: &str, speed: f64) -> HostId {
        assert!(speed.is_finite() && speed > 0.0, "host speed must be positive");
        let mut inner = self.inner.write();
        assert!(!inner.by_name.contains_key(name), "host {name:?} already registered");
        let id = HostId(inner.hosts.len() as u32);
        inner.hosts.push(Host {
            id,
            name: name.to_string(),
            loopback: LinkPreset::Loopback.link(),
            speed,
        });
        inner.by_name.insert(name.to_string(), id);
        id
    }

    /// Install a (bidirectional) link between two hosts.
    pub fn connect(&self, a: HostId, b: HostId, link: Link) {
        let mut inner = self.inner.write();
        inner.links.insert((a, b), link);
        inner.links.insert((b, a), link);
    }

    /// Install a link looked up by host names.
    ///
    /// # Panics
    /// Panics if either host is unknown.
    pub fn connect_by_name(&self, a: &str, b: &str, link: Link) {
        let (a, b) = {
            let inner = self.inner.read();
            (
                *inner.by_name.get(a).unwrap_or_else(|| panic!("unknown host {a:?}")),
                *inner.by_name.get(b).unwrap_or_else(|| panic!("unknown host {b:?}")),
            )
        };
        self.connect(a, b, link);
    }

    /// Set the link used between host pairs that have no explicit link.
    pub fn set_default_link(&self, link: Link) {
        self.inner.write().default_link = link;
    }

    /// Look a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.inner.read().by_name.get(name).copied()
    }

    /// Host metadata.
    ///
    /// # Panics
    /// Panics on an id from a different network.
    pub fn host(&self, id: HostId) -> Host {
        self.inner.read().hosts[id.0 as usize].clone()
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.inner.read().hosts.len()
    }

    /// The link that a message from `from` to `to` traverses.
    pub fn link_between(&self, from: HostId, to: HostId) -> Link {
        let inner = self.inner.read();
        if from == to {
            return inner.hosts[from.0 as usize].loopback;
        }
        inner.links.get(&(from, to)).copied().unwrap_or(inner.default_link)
    }

    /// Modelled duration of moving `bytes` from `from` to `to`.
    pub fn transfer_time(&self, from: HostId, to: HostId, bytes: usize) -> Duration {
        self.link_between(from, to).transfer_time(bytes)
    }

    /// Charge a transfer in scaled real time: sleeps for the modelled
    /// duration times the network's [`TimeScale`], and also accumulates the
    /// full modelled duration on the virtual clock. On a shared-medium link
    /// (classic Ethernet) concurrent transfers over the same host pair
    /// serialise. Returns the modelled duration.
    pub fn charge(&self, from: HostId, to: HostId, bytes: usize) -> Duration {
        let link = self.link_between(from, to);
        let t = link.transfer_time(bytes);
        self.clock.advance(t);
        let injected = self.scale.apply(t);
        if !injected.is_zero() {
            let guard = link.shared.then(|| self.medium_lock(from, to));
            let _held = guard.as_ref().map(|m| m.lock());
            std::thread::sleep(injected);
        }
        t
    }

    fn medium_lock(&self, a: HostId, b: HostId) -> Arc<parking_lot::Mutex<()>> {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        let mut inner = self.inner.write();
        inner.medium_locks.entry(key).or_default().clone()
    }

    /// Install (or clear) a network-wide fault plan. It governs every
    /// inter-host frame; loopback transfers are exempt. Installing a plan
    /// resets all per-link schedule state and the fault counters, so two
    /// runs installing the same plan see the same schedule.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        {
            let mut f = self.faults.lock();
            f.global = plan;
            f.states.clear();
            self.faults_on.store(
                f.global.is_some() || f.per_link.values().any(Option::is_some),
                Ordering::Release,
            );
        }
        self.reset_fault_stats();
    }

    /// Install (or clear) a fault plan on the (bidirectional) link between
    /// two hosts. A per-link entry overrides the network-wide plan —
    /// `Some(plan)` injects it, `None` exempts the link entirely.
    pub fn set_link_fault_plan(&self, a: HostId, b: HostId, plan: Option<FaultPlan>) {
        let mut f = self.faults.lock();
        f.per_link.insert((a, b), plan.clone());
        f.per_link.insert((b, a), plan);
        f.states.remove(&(a, b));
        f.states.remove(&(b, a));
        self.faults_on.store(
            f.global.is_some() || f.per_link.values().any(Option::is_some),
            Ordering::Release,
        );
    }

    /// Counters of fault-layer activity since the last plan install.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            burst_dropped: self.burst_dropped.load(Ordering::Relaxed),
            down_dropped: self.down_dropped.load(Ordering::Relaxed),
        }
    }

    /// Counters for one *directed* link since its plan was installed. Zero
    /// until a frame has been offered to that link under a plan.
    pub fn link_fault_stats(&self, from: HostId, to: HostId) -> FaultStats {
        self.faults.lock().states.get(&(from, to)).map(FaultState::stats).unwrap_or_default()
    }

    /// Per-directed-link counters for every link that has seen fault-layer
    /// traffic, sorted by `(from, to)` so the snapshot is deterministic.
    pub fn per_link_fault_stats(&self) -> Vec<((HostId, HostId), FaultStats)> {
        let f = self.faults.lock();
        let mut out: Vec<_> = f.states.iter().map(|(k, s)| (*k, s.stats())).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Zero the fault counters, network-wide and per-link (schedule state is
    /// kept).
    pub fn reset_fault_stats(&self) {
        self.delivered.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.duplicated.store(0, Ordering::Relaxed);
        self.burst_dropped.store(0, Ordering::Relaxed);
        self.down_dropped.store(0, Ordering::Relaxed);
        for state in self.faults.lock().states.values_mut() {
            state.reset_stats();
        }
    }

    /// Charge a transfer and decide its fate under the installed fault
    /// plans. With no plan installed this is [`Network::charge`] plus one
    /// atomic load — the lossless behaviour (costs, clock, verdicts) is
    /// bit-identical to the fault-free simulator.
    ///
    /// A [`Verdict::Dropped`] frame still pays its transfer cost (it went
    /// onto the wire and died there); a [`Verdict::Duplicated`] frame pays
    /// twice, once per copy.
    pub fn deliver(&self, from: HostId, to: HostId, bytes: usize) -> Verdict {
        self.charge(from, to, bytes);
        if !self.faults_on.load(Ordering::Acquire) {
            if pardis_obs::enabled() {
                self.trace_transit(from, to, bytes, "delivered");
            }
            return Verdict::Delivered;
        }
        let fate = {
            let mut f = self.faults.lock();
            let plan = match f.per_link.get(&(from, to)) {
                Some(per_link) => per_link.clone(),
                None if from != to => f.global.clone(),
                None => None,
            };
            match plan {
                None => FrameFate::Delivered,
                Some(plan) => {
                    let now = self.clock.now();
                    f.states
                        .entry((from, to))
                        .or_insert_with(|| FaultState::new(plan))
                        .verdict(from.0, to.0, now)
                }
            }
        };
        match fate {
            FrameFate::Delivered => self.delivered.fetch_add(1, Ordering::Relaxed),
            FrameFate::DroppedRandom => self.dropped.fetch_add(1, Ordering::Relaxed),
            FrameFate::DroppedBurst => {
                self.burst_dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed)
            }
            FrameFate::DroppedDown => {
                self.down_dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed)
            }
            FrameFate::Duplicated => {
                // The duplicate copy also traverses the wire.
                self.charge(from, to, bytes);
                self.duplicated.fetch_add(1, Ordering::Relaxed)
            }
        };
        if pardis_obs::enabled() {
            self.trace_transit(from, to, bytes, fate.label());
        }
        fate.verdict()
    }

    /// Record a `net.transit` trace instant (tracing already known enabled).
    fn trace_transit(&self, from: HostId, to: HostId, bytes: usize, fate: &'static str) {
        pardis_obs::instant(
            "net",
            "net.transit",
            None,
            vec![
                ("from", pardis_obs::ArgVal::U64(from.0 as u64)),
                ("to", pardis_obs::ArgVal::U64(to.0 as u64)),
                ("bytes", pardis_obs::ArgVal::U64(bytes as u64)),
                ("fate", pardis_obs::ArgVal::Str(fate.into())),
            ],
        );
    }

    /// Charge a transfer in virtual time only (no sleeping).
    pub fn charge_virtual(&self, from: HostId, to: HostId, bytes: usize) -> Duration {
        let t = self.transfer_time(from, to, bytes);
        self.clock.advance(t);
        t
    }

    /// The network-wide virtual clock (sum of all modelled transfer times).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The time scale used for real-time injection.
    pub fn time_scale(&self) -> &TimeScale {
        &self.scale
    }

    /// Relative compute speed of a host's processors.
    pub fn host_speed(&self, id: HostId) -> f64 {
        self.inner.read().hosts[id.0 as usize].speed
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.read();
        f.debug_struct("Network")
            .field("hosts", &inner.hosts.iter().map(|h| h.name.clone()).collect::<Vec<_>>())
            .field("links", &inner.links.len())
            .finish()
    }
}
