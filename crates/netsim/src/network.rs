//! Host registry, delay injection, and the transmit engine front-end.

use crate::engine::{Lane, LinkUsage, LocalClock, Scheduler, Slot, TransportMode};
use crate::fault::{FaultState, FrameFate};
use crate::publish::Published;
use crate::{FaultPlan, FaultStats, Link, LinkPreset, TimeScale, Verdict, VirtualClock};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Opaque identifier of a registered host.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct HostId(pub(crate) u32);

impl HostId {
    /// Raw numeric id (stable for the lifetime of the [`Network`]).
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild a `HostId` from its raw value (used when object references
    /// cross the wire). Only meaningful within the network that issued it.
    pub fn from_raw(raw: u32) -> HostId {
        HostId(raw)
    }
}

/// A registered host: a named machine in the simulated testbed.
#[derive(Debug, Clone)]
pub struct Host {
    /// Identifier within the owning network.
    pub id: HostId,
    /// Human-readable name, e.g. `"HOST_1"`.
    pub name: String,
    /// Loopback link used for intra-host transfers.
    pub loopback: Link,
    /// Relative compute speed of one processor of this host (1.0 = baseline).
    /// Figure 2 depends on HOST 2 being the faster machine.
    pub speed: f64,
}

/// Immutable routing snapshot: hosts, links, and the per-pair transmit
/// state. Published through [`Published`], so the per-frame lookup in
/// [`Network::charge`] / [`Network::transmit`] acquires no lock — mutation
/// (host/link registration) builds a fresh snapshot and swaps it in.
struct Topology {
    hosts: Vec<Host>,
    by_name: HashMap<String, HostId>,
    links: HashMap<(HostId, HostId), Link>,
    default_link: Link,
    /// One wire-guard per unordered host pair, taken while a transfer over
    /// a shared-medium link sleeps in scaled real time. Precomputed here at
    /// registration, so taking it never touches the registry.
    media: HashMap<(HostId, HostId), Arc<Mutex<()>>>,
    /// Per-directed-pair engine lanes (loopback pairs included). Shared
    /// across snapshot generations so timeline state survives topology
    /// changes.
    lanes: HashMap<(HostId, HostId), Arc<Lane>>,
    /// The one shared-medium transmit timeline: every frame over a
    /// `shared` link serialises here regardless of host pair, modelling a
    /// single Ethernet segment (the paper's testbed has exactly one).
    /// Dedicated links keep their per-pair lanes.
    segment: Arc<Lane>,
    /// Per-host local virtual clocks for the engine's causality model,
    /// likewise shared across generations.
    locals: HashMap<HostId, Arc<LocalClock>>,
}

impl Topology {
    fn empty(default_link: Link) -> Topology {
        Topology {
            hosts: Vec::new(),
            by_name: HashMap::new(),
            links: HashMap::new(),
            default_link,
            media: HashMap::new(),
            lanes: HashMap::new(),
            segment: Arc::default(),
            locals: HashMap::new(),
        }
    }

    fn clone_shallow(&self) -> Topology {
        Topology {
            hosts: self.hosts.clone(),
            by_name: self.by_name.clone(),
            links: self.links.clone(),
            default_link: self.default_link,
            media: self.media.clone(),
            lanes: self.lanes.clone(),
            segment: self.segment.clone(),
            locals: self.locals.clone(),
        }
    }

    /// Ensure every host pair has its medium guard and engine lanes.
    fn refresh_pairs(&mut self) {
        for a in 0..self.hosts.len() as u32 {
            self.locals.entry(HostId(a)).or_default();
            for b in 0..self.hosts.len() as u32 {
                self.lanes.entry((HostId(a), HostId(b))).or_default();
                if a <= b {
                    self.media.entry((HostId(a), HostId(b))).or_default();
                }
            }
        }
    }

    fn link_between(&self, from: HostId, to: HostId) -> Link {
        if from == to {
            return self.hosts[from.0 as usize].loopback;
        }
        self.links.get(&(from, to)).copied().unwrap_or(self.default_link)
    }

    fn medium(&self, a: HostId, b: HostId) -> Arc<Mutex<()>> {
        let key = if a.0 <= b.0 { (a, b) } else { (b, a) };
        self.media[&key].clone()
    }

    fn lane(&self, from: HostId, to: HostId, link: &Link) -> &Arc<Lane> {
        if link.shared {
            &self.segment
        } else {
            &self.lanes[&(from, to)]
        }
    }
}

/// Fault-injection state, kept outside the topology so the hot lossless
/// path never takes a lock for it. Plans are `Arc`-shared: installing,
/// materialising a lane's schedule, and per-frame evaluation never clone a
/// plan.
#[derive(Default)]
struct Faults {
    /// Network-wide plan (inter-host links only; loopback is exempt).
    global: Option<Arc<FaultPlan>>,
    /// Per-link overrides (win over the global plan). `None` exempts the
    /// link explicitly.
    per_link: HashMap<(HostId, HostId), Option<Arc<FaultPlan>>>,
    /// Lazily materialised per-directed-link schedule state.
    states: HashMap<(HostId, HostId), FaultState>,
}

impl Faults {
    /// Decide the fate of the next frame on `(from, to)` at virtual time
    /// `now_s`. `None` means no plan governs the link (always delivered).
    fn fate(&mut self, from: HostId, to: HostId, now_s: f64) -> Option<FrameFate> {
        let plan = match self.per_link.get(&(from, to)) {
            Some(per_link) => per_link.clone(),
            None if from != to => self.global.clone(),
            None => None,
        }?;
        Some(
            self.states
                .entry((from, to))
                .or_insert_with(|| FaultState::new(plan))
                .verdict(from.0, to.0, now_s),
        )
    }
}

/// The simulated testbed: a set of hosts and the links joining them.
///
/// Cloning a `Network` is cheap and shares all state.
#[derive(Clone)]
pub struct Network {
    topo: Arc<Published<Topology>>,
    /// Serialises topology mutations (read-modify-publish).
    mutate: Arc<Mutex<()>>,
    mode: TransportMode,
    sched: Arc<Scheduler>,
    scale: TimeScale,
    clock: VirtualClock,
    /// Fast gate: false means no plan anywhere and [`Network::deliver`] is
    /// exactly [`Network::charge`] plus one relaxed load.
    faults_on: Arc<AtomicBool>,
    faults: Arc<Mutex<Faults>>,
    /// Fast gate for the host-down check, mirroring `faults_on`: false
    /// means no host is down and the hot path pays one relaxed load.
    hosts_down_on: Arc<AtomicBool>,
    /// Hosts currently taken off the network by [`Network::kill_host`].
    down_hosts: Arc<Mutex<std::collections::HashSet<HostId>>>,
    dropped: Arc<AtomicU64>,
    duplicated: Arc<AtomicU64>,
    delivered: Arc<AtomicU64>,
    burst_dropped: Arc<AtomicU64>,
    down_dropped: Arc<AtomicU64>,
}

impl Default for Network {
    fn default() -> Self {
        Self::new(TimeScale::off())
    }
}

impl Network {
    /// Create an empty network with the given time scale for delay
    /// injection. The transport mode comes from `PARDIS_TRANSPORT`
    /// (`sync` selects the legacy synchronous accounting; the default is
    /// the event-driven overlapped engine).
    pub fn new(scale: TimeScale) -> Self {
        Self::with_transport(scale, TransportMode::from_env())
    }

    /// Create an empty network with an explicit transport mode.
    pub fn with_transport(scale: TimeScale, mode: TransportMode) -> Self {
        Network {
            topo: Arc::new(Published::new(Topology::empty(LinkPreset::Ethernet10.link()))),
            mutate: Arc::new(Mutex::new(())),
            mode,
            sched: Arc::new(Scheduler::default()),
            scale,
            clock: VirtualClock::new(),
            faults_on: Arc::new(AtomicBool::new(false)),
            faults: Arc::new(Mutex::new(Faults::default())),
            hosts_down_on: Arc::new(AtomicBool::new(false)),
            down_hosts: Arc::new(Mutex::new(std::collections::HashSet::new())),
            dropped: Arc::new(AtomicU64::new(0)),
            duplicated: Arc::new(AtomicU64::new(0)),
            delivered: Arc::new(AtomicU64::new(0)),
            burst_dropped: Arc::new(AtomicU64::new(0)),
            down_dropped: Arc::new(AtomicU64::new(0)),
        }
    }

    /// The paper's figure 2/4 testbed: `HOST_1` (4-node SGI Onyx, slower
    /// processors) and `HOST_2` (10-node SGI PowerChallenge, faster
    /// processors) joined by a dedicated ATM OC-3 link.
    pub fn paper_atm_testbed(scale: TimeScale) -> Self {
        Self::paper_atm_testbed_with(scale, TransportMode::from_env())
    }

    /// [`Network::paper_atm_testbed`] with an explicit transport mode.
    pub fn paper_atm_testbed_with(scale: TimeScale, mode: TransportMode) -> Self {
        let net = Network::with_transport(scale, mode);
        net.add_host_with_speed("HOST_1", 1.0);
        net.add_host_with_speed("HOST_2", 1.8);
        net.connect_by_name("HOST_1", "HOST_2", LinkPreset::AtmOc3.link());
        net
    }

    /// The paper's figure 5 testbed: the SGI PC (diffusion + its visualizer)
    /// and the IBM SP/2 (gradient), communicating over Ethernet; an SGI Indy
    /// workstation runs the gradient's visualizer.
    pub fn paper_ethernet_testbed(scale: TimeScale) -> Self {
        Self::paper_ethernet_testbed_with(scale, TransportMode::from_env())
    }

    /// [`Network::paper_ethernet_testbed`] with an explicit transport mode.
    pub fn paper_ethernet_testbed_with(scale: TimeScale, mode: TransportMode) -> Self {
        let net = Network::with_transport(scale, mode);
        net.add_host_with_speed("SGI_PC", 1.0);
        net.add_host_with_speed("SP2", 1.1);
        net.add_host_with_speed("INDY", 0.6);
        let eth = LinkPreset::Ethernet10.link();
        net.connect_by_name("SGI_PC", "SP2", eth);
        net.connect_by_name("SGI_PC", "INDY", eth);
        net.connect_by_name("SP2", "INDY", eth);
        net
    }

    /// How this network accounts and delivers frames.
    pub fn transport_mode(&self) -> TransportMode {
        self.mode
    }

    /// Register a host with baseline speed.
    pub fn add_host(&self, name: &str) -> HostId {
        self.add_host_with_speed(name, 1.0)
    }

    /// Register a host with a relative per-processor compute speed.
    ///
    /// # Panics
    /// Panics if a host of the same name already exists or speed is not
    /// strictly positive.
    pub fn add_host_with_speed(&self, name: &str, speed: f64) -> HostId {
        assert!(speed.is_finite() && speed > 0.0, "host speed must be positive");
        let _guard = self.mutate.lock();
        let cur = self.topo.load();
        assert!(!cur.by_name.contains_key(name), "host {name:?} already registered");
        let mut next = cur.clone_shallow();
        let id = HostId(next.hosts.len() as u32);
        next.hosts.push(Host {
            id,
            name: name.to_string(),
            loopback: LinkPreset::Loopback.link(),
            speed,
        });
        next.by_name.insert(name.to_string(), id);
        next.refresh_pairs();
        self.topo.store(next);
        id
    }

    /// Install a (bidirectional) link between two hosts.
    pub fn connect(&self, a: HostId, b: HostId, link: Link) {
        let _guard = self.mutate.lock();
        let mut next = self.topo.load().clone_shallow();
        next.links.insert((a, b), link);
        next.links.insert((b, a), link);
        next.refresh_pairs();
        self.topo.store(next);
    }

    /// Install a link looked up by host names.
    ///
    /// # Panics
    /// Panics if either host is unknown.
    pub fn connect_by_name(&self, a: &str, b: &str, link: Link) {
        let (a, b) = {
            let topo = self.topo.load();
            (
                *topo.by_name.get(a).unwrap_or_else(|| panic!("unknown host {a:?}")),
                *topo.by_name.get(b).unwrap_or_else(|| panic!("unknown host {b:?}")),
            )
        };
        self.connect(a, b, link);
    }

    /// Set the link used between host pairs that have no explicit link.
    pub fn set_default_link(&self, link: Link) {
        let _guard = self.mutate.lock();
        let mut next = self.topo.load().clone_shallow();
        next.default_link = link;
        self.topo.store(next);
    }

    /// Look a host up by name.
    pub fn host_by_name(&self, name: &str) -> Option<HostId> {
        self.topo.load().by_name.get(name).copied()
    }

    /// Host metadata.
    ///
    /// # Panics
    /// Panics on an id from a different network.
    pub fn host(&self, id: HostId) -> Host {
        self.topo.load().hosts[id.0 as usize].clone()
    }

    /// Number of registered hosts.
    pub fn host_count(&self) -> usize {
        self.topo.load().hosts.len()
    }

    /// The link that a message from `from` to `to` traverses.
    pub fn link_between(&self, from: HostId, to: HostId) -> Link {
        self.topo.load().link_between(from, to)
    }

    /// Modelled duration of moving `bytes` from `from` to `to`.
    pub fn transfer_time(&self, from: HostId, to: HostId, bytes: usize) -> Duration {
        self.link_between(from, to).transfer_time(bytes)
    }

    /// Charge a transfer in scaled real time: sleeps for the modelled
    /// duration times the network's [`TimeScale`], and also accumulates the
    /// full modelled duration on the virtual clock. On a shared-medium link
    /// (classic Ethernet) concurrent transfers over the same host pair
    /// serialise. Returns the modelled duration.
    ///
    /// This is the synchronous accounting path — the sender's thread pays
    /// everything. [`Network::transmit`] is the overlapped engine.
    pub fn charge(&self, from: HostId, to: HostId, bytes: usize) -> Duration {
        let topo = self.topo.load();
        let link = topo.link_between(from, to);
        let t = link.transfer_time(bytes);
        self.clock.advance(t);
        let injected = self.scale.apply(t);
        if !injected.is_zero() {
            let guard = link.shared.then(|| topo.medium(from, to));
            let _held = guard.as_ref().map(|m| m.lock());
            std::thread::sleep(injected);
        }
        t
    }

    /// Install (or clear) a network-wide fault plan. It governs every
    /// inter-host frame; loopback transfers are exempt. Installing a plan
    /// resets all per-link schedule state and the fault counters, so two
    /// runs installing the same plan see the same schedule.
    pub fn set_fault_plan(&self, plan: Option<FaultPlan>) {
        {
            let mut f = self.faults.lock();
            f.global = plan.map(Arc::new);
            f.states.clear();
            self.faults_on.store(
                f.global.is_some() || f.per_link.values().any(Option::is_some),
                Ordering::Release,
            );
        }
        self.reset_fault_stats();
    }

    /// Install (or clear) a fault plan on the (bidirectional) link between
    /// two hosts. A per-link entry overrides the network-wide plan —
    /// `Some(plan)` injects it, `None` exempts the link entirely.
    pub fn set_link_fault_plan(&self, a: HostId, b: HostId, plan: Option<FaultPlan>) {
        let plan = plan.map(Arc::new);
        let mut f = self.faults.lock();
        f.per_link.insert((a, b), plan.clone());
        f.per_link.insert((b, a), plan);
        f.states.remove(&(a, b));
        f.states.remove(&(b, a));
        self.faults_on.store(
            f.global.is_some() || f.per_link.values().any(Option::is_some),
            Ordering::Release,
        );
    }

    /// Take a host off the network: every subsequent frame to or from it
    /// (loopback included) is dropped and counted as `down_dropped`, until
    /// [`Network::revive_host`]. Works with or without a fault plan
    /// installed — a crashed replica needs no loss schedule — and never
    /// consumes the seeded drop/duplicate sequence, so the surviving links'
    /// chaos schedule replays identically whether or not a host was killed.
    pub fn kill_host(&self, host: HostId) {
        self.down_hosts.lock().insert(host);
        self.hosts_down_on.store(true, Ordering::Release);
    }

    /// Bring a killed host back: frames flow again (state the host held in
    /// higher layers is its own problem — the network forgets nothing).
    pub fn revive_host(&self, host: HostId) {
        let mut down = self.down_hosts.lock();
        down.remove(&host);
        self.hosts_down_on.store(!down.is_empty(), Ordering::Release);
    }

    /// Whether `host` is currently killed.
    pub fn host_is_down(&self, host: HostId) -> bool {
        self.hosts_down_on.load(Ordering::Acquire) && self.down_hosts.lock().contains(&host)
    }

    /// True when either end of the frame is a killed host.
    fn crosses_down_host(&self, from: HostId, to: HostId) -> bool {
        if !self.hosts_down_on.load(Ordering::Acquire) {
            return false;
        }
        let down = self.down_hosts.lock();
        down.contains(&from) || down.contains(&to)
    }

    /// Counters of fault-layer activity since the last plan install.
    pub fn fault_stats(&self) -> FaultStats {
        FaultStats {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            burst_dropped: self.burst_dropped.load(Ordering::Relaxed),
            down_dropped: self.down_dropped.load(Ordering::Relaxed),
        }
    }

    /// Counters for one *directed* link since its plan was installed. Zero
    /// until a frame has been offered to that link under a plan.
    pub fn link_fault_stats(&self, from: HostId, to: HostId) -> FaultStats {
        self.faults.lock().states.get(&(from, to)).map(FaultState::stats).unwrap_or_default()
    }

    /// Per-directed-link counters for every link that has seen fault-layer
    /// traffic, sorted by `(from, to)` so the snapshot is deterministic.
    pub fn per_link_fault_stats(&self) -> Vec<((HostId, HostId), FaultStats)> {
        let f = self.faults.lock();
        let mut out: Vec<_> = f.states.iter().map(|(k, s)| (*k, s.stats())).collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Zero the fault counters, network-wide and per-link (schedule state is
    /// kept).
    pub fn reset_fault_stats(&self) {
        self.delivered.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
        self.duplicated.store(0, Ordering::Relaxed);
        self.burst_dropped.store(0, Ordering::Relaxed);
        self.down_dropped.store(0, Ordering::Relaxed);
        for state in self.faults.lock().states.values_mut() {
            state.reset_stats();
        }
    }

    fn account(&self, fate: FrameFate) {
        match fate {
            FrameFate::Delivered => self.delivered.fetch_add(1, Ordering::Relaxed),
            FrameFate::DroppedRandom => self.dropped.fetch_add(1, Ordering::Relaxed),
            FrameFate::DroppedBurst => {
                self.burst_dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed)
            }
            FrameFate::DroppedDown => {
                self.down_dropped.fetch_add(1, Ordering::Relaxed);
                self.dropped.fetch_add(1, Ordering::Relaxed)
            }
            FrameFate::Duplicated => self.duplicated.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Charge a transfer and decide its fate under the installed fault
    /// plans. With no plan installed this is [`Network::charge`] plus one
    /// atomic load — the lossless behaviour (costs, clock, verdicts) is
    /// bit-identical to the fault-free simulator.
    ///
    /// A [`Verdict::Dropped`] frame still pays its transfer cost (it went
    /// onto the wire and died there); a [`Verdict::Duplicated`] frame pays
    /// twice, once per copy.
    pub fn deliver(&self, from: HostId, to: HostId, bytes: usize) -> Verdict {
        self.charge(from, to, bytes);
        // A killed host eats the frame before any plan is consulted (and
        // without consuming the plan's seeded sequence) — the frame paid its
        // wire cost and died at the dead interface.
        if self.crosses_down_host(from, to) {
            self.account(FrameFate::DroppedDown);
            if pardis_obs::enabled() {
                self.trace_transit_sync(from, to, bytes, FrameFate::DroppedDown.label());
            }
            return Verdict::Dropped;
        }
        if !self.faults_on.load(Ordering::Acquire) {
            if pardis_obs::enabled() {
                self.trace_transit_sync(from, to, bytes, "delivered");
            }
            return Verdict::Delivered;
        }
        let fate =
            self.faults.lock().fate(from, to, self.clock.now()).unwrap_or(FrameFate::Delivered);
        self.account(fate);
        if pardis_obs::enabled() {
            // Traced before the duplicate's extra charge so the timing
            // describes the original copy.
            self.trace_transit_sync(from, to, bytes, fate.label());
        }
        if fate == FrameFate::Duplicated {
            // The duplicate copy also traverses the wire.
            self.charge(from, to, bytes);
        }
        fate.verdict()
    }

    /// Send a frame through the event-driven transmit engine: the caller
    /// pays only the link's software overhead `t_o` (in scaled real time);
    /// wire latency and serialization are accounted on the per-directed-link
    /// lane (overlapping on dedicated links, queue-ordered on shared media),
    /// and `release` runs once per arriving copy — inline when no real time
    /// is injected, from the engine's timer thread otherwise, in
    /// `(arrival, seq)` order.
    ///
    /// The fault verdict is drawn from the same seeded per-link schedule as
    /// [`Network::deliver`], at enqueue time, so chaos runs replay
    /// identically in either transport mode. A dropped frame still occupies
    /// the wire; a duplicated frame occupies it twice and `release` runs
    /// twice. The virtual clock advances to the frame's arrival (makespan
    /// semantics).
    ///
    /// In [`TransportMode::Sync`] this degrades to [`Network::deliver`] plus
    /// inline `release` calls — the legacy synchronous accounting,
    /// bit-for-bit.
    pub fn transmit(
        &self,
        from: HostId,
        to: HostId,
        bytes: usize,
        release: impl Fn() + Send + Sync + 'static,
    ) -> Verdict {
        if self.mode == TransportMode::Sync {
            let verdict = self.deliver(from, to, bytes);
            match verdict {
                Verdict::Delivered => release(),
                Verdict::Duplicated => {
                    release();
                    release();
                }
                Verdict::Dropped => {}
            }
            return verdict;
        }

        let topo = self.topo.load();
        let link = topo.link_between(from, to);
        let lane = topo.lane(from, to, &link);
        // The sender's local time floors the departure (a reply cannot leave
        // before its request arrived) and advances by `t_o` — the sender-side
        // share of the transfer.
        let base = topo.locals[&from].begin_send(link.overhead_s);
        let slot = lane.reserve(&link, bytes, base);
        topo.locals[&to].observe(slot.arrival);
        self.clock.advance_to(slot.arrival);

        // Enqueue-time verdict: down windows are judged at the frame's
        // modelled arrival; drop/duplicate come from the per-lane seeded
        // sequence — identical to the synchronous schedule. A killed host
        // pre-empts both, plan or no plan.
        let fate = if self.crosses_down_host(from, to) {
            self.account(FrameFate::DroppedDown);
            FrameFate::DroppedDown
        } else if self.faults_on.load(Ordering::Acquire) {
            let fate =
                self.faults.lock().fate(from, to, slot.arrival).unwrap_or(FrameFate::Delivered);
            self.account(fate);
            fate
        } else {
            FrameFate::Delivered
        };
        let dup_slot = (fate == FrameFate::Duplicated).then(|| {
            // The spurious copy rides the wire right behind the original.
            let s = lane.reserve(&link, bytes, base);
            topo.locals[&to].observe(s.arrival);
            self.clock.advance_to(s.arrival);
            s
        });
        if pardis_obs::enabled() {
            let depart = slot.arrival - slot.t;
            self.trace_transit(
                from,
                to,
                bytes,
                fate.label(),
                depart,
                slot.arrival,
                depart - base,
                link.overhead_s.min(slot.t),
            );
        }

        // The sender's synchronous share: the software overhead only.
        let overhead = self.scale.apply(Duration::from_secs_f64(link.overhead_s));
        if !overhead.is_zero() {
            std::thread::sleep(overhead);
        }
        match fate {
            FrameFate::Delivered => self.dispatch(lane, &link, slot, Arc::new(release)),
            FrameFate::Duplicated => {
                let release: Arc<dyn Fn() + Send + Sync> = Arc::new(release);
                self.dispatch(lane, &link, slot, release.clone());
                self.dispatch(lane, &link, dup_slot.expect("duplicate slot"), release);
            }
            _ => {}
        }
        fate.verdict()
    }

    /// Hand one arriving copy to its release hook: inline under pure
    /// virtual accounting, through the timer thread when real time is
    /// injected (the wire share of the transfer, `t - t_o`, elapses off the
    /// sender's thread — that is the overlap).
    fn dispatch(
        &self,
        lane: &Arc<Lane>,
        link: &Link,
        slot: Slot,
        release: Arc<dyn Fn() + Send + Sync>,
    ) {
        let wire = self.scale.apply(Duration::from_secs_f64((slot.t - link.overhead_s).max(0.0)));
        if wire.is_zero() {
            release();
        } else {
            self.sched.enqueue(lane, Instant::now() + wire, slot.arrival, release);
        }
    }

    /// Block until every frame the engine scheduled for timed release has
    /// been handed over (no-op under pure virtual accounting or in
    /// [`TransportMode::Sync`]).
    pub fn quiesce(&self) {
        self.sched.quiesce();
    }

    /// Charge local (non-network) time on one host's virtual timeline —
    /// waiting or computing that delays its next send. The reliability
    /// layer charges its retransmission backoff here so retries walk the
    /// virtual clock out of a timed link-down window under the engine, the
    /// same way the synchronous transport's sum-clock does implicitly.
    /// No-op in [`TransportMode::Sync`].
    pub fn charge_wait(&self, host: HostId, d: Duration) {
        if self.mode == TransportMode::Sync {
            return;
        }
        let local_now = self.topo.load().locals[&host].advance(d.as_secs_f64());
        // Fold the host's new floor into the global reading eagerly. The
        // engine would do the same fold lazily at the host's next send; doing
        // it here makes the charge visible to virtual-clock observers (trace
        // timestamps, the backoff instant's measured wait) right away.
        self.clock.advance_to(local_now);
    }

    /// Per-directed-link engine usage (frames, bytes, busy time, timeline
    /// end) for every dedicated lane that carried traffic, sorted by
    /// `(from, to)`. Shared-medium traffic is reported by
    /// [`Network::shared_segment_usage`]. Only the overlapped engine feeds
    /// these.
    pub fn per_link_usage(&self) -> Vec<((HostId, HostId), LinkUsage)> {
        let topo = self.topo.load();
        let mut out: Vec<_> = topo
            .lanes
            .iter()
            .map(|(k, lane)| (*k, lane.usage()))
            .filter(|(_, u)| u.frames > 0)
            .collect();
        out.sort_by_key(|(k, _)| *k);
        out
    }

    /// Engine usage of the one shared-medium segment (every `shared` link's
    /// frames serialise here, whatever their host pair), if it carried any
    /// traffic.
    pub fn shared_segment_usage(&self) -> Option<LinkUsage> {
        let usage = self.topo.load().segment.usage();
        (usage.frames > 0).then_some(usage)
    }

    /// The network makespan in modelled seconds: under the overlapped
    /// engine the virtual clock tracks the latest arrival on any link
    /// timeline (under [`TransportMode::Sync`] it is the sum of transfers,
    /// as ever).
    pub fn makespan(&self) -> f64 {
        self.clock.now()
    }

    /// Record a `net.transit` trace instant (tracing already known enabled)
    /// with the transfer's timing decomposition on the lane timeline, all in
    /// modelled seconds: `depart_s` (the frame starts occupying the wire),
    /// `arrive_s` (last byte lands), `queue_s` (lane wait before departure)
    /// and `t_o_s` (the link's software-overhead share of the transfer). The
    /// profiler attributes `[depart, depart+t_o]` to `t_o`,
    /// `[depart+t_o, arrive]` to wire time and `[depart-queue, depart]` to
    /// queueing. The sender's ambient trace context (if any) is auto-stamped,
    /// tying the transit to the originating invocation.
    #[allow(clippy::too_many_arguments)]
    fn trace_transit(
        &self,
        from: HostId,
        to: HostId,
        bytes: usize,
        fate: &'static str,
        depart_s: f64,
        arrive_s: f64,
        queue_s: f64,
        t_o_s: f64,
    ) {
        // Sub-nanosecond readings (a near-infinite-bandwidth free link's
        // transfer time) are modelling noise: snap them to zero rather than
        // exporting denormal-length decimals.
        let us = |s: f64| {
            let v = s.max(0.0) * 1e6;
            if v < 1e-3 {
                0.0
            } else {
                v
            }
        };
        pardis_obs::instant(
            "net",
            "net.transit",
            None,
            vec![
                ("from", pardis_obs::ArgVal::U64(from.0 as u64)),
                ("to", pardis_obs::ArgVal::U64(to.0 as u64)),
                ("bytes", pardis_obs::ArgVal::U64(bytes as u64)),
                ("fate", pardis_obs::ArgVal::Str(fate.into())),
                ("depart_us", pardis_obs::ArgVal::F64(us(depart_s))),
                ("arrive_us", pardis_obs::ArgVal::F64(us(arrive_s))),
                ("queue_us", pardis_obs::ArgVal::F64(us(queue_s))),
                ("t_o_us", pardis_obs::ArgVal::F64(us(t_o_s))),
                ("wire_us", pardis_obs::ArgVal::F64(us(arrive_s - depart_s - t_o_s))),
            ],
        );
    }

    /// Sync-path variant of [`Network::trace_transit`]: the sender's thread
    /// just paid the whole transfer `t_s` ending at the clock's current
    /// reading, so departure is reconstructed backwards and lane queueing is
    /// zero (the shared-medium wait is real time, not modelled time).
    fn trace_transit_sync(&self, from: HostId, to: HostId, bytes: usize, fate: &'static str) {
        let t_s = self.transfer_time(from, to, bytes).as_secs_f64();
        let arrive = self.clock.now();
        let t_o = self.link_between(from, to).overhead_s.min(t_s);
        self.trace_transit(from, to, bytes, fate, arrive - t_s, arrive, 0.0, t_o);
    }

    /// Charge a transfer in virtual time only (no sleeping).
    pub fn charge_virtual(&self, from: HostId, to: HostId, bytes: usize) -> Duration {
        let t = self.transfer_time(from, to, bytes);
        self.clock.advance(t);
        t
    }

    /// The network-wide virtual clock (sum of transfers under
    /// [`TransportMode::Sync`], makespan under the engine).
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The time scale used for real-time injection.
    pub fn time_scale(&self) -> &TimeScale {
        &self.scale
    }

    /// Relative compute speed of a host's processors.
    pub fn host_speed(&self, id: HostId) -> f64 {
        self.topo.load().hosts[id.0 as usize].speed
    }
}

impl std::fmt::Debug for Network {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let topo = self.topo.load();
        f.debug_struct("Network")
            .field("hosts", &topo.hosts.iter().map(|h| h.name.clone()).collect::<Vec<_>>())
            .field("links", &topo.links.len())
            .field("mode", &self.mode)
            .finish()
    }
}
