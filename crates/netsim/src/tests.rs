use crate::*;
use std::time::Duration;

#[test]
fn link_transfer_time_is_alpha_beta() {
    let l = Link::new(0.001, 1000.0, 0.0005);
    // 1000 bytes at 1000 B/s = 1 s, plus 1.5 ms fixed.
    let t = l.transfer_seconds(1000);
    assert!((t - 1.0015).abs() < 1e-12, "got {t}");
}

#[test]
fn zero_byte_message_still_pays_latency() {
    let l = LinkPreset::AtmOc3.link();
    assert!(l.transfer_seconds(0) > 0.0);
    assert_eq!(l.transfer_time(0), Duration::from_secs_f64(l.latency_s + l.overhead_s));
}

#[test]
fn atm_is_faster_than_ethernet_for_bulk() {
    let atm = LinkPreset::AtmOc3.link();
    let eth = LinkPreset::Ethernet10.link();
    let n = 1 << 20;
    assert!(atm.transfer_seconds(n) < eth.transfer_seconds(n));
}

#[test]
fn loopback_is_fastest() {
    let lo = LinkPreset::Loopback.link();
    for preset in [LinkPreset::AtmOc3, LinkPreset::Ethernet10, LinkPreset::Ethernet100] {
        assert!(lo.transfer_seconds(4096) < preset.link().transfer_seconds(4096));
    }
}

#[test]
fn effective_throughput_approaches_bandwidth() {
    let l = LinkPreset::Ethernet100.link();
    let small = l.effective_throughput(64);
    let large = l.effective_throughput(64 << 20);
    assert!(small < large);
    assert!(large <= l.bandwidth_bps);
    assert!(large > 0.95 * l.bandwidth_bps);
}

#[test]
fn n_half_reaches_half_bandwidth() {
    let l = LinkPreset::AtmOc3.link();
    let n = l.n_half();
    let tp = l.effective_throughput(n);
    assert!((tp - l.bandwidth_bps / 2.0).abs() / l.bandwidth_bps < 0.01, "tp {tp}");
}

#[test]
#[should_panic(expected = "bandwidth must be finite and positive")]
fn zero_bandwidth_rejected() {
    let _ = Link::new(0.0, 0.0, 0.0);
}

#[test]
#[should_panic(expected = "latency must be finite and non-negative")]
fn negative_latency_rejected() {
    let _ = Link::new(-1.0, 1.0, 0.0);
}

#[test]
fn network_registration_and_lookup() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("alpha");
    let b = net.add_host("beta");
    assert_ne!(a, b);
    assert_eq!(net.host_by_name("alpha"), Some(a));
    assert_eq!(net.host_by_name("gamma"), None);
    assert_eq!(net.host(a).name, "alpha");
    assert_eq!(net.host_count(), 2);
}

#[test]
#[should_panic(expected = "already registered")]
fn duplicate_host_rejected() {
    let net = Network::new(TimeScale::off());
    net.add_host("x");
    net.add_host("x");
}

#[test]
fn intra_host_uses_loopback() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    assert_eq!(net.link_between(a, a), LinkPreset::Loopback.link());
}

#[test]
fn explicit_link_is_symmetric() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    let l = LinkPreset::AtmOc3.link();
    net.connect(a, b, l);
    assert_eq!(net.link_between(a, b), l);
    assert_eq!(net.link_between(b, a), l);
}

#[test]
fn unconnected_pair_uses_default_link() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    assert_eq!(net.link_between(a, b), LinkPreset::Ethernet10.link());
    net.set_default_link(Link::free());
    assert_eq!(net.link_between(a, b), Link::free());
}

#[test]
fn charge_accumulates_virtual_clock() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    net.connect(a, b, Link::new(0.5, 1.0e6, 0.0));
    net.charge(a, b, 1_000_000); // 0.5 + 1.0 = 1.5 s modelled
    net.charge_virtual(a, b, 0); // +0.5 s
    let now = net.clock().now();
    assert!((now - 2.0).abs() < 1e-9, "clock {now}");
}

#[test]
fn charge_sleeps_scaled() {
    let net = Network::new(TimeScale::new(0.01));
    let a = net.add_host("a");
    let b = net.add_host("b");
    net.connect(a, b, Link::new(1.0, 1.0e9, 0.0)); // 1 s modelled latency
    let start = std::time::Instant::now();
    let modelled = net.charge(a, b, 0);
    let waited = start.elapsed();
    assert_eq!(modelled, Duration::from_secs(1));
    assert!(waited >= Duration::from_millis(9), "waited {waited:?}");
    assert!(waited < Duration::from_millis(500), "waited {waited:?}");
}

#[test]
fn shared_medium_serialises_concurrent_transfers() {
    let net = Network::new(TimeScale::new(1.0));
    let a = net.add_host("a");
    let b = net.add_host("b");
    net.connect(a, b, Link::new(0.02, 1.0e9, 0.0).shared_medium());
    // Four concurrent 20ms transfers over the shared wire must take ~80ms;
    // over a dedicated wire they would overlap into ~20ms.
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let net = net.clone();
            s.spawn(move || {
                net.charge(a, b, 0);
            });
        }
    });
    let waited = start.elapsed();
    assert!(waited >= Duration::from_millis(75), "shared wire overlapped: {waited:?}");

    let dedicated = Network::new(TimeScale::new(1.0));
    let a = dedicated.add_host("a");
    let b = dedicated.add_host("b");
    dedicated.connect(a, b, Link::new(0.02, 1.0e9, 0.0));
    let start = std::time::Instant::now();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let net = dedicated.clone();
            s.spawn(move || {
                net.charge(a, b, 0);
            });
        }
    });
    let waited = start.elapsed();
    assert!(waited < Duration::from_millis(60), "dedicated wire serialised: {waited:?}");
}

#[test]
fn paper_testbeds_have_expected_shape() {
    let atm = Network::paper_atm_testbed(TimeScale::off());
    let h1 = atm.host_by_name("HOST_1").unwrap();
    let h2 = atm.host_by_name("HOST_2").unwrap();
    assert!(atm.host_speed(h2) > atm.host_speed(h1), "HOST_2 is the faster machine");
    assert_eq!(atm.link_between(h1, h2), LinkPreset::AtmOc3.link());

    let eth = Network::paper_ethernet_testbed(TimeScale::off());
    assert_eq!(eth.host_count(), 3);
    let pc = eth.host_by_name("SGI_PC").unwrap();
    let sp2 = eth.host_by_name("SP2").unwrap();
    assert_eq!(eth.link_between(pc, sp2), LinkPreset::Ethernet10.link());
}

#[test]
fn virtual_clock_advance_to_is_monotone() {
    let c = VirtualClock::new();
    c.advance(Duration::from_secs(2));
    assert_eq!(c.advance_to(1.0), 2.0); // never goes backwards
    assert_eq!(c.advance_to(3.5), 3.5);
    c.reset();
    assert_eq!(c.now(), 0.0);
}

#[test]
fn time_scale_shared_between_clones() {
    let s = TimeScale::new(1.0);
    let s2 = s.clone();
    s2.set(0.25);
    assert_eq!(s.get(), 0.25);
    assert_eq!(s.apply(Duration::from_secs(4)), Duration::from_secs(1));
}

#[test]
#[should_panic(expected = "time scale must be finite")]
fn nan_time_scale_rejected() {
    let _ = TimeScale::new(f64::NAN);
}

#[test]
fn deliver_without_plan_is_lossless_and_free() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    net.connect(a, b, Link::new(0.5, 1.0e6, 0.0));
    for _ in 0..100 {
        assert_eq!(net.deliver(a, b, 1000), Verdict::Delivered);
    }
    // No plan installed: the fault layer records nothing at all, and the
    // virtual clock matches what plain `charge` would have accumulated.
    assert_eq!(net.fault_stats(), FaultStats::default());
    let expected = 100.0 * (0.5 + 1000.0 / 1.0e6);
    assert!((net.clock().now() - expected).abs() < 1e-9);
}

#[test]
fn drop_rate_tracks_probability() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    net.connect(a, b, Link::free());
    net.set_fault_plan(Some(FaultPlan::new(42).with_drop(0.2)));
    let n = 10_000;
    let mut dropped = 0;
    for _ in 0..n {
        if net.deliver(a, b, 64) == Verdict::Dropped {
            dropped += 1;
        }
    }
    let rate = dropped as f64 / n as f64;
    assert!((0.15..=0.25).contains(&rate), "drop rate {rate}");
    assert_eq!(net.fault_stats().dropped, dropped as u64);
}

#[test]
fn fault_schedule_is_deterministic() {
    let run = || {
        let net = Network::new(TimeScale::off());
        let a = net.add_host("a");
        let b = net.add_host("b");
        net.connect(a, b, Link::free());
        net.set_fault_plan(Some(FaultPlan::new(7).with_drop(0.3).with_dup(0.1)));
        let verdicts: Vec<Verdict> = (0..500).map(|i| net.deliver(a, b, 64 + (i % 7))).collect();
        (verdicts, net.fault_stats())
    };
    let (v1, s1) = run();
    let (v2, s2) = run();
    assert_eq!(v1, v2);
    assert_eq!(s1, s2);
    assert!(s1.dropped > 0 && s1.duplicated > 0, "stats {s1:?}");
}

#[test]
fn reinstalling_a_plan_restarts_its_schedule() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    net.connect(a, b, Link::free());
    let plan = FaultPlan::new(3).with_drop(0.5);
    net.set_fault_plan(Some(plan.clone()));
    let first: Vec<Verdict> = (0..100).map(|_| net.deliver(a, b, 8)).collect();
    net.set_fault_plan(Some(plan));
    let second: Vec<Verdict> = (0..100).map(|_| net.deliver(a, b, 8)).collect();
    assert_eq!(first, second);
}

#[test]
fn burst_extends_every_drop() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    net.connect(a, b, Link::free());
    net.set_fault_plan(Some(FaultPlan::new(11).with_drop(0.05).with_burst(3)));
    let verdicts: Vec<Verdict> = (0..2000).map(|_| net.deliver(a, b, 8)).collect();
    // Every drop is followed by at least 3 more: drops come in runs of >= 4.
    let mut i = 0;
    while i < verdicts.len() {
        if verdicts[i] == Verdict::Dropped {
            let run = verdicts[i..].iter().take_while(|v| **v == Verdict::Dropped).count();
            assert!(run >= 4 || i + run == verdicts.len(), "short drop run {run} at {i}");
            i += run;
        } else {
            i += 1;
        }
    }
    assert!(net.fault_stats().dropped >= 4, "burst never triggered");
}

#[test]
fn link_down_window_drops_everything_inside_it() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    // 1 s per frame, so frame k completes at virtual second k+1.
    net.connect(a, b, Link::new(1.0, 1.0e9, 0.0));
    net.set_fault_plan(Some(FaultPlan::new(0).with_down_window(2.5, 5.5)));
    let verdicts: Vec<Verdict> = (0..8).map(|_| net.deliver(a, b, 0)).collect();
    // Completion times 1..=8; those in [2.5, 5.5) — seconds 3, 4, 5 — die.
    let expected: Vec<Verdict> =
        (1..=8)
            .map(|s| {
                if (2.5..5.5).contains(&(s as f64)) {
                    Verdict::Dropped
                } else {
                    Verdict::Delivered
                }
            })
            .collect();
    assert_eq!(verdicts, expected);
}

#[test]
fn duplication_charges_and_counts_twice() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    net.connect(a, b, Link::new(1.0, 1.0e9, 0.0));
    net.set_fault_plan(Some(FaultPlan::new(0).with_dup(1.0)));
    assert_eq!(net.deliver(a, b, 0), Verdict::Duplicated);
    assert_eq!(net.fault_stats().duplicated, 1);
    // Both copies traversed the wire: two latencies on the clock.
    assert!((net.clock().now() - 2.0).abs() < 1e-9);
}

#[test]
fn fault_stats_break_down_loss_causes() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    // 1 s per frame so frame k completes at virtual second k+1.
    net.connect(a, b, Link::new(1.0, 1.0e9, 0.0));
    // Down for seconds [2.5, 4.5): frames completing at 3 and 4 die there.
    net.set_fault_plan(Some(
        FaultPlan::new(5).with_drop(0.3).with_burst(2).with_down_window(2.5, 4.5),
    ));
    for _ in 0..500 {
        net.deliver(a, b, 0);
    }
    let s = net.fault_stats();
    assert_eq!(s.down_dropped, 2, "stats {s:?}");
    assert!(s.burst_dropped > 0, "burst tail never hit: {s:?}");
    assert!(s.random_dropped() > 0, "no random drops: {s:?}");
    assert_eq!(s.dropped, s.random_dropped() + s.burst_dropped + s.down_dropped);
    assert_eq!(s.delivered + s.dropped + s.duplicated, 500);
}

#[test]
fn per_link_stats_snapshot_is_directed_and_sorted() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    let c = net.add_host("c");
    net.set_default_link(Link::free());
    net.set_fault_plan(Some(FaultPlan::new(9).with_drop(0.5)));
    for _ in 0..200 {
        net.deliver(a, b, 8);
        net.deliver(b, a, 8);
    }
    net.deliver(a, c, 8);
    let per_link = net.per_link_fault_stats();
    let keys: Vec<_> = per_link.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, vec![(a, b), (a, c), (b, a)], "sorted directed keys");
    // Directed totals add up to the network-wide counters.
    let total: u64 = per_link.iter().map(|(_, s)| s.delivered + s.dropped + s.duplicated).sum();
    assert_eq!(total, 401);
    let ab = net.link_fault_stats(a, b);
    assert_eq!(ab.delivered + ab.dropped + ab.duplicated, 200);
    // An untouched direction reports zeros.
    assert_eq!(net.link_fault_stats(c, a), FaultStats::default());
    // Resetting zeroes per-link counters too.
    net.reset_fault_stats();
    assert_eq!(net.link_fault_stats(a, b), FaultStats::default());
    assert_eq!(net.fault_stats(), FaultStats::default());
}

#[test]
fn per_link_override_and_loopback_exemption() {
    let net = Network::new(TimeScale::off());
    let a = net.add_host("a");
    let b = net.add_host("b");
    let c = net.add_host("c");
    net.set_default_link(Link::free());
    net.set_fault_plan(Some(FaultPlan::new(1).with_drop(1.0)));
    // Exempt a<->b explicitly; a<->c stays under the global plan; loopback
    // is exempt by construction.
    net.set_link_fault_plan(a, b, None);
    for _ in 0..50 {
        assert_eq!(net.deliver(a, b, 8), Verdict::Delivered);
        assert_eq!(net.deliver(b, a, 8), Verdict::Delivered);
        assert_eq!(net.deliver(a, a, 8), Verdict::Delivered);
        assert_eq!(net.deliver(a, c, 8), Verdict::Dropped);
    }
    // Clearing the global plan turns the layer off for a<->c too.
    net.set_fault_plan(None);
    net.set_link_fault_plan(a, b, None);
    assert_eq!(net.deliver(a, c, 8), Verdict::Delivered);
}

#[test]
fn fault_plan_encoding_round_trips() {
    let plan = FaultPlan::new(0xDEAD_BEEF)
        .with_drop(0.2)
        .with_dup(0.05)
        .with_burst(4)
        .with_down_window(1.0, 2.5)
        .with_down_window(10.0, 11.0);
    let decoded = FaultPlan::decode(&plan.encode()).unwrap();
    assert_eq!(plan, decoded);
}

#[test]
fn fault_plan_decode_rejects_garbage() {
    assert!(FaultPlan::decode(b"").is_err());
    assert!(FaultPlan::decode(b"NOPE").is_err());
    let mut enc = FaultPlan::new(1).with_drop(0.5).encode();
    enc[4] = 99; // bad version
    assert!(FaultPlan::decode(&enc).is_err());
    let mut enc = FaultPlan::new(1).encode();
    enc.push(0); // trailing byte
    assert!(FaultPlan::decode(&enc).is_err());
    let enc = FaultPlan::new(1).with_drop(0.5).encode();
    assert!(FaultPlan::decode(&enc[..enc.len() - 1]).is_err());
}

mod property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn transfer_time_monotone_in_size(
            lat in 0.0f64..0.1,
            bw in 1.0f64..1e9,
            ovh in 0.0f64..0.1,
            a in 0usize..1_000_000,
            b in 0usize..1_000_000,
        ) {
            let l = Link::new(lat, bw, ovh);
            let (small, big) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(l.transfer_seconds(small) <= l.transfer_seconds(big));
        }

        #[test]
        fn transfer_time_superadditive_split(
            bw in 1.0f64..1e9,
            lat in 1e-9f64..0.1,
            n in 2usize..1_000_000,
        ) {
            // Splitting a message into two never beats sending it whole
            // (each piece re-pays latency).
            let l = Link::new(lat, bw, 0.0);
            let whole = l.transfer_seconds(n);
            let half = l.transfer_seconds(n / 2) + l.transfer_seconds(n - n / 2);
            prop_assert!(half >= whole - 1e-12);
        }

        #[test]
        fn fault_plan_round_trips(
            seed in any::<u64>(),
            drop_p in 0.0f64..=1.0,
            dup_p in 0.0f64..=1.0,
            burst in 0u32..100,
            windows in proptest::collection::vec((0.0f64..1e6, 1e-6f64..1e3), 0..8),
        ) {
            let mut plan = FaultPlan::new(seed)
                .with_drop(drop_p)
                .with_dup(dup_p)
                .with_burst(burst);
            for (start, len) in windows {
                plan = plan.with_down_window(start, start + len);
            }
            let decoded = FaultPlan::decode(&plan.encode()).unwrap();
            prop_assert_eq!(plan, decoded);
        }

        #[test]
        fn fault_plan_decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = FaultPlan::decode(&data);
        }

        #[test]
        fn virtual_clock_sums(durs in proptest::collection::vec(0.0f64..10.0, 0..50)) {
            let c = VirtualClock::new();
            let mut total = 0.0;
            for d in &durs {
                c.advance(Duration::from_secs_f64(*d));
                total += d;
            }
            prop_assert!((c.now() - total).abs() < 1e-6);
        }
    }
}

mod engine {
    use crate::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn transport_mode_parses() {
        assert_eq!(TransportMode::parse("sync"), TransportMode::Sync);
        assert_eq!(TransportMode::parse("SYNC"), TransportMode::Sync);
        assert_eq!(TransportMode::parse(" blocking "), TransportMode::Sync);
        assert_eq!(TransportMode::parse("overlapped"), TransportMode::Overlapped);
        assert_eq!(TransportMode::parse(""), TransportMode::Overlapped);
        assert_eq!(TransportMode::default(), TransportMode::Overlapped);
    }

    #[test]
    fn published_readers_see_latest_store() {
        let p = Published::new(1u64);
        assert_eq!(*p.load(), 1);
        let held = p.load();
        p.store(2);
        assert_eq!(*p.load(), 2);
        // A reader that loaded before the swap keeps its snapshot.
        assert_eq!(*held, 1);
        assert_eq!(p.generations(), 2);
    }

    fn engine_pair(link: Link) -> (Network, HostId, HostId) {
        let net = Network::with_transport(TimeScale::off(), TransportMode::Overlapped);
        let a = net.add_host("A");
        let b = net.add_host("B");
        net.connect(a, b, link);
        (net, a, b)
    }

    #[test]
    fn dedicated_link_pipelines_latency() {
        let link = LinkPreset::AtmOc3.link();
        let (net, a, b) = engine_pair(link);
        // Small frames: latency dominates, so pipelining it matters.
        let bytes = 64;
        let k = 8;
        for _ in 0..k {
            net.transmit(a, b, bytes, || {});
        }
        net.quiesce();
        let t = link.transfer_seconds(bytes);
        let step = link.overhead_s + bytes as f64 / link.bandwidth_bps;
        let sum = k as f64 * t;
        let expected = (k - 1) as f64 * step + t;
        let makespan = net.makespan();
        assert!((makespan - expected).abs() < 1e-9, "makespan {makespan}, expected {expected}");
        // The wire's latency share overlaps across back-to-back frames —
        // only software overhead + byte serialisation stay serial.
        assert!(makespan < 0.55 * sum, "makespan {makespan} vs serial {sum}");
    }

    #[test]
    fn shared_medium_serialises_in_queue_order() {
        let link = LinkPreset::Ethernet10.link();
        assert!(link.shared);
        let (net, a, b) = engine_pair(link);
        let bytes = 100_000;
        let k = 5;
        for _ in 0..k {
            net.transmit(a, b, bytes, || {});
        }
        net.quiesce();
        let sum = k as f64 * link.transfer_seconds(bytes);
        assert!((net.makespan() - sum).abs() < 1e-9, "shared medium must serialise");
    }

    #[test]
    fn shared_segment_serialises_across_host_pairs() {
        // Two disjoint host pairs on the same 10 Mb/s Ethernet: there is one
        // cable, so their transfers serialise even though the pairs never
        // exchange a frame.
        let link = LinkPreset::Ethernet10.link();
        let bytes = 100_000;
        let k = 4;
        let shared = Network::with_transport(TimeScale::off(), TransportMode::Overlapped);
        let hosts: Vec<_> = ["A", "B", "C", "D"].iter().map(|n| shared.add_host(n)).collect();
        shared.connect(hosts[0], hosts[1], link);
        shared.connect(hosts[2], hosts[3], link);
        for _ in 0..k {
            shared.transmit(hosts[0], hosts[1], bytes, || {});
            shared.transmit(hosts[2], hosts[3], bytes, || {});
        }
        shared.quiesce();
        let sum = 2.0 * k as f64 * link.transfer_seconds(bytes);
        assert!(
            (shared.makespan() - sum).abs() < 1e-9,
            "one segment must serialise both pairs: {} vs {sum}",
            shared.makespan()
        );
        let u = shared.shared_segment_usage().expect("segment carried traffic");
        assert_eq!(u.frames, 2 * k as u64);

        // The same pairs on dedicated point-to-point links of identical
        // speed overlap: each pair owns its wire.
        let p2p = Link::new(link.latency_s, link.bandwidth_bps, link.overhead_s);
        let ded = Network::with_transport(TimeScale::off(), TransportMode::Overlapped);
        let dh: Vec<_> = ["A", "B", "C", "D"].iter().map(|n| ded.add_host(n)).collect();
        ded.connect(dh[0], dh[1], p2p);
        ded.connect(dh[2], dh[3], p2p);
        for _ in 0..k {
            ded.transmit(dh[0], dh[1], bytes, || {});
            ded.transmit(dh[2], dh[3], bytes, || {});
        }
        ded.quiesce();
        assert!(
            ded.makespan() < 0.6 * sum,
            "dedicated pairs must overlap: {} vs serial {sum}",
            ded.makespan()
        );
        assert!(ded.shared_segment_usage().is_none());
        assert_eq!(ded.per_link_usage().len(), 2);
    }

    #[test]
    fn reply_cannot_depart_before_request_arrives() {
        let link = LinkPreset::AtmOc3.link();
        let (net, a, b) = engine_pair(link);
        let t = link.transfer_seconds(4096);
        net.transmit(a, b, 4096, || {});
        // The reply is enqueued after the request's arrival advanced the
        // clock, so its own lane timeline starts there.
        net.transmit(b, a, 4096, || {});
        net.quiesce();
        assert!(net.makespan() >= 2.0 * t - 1e-12, "makespan {}", net.makespan());
    }

    #[test]
    fn release_runs_once_per_arriving_copy_inline() {
        let (net, a, b) = engine_pair(LinkPreset::AtmOc3.link());
        let hits = Arc::new(AtomicUsize::new(0));
        let h = hits.clone();
        let verdict = net.transmit(a, b, 64, move || {
            h.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(verdict, Verdict::Delivered);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn engine_fault_schedule_matches_sync_schedule() {
        let plan = FaultPlan::new(17).with_drop(0.3).with_dup(0.2).with_burst(1);
        let link = LinkPreset::AtmOc3.link();

        let (eng, a, b) = engine_pair(link);
        eng.set_fault_plan(Some(plan.clone()));
        let engine_verdicts: Vec<_> = (0..200).map(|_| eng.transmit(a, b, 512, || {})).collect();
        eng.quiesce();

        let sync = Network::with_transport(TimeScale::off(), TransportMode::Sync);
        let sa = sync.add_host("A");
        let sb = sync.add_host("B");
        sync.connect(sa, sb, link);
        sync.set_fault_plan(Some(plan));
        let sync_verdicts: Vec<_> = (0..200).map(|_| sync.deliver(sa, sb, 512)).collect();

        assert_eq!(engine_verdicts, sync_verdicts);
        assert_eq!(eng.fault_stats(), sync.fault_stats());
        assert_eq!(eng.link_fault_stats(a, b), sync.link_fault_stats(sa, sb));
    }

    #[test]
    fn dropped_and_duplicated_frames_occupy_the_wire() {
        let link = LinkPreset::Ethernet10.link();
        let (net, a, b) = engine_pair(link);
        net.set_fault_plan(Some(FaultPlan::new(3).with_drop(0.5).with_dup(0.3)));
        let hits = Arc::new(AtomicUsize::new(0));
        let mut copies = 0u64;
        let mut frames = 0u64;
        for _ in 0..100 {
            let h = hits.clone();
            let verdict = net.transmit(a, b, 1000, move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
            frames += 1;
            match verdict {
                Verdict::Delivered => copies += 1,
                Verdict::Duplicated => {
                    copies += 2;
                    frames += 1; // second copy reserves its own slot
                }
                Verdict::Dropped => {}
            }
        }
        net.quiesce();
        assert_eq!(hits.load(Ordering::SeqCst) as u64, copies);
        // Shared-medium traffic lands on the segment timeline, not a
        // per-pair lane.
        assert!(net.per_link_usage().is_empty());
        let u = net.shared_segment_usage().expect("segment carried traffic");
        assert_eq!(u.frames, frames, "every copy, dropped or not, holds a slot");
        // Shared medium: total busy time equals the serialised timeline.
        let t = link.transfer_seconds(1000);
        assert!((u.busy_s - frames as f64 * t).abs() < 1e-9);
        assert!((net.makespan() - u.busy_until_s).abs() < 1e-12);
    }

    #[test]
    fn per_link_usage_reports_overlap_as_concurrency() {
        let link = LinkPreset::AtmOc3.link();
        let (net, a, b) = engine_pair(link);
        for _ in 0..16 {
            net.transmit(a, b, 64, || {});
        }
        net.quiesce();
        let usage = net.per_link_usage();
        let (_, u) = usage[0];
        // 16 latency-overlapped transfers: occupancy above the timeline span.
        let util = u.utilization(net.makespan());
        assert!(util > 2.0, "utilization {util}");
    }

    #[test]
    fn sync_mode_transmit_is_deliver_plus_inline_release() {
        let net = Network::with_transport(TimeScale::off(), TransportMode::Sync);
        let a = net.add_host("A");
        let b = net.add_host("B");
        let link = LinkPreset::AtmOc3.link();
        net.connect(a, b, link);
        let hits = Arc::new(AtomicUsize::new(0));
        let k = 4;
        for _ in 0..k {
            let h = hits.clone();
            net.transmit(a, b, 1 << 20, move || {
                h.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(hits.load(Ordering::SeqCst), k);
        // Legacy accounting: the clock is the *sum* of transfers (modulo
        // `Duration`'s nanosecond granularity on the charge path).
        let sum = k as f64 * link.transfer_seconds(1 << 20);
        assert!((net.clock().now() - sum).abs() < 1e-6);
    }

    #[test]
    fn topology_mutation_does_not_invalidate_lane_state() {
        let (net, a, b) = engine_pair(LinkPreset::AtmOc3.link());
        net.transmit(a, b, 1024, || {});
        let before = net.per_link_usage()[0].1.frames;
        // Registering another host republishes the topology snapshot...
        let c = net.add_host("C");
        net.transmit(a, b, 1024, || {});
        net.transmit(a, c, 1024, || {});
        net.quiesce();
        // ...but the (a, b) lane keeps its counters across generations.
        let usage = net.per_link_usage();
        let ab = usage.iter().find(|(k, _)| *k == (a, b)).expect("lane survived").1;
        assert_eq!(ab.frames, before + 1);
        // The unconnected (a, c) pair fell back to the default link — shared
        // Ethernet — so its frame is on the segment, not a dedicated lane.
        assert_eq!(usage.len(), 1);
        assert_eq!(net.shared_segment_usage().expect("default link is shared").frames, 1);
    }
}
