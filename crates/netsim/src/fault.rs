//! Deterministic fault injection.
//!
//! The paper's testbed (dedicated ATM, shared Ethernet) was assumed
//! lossless and so was this simulator: every transfer delivered. A
//! [`FaultPlan`] breaks that assumption on purpose — frames can be dropped
//! (individually or in bursts), duplicated, or suppressed wholesale while a
//! link is down — so the ORB's reliability layer has something real to
//! survive.
//!
//! Everything is deterministic in the plan's seed: the verdict for the
//! `n`-th frame on a directed link is a pure hash of
//! `(seed, from, to, n)`, and link-down windows are expressed in virtual
//! clock seconds. Re-running a workload with the same seed reproduces the
//! same drop/duplicate schedule, which is what makes chaos failures
//! replayable.

/// What happened to a frame offered to the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The frame arrives once (the lossless default).
    Delivered,
    /// The frame is lost in transit; the sender is not told.
    Dropped,
    /// The frame arrives twice (e.g. a retransmitting switch).
    Duplicated,
}

/// Counters of fault-layer activity (network-wide from
/// [`crate::Network::fault_stats`], per directed link from
/// [`crate::Network::link_fault_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Frames that arrived exactly once.
    pub delivered: u64,
    /// Frames lost for any reason (random + burst + link-down).
    pub dropped: u64,
    /// Frames that arrived twice.
    pub duplicated: u64,
    /// Of `dropped`: losses from the burst tail following a triggered drop
    /// (the triggering drop itself counts as a random loss).
    pub burst_dropped: u64,
    /// Of `dropped`: frames suppressed inside a link-down window.
    pub down_dropped: u64,
}

impl FaultStats {
    /// Of `dropped`: independent per-frame (hash-triggered) losses.
    pub fn random_dropped(&self) -> u64 {
        self.dropped - self.burst_dropped - self.down_dropped
    }

    pub(crate) fn account(&mut self, fate: FrameFate) {
        match fate {
            FrameFate::Delivered => self.delivered += 1,
            FrameFate::Duplicated => self.duplicated += 1,
            FrameFate::DroppedRandom => self.dropped += 1,
            FrameFate::DroppedBurst => {
                self.dropped += 1;
                self.burst_dropped += 1;
            }
            FrameFate::DroppedDown => {
                self.dropped += 1;
                self.down_dropped += 1;
            }
        }
    }
}

/// A seeded fault schedule, attachable to one link or network-wide.
///
/// Probabilities are per-frame; `burst_len` extends every triggered drop to
/// the following frames on the same directed link (burst loss); `down`
/// windows (in virtual-clock seconds) drop every frame whose transfer
/// completes inside them (a timed link-down / partition).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the deterministic per-frame schedule.
    pub seed: u64,
    /// Probability that a frame is dropped.
    pub drop_p: f64,
    /// Probability that a (non-dropped) frame is duplicated.
    pub dup_p: f64,
    /// Extra consecutive frames dropped after each triggered drop.
    pub burst_len: u32,
    /// Link-down windows `[start, end)` in virtual-clock seconds.
    pub down: Vec<(f64, f64)>,
}

const ENC_MAGIC: [u8; 4] = *b"FPLN";
const ENC_VERSION: u8 = 1;

impl FaultPlan {
    /// A plan that injects nothing (useful as a builder base).
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, drop_p: 0.0, dup_p: 0.0, burst_len: 0, down: Vec::new() }
    }

    /// Set the per-frame drop probability.
    ///
    /// # Panics
    /// Panics if `p` is not a probability.
    pub fn with_drop(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "drop probability must be in [0, 1]");
        self.drop_p = p;
        self
    }

    /// Set the per-frame duplication probability.
    ///
    /// # Panics
    /// Panics if `p` is not a probability.
    pub fn with_dup(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "duplication probability must be in [0, 1]");
        self.dup_p = p;
        self
    }

    /// Drop `extra` further frames after every triggered drop (burst loss).
    pub fn with_burst(mut self, extra: u32) -> Self {
        self.burst_len = extra;
        self
    }

    /// Add a link-down window `[start, end)` in virtual-clock seconds.
    ///
    /// # Panics
    /// Panics if the window is not well-formed.
    pub fn with_down_window(mut self, start: f64, end: f64) -> Self {
        assert!(
            start.is_finite() && end.is_finite() && start >= 0.0 && end > start,
            "down window must be finite and non-empty"
        );
        self.down.push((start, end));
        self
    }

    /// Serialise the plan (fixed little-endian layout, versioned) so chaos
    /// configurations can be stored next to results and replayed.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(4 + 1 + 8 + 8 + 8 + 4 + 4 + self.down.len() * 16);
        out.extend_from_slice(&ENC_MAGIC);
        out.push(ENC_VERSION);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&self.drop_p.to_le_bytes());
        out.extend_from_slice(&self.dup_p.to_le_bytes());
        out.extend_from_slice(&self.burst_len.to_le_bytes());
        out.extend_from_slice(&(self.down.len() as u32).to_le_bytes());
        for (a, b) in &self.down {
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
        }
        out
    }

    /// Inverse of [`FaultPlan::encode`]. Validates magic, version, and that
    /// the probabilities are probabilities.
    pub fn decode(data: &[u8]) -> Result<FaultPlan, String> {
        fn take<'a>(data: &mut &'a [u8], n: usize) -> Result<&'a [u8], String> {
            if data.len() < n {
                return Err(format!("fault plan truncated: need {n} bytes, have {}", data.len()));
            }
            let (head, tail) = data.split_at(n);
            *data = tail;
            Ok(head)
        }
        fn u32_of(b: &[u8]) -> u32 {
            u32::from_le_bytes(b.try_into().expect("4 bytes"))
        }
        fn u64_of(b: &[u8]) -> u64 {
            u64::from_le_bytes(b.try_into().expect("8 bytes"))
        }
        fn f64_of(b: &[u8]) -> f64 {
            f64::from_le_bytes(b.try_into().expect("8 bytes"))
        }

        let mut d = data;
        if take(&mut d, 4)? != ENC_MAGIC {
            return Err("not a fault plan (bad magic)".into());
        }
        let version = take(&mut d, 1)?[0];
        if version != ENC_VERSION {
            return Err(format!("fault plan version {version}, expected {ENC_VERSION}"));
        }
        let seed = u64_of(take(&mut d, 8)?);
        let drop_p = f64_of(take(&mut d, 8)?);
        let dup_p = f64_of(take(&mut d, 8)?);
        for (name, p) in [("drop", drop_p), ("dup", dup_p)] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} probability {p} out of [0, 1]"));
            }
        }
        let burst_len = u32_of(take(&mut d, 4)?);
        let n = u32_of(take(&mut d, 4)?) as usize;
        let mut down = Vec::with_capacity(n.min(1 << 10));
        for _ in 0..n {
            let a = f64_of(take(&mut d, 8)?);
            let b = f64_of(take(&mut d, 8)?);
            if !(a.is_finite() && b.is_finite() && a >= 0.0 && b > a) {
                return Err(format!("malformed down window [{a}, {b})"));
            }
            down.push((a, b));
        }
        if !d.is_empty() {
            return Err(format!("{} trailing bytes after fault plan", d.len()));
        }
        Ok(FaultPlan { seed, drop_p, dup_p, burst_len, down })
    }
}

/// SplitMix64 — a tiny, high-quality mixing step; enough entropy for fault
/// scheduling without pulling a RNG crate into the simulator.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Map a hash to `[0, 1)`.
pub(crate) fn unit(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A [`Verdict`] together with *why* a frame was lost — the per-cause
/// resolution behind [`FaultStats`]' breakdown fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameFate {
    Delivered,
    Duplicated,
    /// Independent hash-triggered loss.
    DroppedRandom,
    /// Loss from the burst tail of a preceding triggered drop.
    DroppedBurst,
    /// Loss inside a link-down window.
    DroppedDown,
}

impl FrameFate {
    pub(crate) fn verdict(self) -> Verdict {
        match self {
            FrameFate::Delivered => Verdict::Delivered,
            FrameFate::Duplicated => Verdict::Duplicated,
            _ => Verdict::Dropped,
        }
    }

    /// Stable label for trace events.
    pub(crate) fn label(self) -> &'static str {
        match self {
            FrameFate::Delivered => "delivered",
            FrameFate::Duplicated => "duplicated",
            FrameFate::DroppedRandom => "dropped",
            FrameFate::DroppedBurst => "dropped_burst",
            FrameFate::DroppedDown => "dropped_down",
        }
    }
}

/// Mutable per-directed-link schedule state: frame ordinal, burst countdown,
/// and this link's own fault counters. The plan is shared (`Arc`), so
/// materialising a lane's schedule — and every per-frame verdict — costs no
/// plan clone or allocation.
#[derive(Debug)]
pub(crate) struct FaultState {
    plan: std::sync::Arc<FaultPlan>,
    seq: u64,
    burst_left: u32,
    stats: FaultStats,
}

impl FaultState {
    pub(crate) fn new(plan: std::sync::Arc<FaultPlan>) -> FaultState {
        FaultState { plan, seq: 0, burst_left: 0, stats: FaultStats::default() }
    }

    /// This directed link's counters since its plan was installed (or since
    /// the last [`FaultState::reset_stats`]).
    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    pub(crate) fn reset_stats(&mut self) {
        self.stats = FaultStats::default();
    }

    /// Decide the fate of the next frame on this directed link. `now_s` is
    /// the virtual-clock reading at the frame's arrival.
    pub(crate) fn verdict(&mut self, from: u32, to: u32, now_s: f64) -> FrameFate {
        let fate = self.decide(from, to, now_s);
        self.stats.account(fate);
        fate
    }

    fn decide(&mut self, from: u32, to: u32, now_s: f64) -> FrameFate {
        if self.plan.down.iter().any(|(a, b)| now_s >= *a && now_s < *b) {
            return FrameFate::DroppedDown;
        }
        let n = self.seq;
        self.seq += 1;
        if self.burst_left > 0 {
            self.burst_left -= 1;
            return FrameFate::DroppedBurst;
        }
        let link = ((from as u64) << 32) | to as u64;
        let h = splitmix64(self.plan.seed ^ splitmix64(link) ^ splitmix64(n));
        if unit(h) < self.plan.drop_p {
            self.burst_left = self.plan.burst_len;
            return FrameFate::DroppedRandom;
        }
        if unit(splitmix64(h)) < self.plan.dup_p {
            return FrameFate::Duplicated;
        }
        FrameFate::Delivered
    }
}
