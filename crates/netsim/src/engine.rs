//! Event-driven per-link transmit engine.
//!
//! The synchronous transport ([`crate::Network::charge`]) makes the sender's
//! thread pay the whole modelled transfer — latency, serialization, software
//! overhead — before the frame moves, so N outstanding frames cost N full
//! transfer times even on a dedicated link. The engine splits a send in two:
//!
//! * the **sender** synchronously pays only the software overhead `t_o`
//!   (figure 2's sender-side cost term), then continues computing;
//! * the **wire** is accounted on a per-directed-link [`Lane`] timeline:
//!   dedicated links (ATM, loopback) let transfers overlap — a new frame can
//!   be injected every `t_o` while earlier frames are still in flight — and
//!   shared-medium Ethernet serialises frames in queue order.
//!
//! Every frame gets a deterministic departure/arrival stamp on its lane
//! (`depart = max(lane cursor, virtual now)`, `arrival = depart + t`), the
//! network-wide virtual clock becomes the *makespan* (max arrival seen), and
//! per-lane busy time gives link utilization. Frames are released to the
//! destination in `(arrival, seq)` order — inline when no real time is
//! injected, via the [`Scheduler`]'s timer thread when it is.
//!
//! All lane state is plain atomics (CAS loops over `f64` bit patterns), so a
//! steady-state send acquires no lock.

use crate::Link;
use parking_lot::{Condvar, Mutex};
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How the network accounts and delivers frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransportMode {
    /// The event-driven engine: senders pay `t_o`, wire time lands on
    /// per-link queues, transfers on dedicated links overlap. The default.
    #[default]
    Overlapped,
    /// The legacy synchronous path: the sender's thread pays the full
    /// modelled transfer and the virtual clock sums every transfer. Selected
    /// with `PARDIS_TRANSPORT=sync`; accounting is bit-for-bit identical to
    /// the pre-engine simulator.
    Sync,
}

impl TransportMode {
    /// Parse a `PARDIS_TRANSPORT` value; anything but `sync`/`blocking`
    /// means the engine.
    pub fn parse(value: &str) -> TransportMode {
        match value.trim().to_ascii_lowercase().as_str() {
            "sync" | "blocking" => TransportMode::Sync,
            _ => TransportMode::Overlapped,
        }
    }

    /// Read the mode from the `PARDIS_TRANSPORT` environment variable
    /// (unset → [`TransportMode::Overlapped`]).
    pub fn from_env() -> TransportMode {
        match std::env::var("PARDIS_TRANSPORT") {
            Ok(v) => TransportMode::parse(&v),
            Err(_) => TransportMode::Overlapped,
        }
    }
}

/// Update an `f64` stored as bits in an `AtomicU64`; returns `(old, new)`.
fn f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) -> (f64, f64) {
    let mut cur = cell.load(Ordering::Acquire);
    loop {
        let old = f64::from_bits(cur);
        let new = f(old);
        match cell.compare_exchange_weak(cur, new.to_bits(), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return (old, new),
            Err(actual) => cur = actual,
        }
    }
}

/// A frame's reserved slot on a lane timeline (modelled seconds). The
/// departure stamp is implicit: `arrival - t`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Slot {
    /// When the last byte lands at the destination.
    pub arrival: f64,
    /// Full modelled transfer time (`latency + overhead + n/bandwidth`).
    pub t: f64,
}

/// A host's local virtual time under the engine: the earliest moment the
/// host can put the next frame on a wire. Sending advances it by the
/// link's software overhead `t_o` (the sender-side share of a transfer);
/// an arriving frame pulls it up to the frame's arrival, which is what
/// makes a reply depart no earlier than its request arrived — causality —
/// without serialising *independent* sends the way a global floor would.
#[derive(Debug, Default)]
pub(crate) struct LocalClock(AtomicU64);

impl LocalClock {
    /// Claim the departure floor for one send and pay `overhead_s` of
    /// sender time. Returns the floor (the host's time before the send).
    pub(crate) fn begin_send(&self, overhead_s: f64) -> f64 {
        f64_update(&self.0, |c| c + overhead_s).0
    }

    /// Fold an observed event (a frame arrival) into the host's time.
    pub(crate) fn observe(&self, at: f64) {
        f64_update(&self.0, |c| c.max(at));
    }

    /// Charge local (non-network) time the host spent waiting or computing
    /// — e.g. a retransmission backoff, which must move the host's virtual
    /// time forward or a timed link-down window could never pass. Returns
    /// the host's new local reading.
    pub(crate) fn advance(&self, by_s: f64) -> f64 {
        f64_update(&self.0, |c| c + by_s).1
    }
}

/// Per-directed-link transmit state: the timeline cursor, utilization
/// accounting, and the frame/byte counters. All atomics — reserving a slot
/// takes no lock.
#[derive(Debug, Default)]
pub(crate) struct Lane {
    /// Timeline cursor (f64 bits). Shared medium: the time the wire frees
    /// up (frames serialise behind it). Dedicated: the sender-side injection
    /// head — a new frame may depart every `t_o` while older transfers are
    /// still in flight.
    cursor: AtomicU64,
    /// Latest arrival on this lane (f64 bits) — the lane's busy-until stamp.
    busy_until: AtomicU64,
    /// Accumulated wire occupancy in seconds (f64 bits). On a dedicated
    /// link overlapping frames each count in full, so
    /// `busy / busy_until > 1` reads as average transfer concurrency.
    busy: AtomicU64,
    frames: AtomicU64,
    bytes: AtomicU64,
    /// Monotone floor on real-time release stamps (micros since the
    /// scheduler epoch), so scaled-time releases never reorder within a lane.
    last_due_us: AtomicU64,
}

impl Lane {
    /// Reserve the next slot for `bytes` given the lane's link and the
    /// current virtual reading `now`. Deterministic per lane: the slot
    /// depends only on the lane's cursor, `now`, and the frame's size.
    pub(crate) fn reserve(&self, link: &Link, bytes: usize, now: f64) -> Slot {
        let t = link.transfer_seconds(bytes);
        // A shared medium (classic Ethernet) is held for the whole transfer
        // — frames serialise end to end. A dedicated link pipelines its
        // *latency*: the next frame may start as soon as the previous one's
        // bytes have left the NIC (software overhead + serialisation), so
        // concurrent streams amortise latency but can never exceed the
        // link's bandwidth.
        let step =
            if link.shared { t } else { link.overhead_s + bytes as f64 / link.bandwidth_bps };
        let (old, _) = f64_update(&self.cursor, |c| c.max(now) + step);
        let depart = old.max(now);
        let arrival = depart + t;
        f64_update(&self.busy_until, |b| b.max(arrival));
        f64_update(&self.busy, |b| b + t);
        self.frames.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes as u64, Ordering::Relaxed);
        Slot { arrival, t }
    }

    pub(crate) fn usage(&self) -> LinkUsage {
        LinkUsage {
            frames: self.frames.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
            busy_s: f64::from_bits(self.busy.load(Ordering::Relaxed)),
            busy_until_s: f64::from_bits(self.busy_until.load(Ordering::Relaxed)),
        }
    }

    /// Clamp a real-time release stamp so it never precedes an earlier
    /// frame's on this lane. Returns the effective stamp.
    fn clamp_due_us(&self, due_us: u64) -> u64 {
        let prev = self.last_due_us.fetch_max(due_us, Ordering::AcqRel);
        prev.max(due_us)
    }
}

/// Traffic summary of one directed link under the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LinkUsage {
    /// Frames that reserved a slot (including dropped ones — they occupied
    /// the wire).
    pub frames: u64,
    /// Payload bytes across those frames.
    pub bytes: u64,
    /// Accumulated wire occupancy in modelled seconds. Exceeds
    /// `busy_until_s` on a dedicated link when transfers overlapped.
    pub busy_s: f64,
    /// The lane timeline's last arrival (modelled seconds).
    pub busy_until_s: f64,
}

impl LinkUsage {
    /// Occupancy relative to a horizon (normally the network makespan).
    /// Values above 1.0 mean overlapped transfers (average concurrency).
    pub fn utilization(&self, horizon_s: f64) -> f64 {
        if horizon_s <= 0.0 {
            0.0
        } else {
            self.busy_s / horizon_s
        }
    }
}

/// A scheduled frame release.
struct Pending {
    due: Instant,
    arrival_bits: u64,
    seq: u64,
    release: Arc<dyn Fn() + Send + Sync>,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == CmpOrdering::Equal
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    /// Reversed: the `BinaryHeap` is a max-heap and we want the earliest
    /// `(due, arrival, seq)` on top.
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other
            .due
            .cmp(&self.due)
            .then_with(|| other.arrival_bits.cmp(&self.arrival_bits))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

#[derive(Default)]
struct SchedulerState {
    heap: BinaryHeap<Pending>,
    /// Frames enqueued but not yet released (for [`Scheduler::quiesce`]).
    inflight: usize,
    /// Whether the timer thread is alive.
    running: bool,
    seq: u64,
}

/// Timer thread releasing scheduled frames in `(due, arrival, seq)` order.
/// Engaged only when real time is injected (`TimeScale > 0`); with pure
/// virtual accounting releases happen inline on the sender. The thread is
/// spawned on first use and exits after an idle period, so idle networks
/// hold no thread.
pub(crate) struct Scheduler {
    state: Mutex<SchedulerState>,
    cv: Condvar,
    epoch: Instant,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler {
            state: Mutex::new(SchedulerState::default()),
            cv: Condvar::new(),
            epoch: Instant::now(),
        }
    }
}

const IDLE_EXIT: Duration = Duration::from_millis(50);

impl Scheduler {
    /// Schedule `release` to run at `due` (real time), keeping per-lane
    /// release order monotone.
    pub(crate) fn enqueue(
        self: &Arc<Self>,
        lane: &Lane,
        due: Instant,
        arrival: f64,
        release: Arc<dyn Fn() + Send + Sync>,
    ) {
        let due_us = due.saturating_duration_since(self.epoch).as_micros() as u64;
        let due_us = lane.clamp_due_us(due_us);
        let due = self.epoch + Duration::from_micros(due_us);
        let mut st = self.state.lock();
        st.seq += 1;
        let seq = st.seq;
        st.heap.push(Pending { due, arrival_bits: arrival.to_bits(), seq, release });
        st.inflight += 1;
        if !st.running {
            st.running = true;
            let sched = Arc::clone(self);
            std::thread::Builder::new()
                .name("pardis-netsim-engine".into())
                .spawn(move || sched.run())
                .expect("spawn engine timer thread");
        }
        drop(st);
        self.cv.notify_all();
    }

    /// Block until every scheduled release has run.
    pub(crate) fn quiesce(&self) {
        let mut st = self.state.lock();
        while st.inflight > 0 {
            self.cv.wait_for(&mut st, Duration::from_millis(10));
        }
    }

    fn run(self: Arc<Self>) {
        loop {
            let mut st = self.state.lock();
            match st.heap.peek() {
                Some(next) if next.due <= Instant::now() => {
                    let entry = st.heap.pop().expect("peeked entry");
                    drop(st);
                    (entry.release)();
                    let mut st = self.state.lock();
                    st.inflight -= 1;
                    drop(st);
                    self.cv.notify_all();
                }
                Some(next) => {
                    let wait = next.due.saturating_duration_since(Instant::now());
                    self.cv.wait_for(&mut st, wait);
                }
                None => {
                    let timed_out = self.cv.wait_for(&mut st, IDLE_EXIT).timed_out();
                    if timed_out && st.heap.is_empty() {
                        st.running = false;
                        return;
                    }
                }
            }
        }
    }
}
