//! Clock handling: time scaling for real-time injection and a virtual clock
//! for deterministic tests.
//!
//! Both clocks store their `f64` readings as bit patterns in atomics, so the
//! transport hot path (every frame reads the scale and advances the virtual
//! clock) acquires no lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// CAS-update an `f64` stored as bits; returns the new value.
fn f64_update(cell: &AtomicU64, f: impl Fn(f64) -> f64) -> f64 {
    let mut cur = cell.load(Ordering::Acquire);
    loop {
        let new = f(f64::from_bits(cur));
        match cell.compare_exchange_weak(cur, new.to_bits(), Ordering::AcqRel, Ordering::Acquire) {
            Ok(_) => return new,
            Err(actual) => cur = actual,
        }
    }
}

/// A global multiplier applied to every modelled delay before sleeping.
///
/// A scale of `1.0` injects delays at their modelled magnitude; `0.01` runs a
/// sweep 100x faster while preserving every *ratio* the evaluation figures
/// depend on; `0.0` disables sleeping entirely (pure virtual accounting).
#[derive(Debug, Clone)]
pub struct TimeScale {
    scale: Arc<AtomicU64>,
}

impl TimeScale {
    /// Create a new time scale.
    ///
    /// # Panics
    /// Panics if `scale` is negative or non-finite.
    pub fn new(scale: f64) -> Self {
        assert!(scale.is_finite() && scale >= 0.0, "time scale must be finite and >= 0");
        TimeScale { scale: Arc::new(AtomicU64::new(scale.to_bits())) }
    }

    /// Real-time injection at modelled magnitude.
    pub fn realtime() -> Self {
        TimeScale::new(1.0)
    }

    /// No sleeping at all; only virtual accounting.
    pub fn off() -> Self {
        TimeScale::new(0.0)
    }

    /// Current multiplier.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.scale.load(Ordering::Acquire))
    }

    /// Change the multiplier (affects all clones).
    pub fn set(&self, scale: f64) {
        assert!(scale.is_finite() && scale >= 0.0, "time scale must be finite and >= 0");
        self.scale.store(scale.to_bits(), Ordering::Release);
    }

    /// Scale a modelled duration down to the injected duration.
    pub fn apply(&self, modelled: Duration) -> Duration {
        modelled.mul_f64(self.get())
    }
}

impl Default for TimeScale {
    fn default() -> Self {
        TimeScale::realtime()
    }
}

/// A monotone virtual clock accumulating modelled seconds.
///
/// Under the synchronous transport the clock is the *sum* of all modelled
/// transfer times ([`VirtualClock::advance`] per frame); under the
/// event-driven engine it is the *makespan* — the latest arrival on any
/// link timeline ([`VirtualClock::advance_to`] per frame).
///
/// Thread-safe and lock-free; cloning shares the underlying counter.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    bits: Arc<AtomicU64>,
}

impl VirtualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by a modelled duration and return the new reading.
    pub fn advance(&self, by: Duration) -> f64 {
        f64_update(&self.bits, |s| s + by.as_secs_f64())
    }

    /// Advance the clock to at least `to` seconds (used to merge parallel
    /// transfer timelines: the completion time of concurrent transfers is
    /// their max, not their sum).
    pub fn advance_to(&self, to: f64) -> f64 {
        f64_update(&self.bits, |s| s.max(to))
    }

    /// Current reading in modelled seconds.
    pub fn now(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Acquire))
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.bits.store(0f64.to_bits(), Ordering::Release);
    }
}
