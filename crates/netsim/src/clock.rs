//! Clock handling: time scaling for real-time injection and a virtual clock
//! for deterministic tests.

use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A global multiplier applied to every modelled delay before sleeping.
///
/// A scale of `1.0` injects delays at their modelled magnitude; `0.01` runs a
/// sweep 100x faster while preserving every *ratio* the evaluation figures
/// depend on; `0.0` disables sleeping entirely (pure virtual accounting).
#[derive(Debug, Clone)]
pub struct TimeScale {
    scale: Arc<Mutex<f64>>,
}

impl TimeScale {
    /// Create a new time scale.
    ///
    /// # Panics
    /// Panics if `scale` is negative or non-finite.
    pub fn new(scale: f64) -> Self {
        assert!(scale.is_finite() && scale >= 0.0, "time scale must be finite and >= 0");
        TimeScale { scale: Arc::new(Mutex::new(scale)) }
    }

    /// Real-time injection at modelled magnitude.
    pub fn realtime() -> Self {
        TimeScale::new(1.0)
    }

    /// No sleeping at all; only virtual accounting.
    pub fn off() -> Self {
        TimeScale::new(0.0)
    }

    /// Current multiplier.
    pub fn get(&self) -> f64 {
        *self.scale.lock()
    }

    /// Change the multiplier (affects all clones).
    pub fn set(&self, scale: f64) {
        assert!(scale.is_finite() && scale >= 0.0, "time scale must be finite and >= 0");
        *self.scale.lock() = scale;
    }

    /// Scale a modelled duration down to the injected duration.
    pub fn apply(&self, modelled: Duration) -> Duration {
        modelled.mul_f64(self.get())
    }
}

impl Default for TimeScale {
    fn default() -> Self {
        TimeScale::realtime()
    }
}

/// A monotone virtual clock accumulating modelled seconds.
///
/// Thread-safe; cloning shares the underlying counter.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    seconds: Arc<Mutex<f64>>,
}

impl VirtualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by a modelled duration and return the new reading.
    pub fn advance(&self, by: Duration) -> f64 {
        let mut s = self.seconds.lock();
        *s += by.as_secs_f64();
        *s
    }

    /// Advance the clock to at least `to` seconds (used to merge parallel
    /// transfer timelines: the completion time of concurrent transfers is
    /// their max, not their sum).
    pub fn advance_to(&self, to: f64) -> f64 {
        let mut s = self.seconds.lock();
        if to > *s {
            *s = to;
        }
        *s
    }

    /// Current reading in modelled seconds.
    pub fn now(&self) -> f64 {
        *self.seconds.lock()
    }

    /// Reset to zero.
    pub fn reset(&self) {
        *self.seconds.lock() = 0.0;
    }
}
