//! The client side of the ORB: binding, proxies, invocation.
//!
//! A parallel client is a [`ClientGroup`] of computing threads. Each thread
//! attaches for its [`ClientThread`], then binds to objects either
//! collectively ([`ClientThread::spmd_bind`], one binding representing the
//! whole parallel client) or individually ([`ClientThread::bind`], one
//! binding per thread) — §3.1. Operations are invoked through a
//! [`CallBuilder`], blocking ([`CallBuilder::invoke`]), non-blocking with
//! futures ([`CallBuilder::invoke_nb`]) or oneway
//! ([`CallBuilder::invoke_oneway`]).

use crate::backpressure::Permit;
use crate::dist::{plan_transfer_cached, Distribution};
use crate::dseq::DSequence;
use crate::error::{OrbError, OrbResult};
use crate::object::{BindingId, ClientId, DistPolicy, EndpointId, ObjectKind, ObjectRef};
use crate::orb::{Envelope, Orb, OrbConfig, TransferStrategy};
use crate::poa::FORWARD_TAG;
use crate::protocol::{
    encode_fragment_frame, frame_list, unframe_list, ArgDir, DArgDesc, FragmentMsg, Message,
    ReplyMsg, ReplyStatus, RequestMsg,
};
use crate::servant::{stage_piece, RangeEncodeFn, ServantCtx, ServerRequest};
use bytes::Bytes;
use crossbeam::channel::Receiver;
use pardis_audit::{lock_site, AuditMutex};
use pardis_cdr::{Any, ByteOrder, CdrCodec, Decoder, Encoder, TypeCode};
use pardis_netsim::{HostId, Published};
use pardis_rts::Rts;
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A (possibly parallel) client registered with the ORB. Clone into each
/// computing thread and call [`ClientGroup::attach`] there.
#[derive(Clone)]
pub struct ClientGroup {
    orb: Orb,
    id: ClientId,
    host: HostId,
    nthreads: usize,
    reply_eps: Vec<EndpointId>,
    reply_rxs: Arc<AuditMutex<Vec<Option<Receiver<Envelope>>>>>,
    /// Repository namespace, published as an immutable snapshot (the PR-5
    /// Arc-swap idiom): `attach` reads it without taking a lock.
    namespace: Arc<Published<String>>,
}

/// Shared-table identity for the happens-before checker: the per-thread
/// reply router (invocation key → in-flight state). One static site so
/// every access — register, route, re-arm, teardown — correlates.
static REPLY_TABLE: pardis_audit::Site = pardis_audit::Site {
    label: "client: reply table",
    krate: "pardis-core",
    file: file!(),
    line: line!(),
};

impl ClientGroup {
    /// Register a client of `nthreads` computing threads on `host`.
    pub fn create(orb: &Orb, host: HostId, nthreads: usize) -> ClientGroup {
        assert!(nthreads > 0, "client needs at least one computing thread");
        let id = orb.alloc_client();
        let mut reply_eps = Vec::with_capacity(nthreads);
        let mut reply_rxs = Vec::with_capacity(nthreads);
        for _ in 0..nthreads {
            let (ep, rx) = orb.register_endpoint(host);
            reply_eps.push(ep);
            reply_rxs.push(Some(rx));
        }
        ClientGroup {
            orb: orb.clone(),
            id,
            host,
            nthreads,
            reply_eps,
            reply_rxs: Arc::new(AuditMutex::new(
                lock_site!("client: reply-endpoint handoff"),
                reply_rxs,
            )),
            namespace: Arc::new(Published::new(crate::repository::DEFAULT_REPOSITORY.to_string())),
        }
    }

    /// Resolve names in a different repository namespace.
    pub fn with_namespace(self, ns: &str) -> Self {
        self.namespace.store(ns.to_string());
        self
    }

    /// Number of computing threads.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Claim computing thread `thread`'s client endpoint. `rts` is required
    /// when `nthreads > 1`.
    pub fn attach(&self, thread: usize, rts: Option<Arc<dyn Rts>>) -> ClientThread {
        assert!(thread < self.nthreads, "thread {thread} out of range");
        if self.nthreads > 1 {
            let r = rts.as_ref().expect("parallel clients must attach with an RTS endpoint");
            assert_eq!(r.size(), self.nthreads, "RTS world size != client thread count");
            assert_eq!(r.rank(), thread, "RTS rank != attaching thread");
        }
        let rx = self.reply_rxs.lock()[thread]
            .take()
            .unwrap_or_else(|| panic!("thread {thread} already attached"));
        pardis_obs::set_thread_label(&format!("client{}/{}", self.id.0, thread));
        ClientThread {
            core: Arc::new(PumpCore {
                orb: self.orb.clone(),
                host: self.host,
                client: self.id,
                thread,
                nthreads: self.nthreads,
                reply_eps: self.reply_eps.clone(),
                rx,
                rts,
                router: ShardedRouter::new(self.orb.config().router_shards),
                collective_seq: AtomicU64::new(0),
                single_seq: AtomicU64::new(0),
            }),
            namespace: (*self.namespace.load()).clone(),
            spmd_bind_seq: AtomicU64::new(0),
            single_bind_seq: AtomicU64::new(0),
        }
    }
}

/// Per-thread message pump and reply router, shared between a thread's
/// proxies and the futures they mint.
pub(crate) struct PumpCore {
    pub orb: Orb,
    pub host: HostId,
    pub client: ClientId,
    pub thread: usize,
    pub nthreads: usize,
    pub reply_eps: Vec<EndpointId>,
    rx: Receiver<Envelope>,
    pub rts: Option<Arc<dyn Rts>>,
    router: ShardedRouter,
    /// Invocation counter of the collective entity (all threads of an SPMD
    /// client stay in sync by the SPMD calling discipline).
    collective_seq: AtomicU64,
    /// Invocation counter of this thread acting as a single client.
    single_seq: AtomicU64,
}

/// Bounded FIFO memory of finished invocation keys.
#[derive(Default)]
struct DoneSet {
    set: HashSet<(BindingId, u64)>,
    order: VecDeque<(BindingId, u64)>,
}

/// Per-shard bound on the done-set and on the number of distinct orphan
/// keys a pump will stash — plenty for any live pipeline, small enough
/// that duplicate storms cannot grow memory without bound.
pub(crate) const PUMP_MEMORY_CAP: usize = 1024;

/// One shard of the reply router: the in-flight invocation map plus the
/// orphan stash and done-set for the keys that hash here. Co-locating the
/// three under one lock keeps routing a reply a single acquisition — and
/// makes registration's insert atomic with its orphan-stash take, so a
/// reply racing the registration can never strand in the stash.
#[derive(Default)]
struct RouterShard {
    router: HashMap<(BindingId, u64), Arc<InvocationState>>,
    orphans: HashMap<(BindingId, u64), Vec<Message>>,
    /// Arrival order of stashed orphan keys, for capped FIFO eviction.
    /// Entries can go stale (register/unregister removed the key); eviction
    /// skips them.
    orphan_order: VecDeque<(BindingId, u64)>,
    done: DoneSet,
}

/// The reply router, split into power-of-two shards keyed by invocation id
/// ([`crate::OrbConfig::router_shards`]): concurrent waiters and pumps hash
/// to different locks instead of serialising on one.
struct ShardedRouter {
    shards: Box<[AuditMutex<RouterShard>]>,
    mask: u64,
}

impl ShardedRouter {
    fn new(n: usize) -> ShardedRouter {
        let n = n.clamp(1, 1024).next_power_of_two();
        let shards = (0..n)
            .map(|_| {
                AuditMutex::new(lock_site!("client: reply router shard"), RouterShard::default())
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        ShardedRouter { shards, mask: (n - 1) as u64 }
    }

    fn shard(&self, key: (BindingId, u64)) -> &AuditMutex<RouterShard> {
        let h = mix64(key.0 .0) ^ mix64(key.1);
        &self.shards[(h & self.mask) as usize]
    }

    fn iter(&self) -> std::slice::Iter<'_, AuditMutex<RouterShard>> {
        self.shards.iter()
    }
}

impl PumpCore {
    /// Register a fully pre-built invocation state. The critical section is
    /// one insert plus the orphan-stash take — atomic under the shard lock,
    /// so a reply racing the registration routes either through the router
    /// or through the stash, never past both.
    fn register(&self, key: (BindingId, u64), state: Arc<InvocationState>) {
        let stashed = {
            let shard = self.router.shard(key);
            let mut s = shard.lock();
            // Inside the guard: the access inherits the lock's release
            // clock, so lock-ordered accesses never read as races.
            pardis_audit::access_write(&REPLY_TABLE, shard as *const _ as usize);
            s.router.insert(key, state);
            s.orphans.remove(&key)
        };
        if let Some(msgs) = stashed {
            for msg in msgs {
                self.route(msg);
            }
        }
    }

    fn unregister(&self, key: (BindingId, u64)) {
        let state = {
            let shard = self.router.shard(key);
            let mut s = shard.lock();
            pardis_audit::access_write(&REPLY_TABLE, shard as *const _ as usize);
            s.orphans.remove(&key);
            let state = s.router.remove(&key);
            if s.done.set.insert(key) {
                s.done.order.push_back(key);
                while s.done.order.len() > PUMP_MEMORY_CAP {
                    if let Some(old) = s.done.order.pop_front() {
                        s.done.set.remove(&old);
                    }
                }
            }
            state
        };
        if let Some(state) = state {
            // Teardown's slow half runs outside the shard lock: free the
            // admission slot (timeout/cancel paths may still hold it) and
            // close the invoke span opened at launch (exactly once, even if
            // tracing was toggled in between).
            state.release_permit();
            if state.span_open.swap(false, Ordering::Relaxed) {
                let mut args = Vec::new();
                if let Some(obs) = &state.obs {
                    args.push(("trace", obs.ctx.trace_id.into()));
                    args.push(("span", obs.ctx.span_id.into()));
                    if pardis_obs::enabled() {
                        // Completion closes the end-to-end latency window on
                        // the virtual clock; per-op and per-binding
                        // histograms feed the p50/p95/p99 exposition.
                        let lat = pardis_obs::now_micros().saturating_sub(obs.start_us);
                        pardis_obs::histogram(&format!("orb.invoke_latency_us.op.{}", obs.op))
                            .observe(lat);
                        pardis_obs::histogram(&format!(
                            "orb.invoke_latency_us.binding.{}",
                            key.0 .0
                        ))
                        .observe(lat);
                    }
                }
                pardis_obs::span_end("client", "client.invoke", Some((key.0 .0, key.1)), args);
            }
        }
    }

    /// Completion check without pumping — only meaningful when a
    /// communication thread (or another caller) is draining the endpoint.
    pub(crate) fn peek_complete(&self, key: (BindingId, u64)) -> bool {
        let shard = self.router.shard(key);
        let s = shard.lock();
        pardis_audit::access_read(&REPLY_TABLE, shard as *const _ as usize);
        s.router.get(&key).map(|st| st.is_complete()).unwrap_or(false)
    }

    /// Ingest available messages; optionally wait up to `wait` for the first
    /// one. Returns true if anything was processed.
    pub(crate) fn pump_step(&self, wait: Option<Duration>) -> bool {
        let mut progressed = false;
        while let Ok(env) = self.rx.try_recv() {
            pardis_audit::chan_recv(self.reply_eps[self.thread].0);
            self.ingest_wire(&env.wire);
            progressed = true;
        }
        if let Some(rts) = &self.rts {
            while let Some(msg) = rts.try_recv(None, FORWARD_TAG) {
                self.ingest_wire(&msg.data);
                progressed = true;
            }
        }
        if !progressed {
            if let Some(timeout) = wait {
                // About to block: push out anything the batcher is still
                // holding for us, or the reply we wait on may never be
                // provoked.
                self.orb.flush_batches();
                if let Ok(env) = self.rx.recv_timeout(timeout) {
                    pardis_audit::chan_recv(self.reply_eps[self.thread].0);
                    self.ingest_wire(&env.wire);
                    progressed = true;
                }
            }
        }
        progressed
    }

    fn ingest_wire(&self, wire: &Bytes) {
        let Ok(msg) = Message::decode(wire) else {
            debug_assert!(false, "malformed frame at client");
            return;
        };
        // A batch envelope from a coalescing POA: each sub-frame is a
        // complete wire frame — unpack and ingest recursively.
        if let Message::Batch(frames) = &msg {
            for frame in frames {
                self.ingest_wire(frame);
            }
            return;
        }
        // Funneled forwarding at the client edge: thread 0 relays frames
        // destined for siblings over the run-time system.
        match &msg {
            Message::Fragment(f) if f.dst_thread as usize != self.thread => {
                if let Some(rts) = &self.rts {
                    rts.send(f.dst_thread as usize, FORWARD_TAG, wire.clone());
                } else {
                    debug_assert!(false, "fragment for thread {} at single client", f.dst_thread);
                }
                return;
            }
            Message::Reply(r) => {
                let key = (r.binding, r.req_id);
                let fan_out = {
                    let s = self.router.shard(key).lock();
                    s.router
                        .get(&key)
                        .map(|st| st.funneled && st.client_threads > 1 && self.thread == 0)
                        .unwrap_or(false)
                };
                if fan_out {
                    let rts = self.rts.as_ref().expect("parallel client has an RTS");
                    for t in 1..self.nthreads {
                        rts.send(t, FORWARD_TAG, wire.clone());
                    }
                }
            }
            _ => {}
        }
        self.route(msg);
    }

    fn route(&self, msg: Message) {
        let key = match &msg {
            Message::Reply(r) => (r.binding, r.req_id),
            Message::Fragment(f) => (f.binding, f.req_id),
            // Close or stray messages at a client endpoint: ignore.
            _ => return,
        };
        let shard = self.router.shard(key);
        let state = {
            let s = shard.lock();
            pardis_audit::access_read(&REPLY_TABLE, shard as *const _ as usize);
            s.router.get(&key).cloned()
        };
        if let Some(state) = state {
            state.absorb(msg);
            return;
        }
        let mut s = shard.lock();
        pardis_audit::access_write(&REPLY_TABLE, shard as *const _ as usize);
        // Re-check under the write lock: a register may have raced our
        // fast-path miss, and stashing now would strand the message.
        if let Some(state) = s.router.get(&key).cloned() {
            drop(s);
            state.absorb(msg);
            return;
        }
        // A reply for a finished invocation is a retransmission
        // by-product; drop it (counter only — see `absorb` for why
        // this never becomes a trace event). Unknown keys are
        // stashed (bounded) for a registration racing the reply.
        if s.done.set.contains(&key) {
            if pardis_obs::enabled() {
                pardis_obs::counter("client.dup_replies").inc();
            }
            return;
        }
        // Capped FIFO stash: evict the oldest distinct key (skipping stale
        // order entries) instead of silently refusing new ones, so a storm
        // of strays cannot pin the stash while live registrations starve.
        let is_new = !s.orphans.contains_key(&key);
        if is_new {
            while s.orphans.len() >= PUMP_MEMORY_CAP {
                let Some(old) = s.orphan_order.pop_front() else { break };
                if s.orphans.remove(&old).is_some() {
                    pardis_obs::counter("client.orphans.evicted").inc();
                }
            }
            s.orphan_order.push_back(key);
        }
        s.orphans.entry(key).or_default().push(msg);
    }
}

/// Client-side record of one in-flight invocation; the rendezvous point
/// between the pump and the futures.
pub struct InvocationState {
    pub(crate) funneled: bool,
    pub(crate) client_threads: usize,
    pub(crate) thread: usize,
    key: (BindingId, u64),
    server: crate::object::ServerId,
    out_wire_idx: Vec<u32>,
    out_dists: Vec<Distribution>,
    inner: AuditMutex<InvInner>,
    /// Frames this thread must re-send to nudge the server if the reply
    /// does not arrive: the request control plus this thread's fragments,
    /// pre-encoded with their destination endpoints. Empty for oneways and
    /// collocated bypass calls (nothing to retry).
    replay: AuditMutex<Vec<(EndpointId, Bytes)>>,
    /// An `client.invoke` trace span was opened for this invocation and
    /// must be closed exactly once (at unregistration).
    span_open: std::sync::atomic::AtomicBool,
    /// Backpressure admission slot, released when the reply completes (not
    /// at unregistration — a non-blocking pipeline would deadlock waiting
    /// for permits its own unharvested futures hold). `has_permit` keeps
    /// the common no-cap path to one relaxed load.
    permit: AuditMutex<Option<Permit>>,
    has_permit: AtomicBool,
    /// Tracing sidecar captured at launch (only while tracing): the
    /// invocation's causal context, operation name, and virtual-clock start
    /// for the per-op/per-binding latency histograms.
    obs: Option<InvObs>,
}

/// Tracing-only per-invocation observability state.
struct InvObs {
    ctx: pardis_obs::TraceCtx,
    op: String,
    start_us: u64,
}

#[derive(Default)]
struct InvInner {
    reply: Option<ReplyMsg>,
    frags: HashMap<u32, Vec<(u64, u64, Bytes)>>,
    /// Fragment identities already absorbed — duplicated or retransmitted
    /// fragments must not double-append elements.
    frag_seen: HashSet<(u32, u64, u64, u32)>,
}

impl InvocationState {
    fn absorb(&self, msg: Message) {
        let completed;
        {
            let mut inner = self.inner.lock();
            match msg {
                Message::Reply(r) => {
                    // A second reply copy for a still-registered invocation is
                    // the same retransmission by-product the done-set catches
                    // after unregistration; count it in the same place. Counter
                    // only, no event: whether the pump sees the copy in this
                    // drain or a later one is a scheduling race, and a trace
                    // event would make the export non-reproducible.
                    if inner.reply.is_some() && pardis_obs::enabled() {
                        pardis_obs::counter("client.dup_replies").inc();
                    }
                    inner.reply = Some(r);
                }
                Message::Fragment(f)
                    if inner.frag_seen.insert((f.arg, f.start, f.count, f.src_thread)) =>
                {
                    // f.data is a zero-copy slice of the wire frame; stashing it
                    // keeps the frame alive instead of copying the payload.
                    inner.frags.entry(f.arg).or_default().push((f.start, f.count, f.data));
                }
                _ => {}
            }
            completed = self.has_permit.load(Ordering::Relaxed) && self.complete_locked(&inner);
        }
        if completed {
            // The server answered in full: free the admission slot now so
            // the next launcher gets in while this reply waits to be
            // harvested.
            self.release_permit();
        }
    }

    /// Drop the backpressure permit, if still held.
    fn release_permit(&self) {
        if self.has_permit.swap(false, Ordering::Relaxed) {
            self.permit.lock().take();
        }
    }

    /// Reply present and, on success, every expected local out-element
    /// arrived. (All futures of one invocation resolve together, §3.3.)
    fn is_complete(&self) -> bool {
        let inner = self.inner.lock();
        self.complete_locked(&inner)
    }

    fn complete_locked(&self, inner: &InvInner) -> bool {
        let Some(reply) = &inner.reply else { return false };
        if !matches!(reply.status, ReplyStatus::Ok) {
            return true;
        }
        for (ordinal, wire_idx) in self.out_wire_idx.iter().enumerate() {
            let Some(len) = reply.dout_lens.get(ordinal) else { return false };
            let expected =
                self.out_dists[ordinal].local_len(*len, self.client_threads, self.thread);
            let arrived: u64 =
                inner.frags.get(wire_idx).map(|fs| fs.iter().map(|(_, c, _)| c).sum()).unwrap_or(0);
            if arrived < expected {
                return false;
            }
        }
        true
    }

    fn check_status(&self) -> OrbResult<()> {
        let inner = self.inner.lock();
        match &inner.reply {
            Some(ReplyMsg { status: ReplyStatus::Exception(msg), .. }) => {
                Err(OrbError::ServerException(msg.clone()))
            }
            Some(ReplyMsg { status: ReplyStatus::UserException { id, data }, .. }) => {
                Err(OrbError::UserException { id: id.clone(), data: data.clone() })
            }
            Some(_) => Ok(()),
            None => Err(OrbError::Protocol("reply not yet available".into())),
        }
    }

    fn scalar<T: CdrCodec>(&self, slot: usize) -> OrbResult<T> {
        self.check_status()?;
        let inner = self.inner.lock();
        let reply = inner.reply.as_ref().expect("checked");
        let blob = reply
            .outs
            .get(slot)
            .ok_or_else(|| OrbError::Protocol(format!("no scalar out slot {slot}")))?;
        let mut d = Decoder::new(blob.clone(), ByteOrder::native());
        Ok(T::decode(&mut d)?)
    }

    fn any(&self, slot: usize, tc: &TypeCode) -> OrbResult<Any> {
        self.check_status()?;
        let inner = self.inner.lock();
        let reply = inner.reply.as_ref().expect("checked");
        let blob = reply
            .outs
            .get(slot)
            .ok_or_else(|| OrbError::Protocol(format!("no scalar out slot {slot}")))?;
        let mut d = Decoder::new(blob.clone(), ByteOrder::native());
        Ok(Any::decode_value(tc, &mut d)?)
    }

    fn dseq<T: CdrCodec + Clone>(&self, ordinal: usize) -> OrbResult<DSequence<T>> {
        self.check_status()?;
        let inner = self.inner.lock();
        let reply = inner.reply.as_ref().expect("checked");
        let wire_idx = *self
            .out_wire_idx
            .get(ordinal)
            .ok_or_else(|| OrbError::Protocol(format!("no distributed out-arg {ordinal}")))?;
        let len = *reply
            .dout_lens
            .get(ordinal)
            .ok_or_else(|| OrbError::Protocol("reply missing dout length".into()))?;
        let dist = self.out_dists[ordinal].clone();
        let n = self.client_threads;
        let t = self.thread;
        let local_len = dist.local_len(len, n, t) as usize;
        let mut staged: Vec<Option<T>> = (0..local_len).map(|_| None).collect();
        if let Some(pieces) = inner.frags.get(&wire_idx) {
            for (start, count, data) in pieces {
                let mut d = Decoder::new(data.clone(), ByteOrder::native());
                stage_piece(&mut staged, &mut d, &dist, len, n, t, *start, *count)?;
            }
        }
        let mut local = Vec::with_capacity(local_len);
        for (i, v) in staged.into_iter().enumerate() {
            local.push(v.ok_or_else(|| {
                OrbError::Protocol(format!("distributed out-arg {ordinal} missing element {i}"))
            })?);
        }
        Ok(DSequence::from_local(local, len, dist, n, t))
    }
}

/// One computing thread's client endpoint.
pub struct ClientThread {
    core: Arc<PumpCore>,
    namespace: String,
    spmd_bind_seq: AtomicU64,
    single_bind_seq: AtomicU64,
}

impl ClientThread {
    /// The ORB.
    pub fn orb(&self) -> &Orb {
        &self.core.orb
    }

    /// This thread's index.
    pub fn thread(&self) -> usize {
        self.core.thread
    }

    /// Ingest every message already delivered to this client's endpoint,
    /// without waiting for more. Between invocations nothing pumps the
    /// endpoint, so retransmission by-products (late duplicate replies) can
    /// sit in the channel indefinitely; call this before snapshotting
    /// observability counters so they get counted instead of lingering.
    pub fn drain_pending(&self) {
        self.core.pump_step(None);
    }

    /// The client's computing-thread count.
    pub fn nthreads(&self) -> usize {
        self.core.nthreads
    }

    /// This thread's reply endpoint (tests inject stray frames through it).
    #[cfg(test)]
    pub(crate) fn test_reply_ep(&self) -> EndpointId {
        self.core.reply_eps[self.core.thread]
    }

    /// The host this client runs on.
    pub fn host(&self) -> HostId {
        self.core.host
    }

    /// Collectively bind to `name`: the parallel client acts as one entity.
    /// Every computing thread must call this in the same order. Operations
    /// on the returned proxy must be invoked collectively and may use
    /// distributed arguments (§3.1).
    pub fn spmd_bind(&self, name: &str) -> OrbResult<Proxy> {
        let obj = self.core.orb.resolve(&self.namespace, name)?;
        self.spmd_bind_object(&obj)
    }

    /// Collectively bind straight to an already-resolved object reference —
    /// what a registry/failover layer does after resolving a logical group
    /// name out of band. Same collective discipline as [`spmd_bind`].
    ///
    /// [`spmd_bind`]: ClientThread::spmd_bind
    pub fn spmd_bind_object(&self, obj: &ObjectRef) -> OrbResult<Proxy> {
        let obj = obj.clone();
        let policy = self.core.orb.dist_policy(obj.key)?;
        let seq = self.spmd_bind_seq.fetch_add(1, Ordering::Relaxed);
        let binding = BindingId((self.core.client.0 << 24) | seq);
        Ok(Proxy {
            core: self.core.clone(),
            obj,
            policy,
            binding,
            collective: true,
            req_seq: AtomicU64::new(0),
        })
    }

    /// Start a dedicated communication thread draining this client
    /// thread's endpoint (the §6 future-work experiment). See
    /// [`CommThread`].
    pub fn start_comm_thread(&self) -> CommThread {
        CommThread::spawn(self.core.clone())
    }

    /// Bind this thread individually: one binding per thread, invocations
    /// are per-thread, distributed arguments are passed whole (the second
    /// stub PARDIS generates for single-client use, §3.1).
    pub fn bind(&self, name: &str) -> OrbResult<Proxy> {
        let obj = self.core.orb.resolve(&self.namespace, name)?;
        self.bind_object(&obj)
    }

    /// Bind this thread individually to an already-resolved object
    /// reference, skipping the repository lookup. The failover layer uses
    /// this to rebind an invocation to a surviving replica whose reference
    /// came from the registry.
    pub fn bind_object(&self, obj: &ObjectRef) -> OrbResult<Proxy> {
        let obj = obj.clone();
        let policy = self.core.orb.dist_policy(obj.key)?;
        let seq = self.single_bind_seq.fetch_add(1, Ordering::Relaxed);
        let binding = BindingId(
            (self.core.client.0 << 24) | (1 << 23) | ((self.core.thread as u64 & 0x7f) << 16) | seq,
        );
        Ok(Proxy {
            core: self.core.clone(),
            obj,
            policy,
            binding,
            collective: false,
            req_seq: AtomicU64::new(0),
        })
    }
}

/// A bound object proxy. Generated typed proxies wrap this; it can also be
/// driven directly (the dynamic invocation interface).
pub struct Proxy {
    core: Arc<PumpCore>,
    obj: ObjectRef,
    policy: DistPolicy,
    binding: BindingId,
    collective: bool,
    req_seq: AtomicU64,
}

impl Proxy {
    /// The bound object's reference.
    pub fn object(&self) -> &ObjectRef {
        &self.obj
    }

    /// Was this proxy produced by `spmd_bind`?
    pub fn is_collective(&self) -> bool {
        self.collective
    }

    /// The binding id (request sequencing is per binding).
    pub fn binding(&self) -> BindingId {
        self.binding
    }

    /// Begin an invocation of `op`.
    pub fn call(&self, op: &str) -> CallBuilder<'_> {
        CallBuilder { proxy: self, op: op.to_string(), ins: Vec::new(), dargs: Vec::new() }
    }
}

enum DArgEntry {
    In { len: u64, client_dist: Distribution, encode: RangeEncodeFn },
    Out { expected_dist: Distribution },
}

/// Builder for one invocation: scalar arguments, distributed arguments,
/// expected out distributions — then `invoke` / `invoke_nb` /
/// `invoke_oneway`.
pub struct CallBuilder<'p> {
    proxy: &'p Proxy,
    op: String,
    ins: Vec<Bytes>,
    dargs: Vec<DArgEntry>,
}

impl<'p> CallBuilder<'p> {
    /// Append a scalar (non-distributed) in-argument.
    pub fn arg<T: CdrCodec>(mut self, v: &T) -> Self {
        let mut e = Encoder::new(ByteOrder::native());
        v.encode(&mut e);
        self.ins.push(e.finish());
        self
    }

    /// Append a dynamically typed in-argument (dynamic invocation
    /// interface).
    pub fn any_arg(mut self, a: &Any) -> Self {
        let mut e = Encoder::new(ByteOrder::native());
        a.encode_value(&mut e);
        self.ins.push(e.finish());
        self
    }

    /// Append a distributed in-argument from this thread's view of the
    /// sequence (SPMD stub variant).
    pub fn dseq_in<T: CdrCodec + Clone + Send + Sync + 'static>(
        mut self,
        ds: &DSequence<T>,
    ) -> Self {
        let captured = ds.clone();
        self.dargs.push(DArgEntry::In {
            len: ds.len(),
            client_dist: ds.dist().clone(),
            encode: Box::new(move |s, c, e| captured.encode_range_into(s, c, e)),
        });
        self
    }

    /// Append a whole (non-distributed) sequence as a distributed
    /// in-argument — the stub variant generated "with corresponding
    /// non-distributed arguments to support single invocations" (§3.1).
    pub fn dseq_in_full<T: CdrCodec + Clone + Send + Sync + 'static>(self, elems: Vec<T>) -> Self {
        let ds = DSequence::concentrated(elems);
        self.dseq_in(&ds)
    }

    /// Declare a distributed out-argument and the distribution this side
    /// expects it in (§3.2: "the client can set the distribution of the
    /// expected 'out' arguments before making an invocation").
    pub fn dseq_out(mut self, expected_dist: Distribution) -> Self {
        self.dargs.push(DArgEntry::Out { expected_dist });
        self
    }

    /// Blocking invocation: returns only after the request "has been fully
    /// processed by the server".
    pub fn invoke(self) -> OrbResult<ReplyData> {
        let timeout = self.proxy.core.orb.config().timeout;
        let (state, key) = self.launch(false)?;
        let core = state.1.clone();
        let state = state.0;
        let result = wait_complete(&core, &state, timeout);
        core.unregister(key);
        result?;
        state.check_status()?;
        Ok(ReplyData { state })
    }

    /// Non-blocking invocation: returns immediately after the request has
    /// been sent, with a handle minting futures for the out-arguments and
    /// return value.
    pub fn invoke_nb(self) -> OrbResult<InvocationHandle> {
        let (state, key) = self.launch(false)?;
        Ok(InvocationHandle { core: state.1, state: state.0, key })
    }

    /// Oneway invocation: no reply at all (§4.3 discusses the cost of
    /// non-blocking invocations *not* being oneway).
    pub fn invoke_oneway(self) -> OrbResult<()> {
        let (_state, _key) = self.launch(true)?;
        Ok(())
    }

    /// Validate, register, and ship the request. Returns the state and its
    /// router key.
    #[allow(clippy::type_complexity)]
    fn launch(
        self,
        oneway: bool,
    ) -> OrbResult<((Arc<InvocationState>, Arc<PumpCore>), (BindingId, u64))> {
        let proxy = self.proxy;
        let core = &proxy.core;
        let cfg = core.orb.config();

        // Single objects cannot take distributed arguments (§3.1).
        if matches!(proxy.obj.kind, ObjectKind::Single { .. }) && !self.dargs.is_empty() {
            return Err(OrbError::Protocol(
                "single objects cannot operate on distributed arguments".into(),
            ));
        }

        // The calling side's shape: collective proxies span the whole client
        // group; per-thread bindings act as a 1-thread client.
        let (cthreads, cthread, reply_to) = if proxy.collective {
            (core.nthreads, core.thread, core.reply_eps.clone())
        } else {
            (1usize, 0usize, vec![core.reply_eps[core.thread]])
        };

        let funneled = cfg.transfer_strategy == TransferStrategy::Funneled
            && proxy.obj.kind == ObjectKind::Spmd
            && (cthreads > 1 || proxy.obj.nthreads > 1);

        let req_id = proxy.req_seq.fetch_add(1, Ordering::Relaxed);
        let key = (proxy.binding, req_id);
        // Sequencing identity: which client entity this request belongs to,
        // and its position in that entity's invocation order.
        let (entity, client_seq) = if proxy.collective {
            (core.client.0 << 1, core.collective_seq.fetch_add(1, Ordering::Relaxed))
        } else {
            (
                (core.client.0 << 9) | ((core.thread as u64 & 0x7f) << 1) | 1,
                core.single_seq.fetch_add(1, Ordering::Relaxed),
            )
        };

        // Wire descriptors.
        let mut descs = Vec::with_capacity(self.dargs.len());
        let mut out_wire_idx = Vec::new();
        let mut out_dists = Vec::new();
        for (i, entry) in self.dargs.iter().enumerate() {
            match entry {
                DArgEntry::In { len, client_dist, .. } => {
                    client_dist.validate(*len, cthreads).map_err(OrbError::Protocol)?;
                    descs.push(DArgDesc {
                        dir: ArgDir::In,
                        len: *len,
                        client_dist: client_dist.clone(),
                    });
                }
                DArgEntry::Out { expected_dist } => {
                    out_wire_idx.push(i as u32);
                    out_dists.push(expected_dist.clone());
                    descs.push(DArgDesc {
                        dir: ArgDir::Out,
                        len: 0,
                        client_dist: expected_dist.clone(),
                    });
                }
            }
        }

        // The invoke span opens here (closed when the invocation is
        // unregistered) and covers marshal, transfer, dispatch, and reply.
        // Its causal context is derived from the invocation's stable
        // (entity, sequence) identity — not from a counter — so same-seed
        // runs stamp identical ids. Under an ambient parent (the failover
        // layer's `failover.invoke` root) the span becomes a child of that
        // trace; retried launches then share the original trace id.
        let trace_on = pardis_obs::enabled();
        let ctx = (trace_on && !oneway).then(|| match pardis_obs::current_ctx() {
            Some(parent) => parent.child(pardis_obs::mix64(entity) ^ client_seq),
            None => pardis_obs::TraceCtx::root(pardis_obs::derive_trace_id(entity, client_seq)),
        });
        if let Some(ctx) = ctx {
            let mut args = vec![
                ("op", self.op.clone().into()),
                ("entity", entity.into()),
                ("client_seq", client_seq.into()),
                ("span", ctx.span_id.into()),
            ];
            if ctx.span_id == ctx.trace_id {
                // Root span: announce the trace id itself (no ambient parent
                // to auto-stamp it). Nested spans inherit trace/parent from
                // the ambient context instead.
                args.push(("trace", ctx.trace_id.into()));
            }
            pardis_obs::span_begin("client", "client.invoke", Some((key.0 .0, key.1)), args);
        }
        // Ambient from here on (after the span-begin event, which must not
        // parent itself): marshal/fragment instants, frame encodes and the
        // netsim transit events all stamp this invocation's context.
        let _ctx_guard = ctx.map(pardis_obs::enter_ctx);
        let state = Arc::new(InvocationState {
            funneled,
            client_threads: cthreads,
            thread: cthread,
            key,
            server: proxy.obj.server,
            out_wire_idx,
            out_dists,
            inner: AuditMutex::new(lock_site!("client: invocation state"), InvInner::default()),
            replay: AuditMutex::new(lock_site!("client: retransmit frames"), Vec::new()),
            span_open: std::sync::atomic::AtomicBool::new(trace_on && !oneway),
            permit: AuditMutex::new(lock_site!("client: backpressure permit"), None),
            has_permit: AtomicBool::new(false),
            obs: ctx.map(|ctx| InvObs {
                ctx,
                op: self.op.clone(),
                start_us: pardis_obs::now_micros(),
            }),
        });
        if !oneway {
            core.register(key, state.clone());
        }

        // Collocated direct call: a single object on the same host becomes a
        // direct call to the servant, bypassing the network transport
        // (§4.1).
        if cfg.local_bypass && proxy.obj.host == core.host && self.dargs.is_empty() && !oneway {
            if let ObjectKind::Single { thread } = proxy.obj.kind {
                if let Some(servant) =
                    core.orb.collocated_servant(proxy.obj.server, thread, proxy.obj.key)
                {
                    let ctx = ServantCtx {
                        thread,
                        nthreads: proxy.obj.nthreads,
                        client_threads: cthreads,
                        rts: None,
                    };
                    let sreq = ServerRequest { op: &self.op, ins: &self.ins, dins: &[], ctx: &ctx };
                    let reply = match servant.dispatch(sreq) {
                        Ok(rep) => match rep.raised {
                            Some(raised) => ReplyMsg {
                                req_id,
                                binding: proxy.binding,
                                status: ReplyStatus::UserException {
                                    id: raised.id,
                                    data: raised.data,
                                },
                                outs: Vec::new(),
                                dout_lens: Vec::new(),
                            },
                            None => ReplyMsg {
                                req_id,
                                binding: proxy.binding,
                                status: ReplyStatus::Ok,
                                outs: rep.outs,
                                dout_lens: Vec::new(),
                            },
                        },
                        Err(msg) => ReplyMsg {
                            req_id,
                            binding: proxy.binding,
                            status: ReplyStatus::Exception(msg),
                            outs: Vec::new(),
                            dout_lens: Vec::new(),
                        },
                    };
                    state.absorb(Message::Reply(reply));
                    return Ok(((state, core.clone()), key));
                }
            }
        }

        let endpoints = core.orb.server_endpoints(proxy.obj.server)?;

        // Bounded in-flight admission: with a cap configured, a two-way
        // invocation takes a permit against its primary control endpoint
        // before any frame leaves. A full gate is pumped through — draining
        // our own replies is what completes the invocations holding the
        // permits we wait for.
        if cfg.inflight_cap > 0 && !oneway {
            let primary = match proxy.obj.kind {
                ObjectKind::Single { thread } => endpoints[thread],
                _ => endpoints[0],
            };
            let gate = core.orb.endpoint_gate(primary, cfg.inflight_cap);
            let mut permit = gate.try_acquire();
            if permit.is_none() {
                pardis_obs::counter("orb.backpressure.waits").inc();
                let deadline = Instant::now() + cfg.timeout;
                loop {
                    core.pump_step(Some(Duration::from_micros(200)));
                    if let Some(p) = gate.try_acquire() {
                        permit = Some(p);
                        break;
                    }
                    if Instant::now() >= deadline {
                        core.unregister(key);
                        return Err(OrbError::Timeout {
                            waiting_for: "backpressure admission".into(),
                        });
                    }
                }
            }
            *state.permit.lock() = permit;
            state.has_permit.store(true, Ordering::Relaxed);
        }

        // Marshal-and-send phase of the invoke span: control encode, fragment
        // cutting, wire sends (and the funneled gather when in play).
        let _marshal_span = trace_on.then(|| {
            pardis_obs::Span::open(
                "client",
                "client.marshal_send",
                Some((key.0 .0, key.1)),
                vec![("dargs", self.dargs.len().into())],
            )
        });

        // Control message — sent by the lead thread of the call.
        let control = Message::Request(RequestMsg {
            req_id,
            binding: proxy.binding,
            entity,
            client_seq,
            client: core.client,
            object: proxy.obj.key,
            op: self.op.clone(),
            oneway,
            funneled,
            reply_to: reply_to.clone(),
            client_threads: cthreads as u32,
            client_host: core.host.raw(),
            ins: self.ins.clone(),
            dargs: descs.clone(),
        });
        let control_wire = control.encode();
        let control_eps: Vec<EndpointId> = match proxy.obj.kind {
            ObjectKind::Single { thread } => vec![endpoints[thread]],
            ObjectKind::Spmd if funneled => vec![endpoints[0]],
            ObjectKind::Spmd => endpoints.clone(),
        };
        let lead = !proxy.collective || core.thread == 0;
        if lead {
            if trace_on {
                pardis_obs::instant(
                    "client",
                    "client.send_control",
                    Some((key.0 .0, key.1)),
                    vec![
                        ("endpoints", control_eps.len().into()),
                        ("bytes", control_wire.len().into()),
                    ],
                );
            }
            for ep in &control_eps {
                core.orb.send_wire(core.host, *ep, control_wire.clone())?;
            }
        }
        // Every thread (lead or not) keeps the control frames for replay: a
        // retransmitted control from any thread nudges the server, which
        // deduplicates by (binding, req_id) and re-sends the cached reply.
        let mut replay: Vec<(EndpointId, Bytes)> = Vec::new();
        if !oneway {
            for ep in &control_eps {
                replay.push((*ep, control_wire.clone()));
            }
        }

        // Distributed in-argument fragments. One pooled scratch buffer
        // stages every piece's elements; the framed wire buffer is the only
        // per-fragment allocation.
        let mut my_frames: Vec<Bytes> = Vec::new();
        let mut scratch = Encoder::pooled(ByteOrder::native());
        for (i, entry) in self.dargs.iter().enumerate() {
            let DArgEntry::In { len, client_dist, encode } = entry else { continue };
            let server_dist = proxy.policy.get(&self.op, i as u32);
            let plan =
                plan_transfer_cached(*len, client_dist, cthreads, &server_dist, proxy.obj.nthreads);
            for piece in plan.iter().filter(|p| p.src == cthread) {
                scratch.clear();
                encode(piece.start, piece.count, &mut scratch);
                let head = FragmentMsg {
                    req_id,
                    binding: proxy.binding,
                    arg: i as u32,
                    dir: ArgDir::In,
                    start: piece.start,
                    count: piece.count,
                    dst_thread: piece.dst as u32,
                    src_thread: cthread as u32,
                    data: Bytes::new(),
                };
                let wire = encode_fragment_frame(&head, scratch.as_slice());
                if trace_on {
                    pardis_obs::instant(
                        "client",
                        "client.fragment",
                        Some((key.0 .0, key.1)),
                        vec![
                            ("arg", (i as u32).into()),
                            ("start", piece.start.into()),
                            ("count", piece.count.into()),
                            ("dst", piece.dst.into()),
                        ],
                    );
                }
                if funneled {
                    my_frames.push(wire);
                } else {
                    core.orb.send_wire(core.host, endpoints[piece.dst], wire.clone())?;
                    if !oneway {
                        replay.push((endpoints[piece.dst], wire));
                    }
                }
            }
        }
        scratch.recycle();
        if funneled {
            if proxy.collective && cthreads > 1 {
                // Funnel all threads' fragments through thread 0's wire
                // connection, gathered over the run-time system. Thread 0
                // keeps the gathered frames for replay — a retransmission
                // must not re-run the gather.
                let rts = core.rts.as_ref().expect("parallel client has an RTS");
                let gathered = rts.gather(0, frame_list(&my_frames));
                if let Some(lists) = gathered {
                    for list in lists {
                        for frame in unframe_list(&list).expect("self-framed list") {
                            core.orb.send_wire(core.host, endpoints[0], frame.clone())?;
                            if !oneway {
                                replay.push((endpoints[0], frame));
                            }
                        }
                    }
                }
            } else {
                for frame in my_frames {
                    core.orb.send_wire(core.host, endpoints[0], frame.clone())?;
                    if !oneway {
                        replay.push((endpoints[0], frame));
                    }
                }
            }
        }
        if !oneway {
            *state.replay.lock() = replay;
        }

        Ok(((state, core.clone()), key))
    }
}

/// SplitMix64 finaliser — deterministic jitter without an RNG dependency.
pub(crate) fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Capped exponential backoff with seeded jitter: retransmission `attempt`
/// waits `retry_base * 2^min(attempt, 6)` plus up to half that again. The
/// jitter is a pure hash of (retry_seed, invocation key, attempt), so a
/// replayed chaos run backs off on the same schedule.
pub(crate) fn backoff_delay(cfg: &OrbConfig, key: (BindingId, u64), attempt: u32) -> Duration {
    let delay = cfg.retry_base.max(Duration::from_micros(50)) * (1u32 << attempt.min(6));
    let h = mix64(cfg.retry_seed ^ mix64(key.0 .0) ^ mix64(key.1) ^ u64::from(attempt));
    let jittered = delay + delay.mul_f64((h >> 11) as f64 / (1u64 << 53) as f64 * 0.5);
    if pardis_obs::enabled() {
        pardis_obs::histogram("client.backoff_us").observe(jittered.as_micros() as u64);
    }
    jittered
}

/// Re-send the recorded frames (control plus this thread's fragments) of
/// every incomplete invocation this pump is tracking, not only the one being
/// awaited: the POA dispatches a client entity's requests in sequence order,
/// so a lost earlier request could otherwise block a later one at the server
/// while only the later one was being retried. The POA deduplicates by
/// (binding, req_id), so at worst a retransmission costs wire time; at best
/// it resurrects a dropped request or provokes a replay of the cached reply.
fn retransmit(core: &Arc<PumpCore>, state: &Arc<InvocationState>) -> OrbResult<()> {
    let mut targets: Vec<Arc<InvocationState>> = Vec::new();
    for shard in core.router.iter() {
        targets.extend(shard.lock().router.values().cloned());
    }
    if !targets.iter().any(|t| Arc::ptr_eq(t, state)) {
        targets.push(state.clone());
    }
    targets.retain(|t| !t.is_complete() && !t.replay.lock().is_empty());
    if targets.is_empty() {
        return Ok(());
    }
    core.orb.note_retransmit();
    if pardis_obs::enabled() {
        pardis_obs::counter("client.retransmit_rounds").inc();
    }
    for target in targets {
        let frames = target.replay.lock().clone();
        if pardis_obs::enabled() {
            pardis_obs::counter("client.frames_retransmitted").add(frames.len() as u64);
            let mut args = vec![("frames", frames.len().into())];
            if let Some(obs) = &target.obs {
                args.push(("trace", obs.ctx.trace_id.into()));
                args.push(("parent", obs.ctx.span_id.into()));
            }
            pardis_obs::instant(
                "client",
                "client.retransmit",
                Some((target.key.0 .0, target.key.1)),
                args,
            );
        }
        // Re-sends travel under the invocation's own context so their
        // transit events land in the same causal tree as the first attempt
        // (the frames themselves are pre-encoded and already carry it).
        let _ctx_guard = target.obs.as_ref().map(|obs| pardis_obs::enter_ctx(obs.ctx));
        for (ep, wire) in frames {
            core.orb.send_wire(core.host, ep, wire)?;
        }
    }
    Ok(())
}

fn wait_complete(
    core: &Arc<PumpCore>,
    state: &Arc<InvocationState>,
    timeout: Duration,
) -> OrbResult<()> {
    let cfg = core.orb.config();
    let deadline = Instant::now() + timeout;
    // Retransmissions are armed only when configured and there is something
    // to replay (not a oneway or collocated call).
    let mut next_retry = if cfg.retry_limit > 0 && !state.replay.lock().is_empty() {
        let backoff = backoff_delay(&cfg, state.key, 0);
        Some((Instant::now() + backoff, backoff))
    } else {
        None
    };
    let mut attempt: u32 = 0;
    loop {
        if state.is_complete() {
            if pardis_obs::enabled() {
                let mut args = Vec::new();
                if let Some(obs) = &state.obs {
                    args.push(("trace", obs.ctx.trace_id.into()));
                    args.push(("parent", obs.ctx.span_id.into()));
                }
                pardis_obs::instant(
                    "client",
                    "client.future_fulfilled",
                    Some((state.key.0 .0, state.key.1)),
                    args,
                );
            }
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(OrbError::Timeout { waiting_for: "invocation reply".into() });
        }
        if let Some((at, waited)) = next_retry {
            if Instant::now() >= at {
                // Drain anything already delivered before declaring the
                // attempt lost: the reply may have been sitting in the
                // channel since the last pump tick, and retransmitting over
                // it would send frames the fault schedule never asked for.
                core.pump_step(None);
                if state.is_complete() {
                    continue;
                }
                attempt += 1;
                // The backoff the client just sat out is local time on its
                // virtual timeline: under the overlapped engine this is what
                // walks retries out of a timed link-down window (the sync
                // transport's sum-clock advances on the dropped frames
                // themselves).
                let wait_t0 = pardis_obs::now_micros();
                core.orb.network().charge_wait(core.host, waited);
                if pardis_obs::enabled() {
                    // Measured on the virtual clock (zero under the sync
                    // transport, where charge_wait is a no-op): the profiler
                    // attributes the interval [ts - us, ts] to backoff.
                    let mut args = vec![
                        ("us", pardis_obs::now_micros().saturating_sub(wait_t0).into()),
                        ("attempt", attempt.into()),
                    ];
                    if let Some(obs) = &state.obs {
                        args.push(("trace", obs.ctx.trace_id.into()));
                        args.push(("parent", obs.ctx.span_id.into()));
                    }
                    pardis_obs::instant(
                        "client",
                        "client.backoff",
                        Some((state.key.0 .0, state.key.1)),
                        args,
                    );
                }
                retransmit(core, state)?;
                // Once the budget is spent, stop nudging but keep waiting
                // out the deadline — the last retransmission's reply may
                // still be in flight.
                next_retry = (attempt < cfg.retry_limit).then(|| {
                    let backoff = backoff_delay(&cfg, state.key, attempt);
                    (Instant::now() + backoff, backoff)
                });
            }
        }
        core.pump_step(Some(Duration::from_micros(200)));
    }
}

/// Handle returned by a non-blocking invocation: check or await completion,
/// and mint futures for the results.
pub struct InvocationHandle {
    core: Arc<PumpCore>,
    state: Arc<InvocationState>,
    key: (BindingId, u64),
}

impl InvocationHandle {
    /// Has the server completed (all results locally available)?
    /// Non-blocking: pumps whatever has arrived first.
    pub fn resolved(&self) -> bool {
        self.core.pump_step(None);
        self.state.is_complete()
    }

    /// Completion check without pumping: observes progress made by a
    /// [`CommThread`] (or any concurrent pump) only.
    pub fn peek(&self) -> bool {
        self.core.peek_complete(self.key)
    }

    /// Block until completion, then hand back the reply.
    pub fn wait(self) -> OrbResult<ReplyData> {
        let timeout = self.core.orb.config().timeout;
        wait_complete(&self.core, &self.state, timeout)?;
        self.core.unregister(self.key);
        self.state.check_status()?;
        Ok(ReplyData { state: self.state })
    }

    /// Mint a future for scalar out slot `slot` (slot 0 is the return value
    /// of a non-void operation).
    pub fn scalar_future<T: CdrCodec>(&self, slot: usize) -> crate::future::PFuture<T> {
        crate::future::PFuture::new(self.core.clone(), self.state.clone(), slot)
    }

    /// Mint a future for distributed out-argument `ordinal`.
    pub fn dseq_future<T: CdrCodec + Clone>(&self, ordinal: usize) -> crate::future::DSeqFuture<T> {
        crate::future::DSeqFuture::new(self.core.clone(), self.state.clone(), ordinal)
    }

    /// Best-effort cancel: tells the server to drop the request if it has
    /// not been dispatched yet.
    pub fn cancel(self) {
        if let Ok(endpoints) = self.core.orb.server_endpoints(self.state.server) {
            let msg = Message::Cancel { binding: self.key.0, req_id: self.key.1 };
            for ep in endpoints {
                let _ = self.core.orb.send(self.core.host, ep, &msg);
            }
        }
        self.core.unregister(self.key);
    }
}

/// The results of a completed invocation.
pub struct ReplyData {
    state: Arc<InvocationState>,
}

impl std::fmt::Debug for ReplyData {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplyData").finish_non_exhaustive()
    }
}

impl std::fmt::Debug for Proxy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proxy")
            .field("object", &self.obj.stringify())
            .field("binding", &self.binding)
            .field("collective", &self.collective)
            .finish()
    }
}

impl std::fmt::Debug for InvocationHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InvocationHandle").field("key", &self.key).finish()
    }
}

impl ReplyData {
    /// Decode scalar out slot `slot` (slot 0 is the return value of a
    /// non-void operation).
    pub fn scalar<T: CdrCodec>(&self, slot: usize) -> OrbResult<T> {
        self.state.scalar(slot)
    }

    /// Decode scalar out slot `slot` dynamically.
    pub fn any(&self, slot: usize, tc: &TypeCode) -> OrbResult<Any> {
        self.state.any(slot, tc)
    }

    /// Assemble distributed out-argument `ordinal` into this thread's local
    /// view.
    pub fn dseq<T: CdrCodec + Clone>(&self, ordinal: usize) -> OrbResult<DSequence<T>> {
        self.state.dseq(ordinal)
    }
}

/// A dedicated communication thread: the experiment the paper's §6 names
/// as immediate future work — "using communication threads (additional to
/// the computing threads) as sending and receiving processes", so replies
/// and fragments are ingested while the computing thread is busy with its
/// own work instead of waiting for it to poll.
///
/// The thread drains this client thread's reply endpoint continuously;
/// futures then resolve in the background ([`InvocationHandle::peek`]
/// observes this without pumping). Stop it by dropping the handle or
/// calling [`CommThread::stop`]. As the paper anticipates, it contends for
/// a processor with the computing threads — that is the trade-off being
/// studied.
///
/// Not supported together with the funneled transfer strategy (forwarding
/// to sibling threads needs the computing thread's RTS endpoint).
pub struct CommThread {
    stop: Arc<std::sync::atomic::AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl CommThread {
    pub(crate) fn spawn(core: Arc<PumpCore>) -> CommThread {
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                core.pump_step(Some(Duration::from_micros(200)));
            }
        });
        CommThread { stop, handle: Some(handle) }
    }

    /// Ask the thread to exit and wait for it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for CommThread {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Internal accessors shared with the future module.
pub(crate) mod internal {
    use super::*;

    pub fn complete(state: &InvocationState) -> bool {
        state.is_complete()
    }

    /// Retry-aware wait shared with the future module, so a blocked
    /// `PFuture::get` retransmits exactly like a blocking `invoke`.
    pub fn wait(
        core: &Arc<PumpCore>,
        state: &Arc<InvocationState>,
        timeout: Duration,
    ) -> OrbResult<()> {
        wait_complete(core, state, timeout)
    }

    pub fn scalar<T: CdrCodec>(state: &InvocationState, slot: usize) -> OrbResult<T> {
        state.scalar(slot)
    }

    pub fn dseq<T: CdrCodec + Clone>(
        state: &InvocationState,
        ordinal: usize,
    ) -> OrbResult<DSequence<T>> {
        state.dseq(ordinal)
    }
}
