//! ORB-level observability: trace sessions and the `PARDIS_TRACE` hook.
//!
//! [`pardis_obs`] owns the raw machinery (event rings, metrics registry,
//! exporters); this module ties it to an [`Orb`]: a [`TraceSession`] installs
//! the netsim *virtual* clock as the timestamp source (so a deterministic
//! workload exports a byte-identical trace for the same fault seed), and on
//! finish folds the ORB's and the network's accumulated statistics into the
//! metrics snapshot.
//!
//! The figure harnesses and the chaos suite use the environment hook: set
//! `PARDIS_TRACE=out.json` and the first traced workload of the process
//! writes a Chrome trace-event file there (load it in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)).

use crate::client::ClientThread;
use crate::orb::Orb;
use pardis_audit::{lock_site, AuditMutex};
use pardis_obs::{MetricSnapshot, ThreadTrace};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// One labelled point-in-time metrics capture: `(label, virtual-clock
/// micros, snapshot)`.
pub type MetricsCapture = (String, u64, Vec<(String, MetricSnapshot)>);

/// An active tracing window over one ORB's workload.
///
/// Starting a session resets all previously recorded events and metrics,
/// installs the ORB's virtual clock as the (deterministic) timestamp
/// source, and enables recording. [`TraceSession::finish`] disables
/// recording and returns the collected [`TraceReport`].
pub struct TraceSession {
    orb: Orb,
    snapshots: AuditMutex<Vec<MetricsCapture>>,
}

impl TraceSession {
    /// Begin tracing `orb`'s activity.
    pub fn start(orb: &Orb) -> TraceSession {
        pardis_obs::reset();
        let clock = orb.network().clock().clone();
        pardis_obs::set_clock_micros(Arc::new(move || (clock.now() * 1e6) as u64));
        pardis_obs::enable();
        TraceSession {
            orb: orb.clone(),
            snapshots: AuditMutex::new(lock_site!("obs: trace snapshots"), Vec::new()),
        }
    }

    /// Settle in-flight traffic before a snapshot or [`finish`]: see
    /// [`quiesce_endpoints`]. Replaces the hand-rolled quiesce/sleep/drain
    /// loops the e2e suites used to carry.
    ///
    /// [`finish`]: TraceSession::finish
    pub fn quiesce(&self, clients: &[&ClientThread]) {
        quiesce_endpoints(&self.orb, clients);
    }

    /// Capture a labelled metrics snapshot at the current virtual-clock
    /// reading, folding the ORB's and network's externally-accumulated
    /// statistics in first. Deterministic for deterministic workloads: the
    /// label, the timestamp and the snapshot all derive from modelled time.
    /// The captures ride along in the report's JSON exposition.
    pub fn snapshot(&self, label: &str) {
        feed_orb_metrics(&self.orb);
        let ts_us = pardis_obs::now_micros();
        self.snapshots.lock().push((label.to_string(), ts_us, pardis_obs::metrics_snapshot()));
    }

    /// Stop recording and collect everything: per-thread events plus a
    /// metrics snapshot that folds in the ORB's traffic/retransmission
    /// counters and the network's fault statistics (network-wide and per
    /// directed link).
    pub fn finish(self) -> TraceReport {
        pardis_obs::disable();
        feed_orb_metrics(&self.orb);
        TraceReport {
            threads: pardis_obs::drain(),
            metrics: pardis_obs::metrics_snapshot(),
            snapshots: self.snapshots.into_inner(),
        }
    }
}

/// Settle in-flight traffic: drain the transmit engine's scheduled
/// releases, give the adapters a moment to flush retransmission
/// by-products (duplicate replies ride the network after the client has
/// moved on), then ingest whatever reached the given client threads'
/// endpoints. Useful with or without an active trace session — fault
/// counters read after this reflect a settled network.
pub fn quiesce_endpoints(orb: &Orb, clients: &[&ClientThread]) {
    orb.network().quiesce();
    std::thread::sleep(Duration::from_millis(200));
    for client in clients {
        client.drain_pending();
    }
}

/// Mirror externally-accumulated ORB and network statistics into the
/// metrics registry (pull model, at export time).
fn feed_orb_metrics(orb: &Orb) {
    use pardis_obs::set_counter;
    let (frames, bytes) = orb.traffic();
    set_counter("orb.frames_sent", frames);
    set_counter("orb.bytes_sent", bytes);
    set_counter("orb.retransmits", orb.retransmits());
    let net = orb.network();
    let fs = net.fault_stats();
    set_counter("net.fault.delivered", fs.delivered);
    set_counter("net.fault.dropped", fs.dropped);
    set_counter("net.fault.duplicated", fs.duplicated);
    set_counter("net.fault.burst_dropped", fs.burst_dropped);
    set_counter("net.fault.down_dropped", fs.down_dropped);
    for ((from, to), s) in net.per_link_fault_stats() {
        let link = format!("net.link.{}-{}", from.raw(), to.raw());
        set_counter(&format!("{link}.delivered"), s.delivered);
        set_counter(&format!("{link}.dropped"), s.dropped);
        set_counter(&format!("{link}.duplicated"), s.duplicated);
        set_counter(&format!("{link}.burst_dropped"), s.burst_dropped);
        set_counter(&format!("{link}.down_dropped"), s.down_dropped);
    }
    // Engine timelines (virtual seconds → micros; deterministic). Under the
    // overlapped transport the clock reading is the network makespan, and
    // each lane that carried traffic exposes its occupancy — `busy_us`
    // against the makespan is the link's utilization (above 1.0 = overlap).
    set_counter("net.makespan_us", (net.makespan() * 1e6) as u64);
    for ((from, to), u) in net.per_link_usage() {
        let link = format!("net.link.{}-{}", from.raw(), to.raw());
        set_counter(&format!("{link}.frames"), u.frames);
        set_counter(&format!("{link}.bytes"), u.bytes);
        set_counter(&format!("{link}.busy_us"), (u.busy_s * 1e6) as u64);
        set_counter(&format!("{link}.busy_until_us"), (u.busy_until_s * 1e6) as u64);
    }
    // Shared-medium traffic serialises on one segment timeline, whatever
    // the host pair — report it as its own pseudo-link.
    if let Some(u) = net.shared_segment_usage() {
        set_counter("net.link.shared.frames", u.frames);
        set_counter("net.link.shared.bytes", u.bytes);
        set_counter("net.link.shared.busy_us", (u.busy_s * 1e6) as u64);
        set_counter("net.link.shared.busy_until_us", (u.busy_until_s * 1e6) as u64);
    }
}

/// A finished tracing window: everything needed to export or inspect.
pub struct TraceReport {
    /// Drained per-thread event sequences, sorted by thread label.
    pub threads: Vec<ThreadTrace>,
    /// Metrics snapshot, sorted by name.
    pub metrics: Vec<(String, MetricSnapshot)>,
    /// Periodic labelled captures taken with [`TraceSession::snapshot`], in
    /// capture order.
    pub snapshots: Vec<MetricsCapture>,
}

impl TraceReport {
    /// The Chrome trace-event JSON export.
    pub fn chrome_json(&self) -> String {
        pardis_obs::chrome_trace_json(&self.threads, &self.metrics)
    }

    /// The human summary table.
    pub fn summary(&self) -> String {
        pardis_obs::summary_table(&self.threads, &self.metrics)
    }

    /// The Prometheus text exposition of the final metrics snapshot
    /// (histogram families with cumulative buckets plus p50/p95/p99 gauges).
    pub fn prometheus(&self) -> String {
        pardis_obs::render_prometheus(&self.metrics)
    }

    /// The JSON metrics exposition: the final snapshot plus any periodic
    /// captures.
    pub fn metrics_json(&self) -> String {
        pardis_obs::metrics_json_with_snapshots(&self.metrics, &self.snapshots)
    }

    /// Write the Chrome trace to `path`.
    pub fn write_chrome(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        std::fs::write(path, self.chrome_json())
    }

    /// Write the metrics expositions beside a trace file: `<path>.prom`
    /// (Prometheus text) and `<path>.metrics.json`. Returns both paths.
    pub fn write_expositions(
        &self,
        trace_path: impl AsRef<Path>,
    ) -> std::io::Result<(PathBuf, PathBuf)> {
        let trace_path = trace_path.as_ref();
        let mut prom = trace_path.as_os_str().to_owned();
        prom.push(".prom");
        let prom = PathBuf::from(prom);
        let mut json = trace_path.as_os_str().to_owned();
        json.push(".metrics.json");
        let json = PathBuf::from(json);
        std::fs::write(&prom, self.prometheus())?;
        std::fs::write(&json, self.metrics_json())?;
        Ok((prom, json))
    }

    /// Look a counter metric up by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.metrics.iter().find_map(|(n, s)| match s {
            MetricSnapshot::Counter(v) if n == name => Some(*v),
            _ => None,
        })
    }

    /// Total events recorded across all threads.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }
}

/// First-trace-wins guard for the `PARDIS_TRACE` environment hook: a process
/// that runs many workload configurations traces the first one only.
static ENV_TRACE_TAKEN: AtomicBool = AtomicBool::new(false);

/// If `PARDIS_TRACE` is set (to the output path) and no other workload in
/// this process claimed it yet, start a trace session over `orb`. Callers
/// pass the returned session back to [`finish_env_trace`] when the workload
/// completes; with the variable unset this is a no-op returning `None`.
pub fn trace_from_env(orb: &Orb) -> Option<TraceSession> {
    let path = std::env::var("PARDIS_TRACE").ok()?;
    if path.is_empty() || ENV_TRACE_TAKEN.swap(true, Ordering::SeqCst) {
        return None;
    }
    Some(TraceSession::start(orb))
}

/// Finish an environment-hook session and write the Chrome trace to the
/// `PARDIS_TRACE` path, with the metrics expositions (`<path>.prom`,
/// `<path>.metrics.json`) beside it. Returns the trace path.
pub fn finish_env_trace(session: TraceSession) -> std::io::Result<PathBuf> {
    let path = PathBuf::from(
        std::env::var("PARDIS_TRACE").unwrap_or_else(|_| "pardis_trace.json".to_string()),
    );
    if let Some(dir) = path.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)?;
        }
    }
    let report = session.finish();
    report.write_chrome(&path)?;
    report.write_expositions(&path)?;
    Ok(path)
}
