//! Deferred replies and cross-binding dispatch ordering.

use crate::*;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// A servant that defers every `slow` call and answers `fast` immediately.
struct Mixed {
    log: Arc<Mutex<Vec<String>>>,
}

impl Servant for Mixed {
    fn interface(&self) -> &str {
        "mixed"
    }
    fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
        self.log.lock().push(format!("fast:{}", req.op));
        let mut rep = ServerReply::new();
        rep.push_scalar(&"now".to_string());
        Ok(rep)
    }
    fn dispatch_deferred(&self, req: ServerRequest<'_>) -> Result<DispatchResult, String> {
        if req.op == "slow" {
            self.log.lock().push("deferred:slow".to_string());
            Ok(DispatchResult::Defer)
        } else {
            self.dispatch(req).map(DispatchResult::Reply)
        }
    }
}

#[test]
fn deferred_reply_completes_later() {
    let (orb, host) = Orb::single_host();
    orb.set_local_bypass(false);
    let log = Arc::new(Mutex::new(Vec::new()));
    let group = ServerGroup::create(&orb, "mixed", host, 1);
    let (g, l) = (group.clone(), log.clone());
    let server = std::thread::spawn(move || {
        let mut poa = g.attach(0, None);
        poa.activate_single("mixed1", Arc::new(Mixed { log: l }));
        let mut parked = Vec::new();
        while !poa.is_closed() {
            poa.process_requests();
            parked.extend(poa.take_deferred());
            // Complete parked calls after one extra loop turn, proving the
            // reply really is decoupled from the dispatch.
            if parked.len() >= 2 {
                for call in parked.drain(..) {
                    assert_eq!(call.op(), "slow");
                    let mut rep = ServerReply::new();
                    rep.push_scalar(&"later".to_string());
                    poa.reply_deferred(call, Ok(rep));
                }
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    });

    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let proxy = client.bind("mixed1").unwrap();
    let slow1 = proxy.call("slow").invoke_nb().unwrap();
    let slow2 = proxy.call("slow").invoke_nb().unwrap();
    // Both parked calls resolve once the server completes them.
    assert_eq!(slow1.wait().unwrap().scalar::<String>(0).unwrap(), "later");
    assert_eq!(slow2.wait().unwrap().scalar::<String>(0).unwrap(), "later");

    // Entity ordering: both dispatches happened before either reply.
    let seen = log.lock().clone();
    assert_eq!(seen, vec!["deferred:slow", "deferred:slow"]);

    group.shutdown();
    server.join().unwrap();
}

#[test]
fn deferred_exception_propagates() {
    let (orb, host) = Orb::single_host();
    orb.set_local_bypass(false);
    let group = ServerGroup::create(&orb, "mixed", host, 1);
    let g = group.clone();
    let server = std::thread::spawn(move || {
        let mut poa = g.attach(0, None);
        poa.activate_single("m2", Arc::new(Mixed { log: Arc::new(Mutex::new(Vec::new())) }));
        while !poa.is_closed() {
            poa.process_requests();
            for call in poa.take_deferred() {
                poa.reply_deferred(call, Err("gave up".into()));
            }
            std::thread::sleep(Duration::from_micros(50));
        }
    });
    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let proxy = client.bind("m2").unwrap();
    let err = proxy.call("slow").invoke().unwrap_err();
    assert_eq!(err, OrbError::ServerException("gave up".into()));
    group.shutdown();
    server.join().unwrap();
}

/// Two SPMD objects on one parallel server invoked back-to-back by one
/// client must dispatch in the same order on every computing thread —
/// otherwise their servants' internal collectives would cross (this is the
/// regression test for the entity-sequencing fix).
#[test]
fn cross_binding_collective_order_is_consistent() {
    use pardis_rts::{MpiRts, ReduceOp, Rts, World};

    struct Reducer {
        tag: f64,
    }
    impl Servant for Reducer {
        fn interface(&self) -> &str {
            "reducer"
        }
        fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
            // A collective inside the servant: if thread dispatch order ever
            // diverged between objects, these reductions would pair up
            // wrongly across objects and the sums would be garbage (or the
            // server would deadlock).
            let total = req.ctx.rts().all_reduce_f64(self.tag, ReduceOp::Sum);
            let mut rep = ServerReply::new();
            rep.push_scalar(&total);
            Ok(rep)
        }
    }

    let (orb, host) = Orb::single_host();
    let n = 3;
    let group = ServerGroup::create(&orb, "two-objs", host, n);
    let g = group.clone();
    let server = std::thread::spawn(move || {
        World::run(n, |rank| {
            let t = rank.rank();
            let rts: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
            let mut poa = g.attach(t, Some(rts));
            poa.activate_spmd("obj_a", Arc::new(Reducer { tag: 1.0 }), DistPolicy::new());
            poa.activate_spmd("obj_b", Arc::new(Reducer { tag: 10.0 }), DistPolicy::new());
            poa.impl_is_ready();
        });
    });

    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let a = client.spmd_bind("obj_a").unwrap();
    let b = client.spmd_bind("obj_b").unwrap();
    for round in 0..10 {
        // Fire both non-blocking so they are in flight together.
        let (first, second) = if round % 2 == 0 { (&a, &b) } else { (&b, &a) };
        let f1 = first.call("go").invoke_nb().unwrap();
        let f2 = second.call("go").invoke_nb().unwrap();
        let v1 = f1.wait().unwrap().scalar::<f64>(0).unwrap();
        let v2 = f2.wait().unwrap().scalar::<f64>(0).unwrap();
        let mut got = [v1, v2];
        got.sort_by(f64::total_cmp);
        assert_eq!(got, [3.0, 30.0], "round {round}: collectives crossed objects");
    }
    group.shutdown();
    server.join().unwrap();
}

#[test]
fn interleaved_bindings_from_one_thread_keep_fifo_per_binding() {
    struct Tagger;
    impl Servant for Tagger {
        fn interface(&self) -> &str {
            "tagger"
        }
        fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
            let v: i64 = req.scalar(0).map_err(|e| e.to_string())?;
            let mut rep = ServerReply::new();
            rep.push_scalar(&(v * 2));
            Ok(rep)
        }
    }
    let (orb, host) = Orb::single_host();
    orb.set_local_bypass(false);
    let group = ServerGroup::create(&orb, "tagger", host, 1);
    let g = group.clone();
    let server = std::thread::spawn(move || {
        let mut poa = g.attach(0, None);
        poa.activate_single("t1", Arc::new(Tagger));
        poa.activate_single("t2", Arc::new(Tagger));
        poa.impl_is_ready();
    });
    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let p1 = client.bind("t1").unwrap();
    let p2 = client.bind("t2").unwrap();
    let mut handles = Vec::new();
    for i in 0..10i64 {
        handles.push(p1.call("x").arg(&i).invoke_nb().unwrap());
        handles.push(p2.call("x").arg(&(100 + i)).invoke_nb().unwrap());
    }
    let mut results: Vec<i64> =
        handles.into_iter().map(|h| h.wait().unwrap().scalar::<i64>(0).unwrap()).collect();
    let expect: Vec<i64> = (0..10i64).flat_map(|i| [i * 2, (100 + i) * 2]).collect();
    assert_eq!(results, expect);
    results.sort_unstable();
    group.shutdown();
    server.join().unwrap();
}
