use crate::dist::*;

#[test]
fn block_owner_and_local_len_consistent() {
    // 10 elements over 3 threads: 4,3,3.
    let d = Distribution::Block;
    assert_eq!(d.local_len(10, 3, 0), 4);
    assert_eq!(d.local_len(10, 3, 1), 3);
    assert_eq!(d.local_len(10, 3, 2), 3);
    assert_eq!(d.owner(10, 3, 0), 0);
    assert_eq!(d.owner(10, 3, 3), 0);
    assert_eq!(d.owner(10, 3, 4), 1);
    assert_eq!(d.owner(10, 3, 6), 1);
    assert_eq!(d.owner(10, 3, 7), 2);
    assert_eq!(d.owner(10, 3, 9), 2);
}

#[test]
fn block_runs_are_contiguous_and_cover() {
    let d = Distribution::Block;
    let r0 = d.runs(10, 3, 0);
    let r1 = d.runs(10, 3, 1);
    let r2 = d.runs(10, 3, 2);
    assert_eq!(r0, vec![Run { start: 0, count: 4 }]);
    assert_eq!(r1, vec![Run { start: 4, count: 3 }]);
    assert_eq!(r2, vec![Run { start: 7, count: 3 }]);
}

#[test]
fn block_more_threads_than_elements() {
    let d = Distribution::Block;
    // 2 elements over 5 threads: threads 0 and 1 get one each.
    assert_eq!(d.local_len(2, 5, 0), 1);
    assert_eq!(d.local_len(2, 5, 1), 1);
    assert_eq!(d.local_len(2, 5, 2), 0);
    assert_eq!(d.owner(2, 5, 1), 1);
    assert!(d.runs(2, 5, 3).is_empty());
}

#[test]
fn cyclic_owner_and_locals() {
    let d = Distribution::Cyclic;
    assert_eq!(d.owner(10, 3, 0), 0);
    assert_eq!(d.owner(10, 3, 4), 1);
    assert_eq!(d.owner(10, 3, 5), 2);
    assert_eq!(d.local_len(10, 3, 0), 4); // 0,3,6,9
    assert_eq!(d.local_len(10, 3, 1), 3); // 1,4,7
    assert_eq!(d.global_to_local(10, 3, 7), (1, 2));
    assert_eq!(d.local_to_global(10, 3, 1, 2), 7);
}

#[test]
fn concentrated_owns_everything() {
    let d = Distribution::Concentrated(2);
    assert_eq!(d.owner(5, 4, 3), 2);
    assert_eq!(d.local_len(5, 4, 2), 5);
    assert_eq!(d.local_len(5, 4, 0), 0);
    assert_eq!(d.runs(5, 4, 2), vec![Run { start: 0, count: 5 }]);
}

#[test]
fn irregular_follows_counts() {
    let d = Distribution::Irregular(vec![2, 0, 3]);
    assert_eq!(d.owner(5, 3, 0), 0);
    assert_eq!(d.owner(5, 3, 1), 0);
    assert_eq!(d.owner(5, 3, 2), 2);
    assert_eq!(d.local_len(5, 3, 1), 0);
    assert!(d.runs(5, 3, 1).is_empty());
    assert_eq!(d.runs(5, 3, 2), vec![Run { start: 2, count: 3 }]);
}

#[test]
fn block_cyclic_owner_and_locals() {
    let d = Distribution::BlockCyclic(3);
    // 11 elements, 2 threads, blocks of 3: [0..3)->t0, [3..6)->t1,
    // [6..9)->t0, [9..11)->t1.
    assert_eq!(d.owner(11, 2, 0), 0);
    assert_eq!(d.owner(11, 2, 4), 1);
    assert_eq!(d.owner(11, 2, 7), 0);
    assert_eq!(d.owner(11, 2, 10), 1);
    assert_eq!(d.local_len(11, 2, 0), 6);
    assert_eq!(d.local_len(11, 2, 1), 5);
    assert_eq!(d.runs(11, 2, 1), vec![Run { start: 3, count: 3 }, Run { start: 9, count: 2 }]);
    assert_eq!(d.global_to_local(11, 2, 7), (0, 4));
    assert_eq!(d.local_to_global(11, 2, 0, 4), 7);
}

#[test]
fn block_cyclic_of_one_equals_cyclic() {
    let bc = Distribution::BlockCyclic(1);
    let c = Distribution::Cyclic;
    for idx in 0..17 {
        assert_eq!(bc.owner(17, 3, idx), c.owner(17, 3, idx));
    }
    for t in 0..3 {
        assert_eq!(bc.local_len(17, 3, t), c.local_len(17, 3, t));
    }
}

#[test]
fn validate_catches_mismatches() {
    assert!(Distribution::Irregular(vec![1, 2]).validate(4, 2).is_err());
    assert!(Distribution::Irregular(vec![1, 2]).validate(3, 3).is_err());
    assert!(Distribution::Concentrated(3).validate(5, 3).is_err());
    assert!(Distribution::Block.validate(5, 3).is_ok());
    assert!(Distribution::BlockCyclic(0).validate(5, 3).is_err());
    assert!(Distribution::BlockCyclic(2).validate(5, 3).is_ok());
}

#[test]
#[should_panic(expected = "out of range")]
fn owner_out_of_range_panics() {
    Distribution::Block.owner(5, 2, 5);
}

#[test]
fn global_local_roundtrip_all_dists() {
    for dist in [
        Distribution::Block,
        Distribution::Cyclic,
        Distribution::Concentrated(1),
        Distribution::Irregular(vec![3, 0, 7, 2]),
        Distribution::BlockCyclic(3),
        Distribution::BlockCyclic(5),
    ] {
        let (len, n) = (12u64, 4usize);
        if dist.validate(len, n).is_err() {
            continue;
        }
        for idx in 0..len {
            let (t, local) = dist.global_to_local(len, n, idx);
            assert_eq!(dist.local_to_global(len, n, t, local), idx, "{dist:?} idx {idx}");
        }
    }
}

#[test]
fn plan_block_to_block_same_shape_is_identity_diagonal() {
    let plan = plan_transfer(12, &Distribution::Block, 3, &Distribution::Block, 3);
    assert_eq!(plan.len(), 3);
    for (i, piece) in plan.iter().enumerate() {
        assert_eq!(piece.src, i);
        assert_eq!(piece.dst, i);
        assert_eq!(piece.count, 4);
    }
}

#[test]
fn plan_block_to_concentrated_funnels() {
    let plan = plan_transfer(10, &Distribution::Block, 2, &Distribution::Concentrated(0), 1);
    assert_eq!(plan.len(), 2);
    assert_eq!(plan[0], PlanPiece { src: 0, dst: 0, start: 0, count: 5 });
    assert_eq!(plan[1], PlanPiece { src: 1, dst: 0, start: 5, count: 5 });
}

#[test]
fn plan_block_to_cyclic_has_elementwise_pieces() {
    let plan = plan_transfer(6, &Distribution::Block, 2, &Distribution::Cyclic, 2);
    // src 0 owns 0,1,2 (dst 0,1,0), src 1 owns 3,4,5 (dst 1,0,1).
    let covered: u64 = plan.iter().map(|p| p.count).sum();
    assert_eq!(covered, 6);
    for p in &plan {
        for idx in p.start..p.start + p.count {
            assert_eq!(Distribution::Block.owner(6, 2, idx), p.src);
            assert_eq!(Distribution::Cyclic.owner(6, 2, idx), p.dst);
        }
    }
}

#[test]
fn plan_zero_length_is_empty() {
    assert!(plan_transfer(0, &Distribution::Block, 2, &Distribution::Block, 3).is_empty());
}

#[test]
fn distribution_cdr_roundtrip() {
    for d in [
        Distribution::Block,
        Distribution::Cyclic,
        Distribution::Concentrated(7),
        Distribution::Irregular(vec![1, 2, 3]),
        Distribution::BlockCyclic(64),
    ] {
        let b = pardis_cdr::to_bytes(&d);
        assert_eq!(pardis_cdr::from_bytes::<Distribution>(&b).unwrap(), d);
    }
}

mod property {
    use super::*;
    use proptest::prelude::*;
    use proptest::strategy::ValueTree;

    fn arb_dist(n: usize, len: u64) -> impl Strategy<Value = Distribution> {
        prop_oneof![
            Just(Distribution::Block),
            Just(Distribution::Cyclic),
            (0..n).prop_map(Distribution::Concentrated),
            (1u64..9).prop_map(Distribution::BlockCyclic),
            // Random irregular template summing to len.
            proptest::collection::vec(0u64..=len, n - 1).prop_map(move |mut cuts| {
                cuts.sort_unstable();
                let mut counts = Vec::with_capacity(n);
                let mut prev = 0;
                for c in cuts {
                    counts.push(c - prev);
                    prev = c;
                }
                counts.push(len - prev);
                Distribution::Irregular(counts)
            }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ownership partitions indices: local_lens sum to len and owner is
        /// consistent with local_len.
        #[test]
        fn ownership_partitions(
            len in 0u64..200,
            n in 1usize..8,
            seed in any::<u64>(),
        ) {
            let dist = {
                let mut runner = proptest::test_runner::TestRunner::deterministic();
                let _ = seed;
                arb_dist(n, len).new_tree(&mut runner).unwrap().current()
            };
            prop_assume!(dist.validate(len, n).is_ok());
            let total: u64 = (0..n).map(|t| dist.local_len(len, n, t)).sum();
            prop_assert_eq!(total, len);
            let mut per_thread = vec![0u64; n];
            for idx in 0..len {
                per_thread[dist.owner(len, n, idx)] += 1;
            }
            for (t, count) in per_thread.iter().enumerate() {
                prop_assert_eq!(*count, dist.local_len(len, n, t));
            }
        }

        /// Runs exactly cover each thread's owned set, in order.
        #[test]
        fn runs_cover_ownership(len in 0u64..150, n in 1usize..6) {
            for dist in [
                Distribution::Block,
                Distribution::Cyclic,
                Distribution::BlockCyclic(4),
            ] {
                for t in 0..n {
                    let mut covered = Vec::new();
                    for run in dist.runs(len, n, t) {
                        for idx in run.start..run.start + run.count {
                            covered.push(idx);
                        }
                    }
                    let owned: Vec<u64> =
                        (0..len).filter(|&i| dist.owner(len, n, i) == t).collect();
                    prop_assert_eq!(covered, owned);
                }
            }
        }

        /// A transfer plan covers every index exactly once with correct
        /// endpoints.
        #[test]
        fn plan_is_exact_cover(
            len in 0u64..200,
            src_n in 1usize..5,
            dst_n in 1usize..5,
        ) {
            for (src, dst) in [
                (Distribution::Block, Distribution::Block),
                (Distribution::Block, Distribution::Cyclic),
                (Distribution::Cyclic, Distribution::Block),
                (Distribution::Cyclic, Distribution::Cyclic),
                (Distribution::Block, Distribution::BlockCyclic(3)),
                (Distribution::BlockCyclic(5), Distribution::Block),
            ] {
                let plan = plan_transfer(len, &src, src_n, &dst, dst_n);
                let covered: u64 = plan.iter().map(|p| p.count).sum();
                prop_assert_eq!(covered, len);
                let mut next = 0;
                for p in &plan {
                    prop_assert_eq!(p.start, next, "plan pieces are ordered and dense");
                    next = p.start + p.count;
                    for idx in p.start..p.start + p.count {
                        prop_assert_eq!(src.owner(len, src_n, idx), p.src);
                        prop_assert_eq!(dst.owner(len, dst_n, idx), p.dst);
                    }
                }
            }
        }

        /// The piece-to-local-range helper agrees with per-element
        /// global_to_local on both sides of every piece of every plan: the
        /// piece's element `k` lives at local offset `local_start + k`.
        #[test]
        fn piece_local_start_matches_elementwise_mapping(
            len in 1u64..200,
            src_n in 1usize..5,
            dst_n in 1usize..5,
        ) {
            for (src, dst) in [
                (Distribution::Block, Distribution::Cyclic),
                (Distribution::Cyclic, Distribution::BlockCyclic(3)),
                (Distribution::BlockCyclic(5), Distribution::Block),
                (Distribution::Block, Distribution::Concentrated(0)),
            ] {
                let plan = plan_transfer(len, &src, src_n, &dst, dst_n);
                for p in &plan {
                    let slo = p.src_local_start(len, &src, src_n);
                    let dlo = p.dst_local_start(len, &dst, dst_n);
                    for k in 0..p.count {
                        let (so, sl) = src.global_to_local(len, src_n, p.start + k);
                        prop_assert_eq!(so, p.src);
                        prop_assert_eq!(sl, slo + k, "src locals dense from the helper's start");
                        let (dofs, dl) = dst.global_to_local(len, dst_n, p.start + k);
                        prop_assert_eq!(dofs, p.dst);
                        prop_assert_eq!(dl, dlo + k, "dst locals dense from the helper's start");
                    }
                }
            }
        }
    }
}

#[test]
fn plan_cache_eviction_respects_configured_cap() {
    // Shrink the process-wide cap, stream in far more distinct shapes than
    // it can hold, and check the FIFO eviction keeps the cache bounded.
    // Lengths are offset into a range no other test uses so concurrent
    // suites sharing the process-wide cache cannot mask an eviction bug.
    set_plan_cache_cap(8);
    for len in 100_001..=100_050u64 {
        let _ = plan_transfer_cached(len, &Distribution::Block, 3, &Distribution::Cyclic, 2);
    }
    assert!(plan_cache_len() <= 8, "cache holds {} plans, cap is 8", plan_cache_len());
    // The most recent shape survived the churn.
    let again = plan_transfer_cached(100_050, &Distribution::Block, 3, &Distribution::Cyclic, 2);
    assert_eq!(again.iter().map(|p| p.count).sum::<u64>(), 100_050);
    // Restore the default so other suites keep their expected capacity.
    set_plan_cache_cap(64);
}
