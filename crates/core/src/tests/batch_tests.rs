//! Request batcher and sharded-router tests: off-mode wire identity,
//! coalescing, flush invariants (property-based), deadline flushes, and the
//! orphan-stash eviction regression.

use crate::batch::{BatchMode, Batcher, FlushReason};
use crate::object::{BindingId, EndpointId};
use crate::protocol::{Message, ReplyMsg, ReplyStatus, MAGIC};
use crate::*;
use bytes::Bytes;
use pardis_netsim::{Network, TimeScale};
use proptest::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

/// A minimal echo servant for the end-to-end legs.
struct Echo;
impl Servant for Echo {
    fn interface(&self) -> &str {
        "echo"
    }
    fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
        let text: String = req.scalar(0).map_err(|e| e.to_string())?;
        let mut rep = ServerReply::new();
        rep.push_scalar(&format!("echo: {text}"));
        Ok(rep)
    }
}

/// An ORB plus a tap endpoint: every frame sent to `ep` lands on `rx`.
fn orb_with_tap(
) -> (Orb, pardis_netsim::HostId, EndpointId, crossbeam::channel::Receiver<crate::orb::Envelope>) {
    let net = Network::new(TimeScale::off());
    let host = net.add_host("tap-host");
    let orb = Orb::new(net);
    let (ep, rx) = orb.register_endpoint(host);
    (orb, host, ep, rx)
}

fn small_frame(i: u64) -> Bytes {
    Message::Reply(ReplyMsg {
        req_id: i,
        binding: BindingId(7),
        status: ReplyStatus::Ok,
        outs: Vec::new(),
        dout_lens: Vec::new(),
    })
    .encode()
}

/// With batching off the wire is the pre-batching protocol, frame for
/// frame and byte for byte: no envelope, no reorder, no extra traffic.
#[test]
fn off_mode_wire_is_byte_identical() {
    let (orb, host, ep, rx) = orb_with_tap();
    orb.set_batch_mode(BatchMode::Off);
    let frames: Vec<Bytes> = (0..16).map(small_frame).collect();
    for f in &frames {
        orb.send_wire(host, ep, f.clone()).unwrap();
    }
    for expected in &frames {
        let env = rx.try_recv().expect("one wire frame per send");
        assert_eq!(&env.wire, expected, "off-mode frame must be byte-identical");
    }
    assert!(rx.try_recv().is_err(), "no extra frames");
}

/// Fixed-count batching coalesces bursts into envelopes whose sub-frames
/// are the original wires, byte for byte and in order.
#[test]
fn fixed_mode_coalesces_preserving_frames() {
    let (orb, host, ep, rx) = orb_with_tap();
    orb.set_batch_mode(BatchMode::Fixed(4));
    let frames: Vec<Bytes> = (0..8).map(small_frame).collect();
    for f in &frames {
        orb.send_wire(host, ep, f.clone()).unwrap();
    }
    orb.flush_batches();
    let mut flat: Vec<Bytes> = Vec::new();
    let mut envelopes = 0usize;
    while let Ok(env) = rx.try_recv() {
        match Message::decode(&env.wire).expect("valid frame") {
            Message::Batch(subs) => {
                envelopes += 1;
                assert!(subs.len() >= 2, "singleton runs must ship raw");
                flat.extend(subs);
            }
            _ => flat.push(env.wire.clone()),
        }
    }
    assert_eq!(flat, frames, "sub-frames must be the original wires, in order");
    assert!(envelopes >= 1, "a burst of 8 at target 4 must coalesce");
}

/// A queued frame leaves within the flush window even when nothing else is
/// ever sent: the deadline flusher, not follow-on traffic, drives it out.
#[test]
fn deadline_flush_fires_without_follow_on_traffic() {
    let (orb, host, ep, rx) = orb_with_tap();
    orb.set_batch_delay(Duration::from_millis(1));
    // A huge fixed target: no demand trigger will ever fire.
    orb.set_batch_mode(BatchMode::Fixed(1_000_000));
    let f = small_frame(1);
    orb.send_wire(host, ep, f.clone()).unwrap();
    let env =
        rx.recv_timeout(Duration::from_secs(5)).expect("deadline flusher must ship the lone frame");
    assert_eq!(env.wire, f);
}

/// Batch envelopes survive an encode/decode round trip unchanged.
#[test]
fn batch_envelope_roundtrip() {
    let frames: Vec<Bytes> = (0..5).map(small_frame).collect();
    let wire = crate::protocol::encode_batch_frame(&frames);
    assert_eq!(wire[0..4], MAGIC);
    assert_eq!(wire[6], 5, "batch type tag");
    match Message::decode(&wire).expect("valid envelope") {
        Message::Batch(subs) => assert_eq!(subs, frames),
        other => panic!("expected Batch, got {}", other.kind()),
    }
}

/// Expand a shipped wire stream: envelopes into their sub-frames, raw
/// frames as-is. Test payloads never start with the protocol magic, so the
/// distinction is unambiguous.
fn expand(frames: &[Bytes], max_bytes: usize) -> Vec<Bytes> {
    let mut flat = Vec::new();
    for f in frames {
        if f.len() >= 8 && f[0..4] == MAGIC && f[6] == 5 {
            let Ok(Message::Batch(subs)) = Message::decode(f) else {
                panic!("undecodable envelope");
            };
            assert!(subs.len() >= 2, "singleton runs must ship raw");
            let total: usize = subs.iter().map(|s| s.len()).sum();
            assert!(total <= max_bytes, "envelope payload exceeds max_bytes");
            flat.extend(subs);
        } else {
            flat.push(f.clone());
        }
    }
    flat
}

proptest! {
    /// Drive the batcher with an arbitrary interleaving of destinations and
    /// frame sizes, flushing whenever it asks (plus a final barrier), and
    /// check the queue-discipline invariants: every frame ships exactly
    /// once, per-destination order is preserved, no frame straddles two
    /// envelopes, and no envelope exceeds the byte ceiling.
    #[test]
    fn batcher_flush_invariants(
        ops in proptest::collection::vec((0u64..3, 1usize..600), 1..120),
        max_bytes in 64usize..1500,
    ) {
        let net = Network::new(TimeScale::off());
        let host = net.add_host("prop-host");
        let b = Batcher::new(BatchMode::Adaptive, max_bytes, Duration::from_secs(3600));
        let mut expected: HashMap<u64, Vec<Bytes>> = HashMap::new();
        let mut shipped: HashMap<u64, Vec<Bytes>> = HashMap::new();
        for (i, (dest, len)) in ops.iter().enumerate() {
            // Opaque payload that cannot be mistaken for a protocol frame.
            let mut v = vec![0xFFu8; *len];
            v[0] = 0xFF;
            let tag = (i as u32).to_le_bytes();
            let n = v.len().min(5);
            v[1..n].copy_from_slice(&tag[..n - 1]);
            let wire = Bytes::from(v);
            let key = (host, EndpointId(*dest));
            expected.entry(*dest).or_default().push(wire.clone());
            let passthrough = wire.len() >= max_bytes;
            if b.enqueue(key, wire, passthrough) {
                let out = shipped.entry(*dest).or_default();
                b.drain(key, FlushReason::Demand, &mut |f| out.push(f));
            }
        }
        for key in b.pending_keys() {
            let out = shipped.entry(key.1 .0).or_default();
            b.drain(key, FlushReason::Demand, &mut |f| out.push(f));
        }
        prop_assert!(b.pending_keys().is_empty(), "barrier must drain everything");
        for (dest, frames) in &expected {
            let got = expand(shipped.get(dest).map(|v| v.as_slice()).unwrap_or(&[]), max_bytes);
            prop_assert_eq!(&got, frames, "per-destination FIFO and exactly-once");
        }
    }
}

/// A stray-reply storm (unknown keys, e.g. replies outliving a crashed
/// retry layer) must evict oldest-first past the stash cap — counted on
/// `client.orphans.evicted` — and leave live invocations unharmed.
#[test]
fn orphan_stash_eviction_regression() {
    let net = Network::new(TimeScale::off());
    let host = net.add_host("localhost");
    let orb = Orb::new(net);
    // One shard so the cap applies to one stash and the count is exact.
    orb.set_router_shards(1);

    let group = ServerGroup::create(&orb, "echo-server", host, 1);
    let g2 = group.clone();
    let server = std::thread::spawn(move || {
        let mut poa = g2.attach(0, None);
        poa.activate_single("echo1", std::sync::Arc::new(Echo));
        poa.impl_is_ready();
    });

    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let before = pardis_obs::counter("client.orphans.evicted").get();

    let cap = crate::client::PUMP_MEMORY_CAP;
    let extra = 10usize;
    for i in 0..(cap + extra) {
        let stray = Message::Reply(ReplyMsg {
            req_id: i as u64,
            binding: BindingId(0xDEAD_0000_0000 | i as u64),
            status: ReplyStatus::Ok,
            outs: Vec::new(),
            dout_lens: Vec::new(),
        });
        orb.send(host, client.test_reply_ep(), &stray).unwrap();
    }
    client.drain_pending();

    let evicted = pardis_obs::counter("client.orphans.evicted").get() - before;
    assert_eq!(evicted as usize, extra, "strays past the cap evict oldest-first");

    // The pump still routes real traffic after the storm.
    let proxy = client.bind("echo1").unwrap();
    let reply = proxy.call("shout").arg(&"hi".to_string()).invoke().unwrap();
    assert_eq!(reply.scalar::<String>(0).unwrap(), "echo: hi");

    group.shutdown();
    server.join().unwrap();
}
