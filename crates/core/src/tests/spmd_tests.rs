//! End-to-end tests: SPMD objects, parallel clients, distributed arguments.

use crate::*;
use pardis_rts::{MpiRts, ReduceOp, Rts, World};
use std::sync::Arc;

/// SPMD vector servant: scale (dseq in → dseq out), sum (collective
/// reduction inside the servant), len (scalar round trip).
struct VecOps;

impl Servant for VecOps {
    fn interface(&self) -> &str {
        "vecops"
    }
    fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
        let mut rep = ServerReply::new();
        match req.op {
            "scale" => {
                let factor: f64 = req.scalar(0).map_err(|e| e.to_string())?;
                let v: DSequence<f64> = req.dseq(0).map_err(|e| e.to_string())?;
                let scaled: Vec<f64> = v.local().iter().map(|x| x * factor).collect();
                let out = DSequence::from_local(
                    scaled,
                    v.len(),
                    v.dist().clone(),
                    v.nthreads(),
                    v.thread(),
                );
                rep.push_scalar(&(v.len() as i64));
                rep.push_dseq(out);
                Ok(rep)
            }
            "sum" => {
                let v: DSequence<f64> = req.dseq(0).map_err(|e| e.to_string())?;
                let local: f64 = v.local().iter().sum();
                let total = if req.ctx.nthreads > 1 {
                    req.ctx.rts().all_reduce_f64(local, ReduceOp::Sum)
                } else {
                    local
                };
                rep.push_scalar(&total);
                Ok(rep)
            }
            "rev_rows" => {
                // Nested dynamic elements (the paper's `matrix`).
                let m: DSequence<Vec<f64>> = req.dseq(0).map_err(|e| e.to_string())?;
                let rev: Vec<Vec<f64>> =
                    m.local().iter().map(|row| row.iter().rev().copied().collect()).collect();
                let out =
                    DSequence::from_local(rev, m.len(), m.dist().clone(), m.nthreads(), m.thread());
                rep.push_dseq(out);
                Ok(rep)
            }
            other => Err(format!("vecops has no operation {other:?}")),
        }
    }
}

/// Start a parallel VecOps server with `n` computing threads; returns the
/// group handle and the join handle.
fn spawn_vec_server(
    orb: &Orb,
    host: pardis_netsim::HostId,
    name: &str,
    n: usize,
    policy: DistPolicy,
) -> (ServerGroup, std::thread::JoinHandle<()>) {
    let group = ServerGroup::create(orb, "vec-server", host, n);
    let g = group.clone();
    let name = name.to_string();
    let handle = std::thread::spawn(move || {
        World::run(n, |rank| {
            let t = rank.rank();
            let rts: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
            let mut poa = g.attach(t, Some(rts));
            poa.activate_spmd(&name, Arc::new(VecOps), policy.clone());
            poa.impl_is_ready();
        });
    });
    (group, handle)
}

/// Run `f` as an SPMD client of `m` threads; returns per-thread results.
fn run_client<R: Send>(
    orb: &Orb,
    host: pardis_netsim::HostId,
    m: usize,
    f: impl Fn(&ClientThread) -> R + Send + Sync,
) -> Vec<R> {
    let group = ClientGroup::create(orb, host, m);
    World::run(m, |rank| {
        let t = rank.rank();
        let rts: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
        let ct = group.attach(t, if m > 1 { Some(rts) } else { None });
        f(&ct)
    })
}

#[test]
fn spmd_scale_block_to_block() {
    let (orb, host) = Orb::single_host();
    let (group, handle) = spawn_vec_server(&orb, host, "vec1", 3, DistPolicy::new());

    let full: Vec<f64> = (0..20).map(|i| i as f64).collect();
    let expect: Vec<f64> = full.iter().map(|x| x * 2.5).collect();
    let out = run_client(&orb, host, 2, |ct| {
        let proxy = ct.spmd_bind("vec1").unwrap();
        let v = DSequence::distribute(&full, Distribution::Block, 2, ct.thread());
        let reply = proxy
            .call("scale")
            .arg(&2.5f64)
            .dseq_in(&v)
            .dseq_out(Distribution::Block)
            .invoke()
            .unwrap();
        let len: i64 = reply.scalar(0).unwrap();
        assert_eq!(len, 20);
        let r: DSequence<f64> = reply.dseq(0).unwrap();
        (r.thread(), r.local().to_vec())
    });
    assert_eq!(out[0].1, expect[..10].to_vec());
    assert_eq!(out[1].1, expect[10..].to_vec());

    group.shutdown();
    handle.join().unwrap();
}

#[test]
fn spmd_scale_cyclic_client_distribution() {
    let (orb, host) = Orb::single_host();
    let (group, handle) = spawn_vec_server(&orb, host, "vec2", 2, DistPolicy::new());

    let full: Vec<f64> = (0..15).map(|i| i as f64).collect();
    let out = run_client(&orb, host, 3, |ct| {
        let proxy = ct.spmd_bind("vec2").unwrap();
        let v = DSequence::distribute(&full, Distribution::Cyclic, 3, ct.thread());
        let reply = proxy
            .call("scale")
            .arg(&-1.0f64)
            .dseq_in(&v)
            .dseq_out(Distribution::Cyclic)
            .invoke()
            .unwrap();
        let r: DSequence<f64> = reply.dseq(0).unwrap();
        r.local_iter().map(|(g, v)| (g, *v)).collect::<Vec<_>>()
    });
    for (t, pairs) in out.iter().enumerate() {
        for (g, v) in pairs {
            assert_eq!(*g % 3, t as u64);
            assert_eq!(*v, -(*g as f64));
        }
    }
    group.shutdown();
    handle.join().unwrap();
}

#[test]
fn servant_collectives_inside_dispatch() {
    let (orb, host) = Orb::single_host();
    let (group, handle) = spawn_vec_server(&orb, host, "vec3", 4, DistPolicy::new());

    let full: Vec<f64> = (1..=10).map(|i| i as f64).collect();
    let out = run_client(&orb, host, 2, |ct| {
        let proxy = ct.spmd_bind("vec3").unwrap();
        let v = DSequence::distribute(&full, Distribution::Block, 2, ct.thread());
        let reply = proxy.call("sum").dseq_in(&v).invoke().unwrap();
        reply.scalar::<f64>(0).unwrap()
    });
    assert_eq!(out, vec![55.0, 55.0], "every client thread gets the reduction");
    group.shutdown();
    handle.join().unwrap();
}

#[test]
fn nested_matrix_rows_roundtrip() {
    let (orb, host) = Orb::single_host();
    let (group, handle) = spawn_vec_server(&orb, host, "vec4", 2, DistPolicy::new());

    let rows: Vec<Vec<f64>> = (0..9).map(|i| (0..i).map(|j| j as f64).collect()).collect();
    let out = run_client(&orb, host, 2, |ct| {
        let proxy = ct.spmd_bind("vec4").unwrap();
        let m = DSequence::distribute(&rows, Distribution::Block, 2, ct.thread());
        let reply =
            proxy.call("rev_rows").dseq_in(&m).dseq_out(Distribution::Block).invoke().unwrap();
        let r: DSequence<Vec<f64>> = reply.dseq(0).unwrap();
        r.local_iter().map(|(g, row)| (g, row.clone())).collect::<Vec<_>>()
    });
    for pairs in out {
        for (g, row) in pairs {
            let mut expect: Vec<f64> = (0..g).map(|j| j as f64).collect();
            expect.reverse();
            assert_eq!(row, expect);
        }
    }
    group.shutdown();
    handle.join().unwrap();
}

#[test]
fn funneled_strategy_gives_same_answers() {
    let (orb, host) = Orb::single_host();
    orb.set_transfer_strategy(TransferStrategy::Funneled);
    let (group, handle) = spawn_vec_server(&orb, host, "vec5", 3, DistPolicy::new());

    let full: Vec<f64> = (0..25).map(|i| i as f64).collect();
    let expect: Vec<f64> = full.iter().map(|x| x * 3.0).collect();
    let out = run_client(&orb, host, 2, |ct| {
        let proxy = ct.spmd_bind("vec5").unwrap();
        let v = DSequence::distribute(&full, Distribution::Block, 2, ct.thread());
        let reply = proxy
            .call("scale")
            .arg(&3.0f64)
            .dseq_in(&v)
            .dseq_out(Distribution::Block)
            .invoke()
            .unwrap();
        let r: DSequence<f64> = reply.dseq(0).unwrap();
        r.local().to_vec()
    });
    assert_eq!(out[0], expect[..13].to_vec());
    assert_eq!(out[1], expect[13..].to_vec());
    group.shutdown();
    handle.join().unwrap();
}

#[test]
fn single_client_uses_nondistributed_stub() {
    // The second stub PARDIS generates: a single client passes whole
    // sequences to an SPMD object (§3.1).
    let (orb, host) = Orb::single_host();
    let (group, handle) = spawn_vec_server(&orb, host, "vec6", 3, DistPolicy::new());

    let full: Vec<f64> = (0..11).map(|i| i as f64).collect();
    let out = run_client(&orb, host, 1, |ct| {
        let proxy = ct.spmd_bind("vec6").unwrap();
        let reply = proxy
            .call("scale")
            .arg(&10.0f64)
            .dseq_in_full(full.clone())
            .dseq_out(Distribution::Concentrated(0))
            .invoke()
            .unwrap();
        let r: DSequence<f64> = reply.dseq(0).unwrap();
        r.local().to_vec()
    });
    assert_eq!(out[0], full.iter().map(|x| x * 10.0).collect::<Vec<f64>>());
    group.shutdown();
    handle.join().unwrap();
}

#[test]
fn server_in_dist_policy_is_honoured() {
    // Server declares it wants `scale`'s vector concentrated on its thread
    // 1; the transfer plan must deliver everything there.
    let (orb, host) = Orb::single_host();
    let policy = DistPolicy::new().with("scale", 1, Distribution::Concentrated(1));
    let (group, handle) = spawn_vec_server(&orb, host, "vec7", 2, policy);

    let full: Vec<f64> = (0..8).map(|i| i as f64).collect();
    let out = run_client(&orb, host, 2, |ct| {
        let proxy = ct.spmd_bind("vec7").unwrap();
        let v = DSequence::distribute(&full, Distribution::Block, 2, ct.thread());
        let reply = proxy
            .call("scale")
            .arg(&1.0f64)
            .dseq_in(&v)
            .dseq_out(Distribution::Block)
            .invoke()
            .unwrap();
        let r: DSequence<f64> = reply.dseq(0).unwrap();
        r.local().to_vec()
    });
    // The servant kept the concentrated dist for its out arg; the ORB still
    // delivered the expected block distribution to the client.
    assert_eq!(out[0], full[..4].to_vec());
    assert_eq!(out[1], full[4..].to_vec());
    group.shutdown();
    handle.join().unwrap();
}

#[test]
fn nonblocking_spmd_futures_resolve_on_all_threads() {
    let (orb, host) = Orb::single_host();
    let (group, handle) = spawn_vec_server(&orb, host, "vec8", 2, DistPolicy::new());

    let full: Vec<f64> = (0..12).map(|i| i as f64).collect();
    let out = run_client(&orb, host, 2, |ct| {
        let proxy = ct.spmd_bind("vec8").unwrap();
        let v = DSequence::distribute(&full, Distribution::Block, 2, ct.thread());
        let inv = proxy
            .call("scale")
            .arg(&0.5f64)
            .dseq_in(&v)
            .dseq_out(Distribution::Block)
            .invoke_nb()
            .unwrap();
        let len_fut: PFuture<i64> = inv.scalar_future(0);
        let vec_fut: DSeqFuture<f64> = inv.dseq_future(0);
        // Blocking read; both futures resolve together.
        let r = vec_fut.get().unwrap();
        assert!(len_fut.resolved());
        assert_eq!(len_fut.get().unwrap(), 12);
        r.local().to_vec()
    });
    assert_eq!(out[0], (0..6).map(|i| i as f64 * 0.5).collect::<Vec<f64>>());
    assert_eq!(out[1], (6..12).map(|i| i as f64 * 0.5).collect::<Vec<f64>>());
    group.shutdown();
    handle.join().unwrap();
}

/// Fig-4-style shape: an SPMD object plus single objects owned by different
/// computing threads of the same parallel server.
#[test]
fn single_objects_share_a_parallel_server() {
    struct ThreadTag;
    impl Servant for ThreadTag {
        fn interface(&self) -> &str {
            "tag"
        }
        fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
            let mut rep = ServerReply::new();
            rep.push_scalar(&(req.ctx.thread as i64));
            Ok(rep)
        }
    }

    let (orb, host) = Orb::single_host();
    orb.set_local_bypass(false); // force the wire so thread routing is tested
    let n = 3;
    let group = ServerGroup::create(&orb, "multi", host, n);
    let g = group.clone();
    let handle = std::thread::spawn(move || {
        World::run(n, |rank| {
            let t = rank.rank();
            let rts: Arc<dyn Rts> = Arc::new(MpiRts::new(rank));
            let mut poa = g.attach(t, Some(rts));
            poa.activate_spmd("spmd-main", Arc::new(VecOps), DistPolicy::new());
            // Each computing thread owns one single object.
            poa.activate_single(&format!("tag{t}"), Arc::new(ThreadTag));
            poa.impl_is_ready();
        });
    });

    let out = run_client(&orb, host, 1, |ct| {
        (0..n)
            .map(|t| {
                let proxy = ct.bind(&format!("tag{t}")).unwrap();
                let reply = proxy.call("who").invoke().unwrap();
                reply.scalar::<i64>(0).unwrap()
            })
            .collect::<Vec<_>>()
    });
    assert_eq!(out[0], vec![0, 1, 2], "each single object dispatches on its owner thread");
    group.shutdown();
    handle.join().unwrap();
}

#[test]
fn spmd_exception_reaches_all_client_threads() {
    let (orb, host) = Orb::single_host();
    let (group, handle) = spawn_vec_server(&orb, host, "vec9", 2, DistPolicy::new());
    let out = run_client(&orb, host, 2, |ct| {
        let proxy = ct.spmd_bind("vec9").unwrap();
        proxy.call("nonsense").invoke().unwrap_err()
    });
    for err in out {
        assert!(matches!(err, OrbError::ServerException(_)));
    }
    group.shutdown();
    handle.join().unwrap();
}

#[test]
fn many_inflight_nonblocking_invocations() {
    // Stress fragment routing: 16 nb invocations in flight at once from
    // both client threads, resolved out of order.
    let (orb, host) = Orb::single_host();
    let (group, handle) = spawn_vec_server(&orb, host, "vec_stress", 3, DistPolicy::new());

    let full: Vec<f64> = (0..30).map(|i| i as f64).collect();
    let out = run_client(&orb, host, 2, |ct| {
        let proxy = ct.spmd_bind("vec_stress").unwrap();
        let v = DSequence::distribute(&full, Distribution::Block, 2, ct.thread());
        let invs: Vec<_> = (0..16)
            .map(|k| {
                proxy
                    .call("scale")
                    .arg(&(k as f64))
                    .dseq_in(&v)
                    .dseq_out(Distribution::Block)
                    .invoke_nb()
                    .unwrap()
            })
            .collect();
        // Resolve newest-first to exercise out-of-order delivery.
        let mut sums = vec![0.0; 16];
        for (k, inv) in invs.into_iter().enumerate().rev() {
            let r: DSequence<f64> = inv.dseq_future(0).get().unwrap();
            sums[k] = r.local().iter().sum::<f64>();
        }
        sums
    });
    let base0: f64 = full[..15].iter().sum();
    let base1: f64 = full[15..].iter().sum();
    for (t, sums) in out.iter().enumerate() {
        let base = if t == 0 { base0 } else { base1 };
        for (k, s) in sums.iter().enumerate() {
            assert!((s - base * k as f64).abs() < 1e-9, "thread {t}, call {k}: {s}");
        }
    }
    group.shutdown();
    handle.join().unwrap();
}

mod orb_property {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// A full SPMD round trip preserves values under random sizes,
        /// client thread counts, server thread counts, and distribution
        /// template choices on both sides.
        #[test]
        fn random_shapes_roundtrip(
            len in 1usize..60,
            server_n in 1usize..4,
            client_n in 1usize..4,
            client_cyclic in any::<bool>(),
            server_choice in 0usize..3,
            factor in -4.0f64..4.0,
        ) {
            let server_dist = match server_choice {
                0 => Distribution::Block,
                1 => Distribution::Cyclic,
                _ => Distribution::BlockCyclic(3),
            };
            let policy = DistPolicy::new().with("scale", 1, server_dist);
            let (orb, host) = Orb::single_host();
            let (group, handle) = spawn_vec_server(&orb, host, "vec_prop", server_n, policy);
            let full: Vec<f64> = (0..len).map(|i| i as f64 * 0.5).collect();
            let client_dist =
                if client_cyclic { Distribution::Cyclic } else { Distribution::Block };
            let expect: Vec<f64> = full.iter().map(|x| x * factor).collect();
            let out = run_client(&orb, host, client_n, |ct| {
                let proxy = ct.spmd_bind("vec_prop").unwrap();
                let v = DSequence::distribute(&full, client_dist.clone(), client_n, ct.thread());
                let reply = proxy
                    .call("scale")
                    .arg(&factor)
                    .dseq_in(&v)
                    .dseq_out(client_dist.clone())
                    .invoke()
                    .unwrap();
                let r: DSequence<f64> = reply.dseq(0).unwrap();
                r.local_iter().map(|(g, v)| (g, *v)).collect::<Vec<_>>()
            });
            let mut seen = vec![false; len];
            for pairs in out {
                for (g, v) in pairs {
                    prop_assert!((v - expect[g as usize]).abs() < 1e-9);
                    prop_assert!(!seen[g as usize], "element delivered twice");
                    seen[g as usize] = true;
                }
            }
            prop_assert!(seen.iter().all(|&b| b), "every element delivered");
            group.shutdown();
            handle.join().unwrap();
        }
    }
}

#[test]
fn cross_host_spmd_transfer_charges_interhost_link() {
    use pardis_netsim::{LinkPreset, Network, TimeScale};
    let net = Network::new(TimeScale::off());
    let h1 = net.add_host("client-host");
    let h2 = net.add_host("server-host");
    net.connect(h1, h2, LinkPreset::AtmOc3.link());
    let orb = Orb::new(net);

    let (group, handle) = spawn_vec_server(&orb, h2, "vecx", 2, DistPolicy::new());
    let full: Vec<f64> = (0..1000).map(|i| i as f64).collect();
    let before = orb.network().clock().now();
    let out = run_client(&orb, h1, 2, |ct| {
        let proxy = ct.spmd_bind("vecx").unwrap();
        let v = DSequence::distribute(&full, Distribution::Block, 2, ct.thread());
        let reply = proxy
            .call("scale")
            .arg(&2.0f64)
            .dseq_in(&v)
            .dseq_out(Distribution::Block)
            .invoke()
            .unwrap();
        let r: DSequence<f64> = reply.dseq(0).unwrap();
        r.local().iter().sum::<f64>()
    });
    let modelled = orb.network().clock().now() - before;
    assert!(modelled > 0.0, "inter-host traffic must charge the ATM link");
    let total: f64 = out.iter().sum();
    assert_eq!(total, (0..1000).map(|i| i as f64 * 2.0).sum::<f64>());
    group.shutdown();
    handle.join().unwrap();
}
