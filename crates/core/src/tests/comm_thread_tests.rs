//! Communication threads (the §6 future-work experiment).

use crate::*;
use std::sync::Arc;
use std::time::Duration;

struct Doubler;

impl Servant for Doubler {
    fn interface(&self) -> &str {
        "doubler"
    }
    fn dispatch(&self, req: ServerRequest<'_>) -> Result<ServerReply, String> {
        let v: i64 = req.scalar(0).map_err(|e| e.to_string())?;
        let mut rep = ServerReply::new();
        rep.push_scalar(&(v * 2));
        Ok(rep)
    }
}

fn serve(
    orb: &Orb,
    host: pardis_netsim::HostId,
    name: &str,
) -> (ServerGroup, std::thread::JoinHandle<()>) {
    let group = ServerGroup::create(orb, "doubler", host, 1);
    let g = group.clone();
    let name = name.to_string();
    let join = std::thread::spawn(move || {
        let mut poa = g.attach(0, None);
        poa.activate_single(&name, Arc::new(Doubler));
        poa.impl_is_ready();
    });
    (group, join)
}

#[test]
fn comm_thread_resolves_futures_while_client_computes() {
    let (orb, host) = Orb::single_host();
    orb.set_local_bypass(false);
    let (group, join) = serve(&orb, host, "d1");

    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let comm = client.start_comm_thread();
    let proxy = client.bind("d1").unwrap();

    let inv = proxy.call("x").arg(&21i64).invoke_nb().unwrap();
    // The client "computes" without ever pumping; the communication thread
    // must ingest the reply on its own. `peek` never pumps.
    let deadline = std::time::Instant::now() + Duration::from_secs(2);
    while !inv.peek() {
        assert!(std::time::Instant::now() < deadline, "comm thread never ingested the reply");
        std::thread::sleep(Duration::from_millis(1));
    }
    let fut: PFuture<i64> = inv.scalar_future(0);
    assert_eq!(fut.get().unwrap(), 42);

    comm.stop();
    group.shutdown();
    join.join().unwrap();
}

#[test]
fn without_comm_thread_peek_stays_false() {
    let (orb, host) = Orb::single_host();
    orb.set_local_bypass(false);
    let (group, join) = serve(&orb, host, "d2");

    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let proxy = client.bind("d2").unwrap();
    let inv = proxy.call("x").arg(&1i64).invoke_nb().unwrap();
    // Nobody drains the endpoint, so without pumping nothing resolves...
    std::thread::sleep(Duration::from_millis(30));
    assert!(!inv.peek(), "reply ingested without any pump");
    // ...until the owner pumps.
    assert!(inv.wait().is_ok());
    group.shutdown();
    join.join().unwrap();
}

#[test]
fn comm_thread_and_owner_pumping_coexist() {
    // Both the comm thread and the future's own blocking get() drain the
    // endpoint concurrently; every reply must still reach its invocation.
    let (orb, host) = Orb::single_host();
    orb.set_local_bypass(false);
    let (group, join) = serve(&orb, host, "d3");

    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let comm = client.start_comm_thread();
    let proxy = client.bind("d3").unwrap();

    for i in 0..50i64 {
        let inv = proxy.call("x").arg(&i).invoke_nb().unwrap();
        let fut: PFuture<i64> = inv.scalar_future(0);
        assert_eq!(fut.get().unwrap(), i * 2);
    }
    comm.stop();
    group.shutdown();
    join.join().unwrap();
}

#[test]
fn dropping_the_handle_stops_the_thread() {
    let (orb, host) = Orb::single_host();
    let client = ClientGroup::create(&orb, host, 1).attach(0, None);
    let comm = client.start_comm_thread();
    drop(comm); // must join without hanging
}
