//! Unit tests of the retransmit backoff schedule: the jitter stays inside
//! its cap, the exponent saturates (no overflow however many attempts a long
//! deadline allows), and the schedule is a pure function of the seed.

use crate::client::backoff_delay;
use crate::object::BindingId;
use crate::orb::OrbConfig;
use std::time::Duration;

fn cfg_with(seed: u64, base: Duration) -> OrbConfig {
    OrbConfig { retry_base: base, retry_seed: seed, ..OrbConfig::default() }
}

#[test]
fn jitter_stays_within_half_of_the_capped_exponential() {
    let cfg = cfg_with(7, Duration::from_millis(10));
    for key in [(BindingId(1), 0u64), (BindingId(0xdead_beef), 42), (BindingId(3 << 24), 9)] {
        for attempt in 0..10u32 {
            let floor = cfg.retry_base * (1u32 << attempt.min(6));
            let delay = backoff_delay(&cfg, key, attempt);
            assert!(delay >= floor, "attempt {attempt}: {delay:?} below floor {floor:?}");
            let cap = floor + floor.mul_f64(0.5);
            assert!(delay <= cap, "attempt {attempt}: {delay:?} above cap {cap:?}");
        }
    }
}

#[test]
fn tiny_bases_are_clamped_to_a_working_floor() {
    // A zero base would retransmit in a busy loop; the schedule clamps to
    // 50µs so even retry_base = 0 backs off.
    let cfg = cfg_with(1, Duration::ZERO);
    let floor = Duration::from_micros(50);
    let d = backoff_delay(&cfg, (BindingId(5), 1), 0);
    assert!(d >= floor && d <= floor + floor.mul_f64(0.5), "unexpected {d:?}");
}

#[test]
fn exponent_saturates_without_overflow_near_the_deadline() {
    // An invocation nursing a long deadline can rack up an unbounded attempt
    // count; the exponent must saturate at 2^6 instead of overflowing.
    let cfg = cfg_with(3, Duration::from_millis(10));
    let key = (BindingId(11), 4u64);
    let saturated = cfg.retry_base * (1 << 6);
    for attempt in [6, 7, 63, 64, 1_000_000, u32::MAX] {
        let d = backoff_delay(&cfg, key, attempt);
        assert!(d >= saturated, "attempt {attempt} fell under the saturated floor");
        assert!(d <= saturated + saturated.mul_f64(0.5), "attempt {attempt} overflowed the cap");
    }
    // A pathologically large base still must not overflow the multiply.
    let huge = cfg_with(3, Duration::from_secs(3_600));
    let _ = backoff_delay(&huge, key, u32::MAX);
}

#[test]
fn same_seed_yields_identical_schedules() {
    let a = cfg_with(99, Duration::from_millis(5));
    let b = cfg_with(99, Duration::from_millis(5));
    let key = (BindingId((4 << 24) | 2), 17u64);
    let sched_a: Vec<Duration> = (0..12).map(|k| backoff_delay(&a, key, k)).collect();
    let sched_b: Vec<Duration> = (0..12).map(|k| backoff_delay(&b, key, k)).collect();
    assert_eq!(sched_a, sched_b, "same seed must replay the same backoff schedule");

    let c = cfg_with(100, Duration::from_millis(5));
    let sched_c: Vec<Duration> = (0..12).map(|k| backoff_delay(&c, key, k)).collect();
    assert_ne!(sched_a, sched_c, "different seeds should de-synchronise the jitter");
}

#[test]
fn jitter_differs_across_invocations() {
    // Jitter decorrelates concurrent invocations of one client: distinct
    // (binding, request) keys should not back off in lockstep.
    let cfg = cfg_with(42, Duration::from_millis(5));
    let d1: Vec<Duration> = (0..8).map(|k| backoff_delay(&cfg, (BindingId(1), 1), k)).collect();
    let d2: Vec<Duration> = (0..8).map(|k| backoff_delay(&cfg, (BindingId(1), 2), k)).collect();
    assert_ne!(d1, d2);
}
